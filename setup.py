"""Legacy setup shim.

This offline environment lacks the ``wheel`` package, so ``pip install -e .``
must use the legacy ``setup.py develop`` code path; metadata lives in
pyproject.toml and is read by setuptools automatically.
"""

from setuptools import setup

setup()
