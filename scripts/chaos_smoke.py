#!/usr/bin/env python
"""CI chaos smoke: a seeded fault storm must end in a correct, *certified*
result — or an honest degraded unknown — never a crash or a wrong verdict.

Four phases, one deterministic seed:

1. **storm** — every isolated worker attempt OOMs (injected).  The
   verifier must retreat to an honest degraded ``unknown`` after its
   jittered retries, never crash, never claim "verified".
2. **calm** — the same call with the injector disarmed must verify the
   candidate and carry an independently checked UNSAT certificate.
3. **chaos synthesis** — a full certified synthesis run with bitflips on
   cache reads, ENOSPC on cache writes, and stalls on checkpoint writes.
   Corrupt cache entries are quarantined, failed cache writes ignored,
   and the run still converges to a certified solution.
4. **corrupt + resume** — the final checkpoint is truncated; a plain
   resume must fail with a diagnostic, and ``from_backup`` recovery must
   complete the run from the kept previous generation.

Run from the repository root:

    python scripts/chaos_smoke.py [--seed N]
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.ccac import ModelConfig  # noqa: E402
from repro.chaos import ChaosConfig, FaultSpec, install, uninstall  # noqa: E402
from repro.core import SynthesisQuery, rocc  # noqa: E402
from repro.core.template import TemplateSpec  # noqa: E402
from repro.obs import metrics  # noqa: E402
from repro.runtime import (  # noqa: E402
    CheckpointError,
    RuntimeOptions,
    resume_synthesis,
    run_synthesis,
)
from repro.runtime.workers import IsolatedVerifier, WorkerLimits  # noqa: E402


def fail(msg: str) -> int:
    print(f"[chaos-smoke] FAIL: {msg}", file=sys.stderr)
    return 1


def phase_storm_and_calm(cfg: ModelConfig, seed: int) -> int:
    """Worker fault storm -> honest unknown; calm -> certified verdict."""
    candidate = rocc(cfg.history)
    verifier = IsolatedVerifier(
        cfg,
        limits=WorkerLimits(wall_time=120.0, retries=2, backoff_cap=0.5),
        certify=True,
        retry_seed=seed,
    )
    install(ChaosConfig(seed=seed, specs=(FaultSpec("worker.child", "oom"),)))
    try:
        res = verifier.find_counterexample(candidate)
    finally:
        uninstall()
    if not (res.unknown and res.degraded and not res.verified):
        return fail(f"storm should degrade to unknown, got {res}")
    if verifier.kills != 3:
        return fail(f"expected 3 worker kills in the storm, saw {verifier.kills}")
    print(f"[chaos-smoke] storm: {verifier.kills} worker OOMs -> honest unknown")

    res = verifier.find_counterexample(candidate)
    if not (res.verified and res.certified and res.certificate.checked):
        return fail(f"calm run should be certified, got {res}")
    print(
        f"[chaos-smoke] calm: verified + certified "
        f"({res.certificate.steps} proof steps, "
        f"{res.certificate.theory_lemmas} Farkas lemmas)"
    )
    return 0


def phase_chaos_synthesis(cfg: ModelConfig, seed: int, workdir: str) -> tuple[int, str]:
    """Certified synthesis under cache/checkpoint faults."""
    ckpt = os.path.join(workdir, "run.ckpt")
    cache_dir = os.path.join(workdir, "cache")
    spec = TemplateSpec(
        history=cfg.history,
        use_cwnd_history=False,
        coeff_domain=(-1, 0, 1),
        const_domain=(0, 1),
    )
    query = SynthesisQuery(
        spec=spec, cfg=cfg, generator="enum", worst_case_cex=False,
        time_budget=600,
    )
    install(
        ChaosConfig(
            seed=seed,
            specs=(
                FaultSpec("cache.read", "bitflip", probability=0.25),
                FaultSpec("cache.write", "disk_full", probability=0.25),
                FaultSpec("checkpoint.write", "stall", probability=0.5, delay=0.01),
            ),
        )
    )
    try:
        result = run_synthesis(
            query,
            RuntimeOptions(
                checkpoint_path=ckpt, cache_dir=cache_dir, certify=True
            ),
        )
    finally:
        uninstall()
    if not result.found:
        return fail("chaos synthesis found no solution"), ckpt
    if result.certified_verdicts < 1:
        return fail("chaos synthesis solution was not certified"), ckpt
    snap = metrics().snapshot()
    counters = snap.get("counters", snap)
    injected = {
        k: v for k, v in counters.items() if str(k).startswith("chaos.injected")
    }
    quarantined = counters.get("chaos.quarantined", 0)
    print(
        f"[chaos-smoke] chaos synthesis: solution {result.first} certified "
        f"({result.certified_verdicts} verdict(s)); injected={injected} "
        f"quarantined={quarantined}"
    )
    return 0, ckpt


def phase_corrupt_resume(ckpt: str) -> int:
    """Truncate the checkpoint, then recover via the kept backup."""
    size = os.path.getsize(ckpt)
    with open(ckpt, "r+b") as f:
        f.truncate(size // 2)
    try:
        resume_synthesis(ckpt)
    except CheckpointError as exc:
        print(f"[chaos-smoke] corrupt resume refused as expected: {exc}")
    else:
        return fail("resume of a truncated checkpoint should have failed")
    result = resume_synthesis(ckpt, from_backup=True)
    if not result.found:
        return fail("from_backup resume did not complete to a solution")
    print(
        f"[chaos-smoke] from-backup resume: solution {result.first} "
        f"(resumed={result.resumed})"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=1312)
    args = parser.parse_args()

    cfg = ModelConfig(T=5, history=3)
    workdir = tempfile.mkdtemp(prefix="chaos-smoke-")
    print(f"[chaos-smoke] seed={args.seed} workdir={workdir}")

    rc = phase_storm_and_calm(cfg, args.seed)
    if rc:
        return rc
    rc, ckpt = phase_chaos_synthesis(cfg, args.seed, workdir)
    if rc:
        return rc
    rc = phase_corrupt_resume(ckpt)
    if rc:
        return rc
    print("[chaos-smoke] OK: every fault was absorbed; the result is certified")
    return 0


if __name__ == "__main__":
    sys.exit(main())
