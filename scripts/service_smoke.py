#!/usr/bin/env python
"""CI service smoke: the control plane end to end, over real sockets.

Boots a real ``ccmatic serve`` process (ephemeral port, own process
group), then drives it the way an operator would:

1. **verify via the CLI** — ``ccmatic submit verify rocc --watch`` must
   stream progress and render the exact ``VERIFIED`` verdict the local
   ``ccmatic verify`` prints.
2. **falsify via the client** — a falsify job against the deliberately
   weakened ``aimd:8`` is submitted with :class:`ServiceClient`, its
   NDJSON event stream must carry progress records before the terminal
   ``done``, and the result payload must report the falsification.
3. **cache** — ``GET /cache/stats`` must show the verify traffic landed
   in the service-wide query cache.
4. **shutdown** — ``POST /shutdown`` must end the server with exit code
   0 and leave *nothing* behind in its process group: no orphaned pool
   workers, no stray forks.

Run from the repository root:

    python scripts/service_smoke.py
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.ccac import ModelConfig  # noqa: E402
from repro.service import ServiceClient, ServiceError, falsify_spec  # noqa: E402


def fail(msg: str) -> int:
    print(f"[service-smoke] FAIL: {msg}", file=sys.stderr)
    return 1


def _cli_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return env


def start_server(state_dir: str) -> tuple[subprocess.Popen, int]:
    """``ccmatic serve --port 0`` in its own process group; parse the
    bound port from its banner line."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--state-dir", state_dir, "--pool-size", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=_cli_env(), cwd=ROOT, start_new_session=True,
    )
    banner = {}

    def _read():
        banner["line"] = proc.stdout.readline()

    reader = threading.Thread(target=_read, daemon=True)
    reader.start()
    reader.join(timeout=90)
    line = banner.get("line") or ""
    match = re.search(r"http://[\w.]+:(\d+)", line)
    if not match:
        proc.kill()
        raise RuntimeError(f"no service banner from `ccmatic serve`: {line!r}")
    return proc, int(match.group(1))


def phase_verify_via_cli(port: int) -> int:
    """Submit + watch + render through the real CLI."""
    out = subprocess.run(
        [sys.executable, "-m", "repro.cli", "submit", "verify", "rocc",
         "--T", "5", "--port", str(port), "--watch"],
        capture_output=True, text=True, env=_cli_env(), cwd=ROOT, timeout=300,
    )
    if out.returncode != 0:
        return fail(f"submit verify --watch exited {out.returncode}:\n"
                    f"{out.stdout}\n{out.stderr}")
    for needle in ("submitted", "[job] state=done", "VERIFIED"):
        if needle not in out.stdout:
            return fail(f"{needle!r} missing from submit --watch output:\n"
                        f"{out.stdout}")
    print("[service-smoke] verify: submitted, streamed, VERIFIED via the CLI")
    return 0


def phase_verify_matrix_via_cli(port: int) -> int:
    """Submit one multi-environment verify job: the verdict must hold in
    every named cell of the CCAC matrix (lossless + adequately buffered
    lossy), exercising the environment codec across the HTTP boundary."""
    out = subprocess.run(
        [sys.executable, "-m", "repro.cli", "submit", "verify", "rocc",
         "--T", "5", "--env", "lossless", "--env", "lossy:buffer=8",
         "--port", str(port), "--watch"],
        capture_output=True, text=True, env=_cli_env(), cwd=ROOT, timeout=300,
    )
    if out.returncode != 0:
        return fail(f"multi-environment submit verify exited "
                    f"{out.returncode}:\n{out.stdout}\n{out.stderr}")
    if "VERIFIED" not in out.stdout:
        return fail(f"multi-environment verify did not render VERIFIED:\n"
                    f"{out.stdout}")
    print("[service-smoke] verify-matrix: rocc VERIFIED across "
          "lossless + lossy:buffer=8 via submit")
    return 0


def phase_falsify_via_client(client: ServiceClient) -> int:
    """Submit a falsify job, stream its events, fetch the kill."""
    spec = falsify_spec("aimd:8", ModelConfig(T=5), budget=2000, seed=0)
    accepted = client.submit(spec)
    job_id = accepted["job_id"]
    streamer = ServiceClient(client.host, client.port, timeout=None)
    records = list(streamer.events(job_id))
    if not records or records[-1].get("type") != "job":
        return fail(f"falsify stream did not end on a job record: {records[-1:]}")
    if records[-1].get("state") != "done":
        return fail(f"falsify job ended {records[-1].get('state')!r}: "
                    f"{records[-1]}")
    progress = sum(1 for r in records if r.get("type") in ("span", "event"))
    if progress == 0:
        return fail("falsify stream carried no progress records")
    payload = client.result(job_id)
    if payload.get("survived") is not False:
        return fail(f"weakened aimd:8 should have been falsified: {payload}")
    print(f"[service-smoke] falsify: aimd:8 fell after "
          f"{payload['evaluations']} evaluations "
          f"({progress} progress records streamed)")
    return 0


def phase_cache_stats(client: ServiceClient) -> int:
    cache = client.cache_stats()
    if cache.get("disk_entries", 0) < 1 or cache.get("disk_bytes", 0) <= 0:
        return fail(f"verify traffic missing from the shared cache: {cache}")
    print(f"[service-smoke] cache: {cache['disk_entries']} entries, "
          f"{cache['disk_bytes']} bytes on disk")
    return 0


def phase_clean_shutdown(client: ServiceClient, proc: subprocess.Popen) -> int:
    try:
        client.shutdown()
    except (OSError, ServiceError):
        pass  # the socket may drop as the server drains
    try:
        code = proc.wait(timeout=60)
    except subprocess.TimeoutExpired:
        os.killpg(proc.pid, signal.SIGKILL)
        return fail("server did not exit within 60s of POST /shutdown")
    if code != 0:
        return fail(f"server exited {code} on clean shutdown")
    # the serve process led its own process group: if any pool worker
    # were orphaned it would still be signalable under that pgid
    deadline = time.time() + 10.0
    while time.time() < deadline:
        try:
            os.killpg(proc.pid, 0)
        except ProcessLookupError:
            print("[service-smoke] shutdown: exit 0, process group empty")
            return 0
        time.sleep(0.2)
    os.killpg(proc.pid, signal.SIGKILL)
    return fail("orphaned processes survived the clean shutdown")


def main() -> int:
    state_dir = tempfile.mkdtemp(prefix="service-smoke-")
    proc, port = start_server(state_dir)
    print(f"[service-smoke] serving on 127.0.0.1:{port} (state: {state_dir})")
    client = ServiceClient(port=port, timeout=120.0)
    try:
        for phase in (
            lambda: phase_verify_via_cli(port),
            lambda: phase_verify_matrix_via_cli(port),
            lambda: phase_falsify_via_client(client),
            lambda: phase_cache_stats(client),
        ):
            rc = phase()
            if rc:
                return rc
    finally:
        rc_shutdown = phase_clean_shutdown(client, proc)
    if rc_shutdown:
        return rc_shutdown
    print("[service-smoke] OK: submit, stream, cache and shutdown all clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
