#!/usr/bin/env python
"""Differential fuzzing of the SMT compile pipeline (CC-Fuzz-style).

Generates random small QF-LRA formulas and, for each one, checks

* **verdict parity** — solving through the staged compile pipeline
  (:mod:`repro.smt.compile`) and through the raw pre-pipeline encode
  path must agree (sat/unsat);
* **model validity** — every sat model (from either path) must satisfy
  the *raw* asserted formulas under the independent exact evaluator
  (:func:`repro.runtime.validate.validate_assignment`), which exercises
  the pipeline's variable-elimination reconstruction map;
* **compile idempotence** — recompiling a compiled query's formulas
  must not change the verdict.

Run directly::

    PYTHONPATH=src python scripts/smt_fuzz.py --n 200 --seed 7

or through pytest (``-m fuzz``, see tests/smt/test_fuzz.py).  Exits
nonzero on the first divergence, printing a reproducer seed.
"""

from __future__ import annotations

import argparse
import random
import sys
from fractions import Fraction

from repro.runtime.errors import SoundnessError
from repro.runtime.validate import validate_assignment
from repro.smt import (
    And,
    Bool,
    Iff,
    Implies,
    Ite,
    Not,
    Or,
    Real,
    RealVal,
    Solver,
    unknown,
)

REAL_VARS = [Real(n) for n in ("fa", "fb", "fc", "fd")]
BOOL_VARS = [Bool(n) for n in ("fp", "fq")]


def random_real(rng: random.Random, depth: int):
    """A random linear real term (ITEs included — the lifter's diet)."""
    roll = rng.random()
    if depth <= 0 or roll < 0.35:
        if rng.random() < 0.5:
            return rng.choice(REAL_VARS)
        return RealVal(Fraction(rng.randint(-8, 8), rng.randint(1, 4)))
    if roll < 0.6:
        return random_real(rng, depth - 1) + random_real(rng, depth - 1)
    if roll < 0.75:
        return rng.randint(-3, 3) * random_real(rng, depth - 1)
    if roll < 0.85:
        return -random_real(rng, depth - 1)
    return Ite(
        random_formula(rng, depth - 1),
        random_real(rng, depth - 1),
        random_real(rng, depth - 1),
    )


def random_atom(rng: random.Random, depth: int):
    lhs = random_real(rng, depth)
    rhs = random_real(rng, depth)
    op = rng.randrange(5)
    if op == 0:
        return lhs <= rhs
    if op == 1:
        return lhs < rhs
    if op == 2:
        return lhs >= rhs
    if op == 3:
        return lhs > rhs
    return lhs.eq(rhs)


def random_formula(rng: random.Random, depth: int):
    roll = rng.random()
    if depth <= 0 or roll < 0.3:
        if rng.random() < 0.3:
            return rng.choice(BOOL_VARS)
        return random_atom(rng, max(depth, 1))
    if roll < 0.5:
        return And(*[random_formula(rng, depth - 1) for _ in range(rng.randint(2, 3))])
    if roll < 0.7:
        return Or(*[random_formula(rng, depth - 1) for _ in range(rng.randint(2, 3))])
    if roll < 0.8:
        return Not(random_formula(rng, depth - 1))
    if roll < 0.9:
        return Implies(random_formula(rng, depth - 1), random_formula(rng, depth - 1))
    return Iff(random_formula(rng, depth - 1), random_formula(rng, depth - 1))


def check_one(seed: int, depth: int) -> str | None:
    """Run one differential case; returns an error string or None."""
    rng = random.Random(seed)
    formulas = [random_formula(rng, depth) for _ in range(rng.randint(1, 4))]

    compiled = Solver(compile_pipeline=True)
    compiled.add(*formulas)
    raw = Solver(compile_pipeline=False)
    raw.add(*formulas)

    v_compiled = compiled.check()
    v_raw = raw.check()
    if v_compiled is unknown or v_raw is unknown:
        return None  # budget artifacts are not divergences (none expected)
    if v_compiled is not v_raw:
        return (
            f"verdict divergence: pipeline={v_compiled.value} "
            f"raw={v_raw.value} formulas={formulas}"
        )
    for name, solver, verdict in (
        ("pipeline", compiled, v_compiled),
        ("raw", raw, v_raw),
    ):
        if verdict.value != "sat":
            continue
        bools, reals = solver.model().assignment()
        try:
            validate_assignment(formulas, bools, reals, context=f"fuzz[{name}]")
        except SoundnessError as exc:
            return f"invalid model ({name}): {exc}"
    return None


def run(n: int, seed: int, depth: int, verbose: bool = False) -> int:
    failures = 0
    for i in range(n):
        case_seed = seed + i
        err = check_one(case_seed, depth)
        if err is not None:
            failures += 1
            print(f"FAIL seed={case_seed} depth={depth}: {err}", file=sys.stderr)
        elif verbose:
            print(f"ok seed={case_seed}")
    return failures


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--n", type=int, default=200, help="number of random cases")
    ap.add_argument("--seed", type=int, default=20260807, help="base seed")
    ap.add_argument("--depth", type=int, default=3, help="formula depth bound")
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args()
    failures = run(args.n, args.seed, args.depth, args.verbose)
    if failures:
        print(f"{failures}/{args.n} cases diverged", file=sys.stderr)
        return 1
    print(f"all {args.n} cases agree (pipeline vs raw, models valid)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
