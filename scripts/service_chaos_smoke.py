#!/usr/bin/env python
"""CI chaos smoke: the control plane under a seeded network storm.

Boots a real ``ccmatic serve`` process with ``REPRO_CHAOS`` arming the
network injection points — connections reset at accept, responses
rewritten to 503 or torn mid-body, NDJSON streams cut mid-line — then
makes the weather worse on purpose:

1. **burst** — five distinct jobs submitted through the retrying client,
   plus an identical re-submit that must dedup to the same job id.
2. **kill** — ``SIGKILL`` the whole server process group while work is
   in flight (no cleanup handlers run; leases go stale).
3. **restart** — a second serve on the same state dir must re-load every
   record, re-queue the interrupted attempts, and finish the storm.
4. **invariants** — every submitted job ends ``done`` with a result
   fingerprint that recomputes from its payload, or honestly ``failed``
   with its attempt history.  No job is lost, duplicated, or left
   queued/running once the storm clears.
5. **deadline** — an unfinishable job with ``deadline_s=1`` and
   ``max_attempts=2`` is cancelled by the watchdog, re-queued once, then
   fails with two recorded deadline attempts.
6. **shed** — with both executors busy and the queue full, one more
   submit answers ``429`` with a ``Retry-After`` header.
7. **shutdown** — a graceful drain exits 0 and leaves the process group
   empty.

Run from the repository root (the seed keys the whole storm):

    python scripts/service_chaos_smoke.py [seed]
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.ccac import ModelConfig  # noqa: E402
from repro.chaos import ChaosConfig, FaultSpec  # noqa: E402
from repro.service import (  # noqa: E402
    RetryPolicy,
    ServiceClient,
    ServiceError,
    falsify_spec,
    verify_spec,
)
from repro.service.jobs import (  # noqa: E402
    _FALSIFY_SEMANTIC_KEYS,
    _VERIFY_SEMANTIC_KEYS,
    _fingerprint_over,
)

TERMINAL = ("done", "failed", "cancelled")


def fail(msg: str) -> int:
    print(f"[service-chaos] FAIL: {msg}", file=sys.stderr)
    return 1


def storm_config(seed: int) -> ChaosConfig:
    """The weather: every service injection point misbehaves sometimes."""
    return ChaosConfig(seed=seed, specs=(
        FaultSpec(point="service.accept", kind="conn_reset", probability=0.06),
        FaultSpec(point="service.response", kind="reject_503",
                  probability=0.08),
        FaultSpec(point="service.response", kind="torn_stream",
                  probability=0.04),
        FaultSpec(point="service.response", kind="slow_write",
                  probability=0.04, delay=0.4),
        FaultSpec(point="service.stream", kind="torn_stream",
                  probability=0.08),
    ))


def _cli_env(chaos: ChaosConfig) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    env["REPRO_CHAOS"] = chaos.to_json()
    return env


def start_server(state_dir: str, chaos: ChaosConfig) -> tuple[subprocess.Popen, int]:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--state-dir", state_dir, "--pool-size", "2",
         "--executors", "2", "--max-queue", "4", "--drain-grace", "5"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=_cli_env(chaos), cwd=ROOT, start_new_session=True,
    )
    banner = {}

    def _read():
        banner["line"] = proc.stdout.readline()

    reader = threading.Thread(target=_read, daemon=True)
    reader.start()
    reader.join(timeout=90)
    line = banner.get("line") or ""
    match = re.search(r"http://[\w.]+:(\d+)", line)
    if not match:
        proc.kill()
        raise RuntimeError(f"no service banner from `ccmatic serve`: {line!r}")
    return proc, int(match.group(1))


def _client(port: int, seed: int, retries: int = 8) -> ServiceClient:
    return ServiceClient(
        port=port, timeout=60.0,
        retry_policy=RetryPolicy(retries=retries, backoff_base=0.1,
                                 backoff_cap=1.0),
        retry_seed=seed,
    )


def burst_specs():
    """Five distinct fingerprints: two verifies, two quick falsifies and
    one exhaustive slow burner (~10s) for the kill to interrupt."""
    return [
        verify_spec("rocc", ModelConfig(T=5)),
        verify_spec("rocc", ModelConfig(T=6)),
        falsify_spec("aimd:8", ModelConfig(T=5), budget=1500, seed=1,
                     no_verify=True),
        falsify_spec("aimd:8", ModelConfig(T=5), budget=1500, seed=2,
                     no_verify=True),
        falsify_spec("aimd:8", ModelConfig(T=5), budget=2000, seed=3,
                     exhaustive=True, no_verify=True),
    ]


def wait_terminal(client: ServiceClient, job_id: str,
                  timeout: float = 300.0) -> dict:
    deadline = time.monotonic() + timeout
    record = {"state": "unknown"}
    while time.monotonic() < deadline:
        record = client.status(job_id)
        if record["state"] in TERMINAL:
            return record
        time.sleep(0.25)
    raise RuntimeError(
        f"job {job_id} still {record['state']} after {timeout:.0f}s"
    )


def check_done_fingerprint(payload: dict, kind: str) -> bool:
    """A done job's payload fingerprint must recompute from its own
    semantic fields — a duplicated or torn execution cannot fake it."""
    keys = _VERIFY_SEMANTIC_KEYS if kind == "verify" else _FALSIFY_SEMANTIC_KEYS
    return bool(payload.get("fingerprint")) and (
        payload["fingerprint"] == _fingerprint_over(payload, keys)
    )


def submit_with_grit(client: ServiceClient, spec, attempts: int = 30):
    """Submit through the storm: ride out resets the policy gave up on
    (dedup makes every re-submit safe)."""
    last = None
    for _ in range(attempts):
        try:
            return client.submit(spec)
        except (OSError, ServiceError) as exc:
            last = exc
            time.sleep(0.3)
    raise RuntimeError(f"submit never landed: {last}")


def phase_burst_and_kill(state_dir: str, seed: int, chaos: ChaosConfig):
    """Submit the burst, verify dedup, then pull the plug mid-flight."""
    proc, port = start_server(state_dir, chaos)
    print(f"[service-chaos] storm server on 127.0.0.1:{port} "
          f"(seed {seed}, state: {state_dir})")
    client = _client(port, seed)
    specs = burst_specs()
    jobs = []
    for spec in specs:
        accepted = submit_with_grit(client, spec)
        jobs.append((accepted["job_id"], spec))
    ids = [j for j, _ in jobs]
    if len(set(ids)) != len(ids):
        raise RuntimeError(f"burst produced duplicate job ids: {ids}")
    # identical spec while the original is live: same job, not new work
    again = submit_with_grit(client, specs[2])
    if again["job_id"] != jobs[2][0]:
        raise RuntimeError(
            f"re-submit was not deduped: {again['job_id']} != {jobs[2][0]}"
        )
    print(f"[service-chaos] burst: {len(ids)} distinct jobs accepted, "
          f"identical re-submit deduped to {again['job_id']}")
    # wait for work to actually be in flight, then no mercy
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        try:
            if client.stats()["running"] >= 1:
                break
        except (OSError, ServiceError):
            pass
        time.sleep(0.05)
    os.killpg(proc.pid, signal.SIGKILL)
    proc.wait(timeout=30)
    print("[service-chaos] kill: SIGKILL mid-storm, leases now stale")
    return jobs


def phase_recover(client: ServiceClient, jobs) -> int:
    """Every burst job must converge to an honest terminal state."""
    known = {j["job_id"] for j in client.jobs()}
    lost = [job_id for job_id, _ in jobs if job_id not in known]
    if lost:
        return fail(f"jobs lost across the restart: {lost}")
    done = failed = 0
    for job_id, spec in jobs:
        record = wait_terminal(client, job_id)
        if record["state"] == "done":
            payload = client.result(job_id)
            if not check_done_fingerprint(payload, spec.kind):
                return fail(f"job {job_id} finished with a fingerprint "
                            f"that does not recompute: {payload}")
            done += 1
        elif record["state"] == "failed":
            if not record.get("attempt_history"):
                return fail(f"job {job_id} failed without attempt "
                            f"history: {record}")
            failed += 1
        else:
            return fail(f"burst job {job_id} ended {record['state']!r}")
    # interrupted attempts re-queued, never cloned: one record per spec
    fingerprints = {}
    for record in client.jobs():
        fingerprints.setdefault(record["spec_fingerprint"], []).append(
            record["job_id"]
        )
    for spec_fp, job_ids in fingerprints.items():
        live = [j for j in job_ids if j in known]
        if len(live) > 1:
            return fail(f"spec {spec_fp[:12]} duplicated into {live}")
    interrupted = sum(
        1 for job_id, _ in jobs
        for a in client.status(job_id).get("attempt_history", [])
        if a.get("outcome") == "lease-expired"
    )
    print(f"[service-chaos] recover: {done} done / {failed} failed, "
          f"{interrupted} interrupted attempt(s) re-queued, none lost")
    return 0


def phase_deadline(client: ServiceClient) -> int:
    """An unfinishable job is bounded by deadline_s x max_attempts."""
    spec = falsify_spec(
        "aimd", ModelConfig(T=5), budget=10**8, ticks=300, seed=99,
        exhaustive=True, no_verify=True, deadline_s=1.0, max_attempts=2,
    )
    accepted = submit_with_grit(client, spec)
    record = wait_terminal(client, accepted["job_id"], timeout=120.0)
    if record["state"] != "failed":
        return fail(f"deadline job ended {record['state']!r}: {record}")
    outcomes = [a["outcome"] for a in record["attempt_history"]]
    if record["attempts"] != 2 or outcomes != ["deadline", "deadline"]:
        return fail(f"deadline job should burn exactly 2 attempts: "
                    f"attempts={record['attempts']} outcomes={outcomes}")
    print("[service-chaos] deadline: cancelled by the watchdog twice, "
          "then honestly failed")
    return 0


def phase_shed(client: ServiceClient, seed: int) -> int:
    """Both executors busy + full queue: the next submit is shed."""
    parked = []
    for n in range(6):  # 2 executors + max_queue of 4
        spec = falsify_spec(
            "aimd", ModelConfig(T=5), budget=10**8, ticks=300,
            seed=100 + n, exhaustive=True, no_verify=True,
        )
        parked.append(submit_with_grit(client, spec)["job_id"])
    impatient = ServiceClient(
        port=client.port, timeout=60.0, retry_policy=RetryPolicy(retries=0),
    )
    overflow = falsify_spec(
        "aimd", ModelConfig(T=5), budget=10**8, ticks=300, seed=110,
        exhaustive=True, no_verify=True,
    )
    shed = None
    for _ in range(30):
        try:
            accepted = impatient.submit(overflow)
        except ServiceError as exc:
            if exc.status == 429:
                shed = exc
                break
            # chaos rewrote the response (503) or tore it: try again
        except OSError:
            pass  # chaos reset the connection: try again
        else:
            # a slot freed up and the job landed: park it and refill
            parked.append(accepted["job_id"])
        time.sleep(0.2)
    rc = 0
    if shed is None:
        rc = fail("the full queue never answered 429")
    elif shed.retry_after is None:
        rc = fail("429 response carried no Retry-After header")
    for job_id in parked:
        try:
            client.cancel(job_id)
        except (OSError, ServiceError):
            pass
        wait_terminal(client, job_id, timeout=60.0)
    if rc == 0:
        stats = client.stats()
        if stats.get("shed", 0) < 1:
            return fail(f"/stats does not count the shed submit: {stats}")
        print(f"[service-chaos] shed: 429 with Retry-After "
              f"{shed.retry_after:g}s, /stats shed={stats['shed']}")
    return rc


def phase_clean_shutdown(client: ServiceClient, proc: subprocess.Popen) -> int:
    # the client never retries /shutdown (a dropped response usually means
    # the drain already started) — but under accept-path chaos the request
    # itself can vanish, so the *operator* re-issues it until the process
    # exits; a drain request to an already-draining server is a no-op
    code = None
    for _ in range(10):
        try:
            client.shutdown()
        except (OSError, ServiceError):
            pass
        try:
            code = proc.wait(timeout=6)
            break
        except subprocess.TimeoutExpired:
            continue
    if code is None:
        os.killpg(proc.pid, signal.SIGKILL)
        return fail("server did not exit within 60s of POST /shutdown")
    if code != 0:
        return fail(f"server exited {code} on clean shutdown")
    deadline = time.time() + 10.0
    while time.time() < deadline:
        try:
            os.killpg(proc.pid, 0)
        except ProcessLookupError:
            print("[service-chaos] shutdown: exit 0, process group empty")
            return 0
        time.sleep(0.2)
    os.killpg(proc.pid, signal.SIGKILL)
    return fail("orphaned processes survived the clean shutdown")


def main() -> int:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    chaos = storm_config(seed)
    state_dir = tempfile.mkdtemp(prefix="service-chaos-")
    jobs = phase_burst_and_kill(state_dir, seed, chaos)
    # second incarnation: same state, fresh port, same weather
    proc, port = start_server(state_dir, chaos)
    print(f"[service-chaos] restarted on 127.0.0.1:{port}")
    client = _client(port, seed + 1)
    try:
        for phase in (
            lambda: phase_recover(client, jobs),
            lambda: phase_deadline(client),
            lambda: phase_shed(client, seed),
        ):
            rc = phase()
            if rc:
                return rc
        stats = client.stats()
        if stats["running"] or stats["queued"]:
            return fail(f"zombies after the storm: {stats}")
    finally:
        rc_shutdown = phase_clean_shutdown(client, proc)
    if rc_shutdown:
        return rc_shutdown
    print("[service-chaos] OK: no job lost, duplicated or left running "
          "through resets, 503s, torn streams, SIGKILL and restart")
    return 0


if __name__ == "__main__":
    sys.exit(main())
