#!/usr/bin/env python
"""CI fault-injection smoke test: SIGKILL a checkpointed synthesis
mid-run, then prove `ccmatic resume` completes it.

Launches `ccmatic synthesize --checkpoint` as a subprocess, waits for the
checkpoint file to show a few saved iterations, delivers SIGKILL (no
warning, no cleanup — the same failure a power cut or OOM-killer
produces), and then runs `ccmatic resume` on the survivor.  Exits
non-zero unless the resumed run terminates successfully with a solution.

Run from the repository root:

    python scripts/fault_injection_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")

SYNTH_ARGS = [
    "synthesize", "--space", "no_cwnd_small", "--T", "5",
    "--generator", "enum", "--time-budget", "600",
]


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _ccmatic(args: list[str], **kwargs):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args], env=_env(), **kwargs
    )


def _iterations(ckpt: str) -> int:
    """Iteration counter of the checkpoint, or -1 while unreadable.

    Reading races with the atomic writer; os.replace guarantees we only
    ever see a complete file, so a parse error here is a real bug."""
    if not os.path.exists(ckpt):
        return -1
    with open(ckpt) as f:
        return json.load(f)["stats"]["iterations"]


def main() -> int:
    ckpt = os.path.join(tempfile.mkdtemp(prefix="fault-smoke-"), "run.ckpt")
    print(f"[smoke] starting checkpointed synthesis (checkpoint: {ckpt})")
    proc = _ccmatic([*SYNTH_ARGS, "--checkpoint", ckpt])

    deadline = time.time() + 300
    killed = False
    while time.time() < deadline:
        if proc.poll() is not None:
            # finished before we got to kill it: still exercises resume
            # below via the completed checkpoint, but warn — the config
            # should be slow enough for the kill to land first
            print(f"[smoke] run finished early (rc={proc.returncode}) "
                  "before injection; resuming a completed checkpoint instead")
            break
        if _iterations(ckpt) >= 3:
            proc.send_signal(signal.SIGKILL)
            proc.wait()
            killed = True
            print(f"[smoke] SIGKILL delivered at iteration {_iterations(ckpt)} "
                  f"(rc={proc.returncode})")
            break
        time.sleep(0.05)
    else:
        proc.kill()
        print("[smoke] FAIL: checkpoint never reached 3 iterations", file=sys.stderr)
        return 1

    if killed and proc.returncode != -signal.SIGKILL:
        print(f"[smoke] FAIL: expected rc {-signal.SIGKILL}, got {proc.returncode}",
              file=sys.stderr)
        return 1
    if not os.path.exists(ckpt):
        print("[smoke] FAIL: no checkpoint file survived", file=sys.stderr)
        return 1

    print("[smoke] resuming")
    resume = _ccmatic(["resume", ckpt], stdout=subprocess.PIPE, text=True)
    out, _ = resume.communicate(timeout=600)
    print(out, end="")
    if resume.returncode != 0:
        print(f"[smoke] FAIL: resume exited {resume.returncode}", file=sys.stderr)
        return 1
    if "stop=solution" not in out:
        print("[smoke] FAIL: resumed run did not report a solution", file=sys.stderr)
        return 1
    print("[smoke] OK: killed run resumed to a solution")
    return 0


if __name__ == "__main__":
    sys.exit(main())
