#!/usr/bin/env python
"""CI falsification smoke: a seeded ~2-minute adversarial budget.

Three phases, one deterministic seed:

1. **survive** — RoCC, SMT-verified, is hunted in-fragment.  It must
   survive every trace evaluation with a non-negative margin: a single
   violation here would be a sim-vs-SMT soundness incident.
2. **falsify** — the deliberately weakened AIMD (delay threshold 8,
   ``aimd:8``) must be falsified within the budget, and the minimized
   counterexample must still violate when replayed from its JSON form.
3. **grid** — a cross-validation grid fans out over worker processes
   and writes a repeatable experiment manifest; the verified CCA must
   show zero violating cells, the weakened one at least one.

Artifacts land in ``--out-dir`` (default ``falsify-artifacts/``): the
grid manifests plus any corpus cases or flight-recorder dumps produced.

Run from the repository root:

    python scripts/falsify_smoke.py [--seed N] [--budget EVALS]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.ccac import ModelConfig  # noqa: E402
from repro.falsify import (  # noqa: E402
    FalsifyBudget,
    GridSpec,
    TraceSchedule,
    falsify_cca,
    load_cases,
    resolve_cca,
    run_grid,
)


def fail(msg: str) -> int:
    print(f"[falsify-smoke] FAIL: {msg}", file=sys.stderr)
    return 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--budget", type=int, default=600,
                        help="trace evaluations per hunt (default 600, "
                             "roughly a 2-minute total run)")
    parser.add_argument("--out-dir", default="falsify-artifacts")
    args = parser.parse_args()

    cfg = ModelConfig(T=7)
    budget = FalsifyBudget(evaluations=args.budget, population=16)
    os.makedirs(args.out_dir, exist_ok=True)
    corpus_dir = os.path.join(args.out_dir, "corpus")
    # a soundness incident dumps the flight ring; land it in the
    # artifact directory so CI uploads it
    from repro.obs.flight import set_dump_dir

    set_dump_dir(args.out_dir)
    t0 = time.perf_counter()

    # phase 1: the verified CCA survives (zero false alarms)
    factory, smt_ok = resolve_cca("rocc")
    assert smt_ok
    report = falsify_cca(
        factory, cfg, spec="rocc", budget=budget, seed=args.seed,
        verified=True, corpus_dir=corpus_dir,
    )
    print(f"[falsify-smoke] {report.describe()}")
    if not report.survived:
        return fail("verified rocc was falsified in-fragment")
    if report.search.best_margin < 0:
        return fail(f"negative margin {report.search.best_margin} "
                    f"without a violation record")

    # phase 2: the weakened CCA falls, and its minimized case replays
    factory, _ = resolve_cca("aimd:8")
    report = falsify_cca(
        factory, cfg, spec="aimd:8", budget=budget, seed=args.seed,
        corpus_dir=corpus_dir,
    )
    print(f"[falsify-smoke] {report.describe()}")
    if report.survived:
        return fail(f"weakened aimd:8 survived {report.search.attempts} "
                    f"evaluations — the searcher lost its teeth")
    cases = [c for c in load_cases(corpus_dir) if c.cca == "aimd:8"]
    if not cases:
        return fail("no corpus case written for the aimd:8 violation")
    case = cases[0]
    from repro.falsify import PropertyOracle

    factory, _ = resolve_cca(case.cca)
    replayed = PropertyOracle(
        case.model_config(), covered_only=case.covered_only
    ).evaluate(factory(), TraceSchedule.from_dict(case.schedule))
    if not replayed.violated:
        return fail(f"minimized corpus case {case.name} no longer violates")
    print(f"[falsify-smoke] corpus case {case.name} replays exactly "
          f"(margin {case.verdict['margin']})")

    # phase 3: grid fan-out with manifests
    grid = GridSpec.from_model(cfg, ticks=40)
    for spec, expect_bad in (("rocc", False), ("aimd:8", True)):
        manifest = run_grid(
            spec, cfg, grid, jobs=2,
            manifest_path=os.path.join(
                args.out_dir, f"grid-{spec.replace(':', '-')}.json"
            ),
        )
        bad = len(manifest.violations)
        print(f"[falsify-smoke] {spec} grid: {manifest.describe()}")
        if expect_bad and bad == 0:
            return fail(f"{spec}: grid found no violating cells")
        if not expect_bad and bad:
            return fail(f"{spec}: {bad} violating grid cells on a "
                        f"verified CCA")

    print(f"[falsify-smoke] OK in {time.perf_counter() - t0:.1f}s "
          f"(seed {args.seed}, budget {args.budget})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
