"""Examples stay runnable: syntax/compile checks for all, plus execution
of the fast ones (the slow synthesis demos are exercised by benchmarks)."""

import pathlib
import py_compile
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in ALL_EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 5


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path, tmp_path):
    py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)


def test_abr_example_runs(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "abr_streaming.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "STALLS" in out
    assert "provably stall-free: True" in out


def test_fairness_example_runs(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "fairness_analysis.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "PROVED" in out
    assert "starvation trace found" in out


def test_simulate_example_runs(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "simulate_synthesized.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "rocc" in out
    assert "max_waste" in out
