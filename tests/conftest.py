"""Shared fixtures: fast model configurations for solver-backed tests."""

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, settings

from repro.ccac import ModelConfig

# the exact-arithmetic solver makes example runtimes vary wildly on the
# single-core CI box; wall-clock deadlines would only add flakes
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(autouse=True)
def _isolate_flight_recorder():
    """Keep the process-global flight recorder from leaking across tests.

    CLI entry points arm the recorder and point its dump directory at
    the cwd; without this reset, a later test that legitimately raises
    a SoundnessError would scatter ``flightrec-*.jsonl`` into the repo.
    """
    import repro.obs.flight as flight
    from repro.obs import tracer

    saved = flight._RECORDER, flight._DUMP_DIR
    yield
    if flight._RECORDER is not None and flight._RECORDER is not saved[0]:
        tracer().remove_sink(flight._RECORDER)
    flight._RECORDER, flight._DUMP_DIR = saved


@pytest.fixture
def fast_cfg() -> ModelConfig:
    """Smallest config where the paper's qualitative verdicts hold
    (RoCC verifies; the one-BDP constant window is refuted)."""
    return ModelConfig(T=5, history=3)


@pytest.fixture
def paper_cfg() -> ModelConfig:
    """The default (paper-shaped) configuration."""
    return ModelConfig(T=7, history=4)
