"""Shared fixtures: fast model configurations for solver-backed tests."""

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, settings

from repro.ccac import ModelConfig

# the exact-arithmetic solver makes example runtimes vary wildly on the
# single-core CI box; wall-clock deadlines would only add flakes
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def fast_cfg() -> ModelConfig:
    """Smallest config where the paper's qualitative verdicts hold
    (RoCC verifies; the one-BDP constant window is refuted)."""
    return ModelConfig(T=5, history=3)


@pytest.fixture
def paper_cfg() -> ModelConfig:
    """The default (paper-shaped) configuration."""
    return ModelConfig(T=7, history=4)
