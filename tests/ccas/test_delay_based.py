"""Tests for the delay-based baselines (Vegas/Copa style)."""

from fractions import Fraction

from repro.ccas.delay_based import CopaLike, VegasLike
from repro.sim import run_simulation


class TestVegasLike:
    def test_probes_up_when_queue_low(self):
        cca = VegasLike(step=Fraction(1, 2))
        cca.reset()
        w0 = cca.initial_cwnd()
        w1 = cca.on_rtt(1, Fraction(1), Fraction(1))  # rtt = base -> no queue
        assert w1 == w0 + Fraction(1, 2)

    def test_backs_off_when_queue_high(self):
        cca = VegasLike()
        cca.reset()
        for t in range(1, 8):
            cca.on_rtt(t, Fraction(t), Fraction(1))
        w_before = cca._cwnd
        w_after = cca.on_rtt(9, Fraction(9), Fraction(3))
        assert w_after < w_before

    def test_floor(self):
        cca = VegasLike(min_cwnd=Fraction(1, 4))
        cca.reset()
        for t in range(30):
            w = cca.on_rtt(t, Fraction(0), Fraction(10))
        assert w >= Fraction(1, 4)

    def test_good_on_ideal_link(self):
        r = run_simulation(VegasLike(), ticks=150, policy="ideal")
        assert r.utilization(warmup=30) >= Fraction(9, 10)
        assert r.max_queue(30) <= 3


class TestCopaLike:
    def test_probes_when_no_queue(self):
        cca = CopaLike()
        cca.reset()
        w0 = cca.initial_cwnd()
        w1 = cca.on_rtt(1, Fraction(1), Fraction(1))
        assert w1 > w0

    def test_collapses_under_fake_delay(self):
        """The CCAC fragility: persistent measured delay drives the
        target window down regardless of real congestion."""
        cca = CopaLike()
        cca.reset()
        for t in range(1, 20):
            w = cca.on_rtt(t, Fraction(t), Fraction(4))
        # converges to target_rate*rtt = (1/(delta*3))*4 = 8/3, far below max
        assert w <= Fraction(3)

    def test_good_on_ideal_link(self):
        r = run_simulation(CopaLike(), ticks=150, policy="ideal")
        assert r.utilization(warmup=30) >= Fraction(3, 4)

    def test_waste_adversary_never_helps(self):
        """The waste adversary inflates measured delay; the delay-based
        rule can at best match its ideal-link throughput.  (The *formal*
        fragility — arbitrarily low utilization — needs the adversary to
        also time the delay signal against the control loop, which the
        verifier finds but this fixed simulator policy does not.)"""
        ideal = run_simulation(CopaLike(), ticks=200, policy="ideal")
        adv = run_simulation(CopaLike(), ticks=200, policy="max_waste")
        assert adv.utilization(40) <= ideal.utilization(40)
        # and the adversary does force a larger standing queue
        assert adv.mean_queue(40) >= ideal.mean_queue(40)

    def test_bounds_respected(self):
        cca = CopaLike(min_cwnd=Fraction(1, 10), max_cwnd=Fraction(8))
        cca.reset()
        for t in range(1, 40):
            w = cca.on_rtt(t, Fraction(t), Fraction(1) if t % 2 else Fraction(6))
            assert Fraction(1, 10) <= w <= 8
