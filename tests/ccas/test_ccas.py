"""Unit tests for the executable CCAs."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.ccas import AIMD, ConstantCwnd, CubicLike, RoCC, TemplateCCA
from repro.core import paper_eq_iii, rocc


class TestRoCC:
    def test_initial_cwnd_positive(self):
        assert RoCC().initial_cwnd() > 0

    def test_window_is_acked_plus_increment(self):
        cca = RoCC(increment=Fraction(1))
        cca.reset()
        cca.on_rtt(1, Fraction(0), Fraction(1))
        cca.on_rtt(2, Fraction(1), Fraction(1))
        cwnd = cca.on_rtt(3, Fraction(2), Fraction(1))
        # acked over the 2-RTT window = 2 - 0, plus increment
        assert cwnd == Fraction(3)

    def test_min_cwnd_floor(self):
        cca = RoCC(increment=Fraction(0), min_cwnd=Fraction(1, 10))
        cca.reset()
        assert cca.on_rtt(1, Fraction(0), Fraction(1)) >= Fraction(1, 10)

    def test_reset_clears_history(self):
        cca = RoCC(increment=Fraction(1))
        cca.on_rtt(1, Fraction(5), Fraction(1))
        cca.reset()
        # after reset the ack window is empty again: cwnd = 0 + increment
        assert cca.on_rtt(1, Fraction(0), Fraction(1)) == Fraction(1)


class TestAIMD:
    def test_additive_increase(self):
        cca = AIMD(alpha=Fraction(1))
        cca.initial_cwnd()
        w1 = cca.on_rtt(1, Fraction(1), Fraction(1))
        w2 = cca.on_rtt(2, Fraction(2), Fraction(1))
        assert w2 == w1 + 1

    def test_multiplicative_decrease(self):
        cca = AIMD(beta=Fraction(1, 2), delay_threshold=Fraction(2))
        cca.initial_cwnd()
        w1 = cca.on_rtt(1, Fraction(1), Fraction(1))
        w2 = cca.on_rtt(2, Fraction(2), Fraction(5))  # delay signal
        assert w2 == w1 / 2

    def test_floor(self):
        cca = AIMD(min_cwnd=Fraction(1, 4))
        cca.initial_cwnd()
        for _ in range(20):
            w = cca.on_rtt(1, Fraction(0), Fraction(10))
        assert w == Fraction(1, 4)


class TestCubicLike:
    def test_grows_without_congestion(self):
        cca = CubicLike()
        cca.initial_cwnd()
        ws = [cca.on_rtt(t, Fraction(t), Fraction(1)) for t in range(1, 15)]
        assert ws[-1] > ws[0]

    def test_backoff_on_delay(self):
        cca = CubicLike(beta=Fraction(7, 10))
        cca.initial_cwnd()
        for t in range(1, 10):
            w = cca.on_rtt(t, Fraction(t), Fraction(1))
        w_after = cca.on_rtt(10, Fraction(10), Fraction(5))
        assert w_after < w

    def test_floor_respected(self):
        cca = CubicLike(min_cwnd=Fraction(1, 10))
        cca.initial_cwnd()
        for t in range(1, 30):
            w = cca.on_rtt(t, Fraction(0), Fraction(10))
            assert w >= Fraction(1, 10)


class TestTemplateCCA:
    def test_name_includes_rule(self):
        cca = TemplateCCA(rocc())
        assert "ack(t-1)" in cca.name

    def test_floor_applied(self):
        from repro.core import constant_cwnd

        cca = TemplateCCA(constant_cwnd(-2), cwnd_min=Fraction(1, 10))
        cca.reset()
        assert cca.on_rtt(1, Fraction(0), Fraction(1)) == Fraction(1, 10)

    @given(acks=st.lists(
        st.fractions(min_value=0, max_value=Fraction(3), max_denominator=4),
        min_size=4, max_size=12))
    @settings(max_examples=30, deadline=None)
    def test_rocc_template_equals_handwritten(self, acks):
        """On identical cumulative ack sequences, the template adapter for
        the RoCC rule and the hand-written RoCC produce the same windows
        (once both have full history)."""
        t_cca = TemplateCCA(rocc(), cwnd_min=Fraction(1, 10))
        h_cca = RoCC(increment=Fraction(1), min_cwnd=Fraction(1, 10))
        t_cca.reset()
        h_cca.reset()
        cum = Fraction(0)
        t_ws, h_ws = [], []
        for i, inc in enumerate(acks, start=1):
            cum += inc
            t_ws.append(t_cca.on_rtt(i, cum, Fraction(1)))
            h_ws.append(h_cca.on_rtt(i, cum, Fraction(1)))
        # after warmup (3 RTTs of history) the rules coincide:
        # both are acked-in-last-2-RTTs + 1
        for tw, hw in zip(t_ws[3:], h_ws[3:]):
            assert tw == hw
