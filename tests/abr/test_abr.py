"""ABR verifier tests (paper §5)."""

from fractions import Fraction

import pytest

from repro.abr import AbrConfig, AbrPolicy, AbrVerifier, synthesize_threshold


@pytest.fixture(scope="module")
def cfg():
    return AbrConfig(n_chunks=5, startup_delay=2,
                     size_low=Fraction(1, 2), size_high=Fraction(3, 2))


@pytest.fixture(scope="module")
def verifier(cfg):
    return AbrVerifier(cfg)


class TestConfig:
    def test_trace_length(self, cfg):
        assert cfg.T == cfg.startup_delay + cfg.n_chunks

    def test_low_quality_must_be_sustainable(self):
        with pytest.raises(ValueError):
            AbrConfig(size_low=Fraction(2), size_high=Fraction(3))

    def test_sizes_ordered(self):
        with pytest.raises(ValueError):
            AbrConfig(size_low=Fraction(1), size_high=Fraction(1, 2))


class TestVerifier:
    def test_greedy_policy_stalls(self, cfg, verifier):
        """Always-high-quality exceeds link rate and must stall on some
        admissible trace."""
        trace = verifier.find_counterexample(AbrPolicy(Fraction(0)))
        assert trace is not None
        assert trace.stalled_chunk is not None

    def test_conservative_policy_verified(self, cfg, verifier):
        """Always-low-quality (size <= C) never stalls: provable."""
        assert verifier.verify(AbrPolicy(Fraction(1000)))

    def test_counterexample_trace_admissible(self, cfg, verifier):
        trace = verifier.find_counterexample(AbrPolicy(Fraction(0)))
        S = trace.S
        assert S[0] == 0
        for t in range(1, cfg.T + 1):
            assert S[t] >= S[t - 1]
            assert S[t] - S[t - 1] <= cfg.C
            assert S[t] <= cfg.C * t
            back = t - cfg.jitter
            if back >= 0:
                assert S[t] >= cfg.C * back

    def test_counterexample_qualities_follow_policy(self, cfg, verifier):
        trace = verifier.find_counterexample(AbrPolicy(Fraction(0)))
        # theta = 0: every chunk with non-negative lead is high quality
        assert all(q in (0, 1) for q in trace.qualities)

    def test_quality_floor_makes_it_harder(self, cfg, verifier):
        """Policies meeting a quality floor are a subset of stall-free
        policies."""
        theta = Fraction(1000)
        assert verifier.verify(AbrPolicy(theta))
        # demanding all chunks at high quality with huge theta must fail
        assert not verifier.verify(AbrPolicy(theta), min_high_chunks=cfg.n_chunks)


class TestSynthesis:
    def test_synthesized_threshold_verifies(self, cfg, verifier):
        policy = synthesize_threshold(cfg)
        assert policy is not None
        assert verifier.verify(policy)

    def test_threshold_monotone(self, cfg, verifier):
        """Anything above a verified threshold also verifies."""
        policy = synthesize_threshold(cfg)
        assert verifier.verify(AbrPolicy(policy.theta + 1))

    def test_with_quality_floor(self, cfg, verifier):
        policy = synthesize_threshold(cfg, min_high_chunks=1)
        if policy is not None:
            assert verifier.verify(policy, min_high_chunks=1)
