"""Shared fixtures: small UNSAT queries with certified proofs."""

import pytest

from repro.smt import And, Bool, CheckOptions, Implies, Not, Or, Real, Solver, unsat

PROOF_OPTS = CheckOptions(produce_proofs=True)


def _unsat_solver() -> Solver:
    """A proof-producing solver on a small UNSAT mixed query.

    The query needs boolean structure (so the proof contains RUP-checked
    learned/derived clauses) and theory conflicts (so it contains Farkas
    lemmas) — every mutation test below targets one of those step kinds.
    """
    x, y, z = Real("tx"), Real("ty"), Real("tz")
    p, q = Bool("tp"), Bool("tq")
    s = Solver(produce_proofs=True)
    s.add(
        Or(p, q),
        Implies(p, And(x >= 2, y >= 1)),
        Implies(q, And(x >= 3, y >= 0)),
        Implies(Not(p), z >= 1),
        x + y <= 2,
        z >= 0,
    )
    return s


@pytest.fixture
def certificate():
    s = _unsat_solver()
    assert s.check(PROOF_OPTS) is unsat
    return s.certificate()
