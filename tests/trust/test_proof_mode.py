"""Proof-producing solves: certificates exist, check, and survive push/pop."""

from fractions import Fraction

import pytest

from repro.ccac import ModelConfig
from repro.core import CcacVerifier, constant_cwnd, rocc
from repro.smt import CheckOptions, Real, Solver, SolverSession, sat, unsat
from repro.trust import ProofError, certify_certificate, check_certificate

from .conftest import PROOF_OPTS, _unsat_solver


class TestCertificateLifecycle:
    def test_unsat_certificate_checks(self, certificate):
        report = check_certificate(certificate)
        assert report.steps == len(certificate.steps)
        assert report.theory_lemmas > 0  # the query forces theory conflicts
        assert report.rup_additions > 0

    def test_certify_summary_counters(self, certificate):
        summary = certify_certificate(certificate)
        assert summary.checked
        assert summary.steps == len(certificate.steps)
        assert summary.theory_lemmas > 0

    def test_sat_result_has_no_certificate(self):
        x = Real("tm_x")
        s = Solver(produce_proofs=True)
        s.add(x >= 1)
        assert s.check(PROOF_OPTS) is sat
        with pytest.raises(ProofError):
            s.certificate()

    def test_arming_a_used_solver_is_refused(self):
        x = Real("tm_y")
        s = Solver()
        s.add(x >= 1)
        assert s.check() is sat
        # the existing clauses were never logged; a late proof would lie
        with pytest.raises(ProofError):
            s.check(PROOF_OPTS)

    def test_lazy_arming_on_pristine_solver(self):
        x = Real("tm_z")
        s = Solver()  # proofs not requested at construction
        assert s.check(PROOF_OPTS) is sat  # arms the pristine solver
        s.add(x >= 1, x <= 0)
        assert s.check(PROOF_OPTS) is unsat
        check_certificate(s.certificate())


class TestPushPop:
    def test_certificate_after_pop_covers_disabled_frames(self):
        x = Real("pp_x")
        s = Solver(produce_proofs=True)
        s.add(x >= 0)
        s.push()
        s.add(x >= 10)
        assert s.check(PROOF_OPTS) is sat
        s.pop()
        s.push()
        s.add(x <= -1)
        assert s.check(PROOF_OPTS) is unsat
        cert = s.certificate()
        assert cert.disabled_guards  # one popped frame
        check_certificate(cert)

    def test_session_skips_cache_in_proof_mode(self, tmp_path):
        x = Real("pp_y")
        base = (x >= 1, x <= 0)
        from repro.engine import QueryCache

        cache = QueryCache(str(tmp_path))
        plain = SolverSession(base, cache=cache)
        assert plain.check() is unsat  # populates the cache
        proving = SolverSession(base, cache=cache, produce_proofs=True)
        assert proving.check() is unsat  # must re-solve: cached unsat has no proof
        check_certificate(proving.certificate())


class TestVerifierCertify:
    def test_verified_candidate_is_certified(self, fast_cfg):
        verifier = CcacVerifier(fast_cfg, certify=True)
        res = verifier.find_counterexample(rocc(fast_cfg.history))
        assert res.verified and res.certified
        assert res.certificate.checked
        assert verifier.certified == 1

    def test_refuted_candidate_is_not_certified(self, fast_cfg):
        verifier = CcacVerifier(fast_cfg, certify=True)
        res = verifier.find_counterexample(
            constant_cwnd(Fraction(1), fast_cfg.history)
        )
        assert not res.verified and res.counterexample is not None
        assert not res.certified and res.certificate is None

    def test_worst_case_verified_candidate_is_certified(self, fast_cfg):
        verifier = CcacVerifier(fast_cfg, certify=True)
        res = verifier.find_counterexample(rocc(fast_cfg.history), worst_case=True)
        assert res.verified and res.certified

    def test_incremental_verifier_certifies(self, fast_cfg):
        verifier = CcacVerifier(fast_cfg, certify=True, incremental=True)
        res = verifier.find_counterexample(rocc(fast_cfg.history))
        assert res.verified and res.certified


class TestDeterminism:
    def test_same_query_same_proof(self):
        a = _unsat_solver()
        b = _unsat_solver()
        assert a.check(PROOF_OPTS) is unsat
        assert b.check(PROOF_OPTS) is unsat
        assert a.certificate().steps == b.certificate().steps
