"""The checker must reject tampered certificates — one bit of damage, one
:class:`SoundnessError`.  These tests are the trust story's teeth: if any
of them passes silently the checker is rubber-stamping."""

import dataclasses
from fractions import Fraction

import pytest

from repro.runtime.errors import SoundnessError
from repro.trust import NeutralAtom, check_certificate


def _with_steps(cert, steps):
    return dataclasses.replace(cert, steps=tuple(steps))


def _find(cert, kind):
    for i, step in enumerate(cert.steps):
        if step[0] == kind:
            return i, step
    pytest.skip(f"certificate has no {kind!r} step")


class TestClauseTampering:
    def test_mutated_input_clause_is_rejected(self, certificate):
        i, step = _find(certificate, "input")
        # claim a clause the query never asserted
        lits = tuple(-l for l in step[1]) or (1,)
        bad = _with_steps(
            certificate,
            certificate.steps[:i] + (("input", lits),) + certificate.steps[i + 1:],
        )
        with pytest.raises(SoundnessError):
            check_certificate(bad)

    def test_foreign_input_clause_is_rejected(self, certificate):
        # a unit clause on a negated variable: the fixture query asserts
        # no negated-literal formula at the top, so no frame justifies it
        foreign = ("input", (-1,))
        assert foreign[1] not in {s[1] for s in certificate.steps if s[0] == "input"}
        bad = _with_steps(certificate, (foreign,) + certificate.steps)
        with pytest.raises(SoundnessError):
            check_certificate(bad)

    def test_weakened_learned_clause_is_rejected(self, certificate):
        # dropping every literal claims the empty clause outright;
        # RUP must refuse unless propagation really closes the gap
        i, step = _find(certificate, "learn")
        bad = _with_steps(
            certificate,
            certificate.steps[:i] + (("learn", ()),) + certificate.steps[i + 1:],
        )
        with pytest.raises(SoundnessError):
            check_certificate(bad)

    def test_truncated_proof_is_rejected(self, certificate):
        # without its tail the proof never reaches the root conflict
        bad = _with_steps(certificate, certificate.steps[: len(certificate.steps) // 2])
        with pytest.raises(SoundnessError):
            check_certificate(bad)

    def test_empty_proof_is_rejected(self, certificate):
        with pytest.raises(SoundnessError):
            check_certificate(_with_steps(certificate, ()))


class TestFarkasTampering:
    def test_scaled_coefficient_is_rejected(self, certificate):
        i, step = _find(certificate, "theory")
        farkas = step[2]
        assert len(farkas) >= 2
        lit0, coeff0 = farkas[0]
        bad_farkas = ((lit0, coeff0 * 7),) + tuple(farkas[1:])
        bad = _with_steps(
            certificate,
            certificate.steps[:i]
            + (("theory", step[1], bad_farkas),)
            + certificate.steps[i + 1:],
        )
        with pytest.raises(SoundnessError):
            check_certificate(bad)

    def test_negative_multiplier_is_rejected(self, certificate):
        i, step = _find(certificate, "theory")
        farkas = step[2]
        lit0, coeff0 = farkas[0]
        bad_farkas = ((lit0, -coeff0),) + tuple(farkas[1:])
        bad = _with_steps(
            certificate,
            certificate.steps[:i]
            + (("theory", step[1], bad_farkas),)
            + certificate.steps[i + 1:],
        )
        with pytest.raises(SoundnessError):
            check_certificate(bad)

    def test_dropped_multiplier_is_rejected(self, certificate):
        i, step = _find(certificate, "theory")
        farkas = step[2]
        assert len(farkas) >= 2
        bad = _with_steps(
            certificate,
            certificate.steps[:i]
            + (("theory", step[1], tuple(farkas[1:])),)
            + certificate.steps[i + 1:],
        )
        with pytest.raises(SoundnessError):
            check_certificate(bad)

    def test_missing_farkas_is_rejected(self, certificate):
        i, step = _find(certificate, "theory")
        bad = _with_steps(
            certificate,
            certificate.steps[:i]
            + (("theory", step[1], ()),)
            + certificate.steps[i + 1:],
        )
        with pytest.raises(SoundnessError):
            check_certificate(bad)


class TestTableTampering:
    def test_shifted_atom_bound_is_rejected(self, certificate):
        var, atom = next(iter(certificate.atoms.items()))
        atoms = dict(certificate.atoms)
        atoms[var] = NeutralAtom(atom.coeffs, atom.bound + Fraction(1), atom.strict)
        bad = dataclasses.replace(certificate, atoms=atoms)
        with pytest.raises(SoundnessError):
            check_certificate(bad)

    def test_forged_assumption_is_rejected(self, certificate):
        bad = dataclasses.replace(
            certificate, assumptions=certificate.assumptions + (certificate.nvars,)
        )
        with pytest.raises(SoundnessError):
            check_certificate(bad)

    def test_out_of_range_variable_is_rejected(self, certificate):
        bad = _with_steps(
            certificate, (("derived", (certificate.nvars + 5,)),) + certificate.steps
        )
        with pytest.raises(SoundnessError):
            check_certificate(bad)
