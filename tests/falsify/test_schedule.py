"""Trace schedules: validation, execution shape, serialization, space."""

import random
from fractions import Fraction

import pytest

from repro.ccac import ModelConfig
from repro.falsify import (
    ScheduleSpace,
    Segment,
    TraceSchedule,
    constant_schedule,
    run_schedule,
)
from repro.falsify.schedule import SEGMENT_POLICIES


class TestSegment:
    def test_validation(self):
        with pytest.raises(ValueError):
            Segment(ticks=0, rate=Fraction(1))
        with pytest.raises(ValueError):
            Segment(ticks=5, rate=Fraction(-1))
        with pytest.raises(ValueError):
            Segment(ticks=5, rate=Fraction(1), policy="random")
        with pytest.raises(ValueError):
            Segment(ticks=5, rate=Fraction(1), jitter=-1)

    def test_round_trip_exact(self):
        seg = Segment(ticks=7, rate=Fraction(1, 3), policy="lazy", jitter=2)
        assert Segment.from_dict(seg.to_dict()) == seg


class TestTraceSchedule:
    def test_needs_a_segment(self):
        with pytest.raises(ValueError):
            TraceSchedule(segments=())

    def test_piecewise_dispatch(self):
        sched = TraceSchedule((
            Segment(3, Fraction(2), "ideal", 0),
            Segment(2, Fraction(1, 2), "lazy", 1),
        ))
        rate, policy, jitter = sched.rate_fn(), sched.policy_fn(), sched.jitter_fn()
        # ticks are 1-based in the simulator
        assert [rate(t) for t in (1, 3, 4, 5)] == [
            Fraction(2), Fraction(2), Fraction(1, 2), Fraction(1, 2),
        ]
        assert policy(1) == "ideal" and policy(4) == "lazy"
        assert jitter(3) == 0 and jitter(4) == 1
        # past the end, the last segment persists
        assert rate(99) == Fraction(1, 2) and policy(99) == "lazy"

    def test_round_trip_exact(self):
        sched = TraceSchedule(
            (Segment(4, Fraction(3, 7), "max_waste", 2), Segment(9, Fraction(0))),
            initial_queue=Fraction(5, 2),
        )
        assert TraceSchedule.from_dict(sched.to_dict()) == sched
        assert sched.key() == TraceSchedule.from_dict(sched.to_dict()).key()

    def test_in_fragment_classification(self):
        cfg = ModelConfig()
        assert constant_schedule(20, rate=cfg.C).in_fragment(cfg)
        assert not constant_schedule(20, rate=cfg.C * 2).in_fragment(cfg)
        assert not constant_schedule(20, rate=cfg.C, jitter=cfg.jitter + 1).in_fragment(cfg)
        assert not constant_schedule(
            20, rate=cfg.C, initial_queue=cfg.initial_queue_max + 1
        ).in_fragment(cfg)

    def test_run_schedule_executes(self):
        from repro.ccas import RoCC

        sched = constant_schedule(30, rate=Fraction(1), policy="lazy")
        result = run_schedule(RoCC(), sched)
        assert result.ticks == 30
        assert len(result.S) == 31
        assert result.utilization(warmup=10) > Fraction(1, 2)


class TestScheduleSpace:
    def test_from_model_is_in_fragment(self):
        cfg = ModelConfig()
        space = ScheduleSpace.from_model(cfg)
        rng = random.Random(3)
        for _ in range(50):
            assert space.random_schedule(rng).in_fragment(cfg)

    def test_beyond_fragment_widens(self):
        cfg = ModelConfig()
        space = ScheduleSpace.beyond_fragment(cfg)
        assert Fraction(0) in space.rates          # outages
        assert 2 * cfg.C in space.rates            # rate steps
        assert max(space.jitters) > cfg.jitter     # jitter bursts

    def test_random_schedule_respects_bounds(self):
        space = ScheduleSpace.beyond_fragment(ModelConfig(), ticks=60)
        rng = random.Random(11)
        for _ in range(100):
            sched = space.random_schedule(rng)
            assert space.min_ticks <= sched.ticks <= space.max_ticks
            assert 1 <= len(sched.segments) <= space.max_segments
            for seg in sched.segments:
                assert seg.policy in SEGMENT_POLICIES

    def test_random_schedule_is_seed_deterministic(self):
        space = ScheduleSpace.beyond_fragment(ModelConfig())
        a = [space.random_schedule(random.Random(7)).key() for _ in range(1)]
        b = [space.random_schedule(random.Random(7)).key() for _ in range(1)]
        assert a == b
