"""The genetic searcher: determinism, effectiveness, zero false alarms."""

import random
from fractions import Fraction

import pytest

from repro.ccac import ModelConfig
from repro.ccas import AIMD, RoCC
from repro.falsify import (
    FalsifyBudget,
    PropertyOracle,
    ScheduleSpace,
    TraceSearch,
    replay_schedule,
)


def _search(cca_factory, seed=0, budget=None, cfg=None, covered_only=True):
    cfg = cfg or ModelConfig()
    return TraceSearch(
        cca_factory,
        PropertyOracle(cfg, covered_only=covered_only),
        ScheduleSpace.from_model(cfg),
        budget or FalsifyBudget(evaluations=150, population=8),
        seed=seed,
    )


def _fingerprint(result):
    return (
        result.attempts,
        result.generations,
        result.best_margin,
        None if result.best_schedule is None else result.best_schedule.key(),
        [
            (v.generation, v.index, v.schedule.key(), v.verdict.margin)
            for v in result.violations
        ],
    )


class TestDeterminism:
    def test_bit_for_bit_reproducible(self):
        a = _search(lambda: AIMD(delay_threshold=Fraction(8)), seed=3).run()
        b = _search(lambda: AIMD(delay_threshold=Fraction(8)), seed=3).run()
        assert _fingerprint(a) == _fingerprint(b)

    def test_different_seeds_diverge(self):
        a = _search(RoCC, seed=0).run()
        b = _search(RoCC, seed=1).run()
        # exact margins agree at 0 for a verified CCA; the explored
        # schedules must still differ
        akey = a.best_schedule and a.best_schedule.key()
        bkey = b.best_schedule and b.best_schedule.key()
        assert akey != bkey

    def test_replay_schedule_finds_recorded_violation(self):
        cfg = ModelConfig()
        factory = lambda: AIMD(delay_threshold=Fraction(8))
        budget = FalsifyBudget(evaluations=400, population=16)
        result = _search(factory, seed=0, budget=budget).run()
        assert not result.survived
        v = result.violations[0]
        replayed = replay_schedule(
            factory,
            PropertyOracle(cfg),
            ScheduleSpace.from_model(cfg),
            budget,
            seed=v.seed,
            generation=v.generation,
            index=v.index,
        )
        assert replayed is not None
        assert replayed.schedule.key() == v.schedule.key()
        assert replayed.verdict.margin == v.verdict.margin


class TestEffectiveness:
    def test_weakened_aimd_falsified_in_fragment(self):
        """The acceptance demo: aimd with a delay threshold of 8 lets the
        queue blow past the property bound; the search must find it."""
        result = _search(
            lambda: AIMD(delay_threshold=Fraction(8)),
            budget=FalsifyBudget(evaluations=400, population=16),
        ).run()
        assert not result.survived
        assert result.best_margin < 0
        v = result.violations[0]
        assert v.verdict.violated and v.verdict.witness is not None

    def test_verified_rocc_survives(self):
        """Zero false alarms: RoCC is SMT-verified, so no in-fragment
        schedule may violate — and the margin floor is exactly 0 (the
        proof boundary is tight)."""
        result = _search(RoCC, budget=FalsifyBudget(evaluations=200)).run()
        assert result.survived
        assert result.violations == []
        assert result.best_margin >= 0

    def test_budget_respected(self):
        result = _search(RoCC, budget=FalsifyBudget(evaluations=25)).run()
        assert result.attempts == 25

    def test_stop_after_halts_early(self):
        budget = FalsifyBudget(evaluations=400, population=16, stop_after=1)
        result = _search(
            lambda: AIMD(delay_threshold=Fraction(8)), budget=budget
        ).run()
        assert len(result.violations) == 1
        assert result.attempts < budget.evaluations


class TestOperators:
    def test_mutation_stays_in_space(self):
        cfg = ModelConfig()
        space = ScheduleSpace.from_model(cfg)
        search = _search(RoCC)
        rng = random.Random(5)
        schedule = space.random_schedule(rng)
        for _ in range(200):
            schedule = search._mutate(rng, schedule)
            assert space.min_ticks <= schedule.ticks <= space.max_ticks
            assert len(schedule.segments) <= space.max_segments
            for seg in schedule.segments:
                assert seg.rate in space.rates
                assert seg.jitter in space.jitters
            assert schedule.initial_queue in space.initial_queues
            assert schedule.in_fragment(cfg)

    def test_crossover_stays_in_space(self):
        cfg = ModelConfig()
        space = ScheduleSpace.from_model(cfg)
        search = _search(RoCC)
        rng = random.Random(6)
        for _ in range(100):
            a = space.random_schedule(rng)
            b = space.random_schedule(rng)
            child = search._crossover(rng, a, b)
            assert space.min_ticks <= child.ticks <= space.max_ticks
            assert len(child.segments) <= space.max_segments
            assert child.in_fragment(cfg)
