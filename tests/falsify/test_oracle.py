"""The property oracle: windowed relaxed property + proof coverage."""

from fractions import Fraction

from repro.ccac import ModelConfig
from repro.ccas import AIMD, ConstantCwnd, RoCC
from repro.falsify import PropertyOracle, constant_schedule, run_schedule


class TestWindowedProperty:
    def test_rocc_holds_on_quiet_link(self):
        cfg = ModelConfig()
        oracle = PropertyOracle(cfg)
        verdict = oracle.evaluate(RoCC(), constant_schedule(60, rate=cfg.C))
        assert not verdict.violated
        assert verdict.margin >= 0
        assert verdict.covered_windows > 0

    def test_weakened_aimd_violates(self):
        """AIMD with delay_threshold 8 lets the queue climb past the
        property's bound of 4 while still *increasing* cwnd — exactly
        the violation of (queue bounded OR cwnd decreased)."""
        cfg = ModelConfig()
        oracle = PropertyOracle(cfg)
        verdict = oracle.evaluate(
            AIMD(delay_threshold=Fraction(8)),
            constant_schedule(40, rate=cfg.C, jitter=0),
        )
        assert verdict.violated
        assert verdict.margin < 0
        assert verdict.witness.max_queue > cfg.delay_thresh * cfg.C * cfg.D

    def test_huge_constant_window_uncovered_not_violating(self):
        """ConstantCwnd(10) pins a 9-unit standing queue — but a 10-BDP
        window never re-enters the model's initial box (cwnd > 8), so no
        window is covered and no disagreement can be raised."""
        cfg = ModelConfig()
        oracle = PropertyOracle(cfg)
        verdict = oracle.evaluate(
            ConstantCwnd(Fraction(10)), constant_schedule(40, rate=cfg.C)
        )
        assert verdict.covered_windows == 0
        assert not verdict.violated
        assert verdict.margin <= 0  # advisory fallback margin still orders

    def test_margin_sign_matches_verdict(self):
        cfg = ModelConfig()
        oracle = PropertyOracle(cfg)
        ok = oracle.evaluate(RoCC(), constant_schedule(50, rate=cfg.C, policy="lazy"))
        assert (ok.margin < 0) == ok.violated


class TestCoverage:
    def test_boot_windows_never_covered(self):
        cfg = ModelConfig()
        oracle = PropertyOracle(cfg)
        result = run_schedule(RoCC(), constant_schedule(40, rate=cfg.C))
        for start in range(cfg.history):
            assert not oracle._covered(result, start)

    def test_steady_full_pipe_windows_covered(self):
        """With the pipe kept full on an ideal link, the token bucket is
        tight and RoCC's cwnd stays in the box: steady windows must be
        covered, otherwise the falsifier would be blind in-fragment."""
        cfg = ModelConfig()
        oracle = PropertyOracle(cfg)
        result = run_schedule(RoCC(), constant_schedule(60, rate=cfg.C))
        assert any(
            oracle._covered(result, start)
            for start in range(cfg.history, 60 - cfg.T)
        )

    def test_banked_tokens_break_coverage(self):
        """A sender that cannot fill a double-rate link leaves unused
        tokens; shifted windows could then burst beyond a fresh token
        bucket, so the proof does not cover them."""
        cfg = ModelConfig()
        oracle = PropertyOracle(cfg)
        result = run_schedule(
            ConstantCwnd(Fraction(1)), constant_schedule(40, rate=2 * cfg.C)
        )
        assert all(
            not oracle._covered(result, start)
            for start in range(cfg.history, 40 - cfg.T)
        )

    def test_oversized_queue_breaks_coverage(self):
        cfg = ModelConfig(initial_queue_max=Fraction(2))
        oracle = PropertyOracle(cfg)
        # standing queue of 6 with a 7-unit window: queue stays > 2
        result = run_schedule(
            ConstantCwnd(Fraction(7)),
            constant_schedule(40, rate=cfg.C, initial_queue=Fraction(6)),
        )
        assert all(
            not oracle._covered(result, start)
            for start in range(cfg.history, 40 - cfg.T)
        )

    def test_covered_only_false_counts_every_window(self):
        cfg = ModelConfig()
        schedule = constant_schedule(40, rate=cfg.C)
        strict = PropertyOracle(cfg, covered_only=True).evaluate(RoCC(), schedule)
        loose = PropertyOracle(cfg, covered_only=False).evaluate(RoCC(), schedule)
        assert loose.windows == strict.windows
        assert loose.margin <= strict.margin
