"""Minimization + corpus case records."""

from fractions import Fraction

import pytest

from repro.ccac import ModelConfig
from repro.ccas import AIMD
from repro.falsify import (
    CorpusCase,
    PropertyOracle,
    Segment,
    TraceSchedule,
    constant_schedule,
    load_cases,
    make_case,
    minimize_schedule,
    write_case,
)


class TestMinimizeSchedule:
    def test_rejects_non_violating_input(self):
        with pytest.raises(ValueError):
            minimize_schedule(lambda s: False, constant_schedule(20))

    def test_shrinks_to_local_minimum(self):
        """Synthetic predicate: violates iff total duration >= 10.  The
        minimizer must land exactly on a single 10-tick segment."""
        def violates(s: TraceSchedule) -> bool:
            return s.ticks >= 10

        big = TraceSchedule(
            (
                Segment(25, Fraction(1), "lazy", 2),
                Segment(30, Fraction(1), "max_waste", 0),
            ),
            initial_queue=Fraction(4),
        )
        small = minimize_schedule(violates, big)
        assert violates(small)
        assert small.ticks == 10
        assert len(small.segments) == 1
        assert small.initial_queue == 0
        assert small.segments[0].policy == "ideal"

    def test_real_violation_shrinks_and_stays_violating(self):
        cfg = ModelConfig()
        oracle = PropertyOracle(cfg)

        def violates(s: TraceSchedule) -> bool:
            return oracle.evaluate(AIMD(delay_threshold=Fraction(8)), s).violated

        messy = TraceSchedule(
            (
                Segment(30, Fraction(1), "ideal", 1),
                Segment(40, Fraction(1), "ideal", 0),
            ),
            initial_queue=Fraction(4),
        )
        assert violates(messy)
        minimized = minimize_schedule(violates, messy)
        assert violates(minimized)
        assert minimized.ticks < messy.ticks
        assert minimized.initial_queue == 0

    def test_respects_check_budget(self):
        calls = 0

        def violates(s: TraceSchedule) -> bool:
            nonlocal calls
            calls += 1
            return True

        minimize_schedule(violates, constant_schedule(100), max_checks=10)
        # the seed check plus at most max_checks candidate probes
        assert calls <= 11


class TestCorpusCase:
    def _case(self):
        # the CLI's default window (T=7): an 11-tick run has exactly one
        # covered window (start=4), matching the committed demo case
        cfg = ModelConfig(T=7)
        oracle = PropertyOracle(cfg)
        schedule = constant_schedule(11, rate=cfg.C, jitter=0)
        verdict = oracle.evaluate(AIMD(delay_threshold=Fraction(8)), schedule)
        assert verdict.violated
        return make_case(
            "aimd:8", cfg, schedule, verdict,
            provenance={"seed": 7, "generation": 2, "index": 5,
                        "origin": "falsified"},
        )

    def test_auto_name_carries_provenance(self):
        case = self._case()
        assert case.name == "aimd-8-s7g2i5"

    def test_round_trip_through_disk(self, tmp_path):
        case = self._case()
        path = write_case(case, tmp_path)
        assert path.name == "aimd-8-s7g2i5.json"
        loaded = load_cases(tmp_path)
        assert len(loaded) == 1
        assert loaded[0] == case

    def test_model_config_and_schedule_rebuild_exactly(self):
        case = self._case()
        cfg = case.model_config()
        assert cfg == ModelConfig(T=7)
        assert case.trace_schedule() == constant_schedule(
            11, rate=Fraction(1), jitter=0
        )

    def test_covered_only_tracks_origin(self):
        case = self._case()
        assert case.covered_only
        gap = CorpusCase(
            name=case.name, cca=case.cca, cfg=case.cfg,
            schedule=case.schedule,
            provenance={**case.provenance, "origin": "model-gap"},
            verdict=case.verdict,
        )
        assert not gap.covered_only

    def test_load_rejects_unknown_schema(self, tmp_path):
        case = self._case()
        path = write_case(case, tmp_path)
        data = path.read_text().replace('"schema": 1', '"schema": 99')
        path.write_text(data)
        with pytest.raises(ValueError):
            load_cases(tmp_path)

    def test_load_empty_dir(self, tmp_path):
        assert load_cases(tmp_path / "nope") == []
