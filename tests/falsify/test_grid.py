"""Cross-validation grids: worker fan-out parity, manifests."""

from fractions import Fraction

import pytest

from repro.ccac import ModelConfig
from repro.falsify import ExperimentManifest, GridSpec, run_grid
from repro.falsify.grid import GridPoint

pytestmark = pytest.mark.falsify

SMALL = GridSpec(
    rates=(Fraction(1, 2), Fraction(1)),
    jitters=(0, 1),
    policies=("ideal", "lazy"),
    initial_queues=(Fraction(0),),
    ticks=30,
)


class TestGridSpec:
    def test_points_cover_the_product(self):
        points = SMALL.points()
        assert len(points) == 2 * 2 * 2 * 1
        assert len(set(points)) == len(points)

    def test_from_model_brackets_the_operating_point(self):
        cfg = ModelConfig()
        spec = GridSpec.from_model(cfg)
        assert Fraction(cfg.C) in spec.rates
        assert 2 * cfg.C in spec.rates
        assert max(spec.jitters) > cfg.jitter

    def test_point_round_trip(self):
        point = GridPoint(Fraction(3, 2), 2, "lazy", Fraction(4))
        assert GridPoint.from_dict(point.to_dict()) == point
        lossy = GridPoint(Fraction(1), 1, "ideal", Fraction(0),
                          buffer=Fraction(13, 7))
        assert GridPoint.from_dict(lossy.to_dict()) == lossy
        assert "buffer" not in point.to_dict()  # lossless shape unchanged

    def test_buffers_extend_the_environment_axis(self):
        cfg = ModelConfig()
        base = GridSpec.from_model(cfg)
        swept = GridSpec.from_model(cfg, buffers=(2, 8))
        assert swept.buffers == (None, Fraction(2), Fraction(8))
        assert len(swept.points()) == 3 * len(base.points())
        keys = {p.environment_key() for p in swept.points()}
        assert keys == {"lossless", "lossy:buffer=2,loss_thresh=1",
                        "lossy:buffer=8,loss_thresh=1"}


class TestRunGrid:
    def test_inline_matches_workers(self):
        """jobs=0 (in-process) and jobs=2 (forked chunks) must produce
        identical records — the fan-out is pure plumbing."""
        cfg = ModelConfig()
        inline = run_grid("rocc", cfg, SMALL, jobs=0)
        forked = run_grid("rocc", cfg, SMALL, jobs=2)
        assert inline.records == forked.records
        assert len(inline.records) == len(SMALL.points())

    def test_verified_rocc_has_no_violating_cells(self):
        cfg = ModelConfig()
        manifest = run_grid("rocc", cfg, GridSpec.from_model(cfg, ticks=40),
                            jobs=0)
        assert manifest.violations == []

    def test_weakened_aimd_grid_finds_violations(self):
        cfg = ModelConfig()
        manifest = run_grid("aimd:8", cfg, GridSpec.from_model(cfg, ticks=40),
                            jobs=0)
        bad = manifest.violations
        assert bad
        assert any(r["in_fragment"] for r in bad)

    def test_lossy_cells_narrow_coverage_to_buffered_windows(self):
        """A lossy cell only judges windows whose queue fits the buffer:
        an ample buffer matches the lossless verdict, a buffer below the
        CCA's steady queue leaves nothing to judge — never a spurious
        violation."""
        cfg = ModelConfig()
        spec = GridSpec(
            rates=(Fraction(1),), jitters=(0,), policies=("ideal",),
            initial_queues=(Fraction(0),),
            buffers=(None, Fraction(8), Fraction(1, 2)), ticks=30,
        )
        manifest = run_grid("rocc", cfg, spec, jobs=0)
        by_env = {r["environment"]: r for r in manifest.records}
        assert set(by_env) == {"lossless", "lossy:buffer=8,loss_thresh=1",
                               "lossy:buffer=1/2,loss_thresh=1"}
        ample = by_env["lossy:buffer=8,loss_thresh=1"]
        assert ample["covered_windows"] == \
            by_env["lossless"]["covered_windows"]
        assert by_env["lossy:buffer=1/2,loss_thresh=1"]["covered_windows"] == 0
        assert not any(r["violated"] for r in manifest.records)

    def test_manifest_round_trip(self, tmp_path):
        cfg = ModelConfig()
        path = tmp_path / "manifest.json"
        manifest = run_grid("rocc", cfg, SMALL, jobs=0, manifest_path=path)
        loaded = ExperimentManifest.load(path)
        assert loaded.records == manifest.records
        assert loaded.cca == "rocc"
        assert loaded.grid == SMALL.to_dict()
        assert "configs" in loaded.describe()
