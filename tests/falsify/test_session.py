"""Session verdict semantics: falsified / soundness / survived paths."""

from fractions import Fraction

import pytest

from repro.ccac import ModelConfig
from repro.ccas import AIMD, RoCC
from repro.cegis.interfaces import CegisStats
from repro.falsify import FalsifyBudget, falsify_cca, load_cases, resolve_cca
from repro.runtime.errors import SoundnessError

BUDGET = FalsifyBudget(evaluations=400, population=16)


class TestVerdictPaths:
    def test_falsified_path_writes_corpus(self, tmp_path):
        cfg = ModelConfig()
        report = falsify_cca(
            lambda: AIMD(delay_threshold=Fraction(8)), cfg,
            spec="aimd:8", budget=BUDGET, corpus_dir=tmp_path,
        )
        assert not report.survived
        assert report.minimized and report.corpus_paths
        cases = load_cases(tmp_path)
        assert len(cases) == len(report.corpus_paths)
        assert cases[0].provenance["origin"] == "falsified"
        assert "FALSIFIED" in report.describe()
        assert "minimized" in report.describe()

    def test_soundness_path_raises_and_records(self, tmp_path):
        """An in-fragment violation of a (claimed) verified CCA is a
        soundness incident: the case is committed, then the error flies."""
        cfg = ModelConfig()
        with pytest.raises(SoundnessError, match="aimd:8"):
            falsify_cca(
                lambda: AIMD(delay_threshold=Fraction(8)), cfg,
                spec="aimd:8", budget=BUDGET, verified=True,
                corpus_dir=tmp_path,
            )
        cases = load_cases(tmp_path)
        assert cases
        assert cases[0].provenance["origin"] == "soundness"

    def test_survived_path(self, tmp_path):
        cfg = ModelConfig()
        stats = CegisStats()
        report = falsify_cca(
            RoCC, cfg, spec="rocc",
            budget=FalsifyBudget(evaluations=150), verified=True,
            corpus_dir=tmp_path, stats=stats,
        )
        assert report.survived
        assert report.corpus_paths == []
        assert load_cases(tmp_path) == []
        assert stats.falsification_attempts == 150
        assert stats.falsification_survivals == 1

    def test_beyond_fragment_is_advisory(self, tmp_path):
        """RoCC beyond the fragment (outages, rate steps): any violation
        is a model-gap finding — no SoundnessError even with
        verified=True, origin recorded as model-gap."""
        cfg = ModelConfig()
        report = falsify_cca(
            RoCC, cfg, spec="rocc", budget=BUDGET, seed=1,
            in_fragment=False, verified=True, corpus_dir=tmp_path,
        )
        for case in load_cases(tmp_path):
            assert case.provenance["origin"] == "model-gap"
            assert not case.covered_only
        if not report.survived:
            assert "beyond-fragment finding" in report.describe()

    def test_stats_count_failed_hunts_as_non_survivals(self, tmp_path):
        cfg = ModelConfig()
        stats = CegisStats()
        falsify_cca(
            lambda: AIMD(delay_threshold=Fraction(8)), cfg,
            spec="aimd:8", budget=BUDGET, corpus_dir=tmp_path, stats=stats,
        )
        assert stats.falsification_attempts > 0
        assert stats.falsification_survivals == 0


class TestResolveCca:
    def test_known_specs(self):
        for spec, verifiable in (
            ("rocc", True), ("eq3", True), ("const:2", True),
            ("aimd", False), ("aimd:8", False), ("rocc-native", False),
        ):
            factory, smt_ok = resolve_cca(spec)
            assert smt_ok is verifiable
            assert factory() is not factory()  # fresh instance per call

    def test_unknown_spec(self):
        with pytest.raises(ValueError, match="unknown CCA spec"):
            resolve_cca("bbr")
