"""Tests for the scheduling-domain demonstration (§5)."""

from fractions import Fraction

import pytest

from repro.sched import SchedulingConfig, SchedulingVerifier


@pytest.fixture(scope="module")
def cfg():
    return SchedulingConfig(n_jobs=3, n_machines=2)


@pytest.fixture(scope="module")
def verifier(cfg):
    return SchedulingVerifier(cfg)


class TestConfig:
    def test_graham_ratio(self):
        assert SchedulingConfig(n_machines=2).graham_ratio == Fraction(3, 2)
        assert SchedulingConfig(n_jobs=4, n_machines=4).graham_ratio == Fraction(7, 4)

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            SchedulingConfig(n_jobs=0)


class TestGrahamBound:
    def test_bound_proved(self, cfg, verifier):
        """Graham's (2 - 1/m) guarantee holds for every workload: the
        negation is UNSAT."""
        result = verifier.verify_ratio(cfg.graham_ratio)
        assert result.verified
        assert result.witness is None

    def test_below_bound_refuted_with_witness(self, cfg, verifier):
        """Slightly below the bound, an adversarial workload exists (the
        classic two-small-jobs-then-a-long-one family)."""
        result = verifier.verify_ratio(Fraction(7, 5))
        assert not result.verified
        w = result.witness
        assert w is not None
        assert w.ratio > Fraction(7, 5)
        assert len(w.job_sizes) == cfg.n_jobs
        assert all(0 <= s <= cfg.max_job for s in w.job_sizes)

    def test_witness_respects_greedy_semantics(self, cfg, verifier):
        """Replay the witness: the recorded assignment must be a valid
        greedy run and reproduce the reported makespan."""
        result = verifier.verify_ratio(Fraction(13, 10))
        w = result.witness
        loads = [Fraction(0)] * cfg.n_machines
        for size, machine in zip(w.job_sizes, w.assignment):
            assert loads[machine] == min(loads), "not a least-loaded choice"
            loads[machine] += size
        assert max(loads) == w.makespan
        lb = max(max(w.job_sizes), sum(w.job_sizes) / cfg.n_machines)
        assert lb == w.lower_bound

    def test_bound_holds_for_four_jobs(self):
        cfg = SchedulingConfig(n_jobs=4, n_machines=2)
        assert SchedulingVerifier(cfg).verify_ratio(cfg.graham_ratio).verified

    def test_single_machine_trivial(self):
        """With one machine greedy IS optimal: ratio 1 verifies."""
        cfg = SchedulingConfig(n_jobs=3, n_machines=1)
        assert SchedulingVerifier(cfg).verify_ratio(Fraction(1)).verified

    def test_ratio_one_refuted_for_two_machines(self, verifier):
        """Greedy is not optimal for m >= 2."""
        assert not verifier.verify_ratio(Fraction(1)).verified


class TestTightRatio:
    def test_binary_search_finds_exact_constant(self, cfg, verifier):
        """For n=3, m=2 the worst case is the 1-1-2 instance: exactly
        ratio 3/2, so the tight provable ratio converges to 3/2."""
        tight = verifier.tight_ratio(precision=Fraction(1, 64))
        assert abs(tight - Fraction(3, 2)) <= Fraction(1, 64)

    def test_bad_bracket_rejected(self, cfg):
        v = SchedulingVerifier(cfg)
        with pytest.raises(ValueError):
            v.tight_ratio(hi=Fraction(1))
