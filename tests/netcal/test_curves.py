"""Network-calculus tests: curve evaluation, classic bounds, properties."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.netcal import (
    Curve,
    backlog_bound_rate_latency,
    constant_rate,
    delay_bound_rate_latency,
    horizontal_deviation,
    min_plus_convolve,
    rate_latency,
    token_bucket,
    vertical_deviation,
)

pos_fracs = st.fractions(min_value=Fraction(1, 4), max_value=Fraction(4), max_denominator=4)


class TestCurveEvaluation:
    def test_token_bucket(self):
        g = token_bucket(rate=2, burst=3)
        assert g(0) == 3
        assert g(1) == 5
        assert g(Fraction(1, 2)) == 4

    def test_rate_latency(self):
        b = rate_latency(rate=2, latency=3)
        assert b(0) == 0
        assert b(3) == 0
        assert b(5) == 4

    def test_constant_rate(self):
        c = constant_rate(3)
        assert c(2) == 6

    def test_negative_time_is_zero(self):
        assert rate_latency(1, 1)(-5) == 0

    def test_invalid_curves_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            Curve(points=((Fraction(1), Fraction(0)),), final_slope=Fraction(1))
        with pytest.raises(ValueError):
            Curve(
                points=((Fraction(0), Fraction(2)), (Fraction(1), Fraction(1))),
                final_slope=Fraction(0),
            )


class TestClassicBounds:
    def test_delay_bound_formula(self):
        """Token bucket (r, b) through rate-latency (R, T): d = T + b/R."""
        d = horizontal_deviation(token_bucket(Fraction(1, 2), 2), rate_latency(1, 1), 20)
        expected = delay_bound_rate_latency(Fraction(1, 2), 2, 1, 1)
        assert abs(d - expected) < Fraction(1, 1000)

    def test_backlog_bound_formula(self):
        v = vertical_deviation(token_bucket(Fraction(1, 2), 2), rate_latency(1, 1), 20)
        assert v == backlog_bound_rate_latency(Fraction(1, 2), 2, 1, 1)

    def test_unstable_raises(self):
        import pytest

        with pytest.raises(ValueError):
            delay_bound_rate_latency(2, 1, 1, 0)

    @given(r=pos_fracs, b=pos_fracs, T=pos_fracs)
    @settings(max_examples=25, deadline=None)
    def test_backlog_matches_closed_form(self, r, b, T):
        R = r + 1  # stable by construction
        v = vertical_deviation(token_bucket(r, b), rate_latency(R, T), 30)
        assert v == backlog_bound_rate_latency(r, b, R, T)


class TestConvolution:
    def test_convolution_of_rate_latencies(self):
        """beta_{R1,T1} conv beta_{R2,T2} = beta_{min(R1,R2), T1+T2}."""
        samples = min_plus_convolve(rate_latency(2, 1), rate_latency(3, 2), 10)
        expected = rate_latency(2, 3)
        for t, v in samples:
            assert v == expected(t)

    def test_convolution_dominated_by_operands(self):
        f, g = token_bucket(1, 1), rate_latency(2, 1)
        for t, v in min_plus_convolve(f, g, 8):
            assert v <= f(t) + g(0)
            assert v <= f(0) + g(t)

    def test_commutative_on_samples(self):
        f, g = token_bucket(1, 2), rate_latency(1, 1)
        s1 = dict(min_plus_convolve(f, g, 6))
        s2 = dict(min_plus_convolve(g, f, 6))
        for t in s1:
            assert s1[t] == s2[t]


class TestModelConnection:
    def test_service_envelope_brackets_simulated_link(self):
        """Every simulated link trace sits inside the waste-adjusted
        network-calculus envelope."""
        from repro.netcal import check_service_within_envelope
        from repro.sim import JitteryLink

        for policy in ("ideal", "lazy", "max_waste"):
            link = JitteryLink(policy=policy)
            A = Fraction(0)
            for i in range(25):
                A += Fraction(1, 2) if i % 3 else Fraction(2)
                link.step(A)
            errors = check_service_within_envelope(
                link.S_hist, link.W_hist, link.C, link.jitter
            )
            assert errors == []

    def test_utilization_lower_bound_formula(self):
        from repro.netcal import utilization_lower_bound

        assert utilization_lower_bound(1, 1, 1) == Fraction(1, 2)
        assert utilization_lower_bound(3, 1, 1) == Fraction(3, 4)

    def test_max_queue_bound(self):
        from repro.netcal import max_queue_bound

        assert max_queue_bound(3, 1, 1) == 4


class TestCurveSampling:
    def test_sample_xs_includes_breakpoints(self):
        c = rate_latency(1, 3)
        xs = c.sample_xs(10)
        assert Fraction(0) in xs and Fraction(3) in xs and Fraction(10) in xs

    def test_curve_is_nondecreasing_on_grid(self):
        c = token_bucket(Fraction(1, 2), 2)
        values = [c(Fraction(i, 4)) for i in range(0, 40)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_service_envelope_ordering(self):
        from repro.netcal import service_envelope

        lower, upper = service_envelope(1, 2)
        for i in range(0, 20):
            t = Fraction(i, 2)
            assert lower(t) <= upper(t)

    def test_convolution_with_zero_latency_identity(self):
        """beta_{R,0} conv beta_{R,T} = beta_{R,T}."""
        f = rate_latency(2, 0)
        g = rate_latency(2, 1)
        for t, v in min_plus_convolve(f, g, 6):
            assert v == g(t)

    def test_horizontal_deviation_zero_when_dominated(self):
        """If service is always >= arrival, the delay bound is ~0."""
        arrival = rate_latency(1, 2)  # starts late, slow
        service = rate_latency(2, 0)
        d = horizontal_deviation(arrival, service, 10)
        assert d <= Fraction(1, 1000)
