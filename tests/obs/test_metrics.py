"""Tests of the metrics registry and its wiring into the SMT solver."""

from repro.obs import MetricsRegistry, metrics
from repro.smt import Real, Solver, sat, unsat


class TestRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        reg.gauge("g").set(7)
        reg.histogram("h").observe(2.0)
        reg.histogram("h").observe(4.0)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 7
        h = snap["histograms"]["h"]
        assert h["count"] == 2 and h["total"] == 6.0
        assert h["mean"] == 3.0 and h["min"] == 2.0 and h["max"] == 4.0

    def test_reset_preserves_handles(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        c.inc(3)
        reg.reset()
        assert c.value == 0
        c.inc()  # the old handle still feeds the registry
        assert reg.snapshot()["counters"]["c"] == 1

    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("x") is reg.histogram("x")


class TestSolverWiring:
    """The global registry accumulates per-check deltas across Solver
    instances — the property plain ``SolverStats`` cannot provide."""

    def _snapshot_counters(self):
        return dict(metrics().snapshot()["counters"])

    def test_deltas_accumulate_across_instances(self):
        before = self._snapshot_counters()
        total_conflicts = 0
        for _ in range(2):
            s = Solver()
            xs = [Real(f"m_acc{i}") for i in range(6)]
            for a, b in zip(xs, xs[1:]):
                s.add(b >= a + 1)
            s.add(xs[0] >= 0, xs[-1] <= 2)  # unsat chain
            assert s.check() is unsat
            total_conflicts += s.stats.conflicts
        after = self._snapshot_counters()
        assert after["smt.checks"] - before.get("smt.checks", 0) == 2
        assert (
            after["smt.conflicts"] - before.get("smt.conflicts", 0)
            == total_conflicts
        )

    def test_known_small_query_delta_correctness(self):
        """Per-check deltas must equal the SAT core's own counter moves."""
        s = Solver()
        x, y = Real("m_dx"), Real("m_dy")
        s.add(x + y <= 4, x >= 1, y >= 2)
        core = s.sat_core
        c0, d0, p0 = core.conflicts, core.decisions, core.propagations
        assert s.check() is sat
        assert s.stats.last_check_conflicts == core.conflicts - c0
        assert s.stats.last_check_decisions == core.decisions - d0
        assert s.stats.last_check_propagations == core.propagations - p0
        assert s.stats.last_check_time > 0
        # first check: cumulative == last-check delta
        assert s.stats.conflicts == s.stats.last_check_conflicts
        assert s.stats.checks == 1

    def test_result_counters(self):
        before = self._snapshot_counters()
        s = Solver()
        x = Real("m_rx")
        s.add(x >= 1)
        assert s.check() is sat
        s.add(x <= 0)
        assert s.check() is unsat
        after = self._snapshot_counters()
        assert after["smt.result.sat"] - before.get("smt.result.sat", 0) == 1
        assert after["smt.result.unsat"] - before.get("smt.result.unsat", 0) == 1
