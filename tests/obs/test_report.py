"""JSONL round-trip: write a trace, parse it back, render the report."""

import io
import json

from repro.obs import JsonlSink, Tracer
from repro.obs.report import load_trace, parse_trace, render_report


def make_trace() -> io.StringIO:
    tr = Tracer()
    buf = io.StringIO()
    tr.add_sink(JsonlSink(buf))
    tr.meta(argv=["synthesize", "--space", "x"], version="test")
    with tr.span("cegis.run"):
        for i in (1, 2):
            with tr.span("cegis.generate") as s:
                s.set_duration(0.25)
            with tr.span("cegis.verify") as s:
                s.set_duration(0.5)
        tr.event("cegis.counterexample", iter=1)
        tr.event("cegis.solution", iter=2)
        tr.event(
            "cegis.done",
            iterations=2, counterexamples=1, solutions=1,
            generator_time=0.5, verifier_time=1.0,
        )
    tr.emit_metrics({"counters": {"smt.checks": 4},
                     "gauges": {},
                     "histograms": {"smt.check_time":
                                    {"count": 4, "total": 1.0, "mean": 0.25,
                                     "min": 0.1, "max": 0.4}}})
    buf.seek(0)
    return buf


class TestRoundTrip:
    def test_every_line_is_json(self):
        buf = make_trace()
        for line in buf.read().splitlines():
            json.loads(line)

    def test_parse_aggregates_spans_and_events(self):
        summary = load_trace(make_trace())
        assert summary.malformed == 0
        gen = summary.spans["cegis.generate"]
        ver = summary.spans["cegis.verify"]
        assert gen.count == 2 and gen.total == 0.5
        assert ver.count == 2 and ver.total == 1.0
        assert summary.events["cegis.counterexample"] == 1
        assert summary.cegis_done["iterations"] == 2
        assert summary.metrics["counters"]["smt.checks"] == 4

    def test_span_totals_match_recorded_stats(self):
        summary = load_trace(make_trace())
        done = summary.cegis_done
        assert abs(summary.span_total("cegis.generate") - done["generator_time"]) \
            <= 0.05 * done["generator_time"]
        assert abs(summary.span_total("cegis.verify") - done["verifier_time"]) \
            <= 0.05 * done["verifier_time"]

    def test_render_report_contains_phases_and_agreement(self):
        out = render_report(load_trace(make_trace()))
        assert "cegis.generate" in out and "cegis.verify" in out
        assert "iterations=2" in out
        assert "agreement" in out
        assert "smt.checks" in out

    def test_malformed_lines_tolerated(self):
        summary = parse_trace(["not json at all", '{"type": "event", "name": "e"}'])
        assert summary.malformed == 1
        assert summary.events["e"] == 1

    def test_empty_trace(self):
        summary = parse_trace([])
        out = render_report(summary)
        assert "records: 0" in out


class TestTornLines:
    """A SIGKILLed writer (or the flight recorder dumping mid-disaster)
    leaves truncated, interleaved, or otherwise damaged lines; every one
    must be skipped-with-count, never raised."""

    GOOD = '{"type": "event", "name": "ok"}'

    def test_truncated_line_skipped(self):
        torn = '{"type": "span", "name": "cegis.ver'
        summary = parse_trace([self.GOOD, torn])
        assert summary.malformed == 1
        assert summary.events["ok"] == 1

    def test_interleaved_writes_skipped(self):
        # two line-buffered writers racing one fd: records fused mid-line
        fused = '{"type": "event", "na{"type": "span", "name": "x", "dur": 1}'
        summary = parse_trace([fused, self.GOOD])
        assert summary.malformed == 1 and summary.records == 1

    def test_non_object_json_lines_skipped(self):
        summary = parse_trace(["42", "null", '"a string"', "[1, 2]", self.GOOD])
        assert summary.malformed == 4
        assert summary.events["ok"] == 1

    def test_structurally_wrong_record_skipped(self):
        bad_dur = '{"type": "span", "name": "x", "dur": {"oops": true}}'
        summary = parse_trace([bad_dur, self.GOOD])
        assert summary.malformed == 1
        assert "x" not in summary.spans or summary.spans["x"].count == 0

    def test_blank_lines_ignored_silently(self):
        summary = parse_trace(["", "   ", self.GOOD, "\n"])
        assert summary.malformed == 0 and summary.records == 1

    def test_partially_written_file_on_disk(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        with open(path, "w") as f:
            f.write(self.GOOD + "\n")
            f.write('{"type": "metrics", "snapsho')  # killed mid-write
        summary = load_trace(str(path))
        assert summary.malformed == 1 and summary.events["ok"] == 1

    def test_render_reports_malformed_count(self):
        out = render_report(parse_trace(["{torn", self.GOOD]))
        assert "1 malformed lines skipped" in out


class TestWorkerLanes:
    def make_lane_trace(self):
        return [
            json.dumps(r) for r in [
                {"type": "span", "name": "cegis.verify", "id": 1,
                 "parent": None, "depth": 0, "ts": 0.0, "dur": 2.0,
                 "lvl": 20, "attrs": {}},
                {"type": "span", "name": "runtime.worker", "id": 2,
                 "parent": 1, "depth": 1, "ts": 0.0, "dur": 1.9, "lvl": 20,
                 "attrs": {"worker": "w0", "status": "ok"}},
                {"type": "span", "name": "worker.run", "id": 3, "parent": 2,
                 "depth": 2, "ts": 0.0, "dur": 1.5, "lvl": 20,
                 "attrs": {"worker": "w0"}},
                {"type": "span", "name": "runtime.worker", "id": 4,
                 "parent": 1, "depth": 1, "ts": 0.0, "dur": 0.4, "lvl": 20,
                 "attrs": {"worker": "w1", "status": "timeout"}},
            ]
        ]

    def test_lanes_aggregated(self):
        summary = parse_trace(self.make_lane_trace())
        assert set(summary.workers) == {"w0", "w1"}
        w0 = summary.workers["w0"]
        assert w0.runs == 1 and w0.busy == 1.5 and w0.kills == 0
        assert summary.workers["w1"].kills == 1

    def test_lanes_rendered_with_occupancy(self):
        out = render_report(parse_trace(self.make_lane_trace()))
        assert "workers (2 lanes" in out
        assert "w0" in out and "w1" in out
        assert "parallel occupancy" in out

    def test_cache_section_rendered_from_counters(self):
        lines = [json.dumps({
            "type": "metrics",
            "snapshot": {
                "counters": {"engine.cache.hits": 30,
                             "engine.cache.misses": 10,
                             "engine.cache.disk_hits": 5,
                             "engine.cache.quarantined": 1},
                "gauges": {}, "histograms": {},
            },
        })]
        out = render_report(parse_trace(lines))
        assert "cache:" in out
        assert "hits=30 misses=10 disk_hits=5 quarantined=1" in out
        assert "hit rate 75.0%" in out

    def test_certify_line_rendered(self):
        lines = [
            json.dumps({"type": "span", "name": "cegis.verify", "id": 1,
                        "parent": None, "depth": 0, "ts": 0.0, "dur": 4.0,
                        "lvl": 20, "attrs": {}}),
            json.dumps({"type": "metrics", "snapshot": {
                "counters": {"trust.proofs.checked": 3},
                "gauges": {},
                "histograms": {"trust.check_time":
                               {"count": 3, "total": 1.0, "mean": 0.33,
                                "min": 0.1, "max": 0.5}},
            }}),
        ]
        out = render_report(parse_trace(lines))
        assert "certify: 3 proof(s) independently checked" in out
        assert "25.0% of verify time" in out

    def test_relay_line_rendered(self):
        lines = [json.dumps({"type": "metrics", "snapshot": {
            "counters": {"obs.relay.frames": 4,
                         "obs.relay.dropped_frames": 1},
            "gauges": {}, "histograms": {},
        }})]
        out = render_report(parse_trace(lines))
        assert "telemetry relay: 4 frame(s) merged, 1 dropped" in out
