"""JSONL round-trip: write a trace, parse it back, render the report."""

import io
import json

from repro.obs import JsonlSink, Tracer
from repro.obs.report import load_trace, parse_trace, render_report


def make_trace() -> io.StringIO:
    tr = Tracer()
    buf = io.StringIO()
    tr.add_sink(JsonlSink(buf))
    tr.meta(argv=["synthesize", "--space", "x"], version="test")
    with tr.span("cegis.run"):
        for i in (1, 2):
            with tr.span("cegis.generate") as s:
                s.set_duration(0.25)
            with tr.span("cegis.verify") as s:
                s.set_duration(0.5)
        tr.event("cegis.counterexample", iter=1)
        tr.event("cegis.solution", iter=2)
        tr.event(
            "cegis.done",
            iterations=2, counterexamples=1, solutions=1,
            generator_time=0.5, verifier_time=1.0,
        )
    tr.emit_metrics({"counters": {"smt.checks": 4},
                     "gauges": {},
                     "histograms": {"smt.check_time":
                                    {"count": 4, "total": 1.0, "mean": 0.25,
                                     "min": 0.1, "max": 0.4}}})
    buf.seek(0)
    return buf


class TestRoundTrip:
    def test_every_line_is_json(self):
        buf = make_trace()
        for line in buf.read().splitlines():
            json.loads(line)

    def test_parse_aggregates_spans_and_events(self):
        summary = load_trace(make_trace())
        assert summary.malformed == 0
        gen = summary.spans["cegis.generate"]
        ver = summary.spans["cegis.verify"]
        assert gen.count == 2 and gen.total == 0.5
        assert ver.count == 2 and ver.total == 1.0
        assert summary.events["cegis.counterexample"] == 1
        assert summary.cegis_done["iterations"] == 2
        assert summary.metrics["counters"]["smt.checks"] == 4

    def test_span_totals_match_recorded_stats(self):
        summary = load_trace(make_trace())
        done = summary.cegis_done
        assert abs(summary.span_total("cegis.generate") - done["generator_time"]) \
            <= 0.05 * done["generator_time"]
        assert abs(summary.span_total("cegis.verify") - done["verifier_time"]) \
            <= 0.05 * done["verifier_time"]

    def test_render_report_contains_phases_and_agreement(self):
        out = render_report(load_trace(make_trace()))
        assert "cegis.generate" in out and "cegis.verify" in out
        assert "iterations=2" in out
        assert "agreement" in out
        assert "smt.checks" in out

    def test_malformed_lines_tolerated(self):
        summary = parse_trace(["not json at all", '{"type": "event", "name": "e"}'])
        assert summary.malformed == 1
        assert summary.events["e"] == 1

    def test_empty_trace(self):
        summary = parse_trace([])
        out = render_report(summary)
        assert "records: 0" in out
