"""Tests of the tracing layer: span nesting, timing, sinks, levels."""

import io
import json
import time

import pytest

from repro.obs import DEBUG, INFO, ConsoleSink, JsonlSink, Tracer
from repro.obs.events import _NOOP_SPAN


def records_of(buf: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in buf.getvalue().splitlines()]


@pytest.fixture
def traced():
    """A private tracer with an in-memory JSONL sink."""
    tr = Tracer()
    buf = io.StringIO()
    tr.add_sink(JsonlSink(buf))
    return tr, buf


class TestSpans:
    def test_disabled_tracer_returns_shared_noop(self):
        tr = Tracer()
        assert not tr.enabled
        span = tr.span("x", attr=1)
        assert span is _NOOP_SPAN
        with span as s:
            s.set(more=2).set_duration(1.0)  # all no-ops, no errors
        tr.event("x.event", k="v")  # swallowed

    def test_span_nesting_parent_and_depth(self, traced):
        tr, buf = traced
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        inner, outer = records_of(buf)  # inner closes (and emits) first
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert inner["parent"] == outer["id"]
        assert inner["depth"] == 1 and outer["depth"] == 0
        assert outer["parent"] is None

    def test_sibling_spans_share_parent(self, traced):
        tr, buf = traced
        with tr.span("outer"):
            with tr.span("a"):
                pass
            with tr.span("b"):
                pass
        a, b, outer = records_of(buf)
        assert a["parent"] == outer["id"] and b["parent"] == outer["id"]
        assert a["id"] != b["id"]

    def test_timing_monotonicity(self, traced):
        tr, buf = traced
        with tr.span("outer"):
            time.sleep(0.002)
            with tr.span("inner"):
                time.sleep(0.002)
        inner, outer = records_of(buf)
        assert 0 < inner["dur"] <= outer["dur"]
        # the inner span starts no earlier than the outer one
        assert inner["ts"] >= outer["ts"]

    def test_set_duration_overrides_clock(self, traced):
        tr, buf = traced
        with tr.span("s") as span:
            span.set_duration(42.5)
        (rec,) = records_of(buf)
        assert rec["dur"] == 42.5

    def test_events_attributed_to_innermost_span(self, traced):
        tr, buf = traced
        tr.event("orphan")
        with tr.span("s"):
            tr.event("child", k=1)
        orphan, child, span = records_of(buf)
        assert orphan["span"] is None
        assert child["span"] == span["id"]
        assert child["attrs"] == {"k": 1}

    def test_exception_marks_span_and_unwinds_stack(self, traced):
        tr, buf = traced
        with pytest.raises(ValueError):
            with tr.span("bad"):
                raise ValueError("boom")
        (rec,) = records_of(buf)
        assert rec["attrs"]["error"] == "ValueError"
        assert tr.current_span_id() is None

    def test_remove_sink_disables(self, traced):
        tr, buf = traced
        (sink,) = tr.sinks
        tr.remove_sink(sink)
        assert not tr.enabled
        tr.event("dropped")
        assert buf.getvalue() == ""


class TestSinks:
    def test_jsonl_sink_stringifies_unserializable(self):
        tr = Tracer()
        buf = io.StringIO()
        tr.add_sink(JsonlSink(buf))
        from fractions import Fraction

        tr.event("e", value=Fraction(1, 3))
        (rec,) = records_of(buf)
        assert rec["attrs"]["value"] == "1/3"

    def test_jsonl_sink_level_filter(self):
        tr = Tracer()
        buf = io.StringIO()
        tr.add_sink(JsonlSink(buf, level=INFO))
        tr.event("debug-only", level=DEBUG)
        tr.event("kept", level=INFO)
        recs = records_of(buf)
        assert [r["name"] for r in recs] == ["kept"]

    def test_console_sink_prints_msg_verbatim(self, capsys):
        tr = Tracer()
        tr.add_sink(ConsoleSink(level=INFO))
        tr.event("cegis.solution", msg="[cegis] iter 3: solution X")
        tr.event("hidden", level=DEBUG, msg="nope")
        out = capsys.readouterr().out
        assert out == "[cegis] iter 3: solution X\n"

    def test_console_sink_renders_attrs_without_msg(self, capsys):
        tr = Tracer()
        tr.add_sink(ConsoleSink(level=INFO))
        tr.event("smt.progress", conflicts=100, restarts=2)
        out = capsys.readouterr().out
        assert "[smt.progress]" in out and "conflicts=100" in out

    def test_console_sink_debug_shows_span_timings(self, capsys):
        tr = Tracer()
        tr.add_sink(ConsoleSink(level=DEBUG))
        with tr.span("phase", level=DEBUG):
            pass
        out = capsys.readouterr().out
        assert "~ phase" in out and "ms" in out

    def test_meta_and_metrics_records(self, traced):
        tr, buf = traced
        tr.meta(argv=["synthesize"], version="1.0.0")
        tr.emit_metrics({"counters": {"smt.checks": 3}})
        meta, metrics_rec = records_of(buf)
        assert meta["type"] == "meta" and meta["argv"] == ["synthesize"]
        assert metrics_rec["type"] == "metrics"
        assert metrics_rec["snapshot"]["counters"]["smt.checks"] == 3
