"""Perfetto / Chrome trace_event export of a JSONL trace."""

import io
import json

from repro.obs import JsonlSink, Tracer
from repro.obs.export import export_perfetto, to_perfetto


def make_lines():
    tr = Tracer()
    buf = io.StringIO()
    tr.add_sink(JsonlSink(buf))
    with tr.span("cegis.run"):
        with tr.span("runtime.worker", worker="w0") as s:
            s.set_duration(0.25)
        with tr.span("runtime.worker", worker="w1") as s:
            s.set_duration(0.5)
        tr.event("cegis.solution", iter=1)
    buf.seek(0)
    return buf.read().splitlines()


class TestToPerfetto:
    def test_spans_become_complete_events_in_microseconds(self):
        doc = to_perfetto(make_lines())
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 3
        w1 = next(e for e in xs if e["args"].get("worker") == "w1")
        assert abs(w1["dur"] - 500_000) < 1_000  # 0.5s in µs
        assert all(e["ts"] >= 0 for e in xs)  # rebased to t=0

    def test_one_lane_per_worker_plus_main(self):
        doc = to_perfetto(make_lines())
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        tids = {e["args"].get("worker", "main"): e["tid"] for e in xs}
        assert tids["main"] == 0
        assert len(set(tids.values())) == 3
        assert doc["otherData"]["lanes"] == 3

    def test_lane_metadata_named_and_ordered(self):
        doc = to_perfetto(make_lines())
        names = {
            e["tid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names[0] == "main"
        assert set(names.values()) == {"main", "worker w0", "worker w1"}
        sorts = [
            e for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_sort_index"
        ]
        assert all(e["tid"] == e["args"]["sort_index"] for e in sorts)

    def test_events_become_instants(self):
        doc = to_perfetto(make_lines())
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert [e["name"] for e in instants] == ["cegis.solution"]
        assert instants[0]["s"] == "t"

    def test_category_is_dotted_prefix(self):
        doc = to_perfetto(make_lines())
        cats = {e["name"]: e["cat"] for e in doc["traceEvents"]
                if e["ph"] == "X"}
        assert cats["cegis.run"] == "cegis"
        assert cats["runtime.worker"] == "runtime"

    def test_malformed_lines_skipped_and_counted(self):
        lines = make_lines() + ["{torn", "42", ""]
        doc = to_perfetto(lines)
        assert doc["otherData"]["malformed_lines_skipped"] == 2
        assert doc["otherData"]["spans"] == 3


class TestExportFile:
    def test_writes_loadable_json(self, tmp_path):
        src = tmp_path / "trace.jsonl"
        src.write_text("\n".join(make_lines()) + "\n")
        out = tmp_path / "perfetto.json"
        other = export_perfetto(str(src), str(out))
        doc = json.loads(out.read_text())
        assert doc["otherData"] == other
        assert other["spans"] == 3 and other["lanes"] == 3
