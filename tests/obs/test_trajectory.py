"""The committed benchmark trajectory and its regression gate."""

import copy
import json

import pytest

from repro.obs.trajectory import (
    append_entry,
    is_trajectory,
    latest_comparable,
    load_history,
    regressions,
    summarize_report,
)

REPORT = {
    "bench": "engine",
    "quick": True,
    "ok": True,
    "compile": {"pipeline_s": 2.0, "raw_s": 4.0, "speedup": 2.0},
    "cache": {"cold_s": 3.0, "warm_s": 0.5, "speedup": 6.0},
    "incremental": {"incremental_s": 1.5},
    "proof": {"certify_s": 2.5},
    "portfolio": {"jobs_1": {"wall_s": 10.0}, "jobs_4": {"wall_s": 4.0}},
}


class TestSummarize:
    def test_extracts_tracked_metrics(self):
        entry = summarize_report(REPORT)
        assert entry["ok"] and entry["quick"]
        m = entry["metrics"]
        assert m["compile.pipeline_s"] == 2.0
        assert m["portfolio.jobs_4.wall_s"] == 4.0
        assert m["cache.speedup"] == 6.0

    def test_missing_paths_skipped(self):
        entry = summarize_report({"bench": "engine", "ok": True})
        assert entry["metrics"] == {}


class TestHistory:
    def test_append_creates_and_grows(self, tmp_path):
        path = str(tmp_path / "BENCH_engine.json")
        e1 = append_entry(path, REPORT, git_sha="abc1234")
        assert e1["git_sha"] == "abc1234"
        assert e1["ts"].endswith("Z")
        append_entry(path, REPORT, git_sha="def5678")
        data = json.loads(open(path).read())
        assert is_trajectory(data)
        assert [e["git_sha"] for e in data["history"]] == ["abc1234", "def5678"]

    def test_append_stamps_head_sha_by_default(self, tmp_path):
        # the repo under test is a git checkout, so HEAD resolves
        path = str(tmp_path / "BENCH_engine.json")
        entry = append_entry(path, REPORT)
        assert entry["git_sha"]  # "unknown" outside a checkout, never empty

    def test_missing_file_is_empty_history(self, tmp_path):
        trajectory = load_history(str(tmp_path / "nope.json"))
        assert trajectory == {"bench": "engine", "history": []}

    def test_legacy_single_report_converted(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        path.write_text(json.dumps(REPORT))
        trajectory = load_history(str(path))
        assert len(trajectory["history"]) == 1
        assert trajectory["history"][0]["git_sha"] == "pre-trajectory"
        assert not is_trajectory(str(path))  # the file itself is untouched

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        path.write_text('{"neither": "report nor trajectory"}')
        with pytest.raises(ValueError):
            load_history(str(path))

    def test_latest_comparable_prefers_matching_scale(self, tmp_path):
        path = str(tmp_path / "t.json")
        full = copy.deepcopy(REPORT)
        full["quick"] = False
        append_entry(path, REPORT, git_sha="quick1")
        append_entry(path, full, git_sha="full1")
        trajectory = load_history(path)
        assert latest_comparable(trajectory, quick=True)["git_sha"] == "quick1"
        assert latest_comparable(trajectory, quick=False)["git_sha"] == "full1"
        assert latest_comparable({"history": []}, quick=True) is None


class TestRegressionGate:
    def baseline(self):
        entry = summarize_report(REPORT)
        entry["git_sha"] = "base"
        return entry

    def test_identical_run_passes(self):
        failures, rows = regressions(REPORT, self.baseline())
        assert failures == []
        assert rows  # every tracked metric compared

    def test_thirty_percent_slowdown_fails_default_gate(self):
        slow = copy.deepcopy(REPORT)
        slow["portfolio"]["jobs_4"]["wall_s"] = 4.0 * 1.30
        failures, _ = regressions(slow, self.baseline())
        assert [f["metric"] for f in failures] == ["portfolio.jobs_4.wall_s"]
        assert failures[0]["delta_pct"] == pytest.approx(30.0)

    def test_gate_threshold_is_configurable(self):
        slow = copy.deepcopy(REPORT)
        slow["portfolio"]["jobs_4"]["wall_s"] = 4.0 * 1.30
        failures, _ = regressions(slow, self.baseline(), max_regress_pct=50.0)
        assert failures == []

    def test_speedup_ratio_below_one_fails(self):
        bad = copy.deepcopy(REPORT)
        bad["cache"]["speedup"] = 0.9
        failures, _ = regressions(bad, self.baseline())
        assert [f["metric"] for f in failures] == ["cache.speedup"]

    def test_not_ok_report_fails_regardless_of_timings(self):
        bad = copy.deepcopy(REPORT)
        bad["ok"] = False
        failures, _ = regressions(bad, self.baseline())
        assert any(f["kind"] == "gate" for f in failures)

    def test_metrics_missing_from_baseline_not_compared(self):
        failures, rows = regressions(
            REPORT, {"git_sha": "old", "metrics": {}}
        )
        assert failures == []
        timing_rows = [r for r in rows if r["kind"] == "timing"]
        assert timing_rows == []
