"""The flight recorder: bounded ring, dump-on-demand, library no-op."""

import json
import os

import pytest

from repro.obs import Tracer
from repro.obs.flight import (
    DEFAULT_CAPACITY,
    FlightRecorder,
    dump_flight,
    ensure_flight_recorder,
    flight_recorder,
    set_dump_dir,
)
from repro.obs.report import load_trace


@pytest.fixture
def clean_recorder():
    """Isolate the process-global recorder/dump-dir state per test."""
    import repro.obs.flight as flight
    from repro.obs import tracer

    saved = flight._RECORDER, flight._DUMP_DIR
    flight._RECORDER, flight._DUMP_DIR = None, None
    yield flight
    if flight._RECORDER is not None:
        tracer().remove_sink(flight._RECORDER)
    flight._RECORDER, flight._DUMP_DIR = saved


class TestRing:
    def test_keeps_only_last_capacity_records(self):
        rec = FlightRecorder(capacity=3)
        for i in range(10):
            rec.emit({"type": "event", "name": f"e{i}"})
        names = [r["name"] for r in rec.snapshot()]
        assert names == ["e7", "e8", "e9"]
        assert rec.seen == 10

    def test_default_capacity(self):
        assert FlightRecorder().capacity == DEFAULT_CAPACITY

    def test_clear(self):
        rec = FlightRecorder(capacity=3)
        rec.emit({"type": "event", "name": "e"})
        rec.clear()
        assert rec.snapshot() == []


class TestDump:
    def test_dump_is_a_parseable_trace(self, tmp_path):
        tr = Tracer()
        rec = tr.add_sink(FlightRecorder(capacity=100))
        with tr.span("cegis.run"):
            with tr.span("cegis.verify") as s:
                s.set_duration(0.5)
            tr.event("cegis.counterexample", iter=1)
        path = rec.dump(reason="test", dump_dir=str(tmp_path))
        assert path and os.path.exists(path)
        assert os.path.basename(path).startswith("flightrec-test-")
        header = json.loads(open(path).readline())
        assert header["flight_recorder"] is True and header["reason"] == "test"
        summary = load_trace(path)
        assert summary.malformed == 0
        assert "cegis.verify" in summary.spans
        assert summary.events["cegis.counterexample"] == 1

    def test_dump_without_dir_is_noop(self):
        rec = FlightRecorder()
        rec.emit({"type": "event", "name": "e"})
        assert rec.dump(reason="nowhere") is None

    def test_dump_failure_swallowed(self, tmp_path):
        rec = FlightRecorder()
        rec.emit({"type": "event", "name": "e"})
        blocked = tmp_path / "blocked"
        blocked.write_text("a file where a directory should be")
        assert rec.dump(reason="bad", dump_dir=str(blocked)) is None


class TestGlobals:
    def test_library_default_is_silent(self, clean_recorder):
        # no recorder installed, no dump dir: dump_flight is a no-op
        assert flight_recorder() is None
        assert dump_flight("soundness") is None

    def test_ensure_is_idempotent(self, clean_recorder):
        a = ensure_flight_recorder()
        b = ensure_flight_recorder()
        assert a is b

    def test_dump_flight_uses_configured_dir(self, clean_recorder, tmp_path):
        from repro.obs import tracer

        ensure_flight_recorder()
        set_dump_dir(str(tmp_path))
        tracer().event("chaos.fault", point="worker.child")
        path = dump_flight("worker-escalation")
        assert path and path.startswith(str(tmp_path))
        summary = load_trace(path)
        assert summary.events.get("chaos.fault") == 1
