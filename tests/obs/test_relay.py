"""Cross-process telemetry relay: capture, frame, merge (in-process).

These tests exercise the relay machinery without forking; the real
fork-path integration lives in ``tests/runtime/test_workers.py`` and
``tests/engine/test_portfolio.py`` (runtime-marked).
"""

import multiprocessing as mp

from repro.obs import MetricsRegistry, Sink, Tracer
from repro.obs.relay import (
    FRAME_VERSION,
    BufferSink,
    TelemetryCapture,
    TraceContext,
    drain_telemetry,
    merge_frame,
)


class RecordingSink(Sink):
    def __init__(self):
        self.records = []

    def emit(self, record: dict) -> None:
        self.records.append(record)


def make_frame(tr=None, registry=None, worker_id="w1"):
    """Run a tiny traced workload through a capture, return its frame."""
    tr = tr or Tracer()
    registry = registry or MetricsRegistry()
    ctx = TraceContext(trace_id=tr.trace_id, worker_id=worker_id)
    cap = TelemetryCapture(ctx, tr=tr, registry=registry)
    with tr.span("worker.run", task="t"):
        with tr.span("verifier.find_cex"):
            registry.counter("smt.checks").inc(3)
            registry.histogram("smt.check_time").observe(0.5)
        tr.event("smt.check_done", verdict="unsat")
    return cap.finish()


class TestCapture:
    def test_frame_shape(self):
        frame = make_frame()
        assert frame["v"] == FRAME_VERSION
        assert frame["worker_id"] == "w1"
        assert frame["dropped"] == 0
        kinds = [r["type"] for r in frame["records"]]
        assert kinds.count("span") == 2 and kinds.count("event") == 1

    def test_metric_deltas_exclude_preexisting_values(self):
        registry = MetricsRegistry()
        registry.counter("smt.checks").inc(100)  # forked-in parent value
        frame = make_frame(registry=registry)
        assert frame["metrics"]["counters"]["smt.checks"] == 3
        hist = frame["metrics"]["histograms"]["smt.check_time"]
        assert hist["count"] == 1 and abs(hist["total"] - 0.5) < 1e-9

    def test_finish_is_idempotent(self):
        tr = Tracer()
        cap = TelemetryCapture(
            TraceContext(trace_id=tr.trace_id), tr=tr,
            registry=MetricsRegistry(),
        )
        a, b = cap.finish(), cap.finish()
        assert a["records"] == b["records"]

    def test_buffer_bound_counts_overflow(self):
        sink = BufferSink(max_records=2)
        for i in range(5):
            sink.emit({"type": "event", "name": str(i)})
        assert len(sink.records) == 2 and sink.dropped == 3


class TestMerge:
    def test_records_remapped_and_tagged(self):
        frame = make_frame()
        tr = Tracer()
        registry = MetricsRegistry()
        sink = tr.add_sink(RecordingSink())
        with tr.span("runtime.worker", worker="w1") as ws:
            anchor, depth = ws.span_id, ws.depth
        assert merge_frame(frame, anchor_span=anchor, anchor_depth=depth,
                           tr=tr, registry=registry)
        merged = [r for r in sink.records
                  if r.get("attrs", {}).get("worker") == "w1"
                  and r["type"] == "span" and r["name"] != "runtime.worker"]
        assert len(merged) == 2
        roots = [r for r in merged if r["name"] == "worker.run"]
        assert roots[0]["parent"] == anchor
        assert roots[0]["depth"] == depth + 1
        # child span ids were re-allocated from the parent tracer, so
        # they cannot collide with the parent-side worker span
        assert all(r["id"] != anchor for r in merged)

    def test_metrics_merged_into_global_instruments(self):
        frame = make_frame()
        registry = MetricsRegistry()
        registry.counter("smt.checks").inc(10)
        assert merge_frame(frame, tr=Tracer(), registry=registry)
        assert registry.counter("smt.checks").value == 13
        h = registry.histogram("smt.check_time")
        assert h.count == 1 and abs(h.total - 0.5) < 1e-9

    def test_malformed_frames_dropped_with_counter_never_raise(self):
        tr, registry = Tracer(), MetricsRegistry()
        bad = [
            None,
            "not a frame",
            {},
            {"v": 99, "records": [], "metrics": {}, "worker_id": "w0"},
            {"v": FRAME_VERSION, "records": "nope", "metrics": {},
             "worker_id": "w0"},
            {"v": FRAME_VERSION, "records": [], "metrics": {},
             "worker_id": 7},
            # well-formed envelope, poisoned payload: must not raise
            {"v": FRAME_VERSION, "records": [],
             "metrics": {"counters": {"x": "NaN-ish"}}, "worker_id": "w0"},
        ]
        for frame in bad:
            assert merge_frame(frame, tr=tr, registry=registry) is False
        assert registry.counter("obs.relay.dropped_frames").value == len(bad)

    def test_merge_counts_frames_and_child_drops(self):
        frame = make_frame()
        frame["dropped"] = 4
        registry = MetricsRegistry()
        assert merge_frame(frame, tr=Tracer(), registry=registry)
        assert registry.counter("obs.relay.frames").value == 1
        assert registry.counter("obs.relay.child_dropped_records").value == 4

    def test_disabled_tracer_still_merges_metrics(self):
        frame = make_frame()
        tr, registry = Tracer(), MetricsRegistry()
        assert not tr.enabled
        assert merge_frame(frame, tr=tr, registry=registry)
        assert registry.counter("smt.checks").value == 3


class TestDrain:
    def test_drain_keeps_frames_discards_verdicts(self):
        parent, child = mp.Pipe(duplex=False)
        child.send(("telemetry", {"v": FRAME_VERSION}))
        child.send(("ok", 42))
        child.close()
        frames = []
        drain_telemetry(parent, frames)
        assert frames == [{"v": FRAME_VERSION}]

    def test_drain_never_raises_on_closed_pipe(self):
        parent, child = mp.Pipe(duplex=False)
        child.close()
        parent.close()
        drain_telemetry(parent, [])  # must not raise
