"""Tests for the MaxSAT layer."""

from fractions import Fraction

from repro.smt import Bool, MaxSatSolver, Not, Or, Real

x = Real("mx")
a, b, c = Bool("ma"), Bool("mb"), Bool("mc")


class TestMaxSat:
    def test_all_softs_satisfiable(self):
        ms = MaxSatSolver()
        ms.add_hard(x >= 0, x <= 10)
        ms.add_soft(x >= 1)
        ms.add_soft(x <= 9)
        res = ms.solve()
        assert res.feasible and res.cost == 0
        assert res.satisfied == [True, True]

    def test_one_violation_needed(self):
        ms = MaxSatSolver()
        ms.add_hard(x >= 0, x <= 10)
        ms.add_soft(x >= 5)
        ms.add_soft(x <= 3)
        ms.add_soft(x >= 1)
        res = ms.solve()
        assert res.cost == 1
        assert sum(res.satisfied) == 2

    def test_weights_steer_choice(self):
        ms = MaxSatSolver()
        ms.add_hard(x >= 0, x <= 10)
        ms.add_soft(x >= 5, weight=10)
        ms.add_soft(x <= 3, weight=1)
        res = ms.solve()
        assert res.cost == 1
        assert res.satisfied[0] is True  # keep the heavy one

    def test_hard_unsat(self):
        ms = MaxSatSolver()
        ms.add_hard(x >= 1, x <= 0)
        ms.add_soft(x >= 0)
        res = ms.solve()
        assert not res.feasible and res.cost is None

    def test_boolean_softs(self):
        ms = MaxSatSolver()
        ms.add_hard(Or(Not(a), Not(b)))  # a and b incompatible
        ms.add_soft(a)
        ms.add_soft(b)
        ms.add_soft(c)
        res = ms.solve()
        assert res.cost == 1
        assert res.satisfied[2] is True

    def test_no_softs(self):
        ms = MaxSatSolver()
        ms.add_hard(x >= 0)
        res = ms.solve()
        assert res.feasible and res.cost == 0

    def test_fractional_weights(self):
        ms = MaxSatSolver()
        ms.add_hard(x >= 0, x <= 1)
        ms.add_soft(x >= 2, weight=Fraction(1, 2))
        ms.add_soft(x >= 3, weight=Fraction(1, 4))
        res = ms.solve()
        assert res.cost == Fraction(3, 4)
