"""SMT-LIB printer/parser tests, including print->parse roundtrips."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import And, Bool, Eq, Implies, Ite, Not, Or, Real, RealVal, Solver, sat, unsat
from repro.smt.smtlib import (
    SmtLibError,
    parse_smtlib,
    solver_to_smtlib,
    term_to_smtlib,
    to_smtlib,
)

x, y = Real("slx"), Real("sly")
a = Bool("sla")


class TestPrinting:
    def test_atoms(self):
        assert term_to_smtlib(x <= RealVal(3)) == "(<= slx 3.0)"
        assert term_to_smtlib(x < y) == "(< slx sly)"

    def test_rationals(self):
        assert term_to_smtlib(RealVal(Fraction(1, 2))) == "(/ 1.0 2.0)"
        assert term_to_smtlib(RealVal(Fraction(-3, 4))) == "(- (/ 3.0 4.0))"

    def test_boolean_structure(self):
        out = term_to_smtlib(And(a, Or(Not(a), x <= RealVal(0))))
        assert out == "(and sla (or (not sla) (<= slx 0.0)))"

    def test_script_declares_all_vars(self):
        script = to_smtlib([x + y <= RealVal(1), a])
        assert "(declare-const slx Real)" in script
        assert "(declare-const sla Bool)" in script
        assert script.strip().endswith("(get-model)")

    def test_solver_dump(self):
        s = Solver()
        s.add(x >= RealVal(1))
        out = solver_to_smtlib(s)
        assert "(assert (<= 1.0 slx))" in out or "(assert (>= slx 1.0))" in out or "(<=" in out


class TestParsing:
    def test_simple_script(self):
        script = parse_smtlib(
            """
            (set-logic QF_LRA)
            (declare-const p Real)
            (declare-const q Bool)
            (assert (and q (<= p 3.0)))
            (check-sat)
            """
        )
        assert script.logic == "QF_LRA"
        assert set(script.variables) == {"p", "q"}
        assert script.check() is sat

    def test_unsat_script(self):
        script = parse_smtlib(
            """
            (declare-const v Real)
            (assert (< v 0.0))
            (assert (> v 0.0))
            """
        )
        assert script.check() is unsat

    def test_comments_and_decimals(self):
        script = parse_smtlib(
            """
            ; a comment
            (declare-const w Real)
            (assert (= w 2.5))
            """
        )
        assert script.check() is sat

    def test_declare_fun_zero_arity(self):
        script = parse_smtlib("(declare-fun f () Real)(assert (>= f 0.0))")
        assert script.check() is sat

    def test_nonzero_arity_rejected(self):
        with pytest.raises(SmtLibError):
            parse_smtlib("(declare-fun f (Real) Real)")

    def test_undeclared_symbol_rejected(self):
        with pytest.raises(SmtLibError):
            parse_smtlib("(assert (<= ghost 1.0))")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(SmtLibError):
            parse_smtlib("(assert (<= x 1.0)")

    def test_chained_comparison(self):
        script = parse_smtlib(
            "(declare-const u Real)(declare-const v Real)"
            "(assert (<= 0.0 u v 1.0))(assert (< u v))"
        )
        assert script.check() is sat

    def test_ite_and_implies(self):
        script = parse_smtlib(
            "(declare-const c Bool)(declare-const r Real)"
            "(assert (= r (ite c 1.0 2.0)))(assert (=> c false))"
        )
        assert script.check() is sat


class TestRoundtrip:
    def test_formula_roundtrip_preserves_satisfiability(self):
        formulas = [
            And(x >= RealVal(0), Or(x <= RealVal(1), a)),
            Implies(a, x + y <= RealVal(Fraction(5, 2))),
            Eq(y, Ite(a, RealVal(1), RealVal(2))),
        ]
        script_text = to_smtlib(formulas)
        parsed = parse_smtlib(script_text)
        assert parsed.check() is sat

        # now make it unsat and confirm the roundtrip preserves that too
        formulas_unsat = formulas + [x < RealVal(0)]
        assert parse_smtlib(to_smtlib(formulas_unsat)).check() is unsat

    def test_ccac_query_roundtrips(self, fast_cfg):
        """A full verifier instance survives the print->parse cycle with
        the same verdict."""
        from repro.ccac import CcacModel, negated_desired
        from repro.core import rocc

        net = CcacModel(fast_cfg)
        formulas = (
            net.constraints()
            + rocc(fast_cfg.history).constraints_for(net)
            + [negated_desired(net)]
        )
        # ITE/EQ are fine: the printer emits them, the parser rebuilds them
        parsed = parse_smtlib(to_smtlib(formulas))
        assert parsed.check() is unsat  # rocc is verified
