"""Edge cases of substitute / canonical_key / evaluate that the compile
pipeline leans on (satellite of the compile-pipeline refactor)."""

from fractions import Fraction

import pytest

from repro.smt import (
    And,
    Bool,
    Ite,
    Not,
    Or,
    Real,
    RealVal,
    canonical_key,
    evaluate,
    substitute,
)
from repro.smt.linarith import LinExpr, normalize_atom
from repro.smt.terms import Kind, Mul, Neg

x, y, z = Real("ex"), Real("ey"), Real("ez")
p, q = Bool("ep"), Bool("eq")


class TestSubstitute:
    def test_nested_real_ite(self):
        f = Ite(p, Ite(q, x, y), z) <= 3
        g = substitute(f, {x: RealVal(1), z: y})
        assert g is (Ite(p, Ite(q, RealVal(1), y), y) <= 3)

    def test_bool_ite_branches(self):
        f = Ite(p, q, Not(q))
        g = substitute(f, {q: p})
        # then-branch collapses: Ite(p, p, not p)
        assert g is Ite(p, p, Not(p))

    def test_substitute_under_scale_keeps_coefficient(self):
        f = 3 * x + y <= 10
        g = substitute(f, {x: z})
        assert g is (3 * z + y <= 10)

    def test_substitute_rebuilds_through_folding(self):
        # substituting a constant lets the builders fold the atom away
        f = x <= RealVal(5)
        g = substitute(f, {x: RealVal(3)})
        assert g.kind is Kind.CONST and g.value is True

    def test_simultaneous_not_sequential(self):
        # x -> y and y -> x swap, not chain
        f = x + 2 * y <= 0
        g = substitute(f, {x: y, y: x})
        assert g is (y + 2 * x <= 0)


class TestCanonicalKey:
    def test_nary_flattening_same_key(self):
        nested = And(p, And(q, x <= 1))
        flat = And(p, q, x <= 1)
        assert nested is flat  # builder flattens
        assert canonical_key(nested) == canonical_key(flat)

    def test_commutative_order_insensitive(self):
        assert canonical_key(And(p, q)) == canonical_key(And(q, p))
        assert canonical_key(x + y) == canonical_key(y + x)
        assert canonical_key(Or(p, q)) == canonical_key(Or(q, p))

    def test_noncommutative_order_sensitive(self):
        assert canonical_key(x <= y) != canonical_key(y <= x)
        assert canonical_key(x < y) != canonical_key(x <= y)

    def test_scale_coefficient_in_key(self):
        assert canonical_key(2 * x) != canonical_key(3 * x)
        # Neg(Scale(2, x)) and Scale(-2, x) are structurally distinct —
        # canonical_key is injective on structure; it is linarith (and
        # hence the pipeline's atom canonicalization) that unifies them
        assert canonical_key(Neg(Mul(2, x))) != canonical_key(Mul(-2, x))
        assert LinExpr.from_term(Neg(Mul(2, x))).coeffs == LinExpr.from_term(
            Mul(-2, x)
        ).coeffs
        assert normalize_atom(Neg(Mul(2, x)) <= y) == normalize_atom(Mul(-2, x) <= y)

    def test_exact_rational_values(self):
        assert canonical_key(RealVal(Fraction(1, 3))) != canonical_key(
            RealVal(Fraction(1, 2))
        )


class TestEvaluate:
    def test_nested_real_and_bool_ite(self):
        f = Ite(p, Ite(q, x, y), z)
        env = {p: True, q: False, x: 1, y: 7, z: 9}
        assert evaluate(f, env) == 7
        g = Ite(Ite(p, q, Not(q)), x, y)
        assert evaluate(g, {p: False, q: False, x: 2, y: 5}) == 2

    def test_neg_of_scale(self):
        f = Neg(Mul(3, x))
        assert f.kind is Kind.NEG
        assert evaluate(f, {x: Fraction(2)}) == -6
        # linarith agrees
        assert LinExpr.from_term(f).coeffs == {x: Fraction(-3)}

    def test_nonlinear_scale_product(self):
        f = Mul(x, y)  # structurally allowed, value=None
        assert f.value is None
        assert evaluate(f, {x: Fraction(3), y: Fraction(4)}) == 12

    def test_nary_and_or(self):
        f = And(p, q, x <= 1)
        assert evaluate(f, {p: True, q: True, x: 0}) is True
        assert evaluate(f, {p: True, q: False, x: 0}) is False
        g = Or(p, q, x <= 1)
        assert evaluate(g, {p: False, q: False, x: 5}) is False


class TestAtomNormalization:
    def test_strict_vs_nonstrict(self):
        le = normalize_atom(x <= y)
        lt = normalize_atom(x < y)
        assert le.strict is False and lt.strict is True
        assert le.expr == lt.expr and le.bound == lt.bound

    def test_ge_gt_are_lower_atoms(self):
        ge = normalize_atom(x >= 3)  # builder rewrites to 3 <= x
        assert ge.upper is False and ge.bound == 3
        assert ge == normalize_atom(RealVal(3) <= x)
        gt = normalize_atom(x > 3)
        assert gt.upper is False and gt.strict is True

    def test_negative_lead_coefficient_flips_direction(self):
        # -x <= -3  normalizes to  x >= 3  (lower atom, lead coeff +1)
        atom = normalize_atom(Neg(x) <= RealVal(-3))
        assert atom.upper is False
        assert atom.bound == 3
        assert atom.expr == ((x, Fraction(1)),)

    def test_scaled_spellings_share_atom(self):
        a = normalize_atom(2 * x + 2 * y <= 6)
        b = normalize_atom(x + y <= 3)
        assert a == b

    def test_negate_roundtrip(self):
        a = normalize_atom(x < y)
        assert a.negate().negate() == a
        assert a.negate().strict is False
        assert a.negate().upper is not a.upper

    def test_holds_strictness(self):
        a = normalize_atom(x < RealVal(2))
        assert a.holds({x: Fraction(1)})
        assert not a.holds({x: Fraction(2)})
        b = normalize_atom(x <= RealVal(2))
        assert b.holds({x: Fraction(2)})
