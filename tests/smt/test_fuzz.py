"""Differential fuzz of the compile pipeline (pytest wrapper around
scripts/smt_fuzz.py).  Deselect with ``-m 'not fuzz'``."""

import importlib.util
import pathlib

import pytest

_SCRIPT = pathlib.Path(__file__).resolve().parents[2] / "scripts" / "smt_fuzz.py"
_spec = importlib.util.spec_from_file_location("smt_fuzz", _SCRIPT)
smt_fuzz = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(smt_fuzz)

pytestmark = pytest.mark.fuzz


@pytest.mark.parametrize("seed", [11, 1300, 777000])
def test_compiled_vs_raw_parity(seed):
    assert smt_fuzz.run(n=40, seed=seed, depth=3) == 0


def test_deeper_formulas():
    assert smt_fuzz.run(n=15, seed=424242, depth=4) == 0
