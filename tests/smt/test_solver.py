"""Integration tests of the full DPLL(T) solver, including a differential
property test against brute-force evaluation of random boolean/LRA mixes."""

import itertools
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import (
    And,
    Bool,
    Eq,
    Iff,
    Implies,
    Ite,
    Not,
    Or,
    Real,
    RealVal,
    Solver,
    UnknownResultError,
    check_formulas,
    evaluate,
    sat,
    unsat,
)

x, y, z = Real("x"), Real("y"), Real("z")
a, b, c = Bool("a"), Bool("b"), Bool("c")


class TestPureLRA:
    def test_feasible_conjunction(self):
        s = Solver()
        s.add(x + y <= 4, x >= 1, y >= 2)
        assert s.check() is sat
        m = s.model()
        assert m.value(x) >= 1 and m.value(y) >= 2
        assert m.value(x) + m.value(y) <= 4

    def test_infeasible_conjunction(self):
        s = Solver()
        s.add(x + y <= 4, x >= 2, y > 2)
        assert s.check() is unsat

    def test_equalities(self):
        s = Solver()
        s.add(Eq(x + y, 5), Eq(x - y, 1))
        assert s.check() is sat
        m = s.model()
        assert m.value(x) == 3 and m.value(y) == 2

    def test_strict_chain(self):
        s = Solver()
        s.add(x > 0, y > x, z > y, z < Fraction(3, 1000))
        assert s.check() is sat
        m = s.model()
        assert 0 < m.value(x) < m.value(y) < m.value(z) < Fraction(3, 1000)

    def test_disequality(self):
        s = Solver()
        s.add(x.neq(0), x >= 0, x <= 0)
        assert s.check() is unsat

    def test_rational_coefficients(self):
        s = Solver()
        s.add(Eq(Fraction(1, 3) * x + Fraction(1, 6) * y, 1), Eq(y, x))
        assert s.check() is sat
        assert s.model().value(x) == 2


class TestBooleanArithMix:
    def test_disjunction_of_ranges(self):
        s = Solver()
        s.add(Or(x >= 5, x <= -5), x >= -1, x <= 1)
        assert s.check() is unsat

    def test_implication_propagates_bound(self):
        s = Solver()
        s.add(Implies(a, x >= 10), a, x <= 20)
        assert s.check() is sat
        assert s.model().value(x) >= 10

    def test_real_ite(self):
        s = Solver()
        s.add(Eq(x, Ite(a, RealVal(3), RealVal(5))), Not(a))
        assert s.check() is sat
        assert s.model().value(x) == 5

    def test_nested_ite(self):
        s = Solver()
        s.add(Eq(x, Ite(a, Ite(b, RealVal(1), RealVal(2)), RealVal(3))), a, Not(b))
        assert s.check() is sat
        assert s.model().value(x) == 2

    def test_iff_with_atom(self):
        s = Solver()
        s.add(Iff(a, x >= 3), Not(a), x >= 2)
        assert s.check() is sat
        m = s.model()
        assert 2 <= m.value(x) < 3

    def test_at_least_one_bound_active(self):
        s = Solver()
        s.add(Or(And(x >= 1, x <= 2), And(x >= 5, x <= 6)), x >= 3)
        assert s.check() is sat
        assert 5 <= s.model().value(x) <= 6


class TestIncremental:
    def test_push_pop(self):
        s = Solver()
        s.add(x >= 0, x <= 10)
        assert s.check() is sat
        s.push()
        s.add(x >= 20)
        assert s.check() is unsat
        s.pop()
        assert s.check() is sat

    def test_nested_frames(self):
        s = Solver()
        s.add(x >= 0)
        s.push()
        s.add(x <= 5)
        s.push()
        s.add(x >= 6)
        assert s.check() is unsat
        s.pop()
        assert s.check() is sat
        assert s.model().value(x) <= 5
        s.pop()
        s.add(x >= 100)
        assert s.check() is sat

    def test_pop_without_push_raises(self):
        with pytest.raises(IndexError):
            Solver().pop()

    def test_assertions_tracking(self):
        s = Solver()
        s.add(x >= 0)
        s.push()
        s.add(x <= 5)
        assert len(s.assertions()) == 2
        s.pop()
        assert len(s.assertions()) == 1

    def test_model_unavailable_after_unsat(self):
        s = Solver()
        s.add(x >= 1, x <= 0)
        assert s.check() is unsat
        with pytest.raises(UnknownResultError):
            s.model()

    def test_many_incremental_adds(self):
        s = Solver()
        for i in range(20):
            s.add(x >= i)
            assert s.check() is sat
            assert s.model().value(x) >= i
        s.add(x <= 5)
        assert s.check() is unsat


class TestHelpers:
    def test_check_formulas(self):
        assert check_formulas([x >= 1, x <= 2]) is sat
        assert check_formulas([x >= 3, x <= 2]) is unsat

    def test_result_not_boolean(self):
        with pytest.raises(TypeError):
            bool(sat)


# ---------------------------------------------------------------------------
# Differential testing: random formulas over a small boolean skeleton and a
# discretized real variable, checked against brute-force evaluation.
# ---------------------------------------------------------------------------

atom_pool = [
    x <= 0, x <= 2, x >= 1, x >= 3, x < 4, x > -1,
    y <= 1, y >= 0, Eq(y, 2), x + y <= 3, x - y >= 1,
]
bool_pool = [a, b]


@st.composite
def formulas(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.integers(0, len(atom_pool) + len(bool_pool) - 1))
        pool = atom_pool + bool_pool
        return pool[choice]
    op = draw(st.sampled_from(["and", "or", "not", "implies"]))
    if op == "not":
        return Not(draw(formulas(depth + 1)))
    f1 = draw(formulas(depth + 1))
    f2 = draw(formulas(depth + 1))
    if op == "and":
        return And(f1, f2)
    if op == "or":
        return Or(f1, f2)
    return Implies(f1, f2)


def brute_force_check(formula) -> bool:
    """Satisfiability over a grid that covers every atom region boundary."""
    grid = [Fraction(v, 2) for v in range(-4, 11)]
    for xv in grid:
        for yv in grid:
            for av in (False, True):
                for bv in (False, True):
                    env = {x: xv, y: yv, a: av, b: bv}
                    if evaluate(formula, env):
                        return True
    return False


class TestDifferential:
    @given(formula=formulas())
    @settings(max_examples=80, deadline=None)
    def test_sat_implies_model_correct(self, formula):
        s = Solver()
        s.add(formula)
        result = s.check()
        if result is sat:
            m = s.model()
            env = {v: m.value(v) for v in (x, y, a, b)}
            assert evaluate(formula, env) is True

    @given(formula=formulas())
    @settings(max_examples=80, deadline=None)
    def test_brute_force_sat_never_unsat(self, formula):
        # the grid covers all atom boundaries at half-integer resolution,
        # so grid-SAT implies real-SAT; solver must agree
        if brute_force_check(formula):
            assert check_formulas([formula]) is sat
