"""CDCL SAT core tests: hand-written instances, pigeonhole, and a
differential property test against brute-force enumeration."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.smt.sat import SatSolver, luby


def make_solver(nvars: int) -> SatSolver:
    s = SatSolver()
    for _ in range(nvars):
        s.new_var()
    return s


class TestBasics:
    def test_empty_is_sat(self):
        assert make_solver(0).solve() is True

    def test_unit(self):
        s = make_solver(1)
        s.add_clause([1])
        assert s.solve() is True
        assert s.model_value(1) is True

    def test_contradiction(self):
        s = make_solver(1)
        s.add_clause([1])
        assert s.add_clause([-1]) is False
        assert s.solve() is False

    def test_simple_chain(self):
        s = make_solver(3)
        s.add_clause([1])
        s.add_clause([-1, 2])
        s.add_clause([-2, 3])
        assert s.solve() is True
        assert s.model_value(3) is True

    def test_tautology_ignored(self):
        s = make_solver(2)
        s.add_clause([1, -1])
        assert s.solve() is True

    def test_duplicate_literals_deduped(self):
        s = make_solver(1)
        s.add_clause([1, 1, 1])
        assert s.solve() is True
        assert s.model_value(1) is True

    def test_unsat_requires_conflict(self):
        s = make_solver(2)
        for clause in ([1, 2], [1, -2], [-1, 2], [-1, -2]):
            s.add_clause(clause)
        assert s.solve() is False


class TestAssumptions:
    def test_assumption_forces_value(self):
        s = make_solver(2)
        s.add_clause([1, 2])
        assert s.solve(assumptions=[-1]) is True
        assert s.model_value(2) is True

    def test_conflicting_assumption(self):
        s = make_solver(1)
        s.add_clause([1])
        assert s.solve(assumptions=[-1]) is False
        # without the assumption it is still satisfiable
        assert s.solve() is True

    def test_incremental_after_solve(self):
        s = make_solver(2)
        s.add_clause([1, 2])
        assert s.solve() is True
        s.add_clause([-1])
        s.add_clause([-2])
        assert s.solve() is False


def pigeonhole(s: SatSolver, holes: int):
    """n+1 pigeons into n holes (classically hard, small sizes only)."""
    pigeons = holes + 1
    var = {}
    for p in range(pigeons):
        for h in range(holes):
            var[p, h] = s.new_var()
    for p in range(pigeons):
        s.add_clause([var[p, h] for h in range(holes)])
    for h in range(holes):
        for p1, p2 in itertools.combinations(range(pigeons), 2):
            s.add_clause([-var[p1, h], -var[p2, h]])


class TestPigeonhole:
    def test_php_3(self):
        s = SatSolver()
        pigeonhole(s, 3)
        assert s.solve() is False

    def test_php_4(self):
        s = SatSolver()
        pigeonhole(s, 4)
        assert s.solve() is False

    def test_php_sat_direction(self):
        # n pigeons into n holes is satisfiable
        s = SatSolver()
        holes = 3
        var = {}
        for p in range(holes):
            for h in range(holes):
                var[p, h] = s.new_var()
        for p in range(holes):
            s.add_clause([var[p, h] for h in range(holes)])
        for h in range(holes):
            for p1, p2 in itertools.combinations(range(holes), 2):
                s.add_clause([-var[p1, h], -var[p2, h]])
        assert s.solve() is True


def brute_force_sat(nvars: int, clauses: list[list[int]]) -> bool:
    for bits in itertools.product([False, True], repeat=nvars):
        ok = True
        for clause in clauses:
            if not any(bits[abs(l) - 1] == (l > 0) for l in clause):
                ok = False
                break
        if ok:
            return True
    return False


clause_strategy = st.lists(
    st.lists(
        st.integers(min_value=1, max_value=6).flatmap(
            lambda v: st.sampled_from([v, -v])
        ),
        min_size=1,
        max_size=4,
    ),
    min_size=1,
    max_size=24,
)


class TestDifferential:
    @given(clauses=clause_strategy)
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force(self, clauses):
        nvars = 6
        s = make_solver(nvars)
        ok = True
        for clause in clauses:
            if not s.add_clause(clause):
                ok = False
                break
        result = s.solve() if ok else False
        assert result == brute_force_sat(nvars, clauses)

    @given(clauses=clause_strategy)
    @settings(max_examples=60, deadline=None)
    def test_model_satisfies_clauses(self, clauses):
        nvars = 6
        s = make_solver(nvars)
        ok = all(s.add_clause(c) for c in clauses)
        if not ok or s.solve() is not True:
            return
        for clause in clauses:
            # clauses satisfied at root are dropped; re-check semantically
            assert any(s.model_value(abs(l)) == (l > 0) for l in clause)


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]
