"""DIMACS reader/writer tests, including randomized roundtrips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt.dimacs import DimacsError, parse_dimacs, solve_dimacs, to_dimacs


SAMPLE = """\
c a comment
p cnf 3 2
1 -3 0
2 3
-1 0
"""


class TestParse:
    def test_sample(self):
        nvars, clauses = parse_dimacs(SAMPLE)
        assert nvars == 3
        assert clauses == [[1, -3], [2, 3, -1]]

    def test_missing_header(self):
        with pytest.raises(DimacsError):
            parse_dimacs("1 2 0")

    def test_unterminated_clause(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf 2 1\n1 2")

    def test_out_of_range_literal(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf 1 1\n2 0")

    def test_satlib_trailer_tolerated(self):
        nvars, clauses = parse_dimacs("p cnf 1 1\n1 0\n%\n0")
        assert clauses == [[1]]


class TestSolve:
    def test_sat_instance(self):
        verdict, model = solve_dimacs("p cnf 2 2\n1 2 0\n-1 0\n")
        assert verdict is True
        assert -1 in model and 2 in model

    def test_unsat_instance(self):
        verdict, model = solve_dimacs("p cnf 1 2\n1 0\n-1 0\n")
        assert verdict is False
        assert model is None

    def test_model_satisfies_all_clauses(self):
        text = "p cnf 4 4\n1 2 0\n-2 3 0\n-3 -1 4 0\n-4 2 0\n"
        verdict, model = solve_dimacs(text)
        assert verdict is True
        assignment = {abs(l): l > 0 for l in model}
        _n, clauses = parse_dimacs(text)
        for clause in clauses:
            assert any(assignment[abs(l)] == (l > 0) for l in clause)


class TestWrite:
    def test_roundtrip(self):
        clauses = [[1, -2], [3], [-1, -3, 2]]
        text = to_dimacs(3, clauses)
        nvars, parsed = parse_dimacs(text)
        assert nvars == 3 and parsed == clauses

    def test_invalid_literal_rejected(self):
        with pytest.raises(DimacsError):
            to_dimacs(2, [[3]])
        with pytest.raises(DimacsError):
            to_dimacs(2, [[0]])

    @given(
        clauses=st.lists(
            st.lists(
                st.integers(min_value=1, max_value=5).flatmap(
                    lambda v: st.sampled_from([v, -v])
                ),
                min_size=1, max_size=4,
            ),
            min_size=1, max_size=12,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_random_roundtrip(self, clauses):
        text = to_dimacs(5, clauses)
        _n, parsed = parse_dimacs(text)
        assert parsed == clauses
