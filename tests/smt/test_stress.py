"""Stress/property tests of the solver: incremental-vs-fresh equivalence
and randomized mixed instances."""

import random
from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.smt import (
    And,
    Bool,
    Implies,
    Not,
    Or,
    Real,
    RealVal,
    Solver,
    check_formulas,
    sat,
    unsat,
)

VARS = [Real(f"st_x{i}") for i in range(4)]
BOOLS = [Bool(f"st_b{i}") for i in range(3)]


def random_atom(rng: random.Random):
    v = rng.choice(VARS)
    c = Fraction(rng.randint(-6, 6), rng.choice([1, 2]))
    kind = rng.randrange(4)
    if kind == 0:
        return v <= RealVal(c)
    if kind == 1:
        return v >= RealVal(c)
    w = rng.choice(VARS)
    if kind == 2:
        return v + w <= RealVal(c)
    return v - w >= RealVal(c)


def random_formula(rng: random.Random, depth: int = 2):
    if depth == 0 or rng.random() < 0.4:
        if rng.random() < 0.25:
            return rng.choice(BOOLS)
        return random_atom(rng)
    op = rng.randrange(3)
    f1 = random_formula(rng, depth - 1)
    f2 = random_formula(rng, depth - 1)
    if op == 0:
        return And(f1, f2)
    if op == 1:
        return Or(f1, f2)
    return Implies(f1, Not(f2))


class TestIncrementalEquivalence:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_incremental_matches_fresh(self, seed):
        """Adding formulas one-by-one with checks in between must agree
        with a single fresh solve of the conjunction."""
        rng = random.Random(seed)
        formulas = [random_formula(rng) for _ in range(4)]

        incremental = Solver()
        inc_results = []
        for f in formulas:
            incremental.add(f)
            inc_results.append(incremental.check())

        for i in range(len(formulas)):
            fresh = check_formulas(formulas[: i + 1])
            assert inc_results[i] is fresh, (
                f"prefix {i}: incremental={inc_results[i]} fresh={fresh}"
            )

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_push_pop_is_erasure(self, seed):
        """check() after push/add/pop must agree with never having added."""
        rng = random.Random(seed)
        base = [random_formula(rng) for _ in range(3)]
        extra = random_formula(rng)

        s = Solver()
        s.add(*base)
        before = s.check()
        s.push()
        s.add(extra)
        s.check()
        s.pop()
        after = s.check()
        assert before is after

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_models_satisfy_assertions(self, seed):
        rng = random.Random(seed)
        formulas = [random_formula(rng) for _ in range(4)]
        s = Solver()
        s.add(*formulas)
        if s.check() is sat:
            m = s.model()
            from repro.smt import evaluate

            env = {v: m.value(v) for v in VARS + BOOLS}
            for f in formulas:
                assert evaluate(f, env) is True


class TestScaling:
    def test_long_bound_chain(self):
        s = Solver()
        xs = [Real(f"chain{i}") for i in range(120)]
        for lo, hi in zip(xs, xs[1:]):
            s.add(hi >= lo + 1)
        s.add(xs[0] >= 0)
        s.add(xs[-1] <= 1000)
        assert s.check() is sat
        s.add(xs[-1] <= 100)
        assert s.check() is unsat

    def test_many_disjuncts(self):
        s = Solver()
        v = Real("many_d")
        s.add(Or(*[v.eq(RealVal(i)) for i in range(30)]))
        s.add(v >= 29)
        assert s.check() is sat
        assert s.model().value(v) == 29

    def test_deep_nesting(self):
        formula = BOOLS[0]
        v = Real("deep")
        for i in range(30):
            formula = Or(And(formula, v >= i), v <= -1)
        s = Solver()
        s.add(formula, v >= 0)
        assert s.check() is sat
