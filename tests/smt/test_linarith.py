"""Unit + property tests for linear-arithmetic normalization."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.smt import NonLinearError, Real, RealVal
from repro.smt.linarith import LinAtom, LinExpr, normalize_atom

x, y, z = Real("x"), Real("y"), Real("z")

rationals = st.fractions(
    min_value=Fraction(-8), max_value=Fraction(8), max_denominator=4
)


class TestLinExpr:
    def test_from_simple_term(self):
        e = LinExpr.from_term(2 * x + 3 * y - 1)
        assert e.coeffs == {x: 2, y: 3}
        assert e.const == -1

    def test_cancellation(self):
        e = LinExpr.from_term(x - x + y)
        assert e.coeffs == {y: 1}

    def test_nested_scaling(self):
        e = LinExpr.from_term(2 * (x + 3 * (y - x)))
        assert e.coeffs == {x: -4, y: 6}

    def test_nonlinear_rejected(self):
        with pytest.raises(NonLinearError):
            LinExpr.from_term(x * y)

    def test_evaluate(self):
        e = LinExpr.from_term(2 * x + y + 5)
        assert e.evaluate({x: Fraction(1), y: Fraction(2)}) == 9

    @given(a=rationals, b=rationals, c=rationals)
    def test_evaluate_matches_construction(self, a, b, c):
        e = LinExpr.from_term(RealVal(a) * x + RealVal(b) * y + RealVal(c))
        env = {x: Fraction(3, 2), y: Fraction(-2)}
        assert e.evaluate(env) == a * Fraction(3, 2) + b * Fraction(-2) + c


class TestNormalizeAtom:
    def test_canonical_leading_coefficient(self):
        a1 = normalize_atom(2 * x + 2 * y <= 6)
        a2 = normalize_atom(x + y <= 3)
        assert a1 == a2

    def test_negative_leading_flips_direction(self):
        a = normalize_atom(-x <= 3)
        assert isinstance(a, LinAtom)
        assert not a.upper  # x >= -3
        assert a.bound == -3

    def test_ground_atom_folds(self):
        # ground atoms fold to bools at construction time already
        from repro.smt import TRUE

        assert (RealVal(1) <= RealVal(2)) is TRUE

    def test_strictness_preserved(self):
        a = normalize_atom(x < 5)
        assert a.strict and a.upper and a.bound == 5

    def test_negate_roundtrip(self):
        a = normalize_atom(x + y <= 3)
        n = a.negate()
        assert n.upper != a.upper
        assert n.strict != a.strict
        assert n.negate() == a

    @given(
        ax=rationals, ay=rationals, b=rationals,
        vx=rationals, vy=rationals,
    )
    def test_holds_matches_direct_evaluation(self, ax, ay, b, vx, vy):
        from repro.smt import FALSE, TRUE

        term = RealVal(ax) * x + RealVal(ay) * y <= RealVal(b)
        expected = ax * vx + ay * vy <= b
        env = {x: vx, y: vy}
        if term is TRUE or term is FALSE:
            # ground atoms fold at construction time
            assert (term is TRUE) == expected
            return
        atom = normalize_atom(term)
        assert atom.holds(env) == expected

    @given(ax=rationals, b=rationals, vx=rationals)
    def test_negation_is_complement(self, ax, b, vx):
        from repro.smt import FALSE, TRUE

        term = RealVal(ax) * x < RealVal(b)
        if term is TRUE or term is FALSE:
            return
        atom = normalize_atom(term)
        env = {x: vx}
        assert atom.holds(env) != atom.negate().holds(env)
