"""Tests for ITE lifting and equality elimination."""

from fractions import Fraction

from repro.smt import And, Bool, Eq, Ite, Not, Real, RealVal, Solver, sat, unsat
from repro.smt.preprocess import eliminate_eq, lift_real_ites, preprocess
from repro.smt.terms import Kind, Sort

x, y = Real("px"), Real("py")
a = Bool("pa")


def kinds_in(term):
    return {t.kind for t in term.iter_dag()}


class TestEliminateEq:
    def test_eq_becomes_two_les(self):
        out = eliminate_eq(Eq(x, 3))
        assert Kind.EQ not in kinds_in(out)
        assert Kind.LE in kinds_in(out)

    def test_negated_eq(self):
        out = eliminate_eq(Not(Eq(x, y)))
        assert Kind.EQ not in kinds_in(out)

    def test_no_eq_unchanged(self):
        t = And(x <= 3, a)
        assert eliminate_eq(t) is t


class TestLiftRealItes:
    def test_real_ite_removed(self):
        t = Ite(a, RealVal(1), RealVal(2)) <= x
        out = lift_real_ites(t)
        real_ites = [
            n for n in out.iter_dag() if n.kind is Kind.ITE and n.sort is Sort.REAL
        ]
        assert not real_ites

    def test_bool_ite_kept(self):
        t = Ite(a, x <= 1, x >= 2)
        out = lift_real_ites(t)
        assert any(n.kind is Kind.ITE for n in out.iter_dag())

    def test_semantics_preserved(self):
        t = Eq(x, Ite(a, RealVal(3), RealVal(5)))
        s = Solver()
        s.add(t, a, x >= 4)
        assert s.check() is unsat
        s2 = Solver()
        s2.add(t, Not(a), x >= 4)
        assert s2.check() is sat


class TestPreprocess:
    def test_output_has_no_eq_or_real_ite(self):
        t = And(Eq(x, Ite(a, RealVal(1), y)), Not(Eq(y, 7)))
        out = preprocess(t)
        for node in out.iter_dag():
            assert node.kind is not Kind.EQ
            assert not (node.kind is Kind.ITE and node.sort is Sort.REAL)
