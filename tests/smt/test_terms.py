"""Unit tests for the hash-consed term language."""

from fractions import Fraction

import pytest

from repro.smt import (
    FALSE,
    TRUE,
    Add,
    And,
    Bool,
    BoolVal,
    Eq,
    FreshBool,
    FreshReal,
    Iff,
    Implies,
    Ite,
    Not,
    Or,
    Real,
    RealVal,
    SortError,
    Sum,
    evaluate,
    substitute,
)
from repro.smt.terms import Kind, Sort


class TestInterning:
    def test_same_name_same_object(self):
        assert Real("x") is Real("x")
        assert Bool("b") is Bool("b")

    def test_different_sorts_different_objects(self):
        assert Real("v") is not Bool("v")

    def test_structural_sharing(self):
        x, y = Real("x"), Real("y")
        assert (x + y) is (x + y)
        assert And(Bool("a"), Bool("b")) is And(Bool("a"), Bool("b"))

    def test_fresh_names_unique(self):
        assert FreshReal().name != FreshReal().name
        assert FreshBool().name != FreshBool().name


class TestBooleanSimplification:
    def test_and_identity(self):
        a = Bool("a")
        assert And(a) is a
        assert And(a, TRUE) is a
        assert And(a, FALSE) is FALSE
        assert And() is TRUE

    def test_or_identity(self):
        a = Bool("a")
        assert Or(a) is a
        assert Or(a, FALSE) is a
        assert Or(a, TRUE) is TRUE
        assert Or() is FALSE

    def test_flattening(self):
        a, b, c = Bool("a"), Bool("b"), Bool("c")
        assert And(And(a, b), c) is And(a, b, c)
        assert Or(Or(a, b), c) is Or(a, b, c)

    def test_double_negation(self):
        a = Bool("a")
        assert Not(Not(a)) is a
        assert Not(TRUE) is FALSE
        assert Not(FALSE) is TRUE

    def test_implies_constants(self):
        a = Bool("a")
        assert Implies(TRUE, a) is a
        assert Implies(FALSE, a) is TRUE
        assert Implies(a, TRUE) is TRUE
        assert Implies(a, FALSE) is Not(a)

    def test_iff_constants(self):
        a = Bool("a")
        assert Iff(a, a) is TRUE
        assert Iff(a, TRUE) is a
        assert Iff(a, FALSE) is Not(a)

    def test_ite_simplification(self):
        a = Bool("a")
        x, y = Real("x"), Real("y")
        assert Ite(TRUE, x, y) is x
        assert Ite(FALSE, x, y) is y
        assert Ite(a, x, x) is x


class TestArithmetic:
    def test_constant_folding(self):
        assert RealVal(2) + RealVal(3) is RealVal(5)
        assert (RealVal(2) * RealVal(3)).value == 6
        assert (-RealVal(4)).value == -4

    def test_add_drops_zero(self):
        x = Real("x")
        assert Add(x, RealVal(0)) is x
        assert Add() is RealVal(0)

    def test_mul_by_zero_and_one(self):
        x = Real("x")
        assert (0 * x) is RealVal(0)
        assert (1 * x) is x

    def test_nested_scale_collapses(self):
        x = Real("x")
        t = 2 * (3 * x)
        assert t.kind is Kind.SCALE
        assert t.value == 6

    def test_division_by_constant(self):
        x = Real("x")
        t = x / 2
        assert t.kind is Kind.SCALE and t.value == Fraction(1, 2)
        with pytest.raises(SortError):
            x / Real("y")

    def test_sum_helper(self):
        xs = [Real(f"s{i}") for i in range(3)]
        assert Sum(xs) is Add(*xs)

    def test_ground_comparisons_fold(self):
        assert (RealVal(1) <= RealVal(2)) is TRUE
        assert (RealVal(3) < RealVal(2)) is FALSE
        assert Eq(RealVal(2), RealVal(2)) is TRUE


class TestSortChecking:
    def test_bool_in_arith_rejected(self):
        with pytest.raises(SortError):
            Real("x") + Bool("b")

    def test_real_in_bool_rejected(self):
        with pytest.raises(SortError):
            And(Real("x"), Bool("b"))

    def test_comparison_needs_reals(self):
        with pytest.raises(SortError):
            Bool("a") <= Real("x")  # noqa: B015


class TestEvaluate:
    def test_arith(self):
        x, y = Real("x"), Real("y")
        env = {x: Fraction(2), y: Fraction(5)}
        assert evaluate(2 * x + y - 1, env) == Fraction(8)

    def test_boolean(self):
        a, b = Bool("a"), Bool("b")
        env = {a: True, b: False}
        assert evaluate(And(a, Not(b)), env) is True
        assert evaluate(Implies(a, b), env) is False
        assert evaluate(Iff(a, b), env) is False

    def test_atoms(self):
        x = Real("x")
        assert evaluate(x <= 3, {x: Fraction(3)}) is True
        assert evaluate(x < 3, {x: Fraction(3)}) is False
        assert evaluate(Eq(x, 3), {x: Fraction(3)}) is True

    def test_ite(self):
        a, x, y = Bool("a"), Real("x"), Real("y")
        env = {a: False, x: Fraction(1), y: Fraction(9)}
        assert evaluate(Ite(a, x, y), env) == 9


class TestSubstitute:
    def test_var_replacement(self):
        x, y = Real("x"), Real("y")
        t = substitute(x + x + y, {x: RealVal(3)})
        assert evaluate(t, {y: Fraction(1)}) == 7

    def test_identity_when_unmapped(self):
        x, y = Real("x"), Real("y")
        t = x + y
        assert substitute(t, {Real("z"): RealVal(1)}) is t

    def test_bool_substitution(self):
        a, b = Bool("a"), Bool("b")
        t = substitute(And(a, b), {a: TRUE})
        assert t is b


class TestDagIteration:
    def test_iter_dag_yields_each_node_once(self):
        x = Real("x")
        t = (x + 1) + (x + 1)
        nodes = list(t.iter_dag())
        assert len(nodes) == len(set(id(n) for n in nodes))
        assert x in nodes
