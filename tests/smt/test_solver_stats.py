"""SolverStats delta semantics, as_dict export, and deadline aborts."""

import time

import pytest

from repro.smt import CheckOptions, Real, Solver, sat, unknown, unsat


def _hard_instance(solver: Solver, n: int = 9, prefix: str = "ph") -> None:
    """A pigeonhole-flavoured instance: n+1 items in n slots (unsat,
    requires real search so deadlines/conflict budgets can bite)."""
    from repro.smt import And, Or

    xs = [[Real(f"{prefix}_{p}_{h}") for h in range(n)] for p in range(n + 1)]
    for p in range(n + 1):
        solver.add(Or(*[And(xs[p][h] >= 1) for h in range(n)]))
        for h in range(n):
            solver.add(xs[p][h] >= 0, xs[p][h] <= 1)
    for h in range(n):
        for p1 in range(n + 1):
            for p2 in range(p1 + 1, n + 1):
                solver.add(xs[p1][h] + xs[p2][h] <= 1)


class TestStatsDeltas:
    def test_cumulative_is_sum_of_deltas(self):
        s = Solver()
        x, y = Real("sd_x"), Real("sd_y")
        s.add(x >= 1, y >= 2)
        assert s.check() is sat
        first = s.stats.last_check_conflicts
        s.add(x + y <= 2)  # now unsat
        assert s.check() is unsat
        second = s.stats.last_check_conflicts
        assert s.stats.checks == 2
        assert s.stats.conflicts == first + second

    def test_as_dict_round_trips_all_fields(self):
        s = Solver()
        x = Real("sd_d")
        s.add(x >= 0)
        s.check()
        d = s.stats.as_dict()
        for key in (
            "checks", "conflicts", "decisions", "propagations", "pivots",
            "restarts", "solve_time", "last_check_conflicts",
            "last_check_decisions", "last_check_propagations",
            "last_check_pivots", "last_check_restarts", "last_check_time",
        ):
            assert key in d
        assert d["checks"] == 1

    def test_two_instances_do_not_share_stats(self):
        a, b = Solver(), Solver()
        x = Real("sd_two")
        a.add(x >= 1)
        a.check()
        assert b.stats.checks == 0
        b.add(x >= 1)
        b.check()
        assert a.stats.checks == 1 and b.stats.checks == 1


class TestDeadline:
    def test_expired_deadline_returns_unknown(self):
        s = Solver()
        _hard_instance(s, n=8, prefix="dl1")
        assert s.check(CheckOptions(deadline=time.perf_counter())) is unknown

    def test_generous_deadline_solves(self):
        s = Solver()
        x = Real("dl_easy")
        s.add(x >= 1)
        assert s.check(CheckOptions(deadline=time.perf_counter() + 60.0)) is sat

    def test_max_conflicts_still_works(self):
        s = Solver()
        _hard_instance(s, n=8, prefix="dl2")
        assert s.check(CheckOptions(max_conflicts=1)) is unknown

    def test_legacy_kwargs_removed(self):
        # the 1.x deprecation shim was deleted in 2.0: the keyword form
        # is a hard TypeError now
        s = Solver()
        _hard_instance(s, n=8, prefix="dl3")
        with pytest.raises(TypeError):
            s.check(max_conflicts=1)
