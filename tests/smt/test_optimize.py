"""Tests for binary-search optimization."""

from fractions import Fraction

from repro.smt import Or, Real, Solver
from repro.smt.optimize import maximize, minimize

x, y = Real("x"), Real("y")


class TestMaximize:
    def test_simple_box(self):
        s = Solver()
        s.add(x >= 0, x <= 7)
        res = maximize(s, x, Fraction(0), Fraction(100), Fraction(1, 64))
        assert res.feasible
        assert Fraction(7) - res.best_value <= Fraction(1, 64)

    def test_disjoint_ranges_picks_higher(self):
        s = Solver()
        s.add(Or(x <= 3, x >= 7), x >= 0, x <= 8)
        res = maximize(s, x, Fraction(0), Fraction(20), Fraction(1, 64))
        assert res.best_value > 6

    def test_objective_expression(self):
        s = Solver()
        s.add(x >= 0, x <= 3, y >= 0, y <= 4)
        res = maximize(s, x + y, Fraction(0), Fraction(10), Fraction(1, 32))
        assert Fraction(7) - res.best_value <= Fraction(1, 32)

    def test_infeasible_at_lo(self):
        s = Solver()
        s.add(x <= -1)
        res = maximize(s, x, Fraction(0), Fraction(10))
        assert not res.feasible
        assert res.model is None

    def test_solver_state_restored(self):
        s = Solver()
        s.add(x >= 0, x <= 7)
        before = len(s.assertions())
        maximize(s, x, Fraction(0), Fraction(10))
        assert len(s.assertions()) == before

    def test_model_attains_best(self):
        s = Solver()
        s.add(x >= 0, x <= 5)
        res = maximize(s, x, Fraction(0), Fraction(10), Fraction(1, 16))
        assert res.model is not None
        assert res.model.value(x) == res.best_value


class TestMinimize:
    def test_simple(self):
        s = Solver()
        s.add(x >= 3, x <= 10)
        res = minimize(s, x, Fraction(0), Fraction(20), Fraction(1, 64))
        assert res.feasible
        assert res.best_value - Fraction(3) <= Fraction(1, 64)

    def test_infeasible(self):
        s = Solver()
        s.add(x >= 100)
        res = minimize(s, x, Fraction(0), Fraction(10))
        assert not res.feasible
