"""Simplex core tests: bounds, pivoting, conflicts, backtracking, and a
differential feasibility test against scipy.optimize.linprog."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.optimize import linprog

from repro.smt.simplex import DRat, Simplex


class TestDRat:
    def test_ordering_lexicographic(self):
        assert DRat(1) < DRat(2)
        assert DRat(1) < DRat(1, 1)
        assert DRat(1, -1) < DRat(1)
        assert DRat(1, -1) < DRat(1, 1)

    def test_arithmetic(self):
        a, b = DRat(1, 2), DRat(3, -1)
        assert (a + b) == DRat(4, 1)
        assert (a - b) == DRat(-2, 3)
        assert a.scale(Fraction(2)) == DRat(2, 4)

    def test_concretize(self):
        assert DRat(1, -2).concretize(Fraction(1, 4)) == Fraction(1, 2)


class TestSimplexBasics:
    def test_single_var_bounds(self):
        s = Simplex()
        v = s.new_var()
        assert s.assert_lower(v, DRat(1), "l") is None
        assert s.assert_upper(v, DRat(3), "u") is None
        assert s.check() is None
        assert 1 <= s.model()[v] <= 3

    def test_immediate_bound_conflict(self):
        s = Simplex()
        v = s.new_var()
        assert s.assert_lower(v, DRat(5), "l") is None
        conflict = s.assert_upper(v, DRat(2), "u")
        assert conflict is not None
        assert set(conflict) == {"l", "u"}

    def test_row_feasibility(self):
        s = Simplex()
        x_var, y_var = s.new_var(), s.new_var()
        total = s.add_row({x_var: Fraction(1), y_var: Fraction(1)})
        s.assert_lower(x_var, DRat(1), "lx")
        s.assert_lower(y_var, DRat(2), "ly")
        s.assert_upper(total, DRat(4), "ut")
        assert s.check() is None
        m = s.model()
        assert m[x_var] >= 1 and m[y_var] >= 2 and m[x_var] + m[y_var] <= 4

    def test_row_conflict_explanation(self):
        s = Simplex()
        x_var, y_var = s.new_var(), s.new_var()
        total = s.add_row({x_var: Fraction(1), y_var: Fraction(1)})
        s.assert_lower(x_var, DRat(3), "lx")
        s.assert_lower(y_var, DRat(3), "ly")
        s.assert_upper(total, DRat(4), "ut")
        conflict = s.check()
        assert conflict is not None
        assert set(conflict) == {"lx", "ly", "ut"}

    def test_strict_bounds_separated(self):
        s = Simplex()
        v = s.new_var()
        s.assert_lower(v, DRat(0, 1), "l")  # v > 0
        s.assert_upper(v, DRat(1, -1), "u")  # v < 1
        assert s.check() is None
        val = s.model()[v]
        assert 0 < val < 1

    def test_strict_conflict(self):
        s = Simplex()
        v = s.new_var()
        s.assert_lower(v, DRat(1, 1), "l")  # v > 1
        conflict = s.assert_upper(v, DRat(1, 0), "u")  # v <= 1
        assert conflict is not None


class TestBacktracking:
    def test_pop_restores_bounds(self):
        s = Simplex()
        v = s.new_var()
        s.assert_lower(v, DRat(0), "l0")
        s.push_level()
        s.assert_lower(v, DRat(10), "l10")
        assert s.lower[v] == DRat(10)
        s.pop_levels(1)
        assert s.lower[v] == DRat(0)
        s.assert_upper(v, DRat(5), "u5")
        assert s.check() is None

    def test_pop_multiple_levels(self):
        s = Simplex()
        v = s.new_var()
        for i in range(5):
            s.push_level()
            s.assert_lower(v, DRat(i), f"l{i}")
        s.pop_levels(3)
        assert s.lower[v] == DRat(1)
        s.pop_levels(2)
        assert s.lower[v] is None

    def test_conflict_then_pop_then_feasible(self):
        s = Simplex()
        x_var, y_var = s.new_var(), s.new_var()
        total = s.add_row({x_var: Fraction(1), y_var: Fraction(1)})
        s.assert_upper(total, DRat(4), "ut")
        s.push_level()
        s.assert_lower(x_var, DRat(3), "lx")
        s.assert_lower(y_var, DRat(3), "ly")
        assert s.check() is not None
        s.pop_levels(1)
        assert s.check() is None

    def test_reset_bounds(self):
        s = Simplex()
        v = s.new_var()
        s.assert_lower(v, DRat(3), "l")
        s.reset_bounds()
        assert s.lower[v] is None and s.lower_tag[v] is None
        assert s.check() is None


small_fracs = st.fractions(
    min_value=Fraction(-5), max_value=Fraction(5), max_denominator=3
)


@st.composite
def lp_instances(draw):
    """Random small LPs: rows a.x <= b over 3 variables with box bounds."""
    nvars = 3
    nrows = draw(st.integers(1, 5))
    rows = []
    for _ in range(nrows):
        coeffs = [draw(small_fracs) for _ in range(nvars)]
        bound = draw(small_fracs)
        rows.append((coeffs, bound))
    boxes = [(draw(small_fracs), draw(small_fracs)) for _ in range(nvars)]
    return rows, boxes


class TestDifferentialAgainstScipy:
    @given(instance=lp_instances())
    @settings(max_examples=100, deadline=None)
    def test_feasibility_matches_linprog(self, instance):
        rows, boxes = instance
        nvars = 3

        s = Simplex()
        svars = [s.new_var() for _ in range(nvars)]
        conflict = None
        for i, (lo, hi) in enumerate(boxes):
            lo, hi = min(lo, hi), max(lo, hi)
            conflict = conflict or s.assert_lower(svars[i], DRat(lo), f"box_lo{i}")
            conflict = conflict or s.assert_upper(svars[i], DRat(hi), f"box_hi{i}")
        for j, (coeffs, bound) in enumerate(rows):
            expr = {svars[i]: c for i, c in enumerate(coeffs) if c != 0}
            if not expr:
                if bound < 0:
                    conflict = conflict or ["ground"]
                continue
            rv = s.add_row(expr)
            conflict = conflict or s.assert_upper(rv, DRat(bound), f"row{j}")
        ours_feasible = conflict is None and s.check() is None

        # scipy reference
        a_ub = [[float(c) for c in coeffs] for coeffs, _b in rows]
        b_ub = [float(b) for _c, b in rows]
        bounds = [(float(min(lo, hi)), float(max(lo, hi))) for lo, hi in boxes]
        ref = linprog(
            c=[0.0] * nvars, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs"
        )
        assert ours_feasible == ref.success

    @given(instance=lp_instances())
    @settings(max_examples=60, deadline=None)
    def test_model_satisfies_constraints(self, instance):
        rows, boxes = instance
        nvars = 3
        s = Simplex()
        svars = [s.new_var() for _ in range(nvars)]
        rowvars = []
        ok = True
        for i, (lo, hi) in enumerate(boxes):
            lo, hi = min(lo, hi), max(lo, hi)
            ok = ok and s.assert_lower(svars[i], DRat(lo), f"lo{i}") is None
            ok = ok and s.assert_upper(svars[i], DRat(hi), f"hi{i}") is None
        for j, (coeffs, bound) in enumerate(rows):
            expr = {svars[i]: c for i, c in enumerate(coeffs) if c != 0}
            if not expr:
                ok = ok and bound >= 0
                continue
            rv = s.add_row(expr)
            rowvars.append((rv, coeffs, bound))
            ok = ok and s.assert_upper(rv, DRat(bound), f"r{j}") is None
        if not ok or s.check() is not None:
            return
        m = s.model()
        for i, (lo, hi) in enumerate(boxes):
            lo, hi = min(lo, hi), max(lo, hi)
            assert lo <= m[svars[i]] <= hi
        for rv, coeffs, bound in rowvars:
            total = sum(c * m[svars[i]] for i, c in enumerate(coeffs))
            assert total <= bound
            assert m[rv] == total
