"""Unit tests for the staged compile pipeline (repro.smt.compile)."""

from fractions import Fraction

import pytest

from repro.runtime.validate import validate_model
from repro.smt import (
    And,
    Bool,
    FALSE,
    Iff,
    Implies,
    Ite,
    Not,
    Or,
    Real,
    RealVal,
    Solver,
    SolverSession,
    canonical_hash,
    compile_query,
    pipeline_disabled,
    pipeline_enabled,
    sat,
    set_pipeline_enabled,
    unsat,
)
from repro.smt.compile import CompileOptions
from repro.smt.rewrite import aux_ite_name, simplify
from repro.smt.terms import intern_stats, interned_count, interned_scope

x, y, z = Real("cx"), Real("cy"), Real("cz")
p, q = Bool("cp"), Bool("cq")


class TestRewrite:
    def test_duplicate_conjuncts_collapse(self):
        f = And(x <= 1, x <= 1, p)
        assert simplify(f) is And(x <= 1, p)

    def test_complementary_literals_fold(self):
        assert simplify(And(p, Not(p))) is FALSE
        assert simplify(Or(p, Not(p))) is simplify(Not(FALSE))

    def test_absorption(self):
        assert simplify(And(p, Or(p, q))) is p
        assert simplify(Or(p, And(p, q))) is p

    def test_reflexive_atoms(self):
        assert simplify(And(x <= x, p)) is p
        assert simplify(Or(x < x, q)) is q


class TestCompile:
    def test_atom_sharing_across_spellings(self):
        # x <= y, 0 <= y - x, and 2x - 2y <= 0 are one half-space
        cq = compile_query((x <= y, RealVal(0) <= y - x, 2 * x - 2 * y <= 0))
        assert len(cq.formulas) == 1
        assert len(cq.atom_table()) == 1

    def test_post_simplification_keys_agree(self):
        a = compile_query((x <= y, p))
        b = compile_query((RealVal(0) <= y - x, p))
        assert a.key == b.key
        # ... while the raw assertion sets hash differently
        assert canonical_hash([x <= y, p]) != canonical_hash(
            [RealVal(0) <= y - x, p]
        )

    def test_definition_inlining_and_reconstruction(self):
        cq = compile_query((x.eq(y + 1), y.eq(2), x + z <= 10))
        assert dict(cq.eliminated) == {x: RealVal(3), y: RealVal(2)}
        assert cq.formulas == (z <= 7,)
        values = cq.reconstruct({z: Fraction(1)})
        assert values[x] == 3 and values[y] == 2

    def test_bounds_conflict_is_false(self):
        cq = compile_query((x <= 2, x >= 3))
        assert cq.is_false()

    def test_bounds_point_fix_eliminates(self):
        cq = compile_query((x <= 2, x >= 2, x + y <= 5))
        assert dict(cq.eliminated) == {x: RealVal(2)}
        assert cq.formulas == (y <= 3,)

    def test_redundant_bounds_pruned(self):
        cq = compile_query((x <= 5, x <= 3, x <= 7, x >= 0, x >= -2))
        # only the tightest upper and lower bound survive
        assert len(cq.atom_table()) == 2

    def test_ite_lifting_is_deterministic(self):
        ite = Ite(p, x, y)
        f = ite <= 3
        name = aux_ite_name(ite)
        assert name.startswith("ite@")
        a = compile_query((f,))
        b = compile_query((f, p))  # different input tuple, no memo hit
        names_a = {t.name for fm in a.formulas for t in fm.iter_dag() if t.is_var()}
        names_b = {t.name for fm in b.formulas for t in fm.iter_dag() if t.is_var()}
        assert name in names_a and name in names_b

    def test_frozen_variable_is_pinned_not_eliminated(self):
        cq = compile_query((x.eq(3), x + y <= 5), frozen=[x])
        assert cq.eliminated == ()
        # x is still constrained in the output (the pin)
        vars_out = {t for f in cq.formulas for t in f.iter_dag() if t.is_var()}
        assert x in vars_out

    def test_memo_returns_same_object(self):
        fs = (x <= y, y <= z)
        assert compile_query(fs) is compile_query(fs)

    def test_compile_idempotent(self):
        cq = compile_query((x.eq(y + 1), Or(p, x <= 2), y >= 0))
        again = compile_query(cq.formulas)
        assert again.formulas == cq.formulas
        assert again.eliminated == ()

    def test_stats_shrink(self):
        cq = compile_query((x.eq(y), y.eq(2), x <= 5, x <= 7))
        st = cq.stats
        assert st.nodes_after < st.nodes_before
        assert st.atoms_after < st.atoms_before
        assert st.vars_eliminated == 2

    def test_options_disable_stages(self):
        opts = CompileOptions(inline_defs=False, propagate_bounds=False)
        cq = compile_query((x.eq(2), x + y <= 5), options=opts)
        assert cq.eliminated == ()


class TestSolverIntegration:
    def test_delta_add_cannot_unsoundly_eliminate(self):
        # x is encoded by the first add; the second must constrain the
        # same x, not substitute it away
        s = Solver()
        s.add(x <= 2)
        s.add(x.eq(3))
        assert s.check() is unsat

    def test_delta_add_reverse_order(self):
        s = Solver()
        s.add(x.eq(3))  # x eliminated here
        s.add(x <= 2)  # rewritten through the elimination map -> 3 <= 2
        assert s.check() is unsat

    def test_model_reconstructs_eliminated_vars(self):
        s = Solver()
        s.add(x.eq(y + 1), y.eq(2), x + z <= 10)
        assert s.check() is sat
        m = s.model()
        assert m.value(x) == 3 and m.value(y) == 2
        # the raw (pre-compile) assertions hold under the model
        validate_model(s.assertions(), m, context="test")

    def test_push_pop_restores_eliminations(self):
        s = Solver()
        s.add(y <= 10)
        s.push()
        s.add(y.eq(20))
        assert s.check() is unsat
        s.pop()
        s.add(y >= 0)
        assert s.check() is sat

    def test_compiled_assertions_differ_from_raw(self):
        s = Solver()
        s.add(x.eq(2), x + y <= 5)
        assert s.assertions() == [x.eq(2), x + y <= 5]
        assert s.compiled_assertions() == [y <= 3]

    def test_raw_path_unchanged(self):
        s = Solver(compile_pipeline=False)
        s.add(x.eq(2), x + y <= 5)
        assert s.compiled_assertions() == s.assertions()
        assert s.check() is sat

    def test_bool_structure_parity(self):
        fs = (Or(p, x <= 1), Implies(p, y >= 2), Iff(q, Not(p)), y + x <= 4)
        a = Solver()
        a.add(*fs)
        b = Solver(compile_pipeline=False)
        b.add(*fs)
        assert a.check() is b.check()

    def test_false_detection_skips_search(self):
        s = Solver()
        s.add(x <= 1, x >= 2)
        assert s.check() is unsat


class _DictCache:
    def __init__(self):
        self.store_ = {}
        self.lookups = 0

    def lookup(self, key):
        self.lookups += 1
        return self.store_.get(key)

    def store(self, key, result, model):
        self.store_[key] = (result, model)


class TestSessionCacheKeys:
    def test_semantically_equal_queries_share_entry(self):
        cache = _DictCache()
        s1 = SolverSession([x <= y, p], cache=cache)
        assert s1.check() is sat
        # different spelling of the same half-space: cache hit
        s2 = SolverSession([RealVal(0) <= y - x, p], cache=cache)
        assert s2.check() is sat
        assert s2.stats.cache_hits == 1
        assert s2.stats.solved == 0

    def test_scope_keys_are_per_delta(self):
        cache = _DictCache()
        sess = SolverSession([y >= 0], cache=cache)
        with sess.scope(y <= 5):
            assert sess.check() is sat
        with sess.scope(y <= 5):
            assert sess.check() is sat
        assert sess.stats.cache_hits == 1


class TestPipelineSwitch:
    def test_context_manager(self):
        assert pipeline_enabled()
        with pipeline_disabled():
            assert not pipeline_enabled()
            s = Solver()
            assert s._pipeline is False
        assert pipeline_enabled()

    def test_set_override_roundtrip(self):
        set_pipeline_enabled(False)
        try:
            assert not pipeline_enabled()
        finally:
            set_pipeline_enabled(None)
        assert pipeline_enabled()


class TestInternManagement:
    def test_stats_shape(self):
        st = intern_stats()
        assert set(st) == {"interned", "hits", "misses"}
        assert st["interned"] == interned_count() > 0

    def test_scope_releases_terms(self):
        before = interned_count()
        with interned_scope():
            for i in range(50):
                Real(f"scoped_{i}") <= i
            assert interned_count() > before
        assert interned_count() == before

    def test_solving_inside_scope(self):
        with interned_scope():
            s = Solver()
            a, b = Real("scope_a"), Real("scope_b")
            s.add(a.eq(b + 1), b >= 0)
            assert s.check() is sat
