"""Tests for the reusable constraint encodings."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.smt import (
    And,
    Bool,
    Real,
    RealVal,
    Solver,
    at_most_one,
    bool_indicator,
    encode_abs,
    encode_max,
    encode_min,
    exactly_one,
    sat,
    select_product,
    selected_constant,
    unsat,
)

r = Real("er")
p, q = Real("ep"), Real("eq")

fracs = st.fractions(min_value=Fraction(-4), max_value=Fraction(4), max_denominator=2)


class TestMinMaxAbs:
    @given(a=fracs, b=fracs)
    @settings(max_examples=30, deadline=None)
    def test_max_is_exact(self, a, b):
        s = Solver()
        s.add(encode_max(r, [RealVal(a), RealVal(b)]))
        assert s.check() is sat
        assert s.model().value(r) == max(a, b)

    @given(a=fracs, b=fracs, c=fracs)
    @settings(max_examples=20, deadline=None)
    def test_min_three_way(self, a, b, c):
        s = Solver()
        s.add(encode_min(r, [RealVal(a), RealVal(b), RealVal(c)]))
        assert s.check() is sat
        assert s.model().value(r) == min(a, b, c)

    @given(a=fracs)
    @settings(max_examples=20, deadline=None)
    def test_abs(self, a):
        s = Solver()
        s.add(encode_abs(r, RealVal(a)))
        assert s.check() is sat
        assert s.model().value(r) == abs(a)

    def test_max_with_variables(self):
        s = Solver()
        s.add(p >= 2, p <= 3, q >= 5, q <= 5, encode_max(r, [p, q]))
        assert s.check() is sat
        assert s.model().value(r) == 5


class TestSelectors:
    def test_exactly_one_sat(self):
        sels = [Bool(f"sel{i}") for i in range(3)]
        s = Solver()
        s.add(exactly_one(sels))
        assert s.check() is sat
        m = s.model()
        assert sum(bool(m.value(b)) for b in sels) == 1

    def test_exactly_one_rejects_two(self):
        sels = [Bool(f"sel2{i}") for i in range(3)]
        s = Solver()
        s.add(exactly_one(sels), sels[0], sels[1])
        assert s.check() is unsat

    def test_at_most_one_allows_zero(self):
        sels = [Bool(f"sel3{i}") for i in range(3)]
        s = Solver()
        s.add(at_most_one(sels), *[~b for b in sels])
        assert s.check() is sat

    def test_selected_constant(self):
        sels = [Bool(f"sel4{i}") for i in range(3)]
        values = [Fraction(-1), Fraction(0), Fraction(2)]
        s = Solver()
        s.add(exactly_one(sels), selected_constant(sels, values, r), sels[2])
        assert s.check() is sat
        assert s.model().value(r) == 2

    def test_select_product(self):
        sels = [Bool(f"sel5{i}") for i in range(3)]
        values = [Fraction(-1), Fraction(0), Fraction(2)]
        s = Solver()
        s.add(
            exactly_one(sels),
            p >= 3, p <= 3,
            select_product(sels, values, p, r),
            sels[0],
        )
        assert s.check() is sat
        assert s.model().value(r) == -3

    def test_bool_indicator(self):
        flag = Bool("flag_ind")
        s = Solver()
        s.add(bool_indicator(flag, r), flag)
        assert s.check() is sat
        assert s.model().value(r) == 1
        s2 = Solver()
        s2.add(bool_indicator(flag, r), ~flag)
        assert s2.check() is sat
        assert s2.model().value(r) == 0
