"""Tests of the generic CEGIS loop on a small toy domain.

Toy problem: synthesize integer parameters (a, b) of f(x) = a*x + b such
that for all x in [0, 10], lo(x) <= f(x) <= hi(x).  The verifier checks
candidate functions by scanning the domain; the generator filters an
explicit candidate set — i.e. the same architecture as CCmatic, but cheap
enough to exercise every loop behaviour (first-solution, find-all,
exhaustion, iteration budget, time budget).
"""

from dataclasses import dataclass

from repro.cegis import CegisLoop, CegisOptions, PruningMode, StopReason


@dataclass(frozen=True)
class LineCandidate:
    a: int
    b: int

    def __call__(self, x: int) -> int:
        return self.a * x + self.b


@dataclass
class ToyResult:
    verified: bool
    counterexample: object


class ToyVerifier:
    """f must satisfy x <= f(x) <= 2x + 3 on 0..10."""

    def __init__(self):
        self.calls = 0

    def find_counterexample(self, cand: LineCandidate, worst_case: bool = False):
        self.calls += 1
        xs = range(0, 11)
        if worst_case:
            # pick the x with the largest violation (prunes more)
            worst, worst_gap = None, 0
            for x in xs:
                gap = max(x - cand(x), cand(x) - (2 * x + 3), 0)
                if gap > worst_gap:
                    worst, worst_gap = x, gap
            return ToyResult(worst is None, worst)
        for x in xs:
            if not (x <= cand(x) <= 2 * x + 3):
                return ToyResult(False, x)
        return ToyResult(True, None)


class ToyGenerator:
    def __init__(self, lo=-3, hi=3):
        self.survivors = [
            LineCandidate(a, b) for a in range(lo, hi + 1) for b in range(lo, hi + 1)
        ]

    def propose(self):
        return self.survivors[0] if self.survivors else None

    def add_counterexample(self, x: int) -> None:
        self.survivors = [c for c in self.survivors if x <= c(x) <= 2 * x + 3]

    def block(self, cand) -> None:
        self.survivors = [c for c in self.survivors if c != cand]


def true_solutions():
    out = set()
    for a in range(-3, 4):
        for b in range(-3, 4):
            if all(x <= a * x + b <= 2 * x + 3 for x in range(11)):
                out.add((a, b))
    return out


class TestLoopBehaviours:
    def test_finds_first_solution(self):
        outcome = CegisLoop(ToyGenerator(), ToyVerifier()).run()
        assert outcome.found
        c = outcome.first
        assert all(x <= c(x) <= 2 * x + 3 for x in range(11))

    def test_find_all_matches_ground_truth(self):
        outcome = CegisLoop(
            ToyGenerator(), ToyVerifier(), CegisOptions(find_all=True)
        ).run()
        assert outcome.exhausted
        assert {(c.a, c.b) for c in outcome.solutions} == true_solutions()

    def test_exhaustion_when_no_solution(self):
        gen = ToyGenerator(lo=-3, hi=-1)  # all-negative slopes can't work
        outcome = CegisLoop(gen, ToyVerifier()).run()
        assert not outcome.found
        assert outcome.exhausted

    def test_max_iterations_respected(self):
        outcome = CegisLoop(
            ToyGenerator(), ToyVerifier(), CegisOptions(max_iterations=2)
        ).run()
        assert outcome.stats.iterations <= 2

    def test_max_solutions(self):
        outcome = CegisLoop(
            ToyGenerator(),
            ToyVerifier(),
            CegisOptions(find_all=True, max_solutions=2),
        ).run()
        assert len(outcome.solutions) == 2

    def test_stats_consistency(self):
        verifier = ToyVerifier()
        outcome = CegisLoop(ToyGenerator(), verifier).run()
        assert outcome.stats.verifier_calls == verifier.calls
        assert outcome.stats.counterexamples == outcome.stats.iterations - len(
            outcome.solutions
        )

    def test_worst_case_cex_not_slower_in_iterations(self):
        plain = CegisLoop(ToyGenerator(), ToyVerifier()).run()
        wce = CegisLoop(
            ToyGenerator(), ToyVerifier(), CegisOptions(worst_case_cex=True)
        ).run()
        assert wce.found and plain.found
        assert wce.stats.iterations <= plain.stats.iterations * 2

    def test_pruning_mode_enum(self):
        assert PruningMode("exact") is PruningMode.EXACT
        assert PruningMode("range") is PruningMode.RANGE


class UnknownResult:
    verified = False
    counterexample = None

    def __init__(self, degraded=False):
        self.unknown = True
        self.degraded = degraded


class TestStopReasons:
    """Every exit path sets an explicit StopReason."""

    def test_solution(self):
        outcome = CegisLoop(ToyGenerator(), ToyVerifier()).run()
        assert outcome.stop_reason is StopReason.SOLUTION

    def test_exhausted(self):
        gen = ToyGenerator(lo=-3, hi=-1)
        outcome = CegisLoop(gen, ToyVerifier()).run()
        assert outcome.stop_reason is StopReason.EXHAUSTED

    def test_find_all_runs_to_exhaustion(self):
        outcome = CegisLoop(
            ToyGenerator(), ToyVerifier(), CegisOptions(find_all=True)
        ).run()
        assert outcome.stop_reason is StopReason.EXHAUSTED

    def test_max_solutions_reports_solution(self):
        outcome = CegisLoop(
            ToyGenerator(), ToyVerifier(),
            CegisOptions(find_all=True, max_solutions=2),
        ).run()
        assert outcome.stop_reason is StopReason.SOLUTION

    def test_max_iterations(self):
        outcome = CegisLoop(
            ToyGenerator(), ToyVerifier(), CegisOptions(max_iterations=2)
        ).run()
        assert outcome.stop_reason is StopReason.MAX_ITERATIONS

    def test_time_budget(self):
        class SlowVerifier(ToyVerifier):
            def find_counterexample(self, cand, worst_case=False):
                import time

                time.sleep(0.02)
                return super().find_counterexample(cand, worst_case)

        outcome = CegisLoop(
            ToyGenerator(lo=-3, hi=-1), SlowVerifier(),
            CegisOptions(time_budget=0.01),
        ).run()
        assert outcome.stop_reason is StopReason.BUDGET
        assert outcome.timed_out

    def test_verifier_unknown_maps_to_budget(self):
        class GiveUpVerifier:
            def find_counterexample(self, cand, worst_case=False):
                return UnknownResult()

        outcome = CegisLoop(ToyGenerator(), GiveUpVerifier()).run()
        assert outcome.stop_reason is StopReason.BUDGET
        assert not outcome.found

    def test_degraded_unknown_maps_to_degraded(self):
        class DegradedVerifier:
            def find_counterexample(self, cand, worst_case=False):
                return UnknownResult(degraded=True)

        outcome = CegisLoop(ToyGenerator(), DegradedVerifier()).run()
        assert outcome.stop_reason is StopReason.DEGRADED
        assert outcome.timed_out


class DictCheckpoint:
    """Minimal in-memory implementation of the CegisCheckpoint protocol."""

    def __init__(self):
        self.state = None
        self.saves = 0

    def load(self):
        return self.state

    def save(self, *, stats, solutions, counterexamples, blocked, stop_reason=None):
        from types import SimpleNamespace

        self.saves += 1
        self.state = SimpleNamespace(
            stats={
                "iterations": stats.iterations,
                "counterexamples": stats.counterexamples,
                "generator_time": stats.generator_time,
                "verifier_time": stats.verifier_time,
                "verifier_calls": stats.verifier_calls,
            },
            solutions=list(solutions),
            counterexamples=list(counterexamples),
            blocked=list(blocked),
            stop_reason=stop_reason,
        )


class TestLoopCheckpointing:
    def test_saved_every_iteration_plus_final(self):
        ck = DictCheckpoint()
        outcome = CegisLoop(ToyGenerator(), ToyVerifier(), checkpoint=ck).run()
        # one save per completed iteration; the breaking iteration is
        # covered by the final save that also records the stop reason
        assert ck.saves == outcome.stats.iterations
        assert ck.state.stop_reason == "solution"

    def test_resume_from_partial_state_matches_uninterrupted(self):
        full = CegisLoop(
            ToyGenerator(), ToyVerifier(), CegisOptions(find_all=True)
        ).run()

        # run a few iterations, drop the final stop_reason to simulate a
        # kill mid-run, then resume into fresh generator/loop objects
        ck = DictCheckpoint()
        CegisLoop(
            ToyGenerator(), ToyVerifier(),
            CegisOptions(find_all=True, max_iterations=4),
            checkpoint=ck,
        ).run()
        ck.state.stop_reason = None
        resumed = CegisLoop(
            ToyGenerator(), ToyVerifier(), CegisOptions(find_all=True),
            checkpoint=ck,
        ).run()
        assert resumed.resumed
        assert {(c.a, c.b) for c in resumed.solutions} == {
            (c.a, c.b) for c in full.solutions
        }
        assert resumed.stats.iterations == full.stats.iterations
        assert resumed.stop_reason is full.stop_reason

    def test_resume_of_complete_run_is_idempotent(self):
        ck = DictCheckpoint()
        first = CegisLoop(ToyGenerator(), ToyVerifier(), checkpoint=ck).run()
        verifier = ToyVerifier()
        again = CegisLoop(ToyGenerator(), verifier, checkpoint=ck).run()
        assert verifier.calls == 0  # no new search
        assert again.resumed
        assert again.stop_reason is first.stop_reason
        assert {(c.a, c.b) for c in again.solutions} == {
            (c.a, c.b) for c in first.solutions
        }
