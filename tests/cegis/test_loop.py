"""Tests of the generic CEGIS loop on a small toy domain.

Toy problem: synthesize integer parameters (a, b) of f(x) = a*x + b such
that for all x in [0, 10], lo(x) <= f(x) <= hi(x).  The verifier checks
candidate functions by scanning the domain; the generator filters an
explicit candidate set — i.e. the same architecture as CCmatic, but cheap
enough to exercise every loop behaviour (first-solution, find-all,
exhaustion, iteration budget, time budget).
"""

from dataclasses import dataclass

from repro.cegis import CegisLoop, CegisOptions, PruningMode


@dataclass(frozen=True)
class LineCandidate:
    a: int
    b: int

    def __call__(self, x: int) -> int:
        return self.a * x + self.b


@dataclass
class ToyResult:
    verified: bool
    counterexample: object


class ToyVerifier:
    """f must satisfy x <= f(x) <= 2x + 3 on 0..10."""

    def __init__(self):
        self.calls = 0

    def find_counterexample(self, cand: LineCandidate, worst_case: bool = False):
        self.calls += 1
        xs = range(0, 11)
        if worst_case:
            # pick the x with the largest violation (prunes more)
            worst, worst_gap = None, 0
            for x in xs:
                gap = max(x - cand(x), cand(x) - (2 * x + 3), 0)
                if gap > worst_gap:
                    worst, worst_gap = x, gap
            return ToyResult(worst is None, worst)
        for x in xs:
            if not (x <= cand(x) <= 2 * x + 3):
                return ToyResult(False, x)
        return ToyResult(True, None)


class ToyGenerator:
    def __init__(self, lo=-3, hi=3):
        self.survivors = [
            LineCandidate(a, b) for a in range(lo, hi + 1) for b in range(lo, hi + 1)
        ]

    def propose(self):
        return self.survivors[0] if self.survivors else None

    def add_counterexample(self, x: int) -> None:
        self.survivors = [c for c in self.survivors if x <= c(x) <= 2 * x + 3]

    def block(self, cand) -> None:
        self.survivors = [c for c in self.survivors if c != cand]


def true_solutions():
    out = set()
    for a in range(-3, 4):
        for b in range(-3, 4):
            if all(x <= a * x + b <= 2 * x + 3 for x in range(11)):
                out.add((a, b))
    return out


class TestLoopBehaviours:
    def test_finds_first_solution(self):
        outcome = CegisLoop(ToyGenerator(), ToyVerifier()).run()
        assert outcome.found
        c = outcome.first
        assert all(x <= c(x) <= 2 * x + 3 for x in range(11))

    def test_find_all_matches_ground_truth(self):
        outcome = CegisLoop(
            ToyGenerator(), ToyVerifier(), CegisOptions(find_all=True)
        ).run()
        assert outcome.exhausted
        assert {(c.a, c.b) for c in outcome.solutions} == true_solutions()

    def test_exhaustion_when_no_solution(self):
        gen = ToyGenerator(lo=-3, hi=-1)  # all-negative slopes can't work
        outcome = CegisLoop(gen, ToyVerifier()).run()
        assert not outcome.found
        assert outcome.exhausted

    def test_max_iterations_respected(self):
        outcome = CegisLoop(
            ToyGenerator(), ToyVerifier(), CegisOptions(max_iterations=2)
        ).run()
        assert outcome.stats.iterations <= 2

    def test_max_solutions(self):
        outcome = CegisLoop(
            ToyGenerator(),
            ToyVerifier(),
            CegisOptions(find_all=True, max_solutions=2),
        ).run()
        assert len(outcome.solutions) == 2

    def test_stats_consistency(self):
        verifier = ToyVerifier()
        outcome = CegisLoop(ToyGenerator(), verifier).run()
        assert outcome.stats.verifier_calls == verifier.calls
        assert outcome.stats.counterexamples == outcome.stats.iterations - len(
            outcome.solutions
        )

    def test_worst_case_cex_not_slower_in_iterations(self):
        plain = CegisLoop(ToyGenerator(), ToyVerifier()).run()
        wce = CegisLoop(
            ToyGenerator(), ToyVerifier(), CegisOptions(worst_case_cex=True)
        ).run()
        assert wce.found and plain.found
        assert wce.stats.iterations <= plain.stats.iterations * 2

    def test_pruning_mode_enum(self):
        assert PruningMode("exact") is PruningMode.EXACT
        assert PruningMode("range") is PruningMode.RANGE
