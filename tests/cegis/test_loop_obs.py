"""Observability of the CEGIS loop: event sequences, verbose sink,
and the time-budget deadline plumbing."""

import io
import json
import time

from repro.cegis import CegisLoop, CegisOptions
from repro.obs import JsonlSink, tracer

from tests.cegis.test_loop import ToyGenerator, ToyVerifier


def run_traced(generator, verifier, options=None):
    """Run a loop with a temporary JSONL sink on the global tracer."""
    tr = tracer()
    buf = io.StringIO()
    sink = tr.add_sink(JsonlSink(buf))
    try:
        outcome = CegisLoop(generator, verifier, options).run()
    finally:
        tr.remove_sink(sink)
    records = [json.loads(line) for line in buf.getvalue().splitlines()]
    return outcome, records


def event_names(records):
    return [r["name"] for r in records if r["type"] == "event"]


class TestEventSequence:
    def test_propose_cex_solution_done(self):
        outcome, records = run_traced(ToyGenerator(), ToyVerifier())
        assert outcome.found
        names = event_names(records)
        # shape: propose -> cex -> propose -> cex -> ... -> solution -> done
        assert names[0] == "cegis.propose"
        assert names[-2:] == ["cegis.solution", "cegis.done"]
        body = names[1:-2]
        assert body.count("cegis.counterexample") == outcome.stats.counterexamples
        # every counterexample is preceded by its proposal
        for i, n in enumerate(names[:-2]):
            if n == "cegis.counterexample":
                assert names[i - 1] == "cegis.propose"

    def test_done_event_carries_stats(self):
        outcome, records = run_traced(ToyGenerator(), ToyVerifier())
        done = [r for r in records if r["type"] == "event" and r["name"] == "cegis.done"]
        assert len(done) == 1
        attrs = done[0]["attrs"]
        assert attrs["iterations"] == outcome.stats.iterations
        assert attrs["counterexamples"] == outcome.stats.counterexamples
        assert attrs["solutions"] == len(outcome.solutions)

    def test_exhaustion_event(self):
        gen = ToyGenerator(lo=-3, hi=-1)  # no valid candidates
        outcome, records = run_traced(gen, ToyVerifier())
        assert outcome.exhausted
        assert "cegis.exhausted" in event_names(records)

    def test_span_totals_agree_with_stats(self):
        outcome, records = run_traced(ToyGenerator(), ToyVerifier())
        stats = outcome.stats
        gen_total = sum(
            r["dur"] for r in records
            if r["type"] == "span" and r["name"] == "cegis.generate"
        )
        ver_total = sum(
            r["dur"] for r in records
            if r["type"] == "span" and r["name"] == "cegis.verify"
        )
        # set_duration stamps the spans with the loop's own measurements
        assert abs(gen_total - stats.generator_time) <= 0.05 * max(stats.generator_time, 1e-9)
        assert abs(ver_total - stats.verifier_time) <= 0.05 * max(stats.verifier_time, 1e-9)

    def test_no_sink_no_output(self, capsys):
        outcome = CegisLoop(ToyGenerator(), ToyVerifier()).run()
        assert outcome.found
        assert capsys.readouterr().out == ""

    def test_verbose_prints_legacy_lines(self, capsys):
        outcome = CegisLoop(
            ToyGenerator(), ToyVerifier(), CegisOptions(verbose=True)
        ).run()
        out = capsys.readouterr().out
        assert f"solution {outcome.first}" in out
        assert "[cegis] iter 1:" in out
        # verbose sink is detached after the run
        assert not tracer().enabled


class SlowDeadlineVerifier(ToyVerifier):
    """Records the deadline it was handed; honours it like the SMT
    verifier does (inconclusive result once the deadline passes)."""

    def __init__(self, delay: float = 0.0):
        super().__init__()
        self.delay = delay
        self.deadlines: list = []

    def find_counterexample(self, cand, worst_case=False, deadline=None):
        self.deadlines.append(deadline)
        if self.delay:
            time.sleep(self.delay)
        if deadline is not None and time.perf_counter() >= deadline:
            class Inconclusive:
                verified = False
                counterexample = None
                unknown = True
            return Inconclusive()
        return super().find_counterexample(cand, worst_case)


class TestTimeBudget:
    def test_deadline_threaded_into_verifier(self):
        verifier = SlowDeadlineVerifier()
        t0 = time.perf_counter()
        CegisLoop(
            ToyGenerator(), verifier, CegisOptions(time_budget=30.0)
        ).run()
        assert verifier.deadlines, "verifier never called"
        for d in verifier.deadlines:
            assert d is not None
            assert 0 < d - t0 <= 31.0

    def test_no_budget_no_deadline(self):
        verifier = SlowDeadlineVerifier()
        CegisLoop(ToyGenerator(), verifier).run()
        assert all(d is None for d in verifier.deadlines)

    def test_long_verifier_call_stops_loop_with_event(self):
        verifier = SlowDeadlineVerifier(delay=0.05)
        outcome, records = run_traced(
            ToyGenerator(), verifier, CegisOptions(time_budget=0.02)
        )
        assert outcome.timed_out
        assert not outcome.found
        # the first verifier call blew the budget; the loop must not
        # have kept iterating afterwards
        assert outcome.stats.iterations == 1
        events = [
            r for r in records
            if r["type"] == "event" and r["name"] == "cegis.budget_exhausted"
        ]
        assert len(events) == 1
        assert events[0]["attrs"]["where"] == "verifier"

    def test_plain_verifier_without_deadline_still_works(self):
        outcome = CegisLoop(
            ToyGenerator(), ToyVerifier(), CegisOptions(time_budget=30.0)
        ).run()
        assert outcome.found
