"""The fault injector itself: deterministic, bounded, env-propagated."""

import random

import pytest

from repro.chaos import (
    ChaosConfig,
    FaultInjector,
    FaultSpec,
    chaos_point,
    current_injector,
    full_jitter_backoff,
    install,
    maybe_install_from_env,
    quarantine_file,
    uninstall,
)
from repro.chaos.faults import ENV_VAR


@pytest.fixture(autouse=True)
def _clean_injector():
    uninstall()
    yield
    uninstall()


class TestFaultSpec:
    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(point="x", kind="meteor")

    def test_config_json_round_trip(self):
        cfg = ChaosConfig(
            seed=7,
            specs=(
                FaultSpec("cache.read", "bitflip", probability=0.5, count=2),
                FaultSpec("worker.child", "stall", delay=0.1),
            ),
        )
        assert ChaosConfig.from_json(cfg.to_json()) == cfg


class TestDeterminism:
    def _decisions(self, seed: int, visits: int) -> list[int]:
        inj = FaultInjector(
            ChaosConfig(seed=seed, specs=(FaultSpec("p", "error", probability=0.4),))
        )
        fired = []
        for v in range(visits):
            try:
                inj.fire("p")
            except RuntimeError:
                fired.append(v)
        return fired

    def test_same_seed_same_schedule(self):
        assert self._decisions(11, 50) == self._decisions(11, 50)

    def test_different_seed_different_schedule(self):
        assert self._decisions(11, 50) != self._decisions(12, 50)

    def test_count_bounds_firings(self):
        inj = FaultInjector(
            ChaosConfig(seed=1, specs=(FaultSpec("p", "error", count=2),))
        )
        errors = 0
        for _ in range(10):
            try:
                inj.fire("p")
            except RuntimeError:
                errors += 1
        assert errors == 2
        assert inj.visits["p"] == 10


class TestInstallation:
    def test_chaos_point_is_noop_when_uninstalled(self):
        chaos_point("anything", path="/nonexistent")  # must not raise

    def test_env_install(self, monkeypatch):
        cfg = ChaosConfig(seed=9, specs=(FaultSpec("p", "error"),))
        monkeypatch.setenv(ENV_VAR, cfg.to_json())
        inj = maybe_install_from_env()
        assert inj is not None and inj.config == cfg
        assert current_injector() is inj

    def test_in_process_install_wins_over_env(self, monkeypatch):
        mine = install(ChaosConfig(seed=1))
        monkeypatch.setenv(
            ENV_VAR, ChaosConfig(seed=2, specs=(FaultSpec("p", "error"),)).to_json()
        )
        assert maybe_install_from_env() is mine

    def test_malformed_env_is_ignored(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "{not json")
        assert maybe_install_from_env() is None
        monkeypatch.setenv(ENV_VAR, '{"specs": [{"point": "p"}]}')
        assert maybe_install_from_env() is None

    def test_disk_full_fault(self):
        install(ChaosConfig(seed=1, specs=(FaultSpec("p", "disk_full"),)))
        with pytest.raises(OSError):
            chaos_point("p")


class TestCorruptionFaults:
    def test_truncate_halves_the_file(self, tmp_path):
        target = tmp_path / "victim.json"
        target.write_bytes(b"x" * 100)
        install(ChaosConfig(seed=1, specs=(FaultSpec("p", "truncate"),)))
        chaos_point("p", path=str(target))
        assert target.stat().st_size == 50

    def test_bitflip_changes_one_byte(self, tmp_path):
        target = tmp_path / "victim.json"
        original = bytes(range(64))
        target.write_bytes(original)
        install(ChaosConfig(seed=1, specs=(FaultSpec("p", "bitflip"),)))
        chaos_point("p", path=str(target))
        mutated = target.read_bytes()
        assert len(mutated) == len(original)
        assert sum(a != b for a, b in zip(original, mutated)) == 1


class TestBackoff:
    def test_full_jitter_stays_in_envelope(self):
        rng = random.Random(5)
        for attempt in range(8):
            delay = full_jitter_backoff(0.25, attempt, cap=5.0, rng=rng)
            assert 0.0 <= delay <= min(5.0, 0.25 * 2**attempt)

    def test_cap_binds(self):
        rng = random.Random(5)
        assert all(
            full_jitter_backoff(1.0, 30, cap=2.0, rng=rng) <= 2.0 for _ in range(20)
        )

    def test_seeded_backoff_replays(self):
        a = [full_jitter_backoff(0.5, i, rng=random.Random(42)) for i in range(5)]
        b = [full_jitter_backoff(0.5, i, rng=random.Random(42)) for i in range(5)]
        assert a == b


class TestQuarantine:
    def test_moves_file_aside(self, tmp_path):
        victim = tmp_path / "bad.json"
        victim.write_text("{corrupt")
        dest = quarantine_file(str(victim), str(tmp_path / "quarantine"), "test")
        assert dest is not None
        assert not victim.exists()
        with open(dest) as f:
            assert f.read() == "{corrupt"

    def test_collision_gets_distinct_name(self, tmp_path):
        qdir = str(tmp_path / "quarantine")
        first = tmp_path / "bad.json"
        first.write_text("one")
        d1 = quarantine_file(str(first), qdir, "test")
        second = tmp_path / "bad.json"
        second.write_text("two")
        d2 = quarantine_file(str(second), qdir, "test")
        assert d1 != d2

    def test_missing_source_is_not_an_error(self, tmp_path):
        assert (
            quarantine_file(str(tmp_path / "gone.json"), str(tmp_path / "q"), "test")
            is None
        )
