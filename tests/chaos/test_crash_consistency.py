"""Crash consistency under injected faults: a SIGKILL mid-write or a
corrupted file must never lose more than one save interval of work and
must never produce a wrong (let alone silently wrong) verdict."""

import json
import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.chaos import ChaosConfig, FaultSpec, install, uninstall
from repro.engine import QueryCache
from repro.runtime import CheckpointError, CheckpointStore
from repro.smt import Model, sat, unsat

pytestmark = pytest.mark.chaos

SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)


@pytest.fixture(autouse=True)
def _clean_injector():
    uninstall()
    yield
    uninstall()


def _run_killed(code: str, env_extra: dict) -> subprocess.CompletedProcess:
    """Run ``code`` in a child that the chaos harness SIGKILLs."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.update(env_extra)
    proc = subprocess.run(
        [sys.executable, "-c", textwrap.dedent(code)],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == -signal.SIGKILL, (
        f"child was supposed to die by SIGKILL, got rc={proc.returncode}; "
        f"stderr:\n{proc.stderr}"
    )
    return proc


class TestCheckpointKill:
    def test_kill_during_checkpoint_write_preserves_previous_state(self, tmp_path):
        """SIGKILL between serialize and atomic replace: the surviving
        checkpoint must be the complete previous generation."""
        ckpt = str(tmp_path / "run.ckpt")
        chaos = ChaosConfig(
            seed=1,
            # second write dies; the first must survive untouched
            specs=(FaultSpec("checkpoint.write", "kill", count=1),),
        ).to_json()
        # arm only after the first save: count=1 fires on the first
        # visit, so delayed installation targets the second write
        code = f"""
        from repro.chaos import ChaosConfig, install
        from repro.runtime import CheckpointStore
        store = CheckpointStore({ckpt!r}, fingerprint="fp")
        store.save(stats={{"iterations": 1}}, solutions=[],
                   counterexamples=["c1"], blocked=[])
        install(ChaosConfig.from_json({chaos!r}))
        store.save(stats={{"iterations": 2}}, solutions=[],
                   counterexamples=["c1", "c2"], blocked=[])
        raise SystemExit("unreachable: the second save should have died")
        """
        _run_killed(code, {})
        store = CheckpointStore(ckpt, fingerprint="fp")
        state = store.load()
        assert state is not None
        assert state.stats["iterations"] == 1
        assert state.counterexamples == ["c1"]

    def test_kill_leaves_backup_of_generation_n_minus_1(self, tmp_path):
        """After >= 2 successful saves, a kill mid-write leaves both the
        latest checkpoint and its .bak intact."""
        ckpt = str(tmp_path / "run.ckpt")
        chaos = ChaosConfig(
            seed=1, specs=(FaultSpec("checkpoint.write", "kill", count=1),)
        ).to_json()
        code = f"""
        from repro.chaos import ChaosConfig, install
        from repro.runtime import CheckpointStore
        store = CheckpointStore({ckpt!r}, fingerprint="fp")
        for i in (1, 2):
            store.save(stats={{"iterations": i}}, solutions=[],
                       counterexamples=[], blocked=[])
        install(ChaosConfig.from_json({chaos!r}))
        store.save(stats={{"iterations": 3}}, solutions=[],
                   counterexamples=[], blocked=[])
        """
        _run_killed(code, {})
        store = CheckpointStore(ckpt, fingerprint="fp")
        assert store.load().stats["iterations"] == 2
        assert store.has_backup()
        assert store.load(from_backup=True).stats["iterations"] == 1


class TestCheckpointCorruption:
    def _seed_store(self, tmp_path) -> CheckpointStore:
        store = CheckpointStore(str(tmp_path / "run.ckpt"), fingerprint="fp")
        for i in (1, 2):
            store.save(
                stats={"iterations": i}, solutions=[], counterexamples=[], blocked=[]
            )
        return store

    def test_truncated_checkpoint_names_the_damage(self, tmp_path):
        store = self._seed_store(tmp_path)
        size = os.path.getsize(store.path)
        with open(store.path, "r+b") as f:
            f.truncate(size // 2)
        with pytest.raises(CheckpointError, match="not valid JSON"):
            store.load()
        # the previous generation still loads
        assert store.load(from_backup=True).stats["iterations"] == 1

    def test_damaged_field_is_named(self, tmp_path):
        store = self._seed_store(tmp_path)
        with open(store.path) as f:
            raw = json.load(f)
        raw["counterexamples"] = 42  # not a list
        with open(store.path, "w") as f:
            json.dump(raw, f)
        with pytest.raises(CheckpointError, match="'counterexamples'"):
            store.load()

    def test_bitflipped_checkpoint_never_loads_silently(self, tmp_path):
        store = self._seed_store(tmp_path)
        install(
            ChaosConfig(seed=3, specs=(FaultSpec("victim", "bitflip"),))
        )
        from repro.chaos import chaos_point

        chaos_point("victim", path=store.path)
        try:
            state = store.load()
        except CheckpointError:
            return  # named, diagnosable failure: the contract
        # a flip that lands in a value can still parse — but then it must
        # decode to *some* state, never crash unhandled; fingerprint and
        # per-field decoding guard the semantic fields
        assert state is None or state.stats is not None


class TestCacheCommitKill:
    def _query_key(self) -> str:
        return "k" * 16

    def test_kill_during_cache_commit_never_leaves_a_torn_entry(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        chaos = ChaosConfig(
            seed=1, specs=(FaultSpec("cache.write", "kill"),)
        ).to_json()
        code = f"""
        from repro.chaos import ChaosConfig, install
        from repro.engine import QueryCache
        from repro.smt import unsat
        install(ChaosConfig.from_json({chaos!r}))
        cache = QueryCache({cache_dir!r})
        cache.store({self._query_key()!r}, unsat, None)
        """
        _run_killed(code, {})
        # the kill landed after the tmp file was written but before the
        # atomic publish: the cache sees a miss, never a torn entry
        cache = QueryCache(cache_dir)
        assert cache.lookup(self._query_key()) is None
        entries = [f for f in os.listdir(cache_dir) if f.endswith(".json")]
        assert entries == []

    def test_interrupted_commit_is_recoverable(self, tmp_path):
        """After the kill, a fresh process re-solves and commits fine."""
        cache_dir = str(tmp_path / "cache")
        chaos = ChaosConfig(
            seed=1, specs=(FaultSpec("cache.write", "kill", count=1),)
        ).to_json()
        code = f"""
        from repro.chaos import ChaosConfig, install
        from repro.engine import QueryCache
        from repro.smt import unsat
        install(ChaosConfig.from_json({chaos!r}))
        cache = QueryCache({cache_dir!r})
        cache.store({self._query_key()!r}, unsat, None)
        """
        _run_killed(code, {})
        cache = QueryCache(cache_dir)
        cache.store(self._query_key(), unsat, None)
        assert cache.lookup(self._query_key()) == (unsat, None)


class TestCacheCorruptionQuarantine:
    def _entry_path(self, cache: QueryCache, key: str) -> str:
        return cache._path(key)

    def test_invalid_json_is_quarantined(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cache = QueryCache(cache_dir)
        key = "deadbeef"
        cache.store(key, unsat, None)
        path = self._entry_path(cache, key)
        with open(path, "w") as f:
            f.write("{torn")
        fresh = QueryCache(cache_dir)  # no in-memory copy
        assert fresh.lookup(key) is None  # a miss, not an exception
        assert not os.path.exists(path)
        qdir = os.path.join(cache_dir, "quarantine")
        assert os.listdir(qdir)  # the evidence survives

    def test_malformed_entry_is_quarantined(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cache = QueryCache(cache_dir)
        key = "cafebabe"
        cache.store(key, unsat, None)
        path = self._entry_path(cache, key)
        with open(path, "w") as f:
            json.dump({"version": 2, "result": "maybe"}, f)
        fresh = QueryCache(cache_dir)
        assert fresh.lookup(key) is None
        assert not os.path.exists(path)

    def test_truncated_entry_is_quarantined(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cache = QueryCache(cache_dir)
        key = "feedface"
        cache.store(key, sat, Model({}, {}))
        path = self._entry_path(cache, key)
        size = os.path.getsize(path)
        with open(path, "r+b") as f:
            f.truncate(size // 2)
        fresh = QueryCache(cache_dir)
        assert fresh.lookup(key) is None
        assert not os.path.exists(path)

    def test_chaos_bitflip_on_read_path_never_raises(self, tmp_path):
        """Arm a bitflip on every cache read: lookups must degrade to
        misses or quarantines, never exceptions or wrong verdicts."""
        cache_dir = str(tmp_path / "cache")
        seeded = QueryCache(cache_dir)
        keys = [f"key{i:04d}" for i in range(20)]
        for key in keys:
            seeded.store(key, unsat, None)
        install(ChaosConfig(seed=7, specs=(FaultSpec("cache.read", "bitflip"),)))
        victim = QueryCache(cache_dir)
        for key in keys:
            entry = victim.lookup(key)
            assert entry is None or entry == (unsat, None)
