"""Tests for link-rate workloads and variable-rate simulation."""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.ccas import RoCC
from repro.sim import (
    JitteryLink,
    constant_rate,
    periodic_rate,
    random_walk_rate,
    run_simulation,
    standard_workloads,
    step_rate,
)


class TestRateFunctions:
    def test_constant(self):
        r = constant_rate(Fraction(3, 2))
        assert r(0) == r(100) == Fraction(3, 2)

    def test_step(self):
        r = step_rate(2, 1, at=10)
        assert r(9) == 2 and r(10) == 1

    def test_periodic(self):
        r = periodic_rate(1, 2, period=4)
        assert r(0) == 2 and r(2) == 1 and r(4) == 2

    def test_random_walk_deterministic_and_floored(self):
        r1 = random_walk_rate(1, Fraction(1, 2), random.Random(5))
        r2 = random_walk_rate(1, Fraction(1, 2), random.Random(5))
        values = [r1(t) for t in range(50)]
        assert values == [r2(t) for t in range(50)]
        assert all(v >= Fraction(1, 4) for v in values)

    def test_random_walk_rejects_bare_seed(self):
        """Replayability: the walk must draw from an explicit stream, so
        passing a bare int (the old seed parameter, or an accidental
        reliance on the module-global RNG) is a TypeError."""
        with pytest.raises(TypeError, match="random.Random"):
            random_walk_rate(1, Fraction(1, 2), 5)

    def test_random_walk_does_not_touch_global_rng(self):
        state = random.getstate()
        r = random_walk_rate(1, Fraction(1, 2), random.Random(5))
        [r(t) for t in range(50)]
        assert random.getstate() == state

    def test_standard_workloads_named(self):
        names = {w.name for w in standard_workloads()}
        assert names == {"wired", "route-change", "cross-traffic", "cellular"}


class TestVariableRateLink:
    def test_capacity_cum_accumulates(self):
        link = JitteryLink(capacity=step_rate(2, 1, at=3))
        assert link.capacity_cum(2) == 4
        assert link.capacity_cum(4) == 2 + 2 + 1 + 1  # t=1,2 at 2; t=3,4 at 1

    def test_traces_stay_admissible(self):
        for wl in standard_workloads():
            link = JitteryLink(capacity=wl.rate, policy="max_waste", seed=2)
            A = Fraction(0)
            for i in range(30):
                A += Fraction(1, 2)
                link.step(A)
            assert link.validate() == [], wl.name

    @given(seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_service_never_exceeds_cumulative_capacity(self, seed):
        link = JitteryLink(
            capacity=random_walk_rate(1, Fraction(1, 4), random.Random(seed))
        )
        A = Fraction(0)
        for i in range(25):
            A += Fraction(1)
            state = link.step(A)
            assert state.S <= link.capacity_cum(state.t)


class TestVariableRateSimulation:
    def test_rocc_tracks_capacity_changes(self):
        """RoCC adapts across a capacity drop: it stays near-full
        utilization of whatever the link offers."""
        r = run_simulation(
            RoCC(), ticks=120, capacity=step_rate(1, Fraction(1, 2), at=60),
            policy="lazy",
        )
        assert r.utilization(warmup=20) >= Fraction(9, 10)

    def test_rocc_on_all_standard_workloads(self):
        for wl in standard_workloads():
            r = run_simulation(RoCC(), ticks=120, capacity=wl.rate, policy="lazy")
            assert r.utilization(warmup=20) >= Fraction(4, 5), wl.name

    def test_utilization_uses_cumulative_capacity(self):
        r = run_simulation(RoCC(), ticks=60, capacity=periodic_rate(Fraction(1, 2), 1, 10))
        # bounded by ~1 plus transient queue drain
        assert r.utilization(20) <= Fraction(6, 5)
