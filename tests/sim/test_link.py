"""Tests of the operational jittery link, including a property test that
every adversary policy produces traces admissible under the formal model."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.sim import JitteryLink


class TestBasics:
    def test_ideal_delivers_everything_available(self):
        link = JitteryLink(policy="ideal")
        state = link.step(Fraction(5))
        assert state.S == min(Fraction(5), link.C * 1)

    def test_monotone_arrivals_enforced(self):
        link = JitteryLink()
        link.step(Fraction(2))
        try:
            link.step(Fraction(1))
            assert False, "expected ValueError"
        except ValueError:
            pass

    def test_lazy_defers_to_jitter_bound(self):
        link = JitteryLink(policy="lazy", jitter=1)
        link.step(Fraction(10))
        # at t=1 the lower bound is C*0 - W_0 = 0
        assert link.S_hist[1] == 0
        link.step(Fraction(10))
        # at t=2 it must have delivered at least C*1
        assert link.S_hist[2] >= link.C

    def test_max_waste_starves_small_window(self):
        link = JitteryLink(policy="max_waste", jitter=1)
        A = Fraction(0)
        S_prev = Fraction(0)
        cwnd = Fraction(1)
        for _ in range(40):
            A = max(A, S_prev + cwnd)
            S_prev = link.step(A).S
        # one-BDP window under the waste adversary: about half capacity
        util = link.S_hist[-1] / (link.C * link.t)
        assert util <= Fraction(3, 5)

    def test_tokens_accounting(self):
        link = JitteryLink(policy="max_waste")
        link.step(Fraction(0))
        assert link.tokens() == link.C * 1 - link.W


arrival_increments = st.lists(
    st.fractions(min_value=0, max_value=Fraction(3), max_denominator=4),
    min_size=1,
    max_size=30,
)


class TestAdmissibility:
    @given(incs=arrival_increments, policy=st.sampled_from(["ideal", "lazy", "max_waste", "random"]))
    @settings(max_examples=60, deadline=None)
    def test_any_arrival_sequence_yields_admissible_trace(self, incs, policy):
        link = JitteryLink(policy=policy, seed=11)
        A = Fraction(0)
        for inc in incs:
            A += inc
            link.step(A)
        assert link.validate() == []

    @given(incs=arrival_increments)
    @settings(max_examples=30, deadline=None)
    def test_ideal_dominates_lazy(self, incs):
        """The ideal link delivers at least as much as the lazy one."""
        ideal = JitteryLink(policy="ideal")
        lazy = JitteryLink(policy="lazy")
        A = Fraction(0)
        for inc in incs:
            A += inc
            ideal.step(A)
            lazy.step(A)
        assert ideal.S >= lazy.S


class TestAggregationPolicy:
    def test_bursty_but_admissible(self):
        from fractions import Fraction

        link = JitteryLink(policy="aggregate")
        A = Fraction(0)
        for i in range(24):
            A += 1
            link.step(A)
        assert link.validate() == []

    def test_delivers_in_bursts(self):
        from fractions import Fraction

        link = JitteryLink(policy="aggregate", jitter=2)
        A = Fraction(0)
        steps = []
        for i in range(12):
            A += 1
            s = link.step(A)
            steps.append(s.S)
        increments = [b - a for a, b in zip(steps, steps[1:])]
        # some ticks deliver nothing, burst ticks deliver multiple units
        assert any(i == 0 for i in increments)
        assert any(i > 1 for i in increments)
