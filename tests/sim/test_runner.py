"""Simulation-runner tests: conservation laws and the empirical verdicts
the formal analysis predicts."""

from fractions import Fraction

import pytest

from repro.ccas import AIMD, ConstantCwnd, CubicLike, RoCC, TemplateCCA
from repro.core import constant_cwnd, paper_eq_iii, rocc
from repro.sim import run_simulation


class TestConservation:
    @pytest.mark.parametrize("policy", ["ideal", "lazy", "max_waste", "random"])
    def test_counters_monotone_and_causal(self, policy):
        r = run_simulation(RoCC(), ticks=50, policy=policy, seed=3)
        for t in range(1, r.ticks + 1):
            assert r.A[t] >= r.A[t - 1]
            assert r.S[t] >= r.S[t - 1]
            assert r.S[t] <= r.A[t]

    def test_service_bounded_by_capacity(self):
        r = run_simulation(RoCC(), ticks=50, policy="ideal")
        assert r.S[-1] <= r.capacity * r.ticks

    def test_initial_queue_honored(self):
        r = run_simulation(RoCC(), ticks=30, initial_queue=Fraction(3))
        assert r.A[0] == 3


class TestFormalPredictions:
    """The simulator must reproduce the verifier's verdicts empirically."""

    def test_rocc_full_utilization_all_adversaries(self):
        for policy in ("ideal", "lazy", "max_waste"):
            r = run_simulation(RoCC(), ticks=120, policy=policy)
            assert r.utilization(warmup=20) >= Fraction(19, 20)

    def test_rocc_queue_converges_to_bdp_plus_increment(self):
        """Paper: 'On an ideal link with constant rate, RoCC converges to
        a queue of BDP + MSS bytes'."""
        r = run_simulation(RoCC(increment=Fraction(1)), ticks=120, policy="ideal")
        # bytes in flight = BDP + queue; steady cwnd = 2C+1
        assert r.max_queue(warmup=40) == Fraction(2)

    def test_one_bdp_window_starved_to_half(self):
        r = run_simulation(ConstantCwnd(Fraction(1)), ticks=200, policy="max_waste")
        assert abs(r.utilization(warmup=20) - Fraction(1, 2)) <= Fraction(1, 10)

    def test_big_window_immune_to_waste(self):
        r = run_simulation(ConstantCwnd(Fraction(3)), ticks=200, policy="max_waste")
        assert r.utilization(warmup=20) >= Fraction(7, 10)

    def test_template_adapter_matches_rocc(self):
        """The synthesized-rule adapter and the hand-written RoCC must
        produce identical steady-state behaviour."""
        r1 = run_simulation(RoCC(), ticks=100, policy="max_waste")
        r2 = run_simulation(TemplateCCA(rocc()), ticks=100, policy="max_waste")
        assert r1.utilization(30) == r2.utilization(30)
        assert r1.max_queue(30) == r2.max_queue(30)

    def test_eq_iii_high_utilization_on_ideal(self):
        r = run_simulation(TemplateCCA(paper_eq_iii()), ticks=150, policy="ideal")
        assert r.utilization(warmup=50) >= Fraction(9, 10)

    def test_aimd_sawtooth_bounded(self):
        r = run_simulation(AIMD(), ticks=150, policy="ideal")
        assert r.utilization(warmup=30) >= Fraction(4, 5)
        assert r.max_queue(30) <= 4

    def test_cubic_recovers(self):
        r = run_simulation(CubicLike(), ticks=150, policy="ideal")
        assert r.utilization(warmup=50) >= Fraction(3, 4)


class TestMetrics:
    def test_mean_queue_leq_max(self):
        r = run_simulation(RoCC(), ticks=60)
        assert r.mean_queue(10) <= r.max_queue(10)

    def test_warmup_slicing(self):
        r = run_simulation(RoCC(), ticks=60)
        assert r.utilization(0) <= 1
        assert r.utilization(59) <= 1
