"""Replay every committed corpus case, forever.

Each JSON file in ``tests/corpus/cases/`` is a minimized counterexample
a falsification hunt once found (see ``repro.falsify.corpus``).  This
collector rebuilds the CCA from its spec, re-runs the recorded schedule
under the recorded model config, and asserts the verdict **exactly** —
violated flag and bit-for-bit margin.  A regression here means either
the simulator, the oracle, or the CCA changed behaviour on a trace that
once refuted a verdict.
"""

from fractions import Fraction

import pytest

from repro.falsify import PropertyOracle, load_cases, resolve_cca
from repro.falsify.corpus import default_corpus_dir

CASES = load_cases()


def test_corpus_directory_is_where_cases_land():
    assert default_corpus_dir().name == "cases"
    assert default_corpus_dir().parent.name == "corpus"


def test_committed_demo_case_present():
    """The weakened-AIMD demo counterexample ships with the repo; if it
    vanishes, falsification lost its committed regression anchor."""
    assert any(c.cca == "aimd:8" for c in CASES)


@pytest.mark.parametrize(
    "case", CASES, ids=[c.name for c in CASES] or None
)
def test_replay(case):
    factory, _ = resolve_cca(case.cca)
    cfg = case.model_config()
    oracle = PropertyOracle(cfg, covered_only=case.covered_only)
    verdict = oracle.evaluate(factory(), case.trace_schedule())

    assert verdict.violated == case.verdict["violated"], (
        f"corpus case {case.name}: recorded "
        f"violated={case.verdict['violated']} but replay says "
        f"{verdict.violated} — found by seed={case.provenance.get('seed')} "
        f"gen={case.provenance.get('generation')} "
        f"origin={case.provenance.get('origin')}"
    )
    assert verdict.margin == Fraction(case.verdict["margin"]), (
        f"corpus case {case.name}: margin drifted "
        f"({case.verdict['margin']} -> {verdict.margin})"
    )
    if case.verdict["window_start"] is not None:
        assert verdict.witness is not None
        assert verdict.witness.start == case.verdict["window_start"]
        assert verdict.witness.util == Fraction(case.verdict["util"])
        assert verdict.witness.max_queue == Fraction(case.verdict["max_queue"])
