"""QueryCache + canonical hashing: key stability, disk layer, safety rails."""

from fractions import Fraction

import pytest

from repro.engine import CACHE_VERSION, QueryCache
from repro.smt import (
    And,
    Bool,
    Not,
    Or,
    Real,
    RealVal,
    sat,
    unknown,
    unsat,
)
from repro.smt.solver import Model
from repro.smt.terms import canonical_hash, canonical_key

pytestmark = pytest.mark.engine


# -- canonical keys -----------------------------------------------------------


def test_key_ignores_assertion_order():
    x, y = Real("ck_x"), Real("ck_y")
    a, b = x >= 0, y <= 5
    assert canonical_hash([a, b]) == canonical_hash([b, a])


def test_key_ignores_commutative_argument_order():
    x, y, z = Real("cc_x"), Real("cc_y"), Real("cc_z")
    p, q = Bool("cc_p"), Bool("cc_q")
    assert canonical_key(And(p, q)) == canonical_key(And(q, p))
    assert canonical_key(Or(p, q)) == canonical_key(Or(q, p))
    assert canonical_key(x + y + z >= 0) == canonical_key(z + y + x >= 0)


def test_key_stable_across_construction_orders():
    """Building structurally identical assertion sets in different orders
    (and with duplicated members) yields the same hash."""
    def build(reversed_order: bool):
        x, y = Real("so_x"), Real("so_y")
        formulas = [x >= 0, y >= 0, And(x <= 3, y <= 4), Or(x.eq(1), y.eq(2))]
        if reversed_order:
            formulas = list(reversed(formulas))
        return canonical_hash(formulas + [formulas[0]])  # dup is dropped

    assert build(False) == build(True)


def test_key_distinguishes_different_formulas():
    x = Real("kd_x")
    assert canonical_hash([x >= 0]) != canonical_hash([x >= 1])
    assert canonical_hash([x >= 0]) != canonical_hash([x <= 0])


def test_key_distinguishes_noncommutative_order():
    x, y = Real("nc_x"), Real("nc_y")
    assert canonical_key(x - y) != canonical_key(y - x)


# -- the cache proper ---------------------------------------------------------


def test_memory_roundtrip():
    cache = QueryCache()
    x = Real("mr_x")
    model = Model({}, {x: Fraction(3, 2)})
    cache.store("k1", sat, model)
    cache.store("k2", unsat, None)
    result, m = cache.lookup("k1")
    assert result is sat and m.value(x) == Fraction(3, 2)
    result, m = cache.lookup("k2")
    assert result is unsat and m is None
    assert cache.lookup("missing") is None
    assert cache.stats()["hits"] == 2


def test_unknown_is_never_cacheable():
    cache = QueryCache()
    with pytest.raises(ValueError):
        cache.store("k", unknown, None)


def test_disk_roundtrip(tmp_path):
    """A second cache instance over the same directory sees the entry —
    this is exactly how portfolio workers share verdicts."""
    x = Real("dr_x")
    p = Bool("dr_p")
    writer = QueryCache(str(tmp_path))
    writer.store("deadbeef", sat, Model({p: True}, {x: Fraction(-7, 3)}))
    writer.store("cafe", unsat, None)

    reader = QueryCache(str(tmp_path))
    result, model = reader.lookup("deadbeef")
    assert result is sat
    assert model.value(x) == Fraction(-7, 3)
    assert model.value(p) is True
    result, model = reader.lookup("cafe")
    assert result is unsat and model is None
    assert reader.disk_hits == 2


def test_corrupt_disk_entry_is_a_miss(tmp_path):
    cache = QueryCache(str(tmp_path))
    path = tmp_path / f"q{CACHE_VERSION}-bad.json"
    path.write_text("{not json at all")
    assert cache.lookup("bad") is None
    path.write_text('{"result": "sat", "model": null}')  # sat without model
    assert cache.lookup("bad") is None


def test_eviction_bounds_memory():
    cache = QueryCache(max_entries=4)
    for i in range(10):
        cache.store(f"k{i}", unsat, None)
    assert len(cache) == 4
    assert cache.lookup("k9") is not None
    assert cache.lookup("k0") is None


def test_end_to_end_verifier_speedup(fast_cfg):
    """Repeating a verification through the cache must be conclusively
    faster (the acceptance criterion is >= 2x; real hits are ~100x)."""
    import time

    from repro.core import constant_cwnd
    from repro.core.verifier import CcacVerifier

    cache = QueryCache()
    verifier = CcacVerifier(fast_cfg, cache=cache)
    cand = constant_cwnd(1, 3)

    t0 = time.perf_counter()
    first = verifier.find_counterexample(cand)
    cold = time.perf_counter() - t0

    t0 = time.perf_counter()
    second = verifier.find_counterexample(cand)
    warm = time.perf_counter() - t0

    assert first.verified == second.verified
    assert cache.hits >= 1
    assert warm * 2 <= cold
