"""The redesigned public API: CheckOptions, deprecation shims, __all__,
and the result-enum truthiness guards."""

import dataclasses
import warnings

import pytest

from repro.smt import CheckOptions, Real, Solver, SolverSession, sat, unknown, unsat

pytestmark = pytest.mark.engine


# -- CheckOptions -------------------------------------------------------------


def test_check_options_is_frozen():
    opts = CheckOptions(max_conflicts=5)
    with pytest.raises(dataclasses.FrozenInstanceError):
        opts.max_conflicts = 10


def test_check_takes_options_object():
    x = Real("api_x")
    s = Solver()
    s.add(x >= 0, x <= 1)
    assert s.check(CheckOptions()) is sat
    s.add(x >= 2)
    assert s.check(CheckOptions(max_conflicts=10_000)) is unsat


def test_legacy_kwargs_removed():
    """The 1.x keyword shims are gone in 2.0: plain TypeError, no
    half-working deprecation path."""
    x = Real("api_y")
    s = Solver()
    s.add(x >= 0)
    with pytest.raises(TypeError):
        s.check(max_conflicts=10_000)
    with pytest.raises(TypeError):
        s.check(deadline=None)


def test_legacy_positional_int_removed():
    x = Real("api_z")
    s = Solver()
    s.add(x >= 0)
    with pytest.raises(TypeError, match="CheckOptions"):
        s.check(10_000)


def test_session_rejects_legacy_forms():
    session = SolverSession()
    with pytest.raises(TypeError, match="CheckOptions"):
        session.check(5_000)
    with pytest.raises(TypeError):
        session.check(max_conflicts=5)


def test_options_object_does_not_warn():
    x = Real("api_w")
    s = Solver()
    s.add(x >= 0)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        assert s.check(CheckOptions(max_conflicts=10_000)) is sat


def test_with_deadline_helper():
    opts = CheckOptions(max_conflicts=7)
    bounded = opts.with_deadline(123.0)
    assert bounded.deadline == 123.0
    assert bounded.max_conflicts == 7
    assert opts.deadline is None  # original untouched


# -- truthiness guards --------------------------------------------------------


def test_optimize_result_truthiness_is_an_error():
    from fractions import Fraction

    from repro.smt.optimize import maximize

    x = Real("tg_x")
    s = Solver()
    s.add(x >= 0, x <= 4)
    result = maximize(s, x, lo=Fraction(0), hi=Fraction(8))
    assert result.feasible
    with pytest.raises(TypeError):
        bool(result)
    with pytest.raises(TypeError):
        if result:  # pragma: no cover - the guard raises first
            pass


def test_maxsat_result_truthiness_is_an_error():
    from repro.smt.maxsat import MaxSatSolver

    p = Real("ms_x")
    solver = MaxSatSolver()
    solver.add_hard(p >= 0)
    solver.add_soft(p >= 5, weight=1)
    result = solver.solve()
    with pytest.raises(TypeError):
        bool(result)


# -- the stable top-level surface ---------------------------------------------


def test_top_level_all_resolves():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_top_level_names_are_canonical():
    import repro
    from repro.cegis import CegisLoop
    from repro.core.synthesizer import synthesize
    from repro.smt import Solver as SmtSolver

    assert repro.CegisLoop is CegisLoop
    assert repro.synthesize is synthesize
    assert repro.Solver is SmtSolver


def test_top_level_verify(fast_cfg):
    import repro
    from repro.core import constant_cwnd, rocc

    assert repro.verify(rocc(3), fast_cfg).verified
    refuted = repro.verify(constant_cwnd(1, 3), fast_cfg)
    assert not refuted.verified
    assert refuted.counterexample is not None


def test_migrated_callers_emit_no_deprecation_warnings(fast_cfg):
    """The in-repo call sites all use CheckOptions now; a full verifier
    call (including the worst-case binary search through maximize) must
    not trip the legacy shims."""
    from repro.core import constant_cwnd
    from repro.core.verifier import CcacVerifier

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        CcacVerifier(fast_cfg).find_counterexample(
            constant_cwnd(1, 3), worst_case=True
        )


def test_session_is_exported_from_smt():
    from repro.smt import SessionStats, SolverSession  # noqa: F401
    from repro.smt.terms import canonical_hash, canonical_key  # noqa: F401
