"""SolverSession: push/pop equivalence with fresh solvers, clause retention."""

from fractions import Fraction

import pytest

from repro.smt import (
    And,
    Bool,
    CheckOptions,
    Not,
    Or,
    Real,
    RealVal,
    Solver,
    SolverSession,
    sat,
    unsat,
)
from repro.smt.errors import UnknownResultError

pytestmark = pytest.mark.engine


def _queries():
    """(base, [(extra_formulas, expected)]) — a shared base plus deltas
    whose verdicts a fresh solver and a session must agree on."""
    x, y, z = Real("sx"), Real("sy"), Real("sz")
    base = [x >= 0, y >= 0, x + y <= 10]
    deltas = [
        ((x + y >= 5,), sat),
        ((x + y >= 11,), unsat),
        ((x.eq(3), y.eq(4), z.eq(x + y)), sat),
        ((x >= 6, y >= 6), unsat),
        ((x + y >= 5,), sat),  # repeat: exercises learned-clause reuse
    ]
    return base, deltas


def test_incremental_matches_fresh_verdicts():
    """The same base+delta queries must get identical verdicts whether
    solved incrementally in one session or by fresh solvers."""
    base, deltas = _queries()
    session = SolverSession(base)
    for extra, expected in deltas:
        with session.scope(*extra):
            incremental = session.check()
        fresh = Solver()
        fresh.add(*base)
        fresh.add(*extra)
        assert incremental is fresh.check() is expected


def test_scope_restores_assertions():
    x = Real("sc_x")
    session = SolverSession([x >= 0])
    before = list(session.assertions())
    with session.scope(x <= 5, x >= 5):
        assert len(session.assertions()) == 3
        assert session.check() is sat
    assert session.assertions() == before
    # the popped constraint no longer binds
    session.add(x >= 100)
    assert session.check() is sat


def test_nested_scopes():
    x = Real("nest_x")
    session = SolverSession([x >= 0])
    with session.scope(x <= 10):
        with session.scope(x >= 20):
            assert session.check() is unsat
        assert session.check() is sat


def test_model_after_sat_check():
    x = Real("m_x")
    session = SolverSession([x >= 3, x <= 3])
    assert session.check() is sat
    assert session.model().value(x) == Fraction(3)


def test_learned_clauses_survive_pop():
    """After a pop, retained learned clauses must not change verdicts:
    a query that was sat before an unrelated unsat excursion stays sat."""
    ps = [Bool(f"lc_p{i}") for i in range(6)]
    base = [Or(ps[0], ps[1]), Or(Not(ps[0]), ps[2]), Or(Not(ps[1]), ps[2])]
    session = SolverSession(base)
    assert session.check() is sat
    with session.scope(Not(ps[2])):
        assert session.check() is unsat  # forces conflicts -> learning
    retained = session.solver.sat_core.learned_retained
    assert session.check() is sat  # soundness after retention
    with session.scope(ps[2], ps[3]):
        assert session.check() is sat
    assert session.solver.sat_core.learned_retained >= 0
    assert retained >= 0


def test_check_options_accepted():
    x = Real("co_x")
    session = SolverSession([x >= 0, x <= 1])
    assert session.check(CheckOptions()) is sat
    assert session.check(CheckOptions(max_conflicts=10_000)) is sat


def test_session_cache_roundtrip():
    """With a cache attached, the second identical check is answered
    without touching the solver, including the model for sat."""
    from repro.engine import QueryCache

    x = Real("scr_x")
    cache = QueryCache()
    session = SolverSession([x >= 2, x <= 2], cache=cache)
    assert session.check() is sat
    solved_before = session.stats.solved
    assert session.check() is sat
    assert session.stats.solved == solved_before
    assert session.stats.cache_hits == 1
    assert session.model().value(x) == Fraction(2)


def test_cached_unsat_has_no_model():
    from repro.engine import QueryCache

    x = Real("cu_x")
    cache = QueryCache()
    session = SolverSession([x >= 1, x <= 0], cache=cache)
    assert session.check() is unsat
    assert session.check() is unsat  # hit
    with pytest.raises(UnknownResultError):
        session.model()


def test_verifier_incremental_matches_fresh(fast_cfg):
    """End to end: the CCAC verifier's incremental mode gives the same
    verdicts as the fresh-solver mode, candidate by candidate."""
    from repro.core import constant_cwnd, rocc
    from repro.core.verifier import CcacVerifier

    candidates = [rocc(3), constant_cwnd(1, 3), constant_cwnd(0, 3), rocc(3)]
    fresh = CcacVerifier(fast_cfg)
    incremental = CcacVerifier(fast_cfg, incremental=True)
    for cand in candidates:
        rf = fresh.find_counterexample(cand)
        ri = incremental.find_counterexample(cand)
        assert rf.verified == ri.verified
        assert (rf.counterexample is None) == (ri.counterexample is None)
    # the session really was shared across calls
    assert incremental._session is not None
    assert incremental._session.stats.scopes == len(candidates)
