"""Portfolio races: first conclusive verdict wins, losers die, no zombies."""

import multiprocessing
import time

import pytest

from repro.engine import PortfolioOutcome, PortfolioVerifier, run_portfolio
from repro.runtime.errors import SoundnessError, WorkerError

pytestmark = [pytest.mark.engine, pytest.mark.runtime]


# top-level so they are picklable by the fork start method
def _fast(value):
    return value


def _slow(value, delay=30.0):
    time.sleep(delay)
    return value


def _boom():
    raise RuntimeError("worker exploded")


def _soundness():
    raise SoundnessError("fabricated model")


def _no_zombies():
    deadline = time.time() + 5.0
    while time.time() < deadline:
        if not multiprocessing.active_children():
            return True
        time.sleep(0.05)
    return False


def test_fast_task_beats_sleepers():
    """The race returns as soon as one worker is conclusive; the sleepers
    are cancelled rather than awaited (30s sleeps, sub-30s wall)."""
    start = time.perf_counter()
    outcome = run_portfolio(
        [(_slow, ("a",)), (_fast, ("b",)), (_slow, ("c",))],
        wall_time=25.0,
    )
    wall = time.perf_counter() - start
    assert outcome.winner == 1
    assert outcome.result == "b"
    assert outcome.cancelled == [0, 2]
    assert wall < 20.0
    assert _no_zombies()


def test_accept_filters_results():
    """A result the acceptor rejects does not win the race."""
    outcome = run_portfolio(
        [(_fast, ("reject",)), (_fast, ("take",))],
        accept=lambda r: r == "take",
        wall_time=25.0,
    )
    assert outcome.result == "take"
    assert _no_zombies()


def test_all_errors_raises_worker_error():
    with pytest.raises(WorkerError):
        run_portfolio([(_boom, ()), (_boom, ())], wall_time=25.0)
    assert _no_zombies()


def test_soundness_error_propagates():
    """Soundness is never racy: a SoundnessError in any worker aborts
    the whole round even if another worker would have won."""
    with pytest.raises(SoundnessError):
        run_portfolio(
            [(_soundness, ()), (_slow, ("x",))],
            wall_time=25.0,
        )
    assert _no_zombies()


def test_race_timeout_reports_all_workers():
    outcome = run_portfolio([(_slow, ("a", 30.0))], wall_time=1.0)
    assert outcome.winner is None
    assert outcome.reports[0].status == "timeout"
    assert _no_zombies()


def _traced(value):
    from repro.obs import metrics, tracer

    with tracer().span("child.solve"):
        metrics().counter("test.portfolio.relay").inc(1)
    return value


def test_race_merges_worker_telemetry():
    """Every finishing worker's spans come back tagged with its lane and
    anchored under the race span — winner and losers alike."""
    from repro.obs import Sink, metrics, tracer

    class Rec(Sink):
        def __init__(self):
            self.records = []

        def emit(self, record):
            self.records.append(record)

    tr = tracer()
    sink = tr.add_sink(Rec())
    before = metrics().counter("test.portfolio.relay").value
    try:
        outcome = run_portfolio(
            [(_traced, ("a",)), (_traced, ("b",))], wall_time=25.0
        )
    finally:
        tr.remove_sink(sink)
    assert outcome.winner is not None
    # the winner's frame always merges; a loser that finished before the
    # cancel may add its own
    assert metrics().counter("test.portfolio.relay").value > before
    race = [r for r in sink.records
            if r.get("type") == "span" and r["name"] == "engine.portfolio.race"]
    assert len(race) == 1 and race[0]["attrs"]["relayed"] >= 1
    winner_tag = f"w{outcome.winner}"
    runs = [r for r in sink.records
            if r.get("type") == "span" and r["name"] == "worker.run"
            and r["attrs"].get("worker") == winner_tag]
    assert len(runs) == 1
    assert runs[0]["parent"] == race[0]["id"]
    assert _no_zombies()


def test_verifier_batch_verdicts_match_sequential(fast_cfg):
    """The portfolio verifier's winning verdict agrees with a plain
    in-process verification of the same candidate."""
    from repro.core import constant_cwnd, rocc
    from repro.core.verifier import CcacVerifier

    candidates = [constant_cwnd(1, 3), rocc(3)]
    portfolio = PortfolioVerifier(fast_cfg, jobs=2)
    verdict = portfolio.verify_batch(candidates)
    assert verdict.winner is not None
    assert verdict.launched == 2

    sequential = CcacVerifier(fast_cfg).find_counterexample(
        candidates[verdict.winner]
    )
    assert verdict.result.verified == sequential.verified
    assert (verdict.result.counterexample is None) == (
        sequential.counterexample is None
    )
    assert _no_zombies()


def test_single_candidate_path(fast_cfg):
    from repro.core import rocc

    portfolio = PortfolioVerifier(fast_cfg, jobs=2)
    result = portfolio.find_counterexample(rocc(3))
    assert result.verified
    assert _no_zombies()


def test_jobs_validation(fast_cfg):
    with pytest.raises(ValueError):
        PortfolioVerifier(fast_cfg, jobs=0)


def test_environment_grid_requires_every_cell_unsat(fast_cfg):
    """In matrix mode a candidate only wins as verified when every
    environment answered UNSAT; any cell's counterexample wins outright,
    tagged with its origin."""
    from repro.ccac import lossless_environment, lossy_environment
    from repro.core import rocc

    envs = [lossless_environment(), lossy_environment(buffer=8)]
    portfolio = PortfolioVerifier(fast_cfg, jobs=2, environments=envs)
    verdict = portfolio.verify_batch([rocc(3)])
    assert verdict.winner == 0
    assert verdict.result.verified
    assert verdict.result.counterexample is None
    assert _no_zombies()

    tiny = [lossless_environment(), lossy_environment(buffer=1)]
    portfolio = PortfolioVerifier(fast_cfg, jobs=2, environments=tiny)
    verdict = portfolio.verify_batch([rocc(3)])
    assert verdict.winner == 0
    assert not verdict.result.verified
    cex = verdict.result.counterexample
    assert cex is not None
    assert cex.environment is not None
    assert cex.environment.kind == "lossy"
    assert _no_zombies()


def test_synthesis_verdict_identical_across_jobs(fast_cfg):
    """jobs=1 and jobs=3 reach the same verdict on the same query (the
    winning solutions are independently proven, so verdict-level equality
    is the right equivalence)."""
    from repro.core import SynthesisQuery, synthesize, table1_spaces
    from repro.ccac import ModelConfig

    cfg = ModelConfig(T=5)
    spec = table1_spaces()["no_cwnd_small"]
    results = {}
    for jobs in (1, 3):
        query = SynthesisQuery(
            spec=spec, cfg=cfg, generator="enum",
            worst_case_cex=False, jobs=jobs,
        )
        results[jobs] = synthesize(query)
    assert results[1].found == results[3].found
    assert results[1].exhausted == results[3].exhausted
    assert _no_zombies()
