"""Tests of the desired-property encodings."""

from fractions import Fraction

from repro.ccac import (
    CcacModel,
    ModelConfig,
    bounded_queue,
    cwnd_decreases,
    cwnd_increases,
    desired_property,
    high_utilization,
    negated_desired,
)
from repro.smt import And, Not, Solver, sat, unsat


class TestPropertyStructure:
    def test_desired_is_conjunction_of_disjunctions(self, fast_cfg):
        net = CcacModel(fast_cfg)
        prop = desired_property(net)
        # structural sanity: it must mention both halves
        names = {t.name for t in prop.iter_dag() if t.is_var()}
        assert any("S_" in (n or "") for n in names)
        assert any("cwnd" in (n or "") for n in names)

    def test_negated_desired_is_negation(self, fast_cfg):
        net = CcacModel(fast_cfg)
        s = Solver()
        s.add(*net.constraints())
        s.add(desired_property(net))
        s.add(negated_desired(net))
        assert s.check() is unsat


class TestPropertySemantics:
    def test_high_utilization_threshold(self, fast_cfg):
        """Forcing S_T below the threshold falsifies high_utilization."""
        net = CcacModel(fast_cfg)
        s = Solver()
        s.add(*net.constraints())
        target = fast_cfg.util_thresh * fast_cfg.C * fast_cfg.T
        s.add(net.S[fast_cfg.T] < target - 1)
        s.add(high_utilization(net))
        assert s.check() is unsat

    def test_bounded_queue_is_forall(self, fast_cfg):
        """A single over-limit step falsifies bounded_queue."""
        net = CcacModel(fast_cfg)
        limit = fast_cfg.delay_thresh * fast_cfg.C * fast_cfg.D
        s = Solver()
        s.add(*net.constraints())
        s.add(net.queue(2) > limit)
        s.add(bounded_queue(net))
        assert s.check() is unsat

    def test_increase_decrease_exclusive(self, fast_cfg):
        net = CcacModel(fast_cfg)
        s = Solver()
        s.add(*net.constraints())
        s.add(cwnd_increases(net), cwnd_decreases(net))
        assert s.check() is unsat

    def test_both_disjuncts_needed(self, fast_cfg):
        """desired can hold through the cwnd escape hatches: a trace with
        low utilization but increasing cwnd still satisfies it."""
        net = CcacModel(fast_cfg)
        s = Solver()
        s.add(*net.constraints())
        s.add(Not(high_utilization(net)))
        s.add(desired_property(net))
        assert s.check() is sat
        m = s.model()
        assert m.value(net.cwnd[fast_cfg.T]) > m.value(net.cwnd[0])
