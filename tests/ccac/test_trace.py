"""Unit tests for CexTrace on hand-constructed traces."""

from fractions import Fraction

import pytest

from repro.ccac import CexTrace, ModelConfig


def make_trace(cfg: ModelConfig, **overrides) -> CexTrace:
    """A simple full-utilization trace: A leads S by one unit of queue."""
    T = cfg.T
    S = tuple(Fraction(t) for t in range(T + 1))
    fields = dict(
        cfg=cfg,
        A=tuple(s + 1 for s in S),
        S=S,
        W=tuple(Fraction(0) for _ in range(T + 1)),
        cwnd=tuple(Fraction(2) for _ in range(T + 1)),
        S_pre=tuple(Fraction(-i) for i in range(1, cfg.history + 1)),
        cwnd_pre=tuple(Fraction(2) for _ in range(cfg.history)),
        ack_offset=Fraction(0),
    )
    fields.update(overrides)
    return CexTrace(**fields)


@pytest.fixture
def cfg():
    return ModelConfig(T=5, history=3)


class TestMetrics:
    def test_utilization_full(self, cfg):
        tr = make_trace(cfg)
        assert tr.utilization() == 1

    def test_max_queue(self, cfg):
        tr = make_trace(cfg)
        assert tr.max_queue() == 1

    def test_indexing_helpers(self, cfg):
        tr = make_trace(cfg)
        assert tr.S_at(-1) == -1
        assert tr.S_at(2) == 2
        assert tr.cwnd_at(-2) == 2
        assert tr.ack_at(3) == tr.S[3] + tr.ack_offset

    def test_ack_offset_shifts_acks(self, cfg):
        tr = make_trace(cfg, ack_offset=Fraction(100))
        assert tr.ack_at(0) == 100
        assert tr.ack_at(-1) == 99


class TestRangeBounds:
    def test_flat_waste_gives_unbounded_upper(self, cfg):
        tr = make_trace(cfg)
        for b in tr.range_bounds()[1:]:
            assert b.upper is None
            assert b.width is None

    def test_growing_waste_gives_finite_upper(self, cfg):
        W = tuple(Fraction(t, 2) for t in range(cfg.T + 1))
        S = tuple(Fraction(t, 2) for t in range(cfg.T + 1))
        tr = make_trace(cfg, W=W, S=S, A=tuple(s + Fraction(1, 2) for s in S))
        bounds = tr.range_bounds()
        for t in range(1, cfg.T + 1):
            assert bounds[t].upper == cfg.C * t - W[t]
            assert bounds[t].lower == S[t]

    def test_min_finite_range_width(self, cfg):
        W = tuple(Fraction(t) for t in range(cfg.T + 1))
        S = tuple(Fraction(0) for _ in range(cfg.T + 1))
        tr = make_trace(cfg, W=W, S=S, A=tuple(Fraction(0) for _ in range(cfg.T + 1)))
        # width at t = C*t - W_t - S_t = t - t - 0 = 0
        assert tr.min_finite_range_width() == 0

    def test_t0_bound_pins_initial_queue(self, cfg):
        tr = make_trace(cfg)
        b0 = tr.range_bounds()[0]
        assert b0.lower == b0.upper == tr.A[0]


class TestEnvironmentCheck:
    def test_valid_trace_passes(self, cfg):
        tr = make_trace(cfg)
        assert tr.check_environment() == []

    def test_detects_nonmonotone_service(self, cfg):
        S = list(make_trace(cfg).S)
        S[3] = S[2] - 1
        tr = make_trace(cfg, S=tuple(S), A=tuple(s + 2 for s in make_trace(cfg).S))
        assert any("monotone" in e or "lower service" in e for e in tr.check_environment())

    def test_detects_token_violation(self, cfg):
        S = tuple(Fraction(2 * t) for t in range(cfg.T + 1))  # above link rate
        tr = make_trace(cfg, S=S, A=tuple(s + 1 for s in S))
        assert any("token" in e for e in tr.check_environment())

    def test_detects_lazy_sender(self, cfg):
        base = make_trace(cfg)
        A = list(base.A)
        A[2] += 5  # sent more than the window allows
        tr = make_trace(cfg, A=tuple(A))
        assert any("eager" in e for e in tr.check_environment())

    def test_str_renders(self, cfg):
        out = str(make_trace(cfg))
        assert "utilization" in out
        assert out.count("\n") >= cfg.T
