"""Tests of the CCAC-lite model: constraint consistency, adversary power,
and the paper's qualitative verification verdicts."""

from fractions import Fraction

import pytest

from repro.ccac import (
    CcacModel,
    CexTrace,
    ModelConfig,
    bounded_queue,
    desired_property,
    high_utilization,
    negated_desired,
)
from repro.core import CcacVerifier, constant_cwnd, rocc
from repro.smt import And, Not, Solver, sat, unsat


class TestConfig:
    def test_defaults_valid(self):
        cfg = ModelConfig()
        assert cfg.T > cfg.history
        assert cfg.bdp == 1

    def test_t_must_exceed_history(self):
        with pytest.raises(ValueError):
            ModelConfig(T=4, history=4)

    def test_with_thresholds(self):
        cfg = ModelConfig().with_thresholds(util=Fraction(7, 10))
        assert cfg.util_thresh == Fraction(7, 10)
        assert cfg.delay_thresh == ModelConfig().delay_thresh

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            ModelConfig(jitter=-1)


class TestEnvironmentSat:
    def test_environment_alone_satisfiable(self, fast_cfg):
        net = CcacModel(fast_cfg)
        s = Solver()
        s.add(*net.constraints())
        assert s.check() is sat

    def test_ideal_trace_exists(self, fast_cfg):
        """A full-utilization, zero-queue-growth trace is admissible."""
        net = CcacModel(fast_cfg)
        s = Solver()
        s.add(*net.constraints())
        s.add(high_utilization(net))
        s.add(bounded_queue(net))
        assert s.check() is sat

    def test_adversary_can_violate_property(self, fast_cfg):
        """Without any CCA constraint, the adversary can break the
        property (otherwise synthesis would be vacuous)."""
        net = CcacModel(fast_cfg)
        s = Solver()
        s.add(*net.constraints())
        s.add(negated_desired(net))
        assert s.check() is sat

    def test_service_cannot_exceed_link_rate(self, fast_cfg):
        net = CcacModel(fast_cfg)
        s = Solver()
        s.add(*net.constraints())
        s.add(net.S[fast_cfg.T] > fast_cfg.C * fast_cfg.T)
        assert s.check() is unsat

    def test_waste_needs_idle_sender(self, fast_cfg):
        """W cannot grow while the sender has a large backlog."""
        net = CcacModel(fast_cfg)
        s = Solver()
        s.add(*net.constraints())
        # big queue at every step and waste growth at step 2
        s.add(net.W[2] > net.W[1])
        s.add(net.A[2] > net.tokens(2))
        assert s.check() is unsat


class TestTraceExtraction:
    def test_counterexample_satisfies_environment(self, fast_cfg):
        res = CcacVerifier(fast_cfg).find_counterexample(
            constant_cwnd(1, fast_cfg.history)
        )
        assert not res.verified
        trace = res.counterexample
        assert trace.check_environment() == []

    def test_counterexample_violates_property(self, fast_cfg):
        res = CcacVerifier(fast_cfg).find_counterexample(
            constant_cwnd(1, fast_cfg.history)
        )
        trace = res.counterexample
        util_ok = trace.utilization() >= fast_cfg.util_thresh
        queue_ok = trace.max_queue() <= fast_cfg.delay_thresh * fast_cfg.C * fast_cfg.D
        increased = trace.cwnd[fast_cfg.T] > trace.cwnd[0]
        decreased = trace.cwnd[fast_cfg.T] < trace.cwnd[0]
        assert not ((util_ok or increased) and (queue_ok or decreased))

    def test_range_bounds_structure(self, fast_cfg):
        res = CcacVerifier(fast_cfg).find_counterexample(
            constant_cwnd(1, fast_cfg.history)
        )
        trace = res.counterexample
        bounds = trace.range_bounds()
        assert len(bounds) == fast_cfg.T + 1
        for t in range(1, fast_cfg.T + 1):
            b = bounds[t]
            assert b.lower == trace.S[t]
            if trace.W[t] == trace.W[t - 1]:
                assert b.upper is None
            else:
                assert b.upper == fast_cfg.C * t - trace.W[t]
            # the original trace must itself be inside the range
            assert trace.A[t] >= b.lower
            if b.upper is not None:
                assert trace.A[t] <= b.upper


class TestVerdicts:
    """The paper's qualitative results as regression tests."""

    def test_rocc_verified(self, fast_cfg):
        assert CcacVerifier(fast_cfg).verify(rocc(fast_cfg.history))

    def test_one_bdp_window_refuted(self, fast_cfg):
        assert not CcacVerifier(fast_cfg).verify(constant_cwnd(1, fast_cfg.history))

    def test_rocc_fails_stricter_delay(self, fast_cfg):
        """RoCC converges to ~BDP+1 in flight; a 1-RTT delay bound must
        refute it."""
        cfg = fast_cfg.with_thresholds(delay=Fraction(1))
        assert not CcacVerifier(cfg).verify(rocc(cfg.history))

    def test_divergent_rule_refuted(self, fast_cfg):
        """A non-telescoping rule (beta sum != 0) depends on the absolute
        ack level and must be refuted via the ack-offset freedom."""
        from repro.core import CandidateCCA

        h = fast_cfg.history
        z = (Fraction(0),) * h
        betas = [Fraction(0)] * h
        betas[-1] = Fraction(1)
        divergent = CandidateCCA(z, tuple(betas), Fraction(1))
        assert not CcacVerifier(fast_cfg).verify(divergent)

    def test_wce_returns_wider_ranges(self, fast_cfg):
        v = CcacVerifier(fast_cfg)
        cand = constant_cwnd(1, fast_cfg.history)
        plain = v.find_counterexample(cand, worst_case=False)
        wce = v.find_counterexample(cand, worst_case=True)
        assert not plain.verified and not wce.verified
        w_plain = plain.counterexample.min_finite_range_width()
        w_wce = wce.counterexample.min_finite_range_width()
        if w_plain is not None and w_wce is not None:
            assert w_wce >= w_plain

    def test_wce_trace_still_admissible(self, fast_cfg):
        res = CcacVerifier(fast_cfg).find_counterexample(
            constant_cwnd(1, fast_cfg.history), worst_case=True
        )
        assert res.counterexample.check_environment() == []
