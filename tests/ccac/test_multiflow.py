"""Two-flow fairness / starvation tests (§4.1's open problem)."""

from fractions import Fraction

import pytest

from repro.ccac import ModelConfig
from repro.ccac.multiflow import StarvationVerifier, TwoFlowModel
from repro.core import constant_cwnd, rocc
from repro.smt import Solver, sat, unsat


@pytest.fixture
def mf_cfg():
    return ModelConfig(T=5, history=3)


class TestModel:
    def test_environment_satisfiable(self, mf_cfg):
        model = TwoFlowModel(mf_cfg)
        s = Solver()
        s.add(*model.constraints())
        assert s.check() is sat

    def test_aggregate_capacity_enforced(self, mf_cfg):
        model = TwoFlowModel(mf_cfg)
        s = Solver()
        s.add(*model.constraints())
        s.add(model.total_S(mf_cfg.T) > mf_cfg.C * mf_cfg.T)
        assert s.check() is unsat

    def test_min_share_bounds_split(self, mf_cfg):
        """With min_share=1/2 both backlogged flows split service
        exactly evenly; a grossly uneven split is inadmissible."""
        model = TwoFlowModel(mf_cfg, min_share=Fraction(1, 2))
        s = Solver()
        s.add(*model.constraints())
        # both always backlogged, flow 1 gets everything in step 2
        for t in range(mf_cfg.T + 1):
            s.add(model.flows[0]["A"][t] - model.flows[0]["S"][t] >= 1)
            s.add(model.flows[1]["A"][t] - model.flows[1]["S"][t] >= 1)
        s.add(model.flows[0]["S"][2] - model.flows[0]["S"][1] >= Fraction(3, 4))
        s.add(model.flows[1]["S"][2] - model.flows[1]["S"][1] <= Fraction(1, 8))
        s.add(model.total_S(2) - model.total_S(1) >= Fraction(7, 8))
        assert s.check() is unsat

    def test_invalid_min_share_rejected(self, mf_cfg):
        with pytest.raises(ValueError):
            TwoFlowModel(mf_cfg, min_share=Fraction(3, 4))

    def test_flow_view_interface(self, mf_cfg):
        model = TwoFlowModel(mf_cfg)
        view = model.flow_view(0)
        assert view.S_at(-1) is model.flows[0]["S_pre"][0]
        assert view.cwnd_at(2) is model.flows[0]["cwnd"][2]


class TestStarvation:
    def test_adversarial_split_starves_everything(self, mf_cfg):
        """With a fully adversarial scheduler (min_share=0), even RoCC
        can be starved — the multi-flow analogue of the starvation result
        the paper cites, and why the service-discipline assumption is
        load-bearing."""
        v = StarvationVerifier(mf_cfg, min_share=Fraction(0))
        result = v.find_starvation(rocc(mf_cfg.history), phi=Fraction(1, 2))
        assert not result.verified

    def test_fair_scheduler_prevents_starvation(self, mf_cfg):
        """With an exactly-fair scheduler (min_share=1/2), RoCC flows are
        provably not starved below a quarter of their fair share (jitter
        still costs throughput, so the guarantee is phi=1/4, not 1/2)."""
        v = StarvationVerifier(mf_cfg, min_share=Fraction(1, 2))
        result = v.find_starvation(rocc(mf_cfg.history), phi=Fraction(1, 4))
        assert result.verified

    def test_starvation_monotone_in_share(self, mf_cfg):
        """If a candidate avoids phi-starvation at some min_share, it
        also avoids it at a larger min_share (fewer admissible traces)."""
        cand = rocc(mf_cfg.history)
        shares = [Fraction(0), Fraction(1, 4), Fraction(1, 2)]
        verdicts = [
            StarvationVerifier(mf_cfg, min_share=s).find_starvation(cand, Fraction(1, 2)).verified
            for s in shares
        ]
        # once verified, stays verified as the assumption strengthens
        seen_true = False
        for v in verdicts:
            if seen_true:
                assert v
            seen_true = seen_true or v

    def test_starvation_trace_reports_throughputs(self, mf_cfg):
        v = StarvationVerifier(mf_cfg, min_share=Fraction(0))
        result = v.find_starvation(constant_cwnd(1, mf_cfg.history), phi=Fraction(1, 2))
        assert not result.verified
        assert result.throughputs is not None
        assert len(result.throughputs) == 2
