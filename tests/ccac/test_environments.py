"""The environment matrix: registry identity, codecs, portfolio verdicts."""

from fractions import Fraction

import pytest

from repro.ccac import (
    ENVIRONMENT_VERSION,
    EnvironmentSpec,
    ModelConfig,
    default_environments,
    environment,
    environment_from_json,
    lossless_environment,
    lossy_environment,
    multiflow_environment,
    parse_environment,
    parse_environments,
    registered_kinds,
)
from repro.core import CcacVerifier, SynthesisQuery, rocc, table1_spaces
from repro.runtime.serialize import (
    decode_environments,
    decode_trace,
    encode_environments,
    encode_trace,
    query_fingerprint,
)


@pytest.fixture
def cfg():
    return ModelConfig(T=5, history=3)


class TestRegistry:
    def test_all_matrix_kinds_registered(self):
        assert {"lossless", "lossy", "multiflow", "jitter", "thresholds"} \
            <= set(registered_kinds())

    def test_defaults_fill_in_canonically(self):
        env = lossy_environment(buffer=2)
        assert env.param("loss_thresh") == Fraction(1)
        assert env.key() == "lossy:buffer=2,loss_thresh=1"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown environment kind"):
            environment("wormhole")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="does not take parameter"):
            environment("lossless", buffer=2)

    def test_missing_required_parameter_rejected(self):
        with pytest.raises(ValueError, match="requires parameter"):
            environment("lossy")

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError, match="buffer must be positive"):
            lossy_environment(buffer=0)
        with pytest.raises(ValueError):
            multiflow_environment(min_share=Fraction(3, 2))

    def test_param_order_is_canonical(self):
        a = environment("lossy", buffer=2, loss_thresh=1)
        b = environment("lossy", loss_thresh=1, buffer=2)
        assert a == b and hash(a) == hash(b) and a.key() == b.key()


class TestCodecs:
    def test_parse_round_trips_through_key(self):
        env = parse_environment("lossy:buffer=13/7")
        assert env.param("buffer") == Fraction(13, 7)
        assert parse_environment(env.key()) == env

    def test_parse_rejects_malformed_params(self):
        with pytest.raises(ValueError, match="expected key=value"):
            parse_environment("lossy:buffer")
        with pytest.raises(ValueError, match="non-rational"):
            parse_environment("lossy:buffer=huge")

    def test_parse_environments_keeps_none_canonical(self):
        assert parse_environments(None) is None
        assert parse_environments([]) is None
        assert parse_environments(["lossless"]) == [lossless_environment()]

    def test_json_round_trip_is_exact(self):
        env = multiflow_environment(min_share=Fraction(1, 3),
                                    phi=Fraction(2, 7))
        again = environment_from_json(env.to_json())
        assert again == env
        assert again.param("min_share") == Fraction(1, 3)

    def test_json_version_gated(self):
        wire = lossless_environment().to_json()
        wire["version"] = ENVIRONMENT_VERSION + 1
        with pytest.raises(ValueError, match="unsupported environment version"):
            EnvironmentSpec.from_json(wire)

    def test_encode_environments_canonicalizes_none(self):
        # None and [lossless] must serialize identically — the paper's
        # lossless fragment is one identity, not two
        assert encode_environments(None) == \
            encode_environments([lossless_environment()])
        assert decode_environments(encode_environments(None)) is None
        multi = [lossless_environment(), lossy_environment(buffer=8)]
        assert decode_environments(encode_environments(multi)) == multi


class TestQueryFingerprints:
    def _query(self, environments):
        return SynthesisQuery(
            spec=table1_spaces()["no_cwnd_small"],
            cfg=ModelConfig(T=5),
            environments=environments,
        )

    def test_none_equals_explicit_lossless(self):
        assert query_fingerprint(self._query(None)) == \
            query_fingerprint(self._query([lossless_environment()]))

    def test_environments_are_identity(self):
        assert query_fingerprint(self._query(None)) != \
            query_fingerprint(
                self._query([lossless_environment(),
                             lossy_environment(buffer=2)])
            )


class TestPortfolioVerdicts:
    def test_rocc_verified_across_adequate_matrix(self, cfg):
        envs = [lossless_environment(), lossy_environment(buffer=8)]
        verifier = CcacVerifier(cfg, environments=envs)
        assert verifier.verify(rocc(cfg.history))

    def test_none_and_lossless_verdicts_agree(self, cfg):
        candidate = rocc(cfg.history)
        implicit = CcacVerifier(cfg).verify(candidate)
        explicit = CcacVerifier(
            cfg, environments=[lossless_environment()]
        ).verify(candidate)
        assert implicit == explicit is True

    def test_tiny_buffer_counterexample_tagged_with_origin(self, cfg):
        envs = [lossless_environment(), lossy_environment(buffer=1)]
        res = CcacVerifier(cfg, environments=envs).find_counterexample(
            rocc(cfg.history)
        )
        assert not res.verified
        assert res.environment is not None
        assert res.environment.kind == "lossy"
        assert res.counterexample.environment == res.environment

    def test_tagged_counterexample_round_trips(self, cfg):
        env = lossy_environment(buffer=1)
        res = CcacVerifier(cfg, environments=[env]).find_counterexample(
            rocc(cfg.history)
        )
        cex = res.counterexample
        wire = encode_trace(cex)
        assert wire["kind"] == "lossy"
        again = decode_trace(wire, cfg)
        assert again == cex
        assert again.environment == env


class TestDefaults:
    def test_default_environments_is_the_paper_fragment(self):
        assert default_environments() == (lossless_environment(),)
