"""Finite-buffer / lossy model tests (§4.1 environment extension)."""

from fractions import Fraction

import pytest

from repro.ccac import ModelConfig
from repro.ccac.lossy import LossyCcacModel, LossyVerifier, minimum_buffer
from repro.core import constant_cwnd, rocc
from repro.smt import Solver, sat, unsat


@pytest.fixture
def cfg():
    return ModelConfig(T=5, history=3)


class TestModel:
    def test_requires_positive_buffer(self, cfg):
        with pytest.raises(ValueError):
            LossyCcacModel(cfg, Fraction(0))

    def test_environment_satisfiable(self, cfg):
        net = LossyCcacModel(cfg, Fraction(2))
        s = Solver()
        s.add(*net.constraints())
        assert s.check() is sat

    def test_queue_never_exceeds_buffer(self, cfg):
        net = LossyCcacModel(cfg, Fraction(2))
        s = Solver()
        s.add(*net.constraints())
        s.add(net.delivered(3) - net.S[3] > 2)
        assert s.check() is unsat

    def test_loss_only_when_full(self, cfg):
        net = LossyCcacModel(cfg, Fraction(2))
        s = Solver()
        s.add(*net.constraints())
        s.add(net.L[3] > net.L[2])
        s.add(net.delivered(3) - net.S[3] < 2)
        assert s.check() is unsat

    def test_lossless_limit(self, cfg):
        """With a huge buffer and losses pinned to zero, the lossy model
        admits the same ideal traces as the lossless one."""
        from repro.ccac import desired_property

        net = LossyCcacModel(cfg, Fraction(100))
        s = Solver()
        s.add(*net.constraints())
        s.add(*rocc(cfg.history).constraints_for(net))
        s.add(desired_property(net))
        assert s.check() is sat


class TestVerdicts:
    def test_rocc_fails_small_buffer(self, cfg):
        """RoCC's steady queue needs buffer; below it, drops exceed the
        loss budget every window and the rule never decreases."""
        res = LossyVerifier(cfg, Fraction(1)).find_counterexample(rocc(cfg.history))
        assert not res.verified
        assert res.loss[-1] > 0

    def test_rocc_survives_adequate_buffer(self, cfg):
        assert LossyVerifier(cfg, Fraction(8)).verify(rocc(cfg.history))

    def test_verdict_monotone_in_buffer(self, cfg):
        """Bigger buffers only remove adversarial traces."""
        verdicts = [
            LossyVerifier(cfg, b).verify(rocc(cfg.history))
            for b in (Fraction(1), Fraction(4), Fraction(8))
        ]
        seen_true = False
        for v in verdicts:
            if seen_true:
                assert v
            seen_true = seen_true or v

    def test_fragile_rule_still_fails_with_buffer(self, cfg):
        assert not LossyVerifier(cfg, Fraction(8)).verify(constant_cwnd(1, cfg.history))

    def test_counterexample_loss_trace_monotone(self, cfg):
        res = LossyVerifier(cfg, Fraction(1)).find_counterexample(rocc(cfg.history))
        losses = res.loss
        assert all(b >= a for a, b in zip(losses, losses[1:]))
        assert losses[0] == 0


class TestBufferSizing:
    def test_minimum_buffer_found(self, cfg):
        mb = minimum_buffer(rocc(cfg.history), cfg)
        assert mb is not None
        # RoCC's steady in-flight is ~3 C*D (2 BDP + increment) plus
        # jitter slack; the formal minimum lands just above 4
        assert Fraction(3) <= mb <= Fraction(6)

    def test_minimum_buffer_none_for_hopeless(self, cfg):
        assert minimum_buffer(constant_cwnd(1, cfg.history), cfg) is None
