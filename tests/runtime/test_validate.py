"""Independent result validation: the compensating check for the
from-scratch SMT solver (SAT models, counterexample traces)."""

from fractions import Fraction

import pytest

from repro.ccac import CexTrace, ModelConfig
from repro.core import CcacVerifier, constant_cwnd, rocc
from repro.runtime import (
    SoundnessError,
    evaluate_term,
    validate_assignment,
    validate_counterexample,
    validate_model,
)
from repro.smt import And, Bool, Implies, Not, Or, Real, RealVal, Solver, sat


class TestEvaluateTerm:
    def test_arithmetic_and_comparison(self):
        x, y = Real("x"), Real("y")
        reals = {x: Fraction(3, 2), y: Fraction(-1, 2)}
        assert evaluate_term(x + y, {}, reals) == Fraction(1)
        assert evaluate_term(x - y, {}, reals) == Fraction(2)
        assert evaluate_term(2 * x, {}, reals) == Fraction(3)
        assert evaluate_term(x <= y, {}, reals) is False
        assert evaluate_term(y < x, {}, reals) is True
        assert evaluate_term(x.eq(RealVal(Fraction(3, 2))), {}, reals) is True

    def test_boolean_structure(self):
        p, q = Bool("p"), Bool("q")
        bools = {p: True, q: False}
        assert evaluate_term(And(p, Not(q)), bools, {}) is True
        assert evaluate_term(Or(q, q), bools, {}) is False
        assert evaluate_term(Implies(p, q), bools, {}) is False
        assert evaluate_term(Implies(q, p), bools, {}) is True

    def test_unassigned_variables_default_to_zero_false(self):
        x, p = Real("unseen_x"), Bool("unseen_p")
        assert evaluate_term(x.eq(RealVal(0)), {}, {}) is True
        assert evaluate_term(p, {}, {}) is False

    def test_deep_term_no_recursion_limit(self):
        x = Real("x")
        term = x
        for _ in range(5000):
            term = term + 1
        assert evaluate_term(term, {}, {x: Fraction(0)}) == 5000


class TestValidateAssignment:
    def test_satisfying_assignment_passes(self):
        x = Real("x")
        n = validate_assignment([x >= 1, x <= 2], {}, {x: Fraction(3, 2)})
        assert n == 2

    def test_violating_assignment_raises(self):
        x = Real("x")
        with pytest.raises(SoundnessError, match="assertion #2"):
            validate_assignment([x >= 1, x <= 2], {}, {x: Fraction(5)})


class TestValidateModel:
    def test_real_solver_model_passes(self):
        x, y = Real("vx"), Real("vy")
        s = Solver()
        s.add(x + y <= 4, x >= 1, y >= 2)
        assert s.check() is sat
        assert validate_model(s.assertions(), s.model()) == 3

    def test_corrupted_model_raises(self):
        x, y = Real("cx"), Real("cy")
        s = Solver()
        s.add(x + y <= 4, x >= 1, y >= 2)
        assert s.check() is sat
        model = s.model()

        class Corrupted:
            def assignment(self):
                bools, reals = model.assignment()
                reals[x] = Fraction(100)
                return bools, reals

        with pytest.raises(SoundnessError):
            validate_model(s.assertions(), Corrupted())

    def test_injected_solver_bug_caught_by_verifier(self, fast_cfg, monkeypatch):
        """A solver that returns a perturbed model must be refuted by the
        verifier's built-in validation, not silently accepted."""
        from repro.smt.solver import Model

        orig = Model.assignment

        def perturbed(self):
            bools, reals = orig(self)
            for var in reals:
                reals[var] += Fraction(1, 7)
                break
            return bools, reals

        monkeypatch.setattr(Model, "assignment", perturbed)
        cfg = ModelConfig(T=5)
        verifier = CcacVerifier(cfg)
        with pytest.raises(SoundnessError):
            verifier.find_counterexample(constant_cwnd(Fraction(1)))


def _good_trace(cfg: ModelConfig) -> CexTrace:
    """A hand-built trace that satisfies the environment AND the desired
    property (full utilization, empty queue)."""
    ts = range(cfg.T + 1)
    return CexTrace(
        cfg=cfg,
        A=tuple(Fraction(t) for t in ts),
        S=tuple(Fraction(t) for t in ts),
        W=tuple(Fraction(0) for _ in ts),
        cwnd=tuple(Fraction(1) for _ in ts),
        S_pre=tuple(Fraction(0) for _ in range(cfg.history)),
        cwnd_pre=tuple(Fraction(1) for _ in range(cfg.history)),
        ack_offset=Fraction(0),
    )


class TestValidateCounterexample:
    def test_real_counterexample_passes(self, fast_cfg):
        cand = constant_cwnd(Fraction(1))
        cfg = ModelConfig(T=5)
        res = CcacVerifier(cfg, validate=False).find_counterexample(cand)
        assert res.counterexample is not None
        validate_counterexample(res.counterexample, candidate=None)

    def test_property_satisfying_trace_rejected(self):
        cfg = ModelConfig(T=5, history=3)
        trace = _good_trace(cfg)
        assert trace.check_environment() == []  # environment is consistent
        with pytest.raises(SoundnessError, match="satisfies the desired"):
            validate_counterexample(trace)

    def test_environment_violation_rejected(self):
        cfg = ModelConfig(T=5, history=3)
        good = _good_trace(cfg)
        bad = CexTrace(
            cfg=cfg,
            A=good.A,
            S=good.S[:-1] + (good.S[-1] + 100,),  # S_T > A_T: causality broken
            W=good.W,
            cwnd=good.cwnd,
            S_pre=good.S_pre,
            cwnd_pre=good.cwnd_pre,
        )
        with pytest.raises(SoundnessError, match="environment"):
            validate_counterexample(bad)

    def test_template_mismatch_rejected(self, fast_cfg):
        cand = constant_cwnd(Fraction(1))
        cfg = ModelConfig(T=5)
        res = CcacVerifier(cfg, validate=False).find_counterexample(cand)
        trace = res.counterexample
        assert trace is not None
        wrong = constant_cwnd(Fraction(2))
        with pytest.raises(SoundnessError, match="candidate's rule"):
            validate_counterexample(trace, candidate=wrong)

    def test_cross_validate_consistent_for_verified_cca(self):
        from repro.runtime import cross_validate

        cfg = ModelConfig(T=5)
        report = cross_validate(rocc(), cfg, ticks=60)
        assert report.ok
        assert report.utilization > 0
        assert "consistent" in report.describe()

    def test_cross_check_option_attaches_reports(self, tiny_query):
        from repro.runtime import RuntimeOptions, run_synthesis

        result = run_synthesis(tiny_query, RuntimeOptions(cross_check=True))
        assert result.found
        assert len(result.cross_checks) == len(result.solutions)
        assert all(c.ok for c in result.cross_checks)

    def test_tier1_paths_validated_by_default(self):
        """Validation is on by default in the verifier: both the refuted
        and the verified path run under it without raising."""
        cfg = ModelConfig(T=5)
        verifier = CcacVerifier(cfg)
        assert verifier.validate
        assert verifier.find_counterexample(rocc()).verified
        refuted = verifier.find_counterexample(constant_cwnd(Fraction(1)))
        assert refuted.counterexample is not None
