"""End-to-end fault injection: SIGKILL a synthesis mid-run, then resume.

The child process runs a real checkpointed synthesis and SIGKILLs itself
from inside ``CheckpointStore.save`` after a few iterations — the worst
possible instant, mid-write — so these tests cover the atomic-replace
protocol, not just a polite shutdown.  Marked ``runtime`` (forks real
processes).
"""

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.cegis import CegisLoop, CegisOptions, StopReason
from repro.core import synthesize
from repro.core.synthesizer import make_generator
from repro.runtime import IsolatedVerifier, RuntimeOptions, WorkerLimits, run_synthesis

pytestmark = pytest.mark.runtime

# the tiny query, spelled out so the child script builds the exact same one
_QUERY_SRC = """
from fractions import Fraction
from repro.ccac import ModelConfig
from repro.core import SynthesisQuery
from repro.core.template import TemplateSpec

cfg = ModelConfig(T=5, history=3)
spec = TemplateSpec(
    history=cfg.history,
    use_cwnd_history=False,
    coeff_domain=(-1, 0, 1),
    const_domain=(0, 1),
)
query = SynthesisQuery(
    spec=spec, cfg=cfg, generator="enum", worst_case_cex=False, time_budget=300,
)
"""

_CHILD_SRC = _QUERY_SRC + """
import os, signal
from repro.runtime import RuntimeOptions, run_synthesis
from repro.runtime.checkpoint import CheckpointStore

KILL_AFTER = 3
orig_save = CheckpointStore.save

def killing_save(self, **kwargs):
    orig_save(self, **kwargs)
    if self.saves >= KILL_AFTER:
        os.kill(os.getpid(), signal.SIGKILL)  # no cleanup, no atexit

CheckpointStore.save = killing_save
run_synthesis(query, RuntimeOptions(checkpoint_path={ckpt_path!r}))
raise SystemExit("unreachable: the run should have been killed")
"""


def _run_child(script: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-c", script], env=env, capture_output=True, timeout=300
    )


@pytest.fixture
def killed_checkpoint(tmp_path):
    """Path of a checkpoint left behind by a SIGKILL'd synthesis."""
    ckpt = str(tmp_path / "killed.ckpt")
    proc = _run_child(_CHILD_SRC.format(ckpt_path=ckpt))
    assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()
    assert os.path.exists(ckpt)
    return ckpt


class TestSigkillResume:
    def test_killed_run_resumes_to_identical_answer(
        self, killed_checkpoint, tiny_query
    ):
        # the checkpoint is valid JSON mid-flight state
        with open(killed_checkpoint) as f:
            raw = json.load(f)
        assert raw["stop_reason"] is None
        assert raw["stats"]["iterations"] == 3

        full = synthesize(tiny_query)
        resumed = run_synthesis(
            tiny_query, RuntimeOptions(checkpoint_path=killed_checkpoint)
        )
        assert resumed.resumed
        assert resumed.solutions == full.solutions
        assert resumed.iterations == full.iterations
        assert resumed.counterexamples == full.counterexamples
        assert resumed.stop_reason is full.stop_reason is StopReason.SOLUTION

    def test_cli_resume_completes_killed_run(self, killed_checkpoint, capsys):
        from repro.cli import main

        rc = main(["resume", killed_checkpoint])
        out = capsys.readouterr().out
        assert rc == 0
        assert "stop=solution" in out
        assert "(resumed)" in out
        assert "cwnd(t) =" in out

    def test_cli_resume_is_idempotent(self, killed_checkpoint, capsys):
        from repro.cli import main

        assert main(["resume", killed_checkpoint]) == 0
        capsys.readouterr()
        assert main(["resume", killed_checkpoint]) == 0  # verdict replayed
        assert "stop=solution" in capsys.readouterr().out


class TestKilledWorkerStillTerminates:
    def test_loop_survives_killed_verifier_and_reports_verdict(
        self, tiny_query, recording_sink, monkeypatch
    ):
        """Acceptance: a verifier worker that is killed mid-call yields
        unknown, emits runtime.degrade, and the CEGIS run still
        terminates with an explicit verdict."""
        import time as time_mod

        import repro.runtime.workers as workers_mod

        monkeypatch.setattr(
            workers_mod, "_verify_task", lambda *a: time_mod.sleep(3600)
        )
        monkeypatch.setattr(IsolatedVerifier, "WATCHDOG_SLACK", 1.0)
        verifier = IsolatedVerifier(
            tiny_query.cfg,
            limits=WorkerLimits(
                wall_time=0.2, retries=1, escalation=1.0, kill_grace=0.3
            ),
        )
        generator = make_generator(tiny_query)
        outcome = CegisLoop(generator, verifier, CegisOptions(time_budget=60)).run()
        assert outcome.stop_reason is StopReason.DEGRADED
        assert not outcome.found
        kills = recording_sink.events("runtime.degrade")
        assert kills and all(
            e["attrs"]["kind"] == "worker_killed" for e in kills
        )
