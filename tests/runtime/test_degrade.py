"""The degradation ladder: recorded weakenings, never silent ones."""

from dataclasses import dataclass
from fractions import Fraction

from repro.cegis import CegisLoop, StopReason
from repro.runtime import ResilientVerifier, default_precision_ladder


@dataclass
class FakeResult:
    verified: bool = False
    counterexample: object = None
    unknown: bool = False
    degraded: bool = False


class ScriptedVerifier:
    """Returns queued results; records the calls it received."""

    def __init__(self, script, wce_precision=Fraction(1, 8)):
        self.script = list(script)
        self.wce_precision = wce_precision
        self.seen = []

    def find_counterexample(self, candidate, worst_case=False, deadline=None):
        self.seen.append(worst_case)
        if self.script:
            return self.script.pop(0)
        return FakeResult(verified=True)


class TestPrecisionLadder:
    def test_doubles_up_to_one(self):
        rungs = default_precision_ladder(Fraction(1, 8))
        assert rungs == (Fraction(1, 8), Fraction(1, 4), Fraction(1, 2), Fraction(1))

    def test_start_at_one_is_single_rung(self):
        assert default_precision_ladder(Fraction(1)) == (Fraction(1),)


class TestWorstCaseFallback:
    def test_unknown_wce_falls_back_to_plain_search(self):
        base = ScriptedVerifier([
            FakeResult(unknown=True),               # wce attempt
            FakeResult(counterexample="cex"),        # plain retry
        ])
        rv = ResilientVerifier(base)
        result = rv.find_counterexample("cand", worst_case=True)
        assert result.counterexample == "cex"
        assert result.degraded
        assert base.seen == [True, False]
        assert [d["kind"] for d in rv.degradations] == ["wce_fallback"]

    def test_wce_disabled_after_repeated_failures(self):
        script = []
        for _ in range(3):
            script.append(FakeResult(unknown=True))
            script.append(FakeResult(counterexample="c"))
        base = ScriptedVerifier(script)
        rv = ResilientVerifier(base, wce_fail_limit=3)
        for _ in range(3):
            rv.find_counterexample("cand", worst_case=True)
        assert "wce_disabled" in [d["kind"] for d in rv.degradations]
        # next worst-case request goes straight to the plain search
        result = rv.find_counterexample("cand", worst_case=True)
        assert base.seen[-1] is False
        assert result.degraded

    def test_successful_wce_not_degraded(self):
        base = ScriptedVerifier([FakeResult(counterexample="cex")])
        rv = ResilientVerifier(base)
        result = rv.find_counterexample("cand", worst_case=True)
        assert not result.degraded
        assert rv.degradations == []


class TestPrecisionStepDown:
    def test_consecutive_unknowns_coarsen_precision(self):
        base = ScriptedVerifier(
            [FakeResult(unknown=True)] * 4, wce_precision=Fraction(1, 4)
        )
        rv = ResilientVerifier(base, unknown_threshold=2)
        for _ in range(4):
            rv.find_counterexample("cand")
        kinds = [d["kind"] for d in rv.degradations]
        assert kinds.count("wce_precision") == 2
        assert base.wce_precision == Fraction(1)

    def test_streak_resets_on_conclusive_answer(self):
        base = ScriptedVerifier([
            FakeResult(unknown=True),
            FakeResult(counterexample="c"),
            FakeResult(unknown=True),
            FakeResult(counterexample="c"),
        ])
        rv = ResilientVerifier(base, unknown_threshold=2)
        for _ in range(4):
            rv.find_counterexample("cand")
        assert all(d["kind"] != "wce_precision" for d in rv.degradations)

    def test_bottom_of_ladder_stops_stepping(self):
        base = ScriptedVerifier(
            [FakeResult(unknown=True)] * 6, wce_precision=Fraction(1, 2)
        )
        rv = ResilientVerifier(base, unknown_threshold=1)
        for _ in range(6):
            rv.find_counterexample("cand")
        assert base.wce_precision == Fraction(1)


class TestDegradeEvents:
    def test_every_step_emits_runtime_degrade(self, recording_sink):
        base = ScriptedVerifier([
            FakeResult(unknown=True),
            FakeResult(counterexample="c"),
        ])
        rv = ResilientVerifier(base)
        rv.find_counterexample("cand", worst_case=True)
        events = recording_sink.events("runtime.degrade")
        assert len(events) == 1
        assert events[0]["attrs"]["kind"] == "wce_fallback"

    def test_loop_over_exhausted_ladder_reports_degraded_stop(self):
        """A run that only terminates because the ladder gave up reports
        StopReason.DEGRADED, not a silent budget stop."""

        class AlwaysUnknown:
            wce_precision = Fraction(1, 2)

            def find_counterexample(self, candidate, worst_case=False, deadline=None):
                return FakeResult(unknown=True)

        class OneCandidate:
            def propose(self):
                return "cand"

            def add_counterexample(self, cex):
                pass

            def block(self, cand):
                pass

        rv = ResilientVerifier(AlwaysUnknown(), unknown_threshold=1)
        outcome = CegisLoop(OneCandidate(), rv).run()
        assert outcome.stop_reason is StopReason.DEGRADED
        assert not outcome.found
