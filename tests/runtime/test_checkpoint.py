"""Atomic checkpoints: exact round-trips, fingerprint guards, crash safety."""

import json
import os
from fractions import Fraction

import pytest

from repro.ccac import ModelConfig
from repro.cegis import StopReason
from repro.core import SynthesisQuery, constant_cwnd, synthesize
from repro.runtime import (
    CheckpointError,
    CheckpointMismatchError,
    CheckpointStore,
    RuntimeOptions,
    decode_query,
    decode_trace,
    encode_query,
    encode_trace,
    query_fingerprint,
    run_synthesis,
)
from repro.runtime.runner import make_checkpoint_store
from repro.runtime.serialize import decode_candidate, encode_candidate


class TestSerialization:
    def test_candidate_round_trip_preserves_fractions(self):
        cand = constant_cwnd(Fraction(3, 2))
        data = json.loads(json.dumps(encode_candidate(cand)))
        back = decode_candidate(data)
        assert back == cand
        assert back.gamma == Fraction(3, 2)

    def test_trace_round_trip_is_exact(self, fast_cfg):
        from repro.core import CcacVerifier

        cfg = ModelConfig(T=5)
        res = CcacVerifier(cfg).find_counterexample(constant_cwnd(Fraction(1)))
        trace = res.counterexample
        assert trace is not None
        data = json.loads(json.dumps(encode_trace(trace)))
        back = decode_trace(data, cfg)
        assert back == trace  # frozen dataclass: exact Fraction equality

    def test_query_round_trip(self, tiny_query):
        data = json.loads(json.dumps(encode_query(tiny_query)))
        back = decode_query(data)
        assert back == tiny_query

    def test_fingerprint_stable_and_semantic(self, tiny_query):
        import dataclasses

        fp = query_fingerprint(tiny_query)
        assert fp == query_fingerprint(tiny_query)
        # volatile knobs do not change identity
        more_budget = dataclasses.replace(tiny_query, time_budget=9999)
        assert query_fingerprint(more_budget) == fp
        # semantic fields do
        other_cfg = dataclasses.replace(
            tiny_query, cfg=ModelConfig(T=6, history=3)
        )
        assert query_fingerprint(other_cfg) != fp


class TestCheckpointStore:
    def _store(self, tmp_path, fingerprint="fp"):
        return CheckpointStore(str(tmp_path / "run.ckpt"), fingerprint=fingerprint)

    def _save_some(self, store, stop_reason=None):
        store.save(
            stats={"iterations": 3, "counterexamples": 2},
            solutions=["s1"],
            counterexamples=["c1", "c2"],
            blocked=["b1"],
            stop_reason=stop_reason,
        )

    def test_round_trip(self, tmp_path):
        store = self._store(tmp_path)
        assert store.load() is None
        self._save_some(store)
        state = store.load()
        assert state.stats["iterations"] == 3
        assert state.solutions == ["s1"]
        assert state.counterexamples == ["c1", "c2"]
        assert state.blocked == ["b1"]
        assert state.stop_reason is None
        assert not state.complete

    def test_final_save_records_stop_reason(self, tmp_path):
        store = self._store(tmp_path)
        self._save_some(store, stop_reason="solution")
        assert store.load().complete

    def test_no_tmp_file_left_behind(self, tmp_path):
        store = self._store(tmp_path)
        self._save_some(store)
        assert os.path.exists(store.path)
        assert not os.path.exists(store.path + ".tmp")

    def test_fingerprint_mismatch_is_hard_error(self, tmp_path):
        self._save_some(self._store(tmp_path, fingerprint="aaa"))
        other = self._store(tmp_path, fingerprint="bbb")
        with pytest.raises(CheckpointMismatchError):
            other.load()

    def test_torn_file_is_checkpoint_error(self, tmp_path):
        store = self._store(tmp_path)
        with open(store.path, "w") as f:
            f.write('{"version": 1, "trunc')
        with pytest.raises(CheckpointError, match="not valid JSON"):
            store.load()

    def test_wrong_schema_rejected(self, tmp_path):
        store = self._store(tmp_path)
        with open(store.path, "w") as f:
            json.dump({"version": 999}, f)
        with pytest.raises(CheckpointError, match="schema"):
            store.load()

    def test_read_meta(self, tmp_path):
        store = CheckpointStore(
            str(tmp_path / "m.ckpt"), fingerprint="xyz", meta={"k": "v"}
        )
        self._save_some(store)
        fp, meta = CheckpointStore.read_meta(store.path)
        assert fp == "xyz"
        assert meta == {"k": "v"}


class TestSynthesisCheckpointing:
    def test_checkpointed_run_matches_plain_run(self, tmp_path, tiny_query):
        plain = synthesize(tiny_query)
        ckpt = run_synthesis(
            tiny_query,
            RuntimeOptions(checkpoint_path=str(tmp_path / "run.ckpt")),
        )
        assert ckpt.solutions == plain.solutions
        assert ckpt.iterations == plain.iterations
        assert ckpt.stop_reason is plain.stop_reason is StopReason.SOLUTION

    def test_resume_after_partial_run_reaches_same_answer(
        self, tmp_path, tiny_query
    ):
        import dataclasses

        path = str(tmp_path / "run.ckpt")
        full = synthesize(tiny_query)

        # cut the run off after a few iterations (simulated crash: the
        # stored state has no stop_reason because max_iterations exits
        # are overwritten below)
        partial_q = dataclasses.replace(tiny_query, max_iterations=4)
        partial = run_synthesis(partial_q, RuntimeOptions(checkpoint_path=path))
        assert partial.stop_reason is StopReason.MAX_ITERATIONS

        # strip the final verdict so the checkpoint looks mid-flight
        with open(path) as f:
            raw = json.load(f)
        raw["stop_reason"] = None
        with open(path, "w") as f:
            json.dump(raw, f)

        resumed = run_synthesis(tiny_query, RuntimeOptions(checkpoint_path=path))
        assert resumed.resumed
        assert resumed.solutions == full.solutions
        assert resumed.iterations == full.iterations
        assert resumed.counterexamples == full.counterexamples
        assert resumed.stop_reason is full.stop_reason

    def test_resume_mid_portfolio_matrix_run(self, tmp_path, tiny_query):
        """A multi-environment run checkpoints counterexamples from every
        cell, each tagged with its origin, and resumes to the same
        verdict the uninterrupted run reaches."""
        import dataclasses

        from repro.ccac import lossless_environment, lossy_environment

        matrix_q = dataclasses.replace(
            tiny_query,
            environments=[lossless_environment(),
                          lossy_environment(buffer=2)],
        )
        full = synthesize(matrix_q)
        path = str(tmp_path / "matrix.ckpt")
        partial_q = dataclasses.replace(matrix_q, max_iterations=6)
        run_synthesis(partial_q, RuntimeOptions(checkpoint_path=path))
        with open(path) as f:
            raw = json.load(f)
        raw["stop_reason"] = None
        with open(path, "w") as f:
            json.dump(raw, f)

        resumed = run_synthesis(matrix_q, RuntimeOptions(checkpoint_path=path))
        assert resumed.resumed
        assert resumed.stop_reason is full.stop_reason
        assert resumed.iterations == full.iterations
        assert resumed.counterexamples == full.counterexamples
        assert resumed.solutions == full.solutions

        state = make_checkpoint_store(matrix_q, path).load()
        tags = {
            trace.environment.key()
            for trace in state.counterexamples
            if getattr(trace, "environment", None) is not None
        }
        assert "lossless" in tags
        assert "lossy:buffer=2,loss_thresh=1" in tags

    def test_resume_under_different_query_refused(self, tmp_path, tiny_query):
        import dataclasses

        path = str(tmp_path / "run.ckpt")
        run_synthesis(tiny_query, RuntimeOptions(checkpoint_path=path))
        other = dataclasses.replace(tiny_query, cfg=ModelConfig(T=6, history=3))
        with pytest.raises(CheckpointMismatchError):
            run_synthesis(other, RuntimeOptions(checkpoint_path=path))

    def test_store_codecs_round_trip_cegis_state(self, tmp_path, tiny_query):
        path = str(tmp_path / "run.ckpt")
        run_synthesis(tiny_query, RuntimeOptions(checkpoint_path=path))
        store = make_checkpoint_store(tiny_query, path)
        state = store.load()
        assert state.complete
        for cand in state.solutions:
            # decoded back into real CandidateCCA objects
            assert hasattr(cand, "gamma")
        for trace in state.counterexamples:
            assert trace.check_environment() == []
