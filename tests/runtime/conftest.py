"""Shared helpers for the fault-tolerant runtime tests."""

import pytest

from repro.core import SynthesisQuery
from repro.core.template import TemplateSpec
from repro.obs import Sink, tracer


class RecordingSink(Sink):
    """Collects every trace record for assertions."""

    def __init__(self):
        self.records = []

    def emit(self, record: dict) -> None:
        self.records.append(record)

    def events(self, name: str) -> list[dict]:
        return [
            r for r in self.records
            if r.get("type") == "event" and r.get("name") == name
        ]


@pytest.fixture
def recording_sink():
    tr = tracer()
    sink = tr.add_sink(RecordingSink())
    yield sink
    tr.remove_sink(sink)


@pytest.fixture
def tiny_query(fast_cfg) -> SynthesisQuery:
    """Smallest enum-backed query that terminates in seconds."""
    spec = TemplateSpec(
        history=fast_cfg.history,
        use_cwnd_history=False,
        coeff_domain=(-1, 0, 1),
        const_domain=(0, 1),
    )
    return SynthesisQuery(
        spec=spec,
        cfg=fast_cfg,
        generator="enum",
        worst_case_cex=False,
        time_budget=300,
    )
