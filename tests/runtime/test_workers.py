"""Isolated solver workers: watchdog kills, memory caps, retry policy.

Marked ``runtime``: each test forks real processes, so the module is
slower than the rest of the suite (`-m "not runtime"` skips it).
"""

import time
from fractions import Fraction

import pytest

from repro.ccac import ModelConfig
from repro.core import constant_cwnd, rocc
from repro.runtime import (
    IsolatedVerifier,
    SoundnessError,
    WorkerError,
    WorkerLimits,
    run_isolated,
)

pytestmark = pytest.mark.runtime


# accept arbitrary args so these can also stand in for _verify_task
def _sleep_forever(*args):
    time.sleep(3600)
    return "never"


def _allocate(mb: int) -> int:
    block = bytearray(mb * 1024 * 1024)
    return len(block)


def _raise_soundness(*args):
    raise SoundnessError("injected: model refuted in worker")


def _raise_value_error(*args):
    raise ValueError("deterministic bug")


def _return_value():
    return {"answer": 42}


class TestRunIsolated:
    def test_ok_result_round_trips(self):
        report = run_isolated(_return_value, wall_time=30)
        assert report.ok
        assert report.result == {"answer": 42}

    def test_hung_worker_killed_on_wall_clock(self):
        report = run_isolated(_sleep_forever, wall_time=0.3, kill_grace=0.5)
        assert report.status == "timeout"
        assert report.wall_time < 10

    def test_memory_hog_reported_as_oom(self):
        report = run_isolated(_allocate, args=(512,), wall_time=60, memory_mb=64)
        assert report.status == "oom"

    def test_soundness_error_propagates_verbatim(self):
        with pytest.raises(SoundnessError, match="injected"):
            run_isolated(_raise_soundness, wall_time=30)

    def test_child_exception_reported_not_raised(self):
        report = run_isolated(_raise_value_error, wall_time=30)
        assert report.status == "error"
        assert "ValueError" in report.detail


class TestWorkerLimits:
    def test_budget_escalates_per_attempt(self):
        limits = WorkerLimits(wall_time=10.0, escalation=2.0)
        assert limits.budget(0) == 10.0
        assert limits.budget(1) == 20.0
        assert limits.budget(2) == 40.0


class TestIsolatedVerifier:
    def test_verdicts_match_inline_verifier(self):
        cfg = ModelConfig(T=5)
        iv = IsolatedVerifier(cfg, limits=WorkerLimits(wall_time=300, retries=0))
        assert iv.find_counterexample(rocc()).verified
        refuted = iv.find_counterexample(constant_cwnd(Fraction(1)))
        assert not refuted.verified
        assert refuted.counterexample is not None
        assert refuted.counterexample.check_environment() == []
        assert iv.kills == 0

    def test_killed_worker_degrades_to_unknown(self, recording_sink, monkeypatch):
        """A worker that never returns is killed, retried, and finally
        reported as an honest (degraded) unknown with runtime.degrade
        events — never a crash, never a verdict."""
        import repro.runtime.workers as workers_mod

        monkeypatch.setattr(workers_mod, "_verify_task", _sleep_forever)
        cfg = ModelConfig(T=5)
        iv = IsolatedVerifier(
            cfg,
            limits=WorkerLimits(
                wall_time=0.2, retries=1, escalation=1.0, kill_grace=0.3
            ),
        )
        monkeypatch.setattr(IsolatedVerifier, "WATCHDOG_SLACK", 1.0)
        result = iv.find_counterexample(rocc())
        assert result.unknown
        assert result.degraded
        assert not result.verified
        assert iv.kills == 2  # first attempt + one retry
        events = recording_sink.events("runtime.degrade")
        assert len(events) == 2
        assert all(e["attrs"]["kind"] == "worker_killed" for e in events)

    def test_deterministic_child_error_raises_worker_error(self, monkeypatch):
        import repro.runtime.workers as workers_mod

        monkeypatch.setattr(workers_mod, "_verify_task", _raise_value_error)
        iv = IsolatedVerifier(ModelConfig(T=5))
        with pytest.raises(WorkerError, match="ValueError"):
            iv.find_counterexample(rocc())

    def test_soundness_error_in_worker_propagates(self, monkeypatch):
        import repro.runtime.workers as workers_mod

        monkeypatch.setattr(workers_mod, "_verify_task", _raise_soundness)
        iv = IsolatedVerifier(ModelConfig(T=5))
        with pytest.raises(SoundnessError):
            iv.find_counterexample(rocc())
