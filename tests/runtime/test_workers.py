"""Isolated solver workers: watchdog kills, memory caps, retry policy.

Marked ``runtime``: each test forks real processes, so the module is
slower than the rest of the suite (`-m "not runtime"` skips it).
"""

import time
from fractions import Fraction

import pytest

from repro.ccac import ModelConfig
from repro.core import constant_cwnd, rocc
from repro.runtime import (
    IsolatedVerifier,
    SoundnessError,
    WorkerError,
    WorkerLimits,
    run_isolated,
)

pytestmark = pytest.mark.runtime


# accept arbitrary args so these can also stand in for _verify_task
def _sleep_forever(*args):
    time.sleep(3600)
    return "never"


def _allocate(mb: int) -> int:
    block = bytearray(mb * 1024 * 1024)
    return len(block)


def _raise_soundness(*args):
    raise SoundnessError("injected: model refuted in worker")


def _raise_value_error(*args):
    raise ValueError("deterministic bug")


def _return_value():
    return {"answer": 42}


def _traced_task():
    from repro.obs import metrics, tracer

    with tracer().span("child.solve"):
        metrics().counter("test.relay.checks").inc(5)
    return "traced"


class TestRunIsolated:
    def test_ok_result_round_trips(self):
        report = run_isolated(_return_value, wall_time=30)
        assert report.ok
        assert report.result == {"answer": 42}

    def test_hung_worker_killed_on_wall_clock(self):
        report = run_isolated(_sleep_forever, wall_time=0.3, kill_grace=0.5)
        assert report.status == "timeout"
        assert report.wall_time < 10

    def test_memory_hog_reported_as_oom(self):
        report = run_isolated(_allocate, args=(512,), wall_time=60, memory_mb=64)
        assert report.status == "oom"

    def test_soundness_error_propagates_verbatim(self):
        with pytest.raises(SoundnessError, match="injected"):
            run_isolated(_raise_soundness, wall_time=30)

    def test_child_exception_reported_not_raised(self):
        report = run_isolated(_raise_value_error, wall_time=30)
        assert report.status == "error"
        assert "ValueError" in report.detail


class TestWorkerLimits:
    def test_budget_escalates_per_attempt(self):
        limits = WorkerLimits(wall_time=10.0, escalation=2.0)
        assert limits.budget(0) == 10.0
        assert limits.budget(1) == 20.0
        assert limits.budget(2) == 40.0


class TestIsolatedVerifier:
    def test_verdicts_match_inline_verifier(self):
        cfg = ModelConfig(T=5)
        iv = IsolatedVerifier(cfg, limits=WorkerLimits(wall_time=300, retries=0))
        assert iv.find_counterexample(rocc()).verified
        refuted = iv.find_counterexample(constant_cwnd(Fraction(1)))
        assert not refuted.verified
        assert refuted.counterexample is not None
        assert refuted.counterexample.check_environment() == []
        assert iv.kills == 0

    def test_killed_worker_degrades_to_unknown(self, recording_sink, monkeypatch):
        """A worker that never returns is killed, retried, and finally
        reported as an honest (degraded) unknown with runtime.degrade
        events — never a crash, never a verdict."""
        import repro.runtime.workers as workers_mod

        monkeypatch.setattr(workers_mod, "_verify_task", _sleep_forever)
        cfg = ModelConfig(T=5)
        iv = IsolatedVerifier(
            cfg,
            limits=WorkerLimits(
                wall_time=0.2, retries=1, escalation=1.0, kill_grace=0.3
            ),
        )
        monkeypatch.setattr(IsolatedVerifier, "WATCHDOG_SLACK", 1.0)
        result = iv.find_counterexample(rocc())
        assert result.unknown
        assert result.degraded
        assert not result.verified
        assert iv.kills == 2  # first attempt + one retry
        events = recording_sink.events("runtime.degrade")
        assert len(events) == 2
        assert all(e["attrs"]["kind"] == "worker_killed" for e in events)

    def test_deterministic_child_error_raises_worker_error(self, monkeypatch):
        import repro.runtime.workers as workers_mod

        monkeypatch.setattr(workers_mod, "_verify_task", _raise_value_error)
        iv = IsolatedVerifier(ModelConfig(T=5))
        with pytest.raises(WorkerError, match="ValueError"):
            iv.find_counterexample(rocc())

    def test_soundness_error_in_worker_propagates(self, monkeypatch):
        import repro.runtime.workers as workers_mod

        monkeypatch.setattr(workers_mod, "_verify_task", _raise_soundness)
        iv = IsolatedVerifier(ModelConfig(T=5))
        with pytest.raises(SoundnessError):
            iv.find_counterexample(rocc())


class TestTelemetryRelay:
    """Real-fork relay: child spans and metric deltas reach the parent."""

    def test_child_spans_relayed_with_worker_tag(self, recording_sink):
        from repro.obs import metrics

        before = metrics().counter("test.relay.checks").value
        report = run_isolated(_traced_task, wall_time=30, worker_id="w7")
        assert report.status == "ok" and report.result == "traced"
        # the child's counter delta merged into the parent registry
        assert metrics().counter("test.relay.checks").value == before + 5
        spans = {
            r["name"]: r for r in recording_sink.records
            if r.get("type") == "span"
            and r.get("attrs", {}).get("worker") == "w7"
        }
        # parent-side lane span plus the relayed child spans
        assert {"runtime.worker", "worker.run", "child.solve"} <= set(spans)
        lane = spans["runtime.worker"]
        assert lane["attrs"]["status"] == "ok"
        assert spans["worker.run"]["parent"] == lane["id"]
        assert spans["child.solve"]["parent"] == spans["worker.run"]["id"]

    def test_killed_worker_dumps_flight_recorder(
        self, recording_sink, monkeypatch, tmp_path
    ):
        """Exhausting retries on a hung worker leaves a parseable black
        box (the worker-escalation dump)."""
        import repro.obs.flight as flight
        import repro.runtime.workers as workers_mod
        from repro.obs import tracer
        from repro.obs.report import load_trace

        monkeypatch.setattr(workers_mod, "_verify_task", _sleep_forever)
        monkeypatch.setattr(IsolatedVerifier, "WATCHDOG_SLACK", 1.0)
        saved = flight._RECORDER, flight._DUMP_DIR
        flight._RECORDER, flight._DUMP_DIR = None, None
        try:
            flight.ensure_flight_recorder()
            flight.set_dump_dir(str(tmp_path))
            iv = IsolatedVerifier(
                ModelConfig(T=5),
                limits=WorkerLimits(
                    wall_time=0.2, retries=1, escalation=1.0, kill_grace=0.3
                ),
            )
            result = iv.find_counterexample(rocc())
            assert result.unknown and result.degraded
            dumps = list(tmp_path.glob("flightrec-worker-escalation-*.jsonl"))
            assert len(dumps) == 1
            summary = load_trace(str(dumps[0]))
            assert summary.malformed == 0
            assert summary.meta and summary.meta.get("flight_recorder")
            # the lane spans of the killed attempts made it into the ring
            assert summary.spans["runtime.worker"].count == 2
        finally:
            if flight._RECORDER is not None:
                tracer().remove_sink(flight._RECORDER)
            flight._RECORDER, flight._DUMP_DIR = saved
