"""Tests for assumption synthesis and differential comparison."""

from fractions import Fraction

from repro.core import (
    constant_cwnd,
    differential_comparison,
    initial_queue_budget,
    per_step_waste_budget,
    rocc,
    total_waste_budget,
    weakest_sufficient_assumption,
)


class TestWeakestAssumption:
    def test_fragile_cca_needs_real_constraint(self, fast_cfg):
        """The one-BDP window fails unconditionally, so its weakest
        sufficient waste budget must be strictly below the maximum."""
        template = total_waste_budget(fast_cfg)
        res = weakest_sufficient_assumption(
            constant_cwnd(1, fast_cfg.history), fast_cfg, template
        )
        assert res.found
        assert res.theta < template.hi
        assert "wastes at most" in res.assumption

    def test_robust_cca_needs_no_constraint(self, fast_cfg):
        """RoCC verifies unconditionally, so the weakest assumption is
        the vacuous one (theta = hi)."""
        template = total_waste_budget(fast_cfg)
        res = weakest_sufficient_assumption(rocc(fast_cfg.history), fast_cfg, template)
        assert res.found
        assert res.theta == template.hi

    def test_sufficiency_invariant(self, fast_cfg):
        """The returned theta must actually be sufficient (re-check)."""
        from repro.core.queries import _holds_under

        template = total_waste_budget(fast_cfg)
        res = weakest_sufficient_assumption(
            constant_cwnd(1, fast_cfg.history), fast_cfg, template
        )
        assert _holds_under(constant_cwnd(1, fast_cfg.history), fast_cfg, template, res.theta)

    def test_per_step_family(self, fast_cfg):
        template = per_step_waste_budget(fast_cfg)
        res = weakest_sufficient_assumption(
            constant_cwnd(1, fast_cfg.history), fast_cfg, template
        )
        assert res.found

    def test_impossible_candidate(self, fast_cfg):
        """Bounding the initial queue cannot save a one-BDP window from
        the waste adversary at a 90% utilization demand: no theta in the
        family is sufficient."""
        cfg = fast_cfg.with_thresholds(util=Fraction(9, 10))
        template = initial_queue_budget(cfg)
        res = weakest_sufficient_assumption(constant_cwnd(1, cfg.history), cfg, template)
        assert not res.found

    def test_zero_waste_budget_vacuous_for_slow_senders(self, fast_cfg):
        """Structural property of the CCAC constraints: with the waste
        capped at zero, the lower service curve forces delivery at link
        rate, which makes slow-sender traces infeasible — so even a
        clamped-to-minimum window verifies vacuously.  (This is why waste
        *must* be free for the model to be meaningful, and why the paper
        calls building verifiers the hard part of generalizing CEGIS.)"""
        from repro.core.queries import _holds_under

        cfg = fast_cfg.with_thresholds(util=Fraction(9, 10))
        template = total_waste_budget(cfg)
        assert _holds_under(constant_cwnd(0, cfg.history), cfg, template, Fraction(0))


class TestDifferential:
    def test_rocc_beats_constant(self, fast_cfg):
        diff = differential_comparison(
            rocc(fast_cfg.history),
            constant_cwnd(1, fast_cfg.history),
            fast_cfg,
            total_waste_budget(fast_cfg),
        )
        assert diff.theta_a is not None
        assert diff.theta_a > diff.theta_b
        assert "A tolerates strictly more" in diff.verdict

    def test_self_comparison_ties(self, fast_cfg):
        diff = differential_comparison(
            rocc(fast_cfg.history),
            rocc(fast_cfg.history),
            fast_cfg,
            total_waste_budget(fast_cfg),
        )
        assert diff.theta_a == diff.theta_b
        assert "same assumption" in diff.verdict
