"""Tests of the CCA template and its search spaces."""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    LARGE_DOMAIN,
    SMALL_DOMAIN,
    CandidateCCA,
    TemplateSpec,
    constant_cwnd,
    paper_eq_iii,
    rocc,
    table1_spaces,
)


class TestDomains:
    def test_small_domain(self):
        assert SMALL_DOMAIN == (-1, 0, 1)

    def test_large_domain_is_halves(self):
        assert LARGE_DOMAIN == tuple(Fraction(i, 2) for i in range(-4, 5))
        assert len(LARGE_DOMAIN) == 9


class TestSearchSpaceSizes:
    """Table 1's search-space column: 3^5, 9^5, 3^9, 9^9."""

    def test_table1_sizes(self):
        spaces = table1_spaces()
        assert spaces["no_cwnd_small"].search_space_size == 3**5
        assert spaces["no_cwnd_large"].search_space_size == 9**5
        assert spaces["cwnd_small"].search_space_size == 3**9
        assert spaces["cwnd_large"].search_space_size == 9**9

    def test_parameter_counts(self):
        spaces = table1_spaces()
        assert spaces["no_cwnd_small"].parameter_count == 5
        assert spaces["cwnd_small"].parameter_count == 9

    def test_iteration_matches_size(self):
        spec = TemplateSpec(history=2, use_cwnd_history=False, coeff_domain=SMALL_DOMAIN)
        cands = list(spec.iterate_candidates())
        assert len(cands) == spec.search_space_size == 3**3
        assert len({c.key() for c in cands}) == len(cands)

    def test_contains(self):
        spec = table1_spaces()["no_cwnd_small"]
        assert spec.contains(rocc())
        assert not spec.contains(paper_eq_iii())  # 3/2 not in small domain
        assert table1_spaces()["no_cwnd_large"].contains(paper_eq_iii())

    def test_make_roundtrip(self):
        spec = TemplateSpec(history=4, use_cwnd_history=True, coeff_domain=SMALL_DOMAIN)
        values = [Fraction(v) for v in (1, 0, -1, 0, 0, 1, -1, 0, 1)]
        cand = spec.make(values)
        assert cand.alphas == tuple(values[:4])
        assert cand.betas == tuple(values[4:8])
        assert cand.gamma == values[8]

    def test_make_wrong_length(self):
        spec = table1_spaces()["no_cwnd_small"]
        with pytest.raises(ValueError):
            spec.make([Fraction(0)] * 3)

    def test_random_candidate_in_space(self):
        rng = random.Random(7)
        spec = table1_spaces()["no_cwnd_large"]
        for _ in range(20):
            assert spec.contains(spec.random_candidate(rng))


class TestNamedRules:
    def test_rocc_shape(self):
        r = rocc()
        assert r.pretty() == "cwnd(t) = ack(t-1) - ack(t-3) + 1"
        assert r.history_used() == 3

    def test_eq_iii_shape(self):
        e = paper_eq_iii()
        assert e.betas == (Fraction(3, 2), Fraction(-1, 2), Fraction(-1), Fraction(0))
        assert "3/2*ack(t-1)" in e.pretty()

    def test_constant(self):
        c = constant_cwnd(2)
        assert c.pretty() == "cwnd(t) = 2"
        assert c.history_used() == 0


class TestNumericEvaluation:
    def test_rocc_steady_rule(self):
        r = rocc()
        # ack history (most recent first) on an ideal link at rate 1
        ack = [Fraction(10), Fraction(9), Fraction(8), Fraction(7)]
        cw = [Fraction(3)] * 4
        assert r.next_cwnd(cw, ack) == Fraction(10) - Fraction(8) + 1

    def test_clamp_applied(self):
        r = CandidateCCA((Fraction(0),) * 4, (Fraction(0),) * 4, Fraction(-5))
        assert r.next_cwnd([0] * 4, [0] * 4, cwnd_min=Fraction(1, 10)) == Fraction(1, 10)

    @given(
        gamma=st.fractions(min_value=Fraction(-2), max_value=Fraction(2), max_denominator=2)
    )
    @settings(max_examples=20, deadline=None)
    def test_constant_rule_returns_gamma(self, gamma):
        c = constant_cwnd(gamma)
        got = c.next_cwnd([1] * 4, [5] * 4)
        assert got == max(gamma, 0)


class TestPretty:
    def test_zero_rule(self):
        z = constant_cwnd(0)
        assert z.pretty() == "cwnd(t) = 0"

    def test_negative_leading(self):
        c = CandidateCCA(
            (Fraction(0),) * 4,
            (Fraction(-1), Fraction(0), Fraction(1), Fraction(0)),
            Fraction(0),
        )
        s = c.pretty()
        assert s.startswith("cwnd(t) = -ack(t-1)")
        assert "+ ack(t-3)" in s

    def test_fractional_coefficient_rendered(self):
        s = paper_eq_iii().pretty()
        assert "1/2*ack(t-2)" in s
