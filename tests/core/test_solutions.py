"""Tests for solution classification and steady-state analysis."""

from fractions import Fraction

from repro.ccac import ModelConfig
from repro.core import (
    CandidateCCA,
    classify,
    constant_cwnd,
    history_histogram,
    is_rocc_family,
    is_shift_invariant,
    paper_eq_iii,
    rocc,
    steady_state,
    summarize,
)


def make(betas, gamma=0, alphas=None, h=4):
    alphas = alphas or [0] * h
    return CandidateCCA(
        tuple(Fraction(a) for a in alphas),
        tuple(Fraction(b) for b in betas),
        Fraction(gamma),
    )


class TestClassification:
    def test_rocc_is_rocc_family(self):
        assert is_rocc_family(rocc())
        assert is_shift_invariant(rocc())

    def test_eq_iii_is_rocc_family(self):
        assert is_rocc_family(paper_eq_iii())

    def test_constant_is_not(self):
        assert not is_rocc_family(constant_cwnd(1))

    def test_divergent_is_not_shift_invariant(self):
        assert not is_shift_invariant(make([0, 0, 0, 1], gamma=1))

    def test_alpha_rules_excluded_from_rocc_family(self):
        cand = make([1, 0, -1, 0], gamma=1, alphas=[1, 0, 0, 0])
        assert not is_rocc_family(cand)


class TestSteadyState:
    def test_rocc_steady_cwnd(self):
        """RoCC: w = (ack now - (ack now - 2C)) + 1 = 2C + 1."""
        cfg = ModelConfig()
        ss = steady_state(rocc(), cfg)
        assert ss.cwnd == 3
        assert ss.queue == 2  # 3 - BDP

    def test_eq_iii_steady_cwnd(self):
        """Eq iii: w = C*(3/2*1 - 1/2*2 - 1*3)*(-1) = 5/2 C."""
        cfg = ModelConfig()
        ss = steady_state(paper_eq_iii(), cfg)
        assert ss.cwnd == Fraction(5, 2)

    def test_non_telescoping_has_no_fixed_point(self):
        cfg = ModelConfig()
        ss = steady_state(make([0, 0, 0, 1], gamma=1), cfg)
        assert ss.cwnd is None

    def test_starving_rule_no_positive_fixed_point(self):
        # cwnd = ack(t-3) - ack(t-1): steady value = -2C < 0
        cfg = ModelConfig()
        ss = steady_state(make([-1, 0, 1, 0]), cfg)
        assert ss.cwnd is None

    def test_scales_with_link_rate(self):
        cfg = ModelConfig(C=Fraction(4))
        ss = steady_state(rocc(), cfg)
        assert ss.cwnd == 9  # 2*4 + 1


class TestSummaries:
    def test_history_histogram(self):
        sols = [rocc(), paper_eq_iii(), make([1, -1, 0, 0], gamma=1)]
        hist = history_histogram(sols)
        assert hist == {2: 1, 3: 2}

    def test_summarize_sorted(self):
        cfg = ModelConfig()
        reports = summarize([paper_eq_iii(), make([1, -1, 0, 0], gamma=1)], cfg)
        assert reports[0].history_used <= reports[1].history_used

    def test_classify_fields(self):
        cfg = ModelConfig()
        rep = classify(rocc(), cfg)
        assert rep.rule == "cwnd(t) = ack(t-1) - ack(t-3) + 1"
        assert rep.rocc_family and rep.history_used == 3
        assert rep.steady_cwnd == 3
