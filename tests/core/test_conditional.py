"""Tests for the conditional (if-then-else) template extension (§4.1)."""

from fractions import Fraction

import pytest

from repro.cegis import PruningMode
from repro.core.conditional import (
    ConditionalCCA,
    ConditionalGenerator,
    ConditionalSpec,
    ConditionalVerifier,
    aimd_candidate,
    conditional_satisfies_spec,
    rocc_conditional,
    simulate_conditional,
    synthesize_conditional,
)


class TestCandidates:
    def test_aimd_is_aimd_shaped(self):
        assert aimd_candidate().is_aimd_shaped()
        assert not rocc_conditional().is_aimd_shaped()

    def test_pretty_renders_both_branches(self):
        s = aimd_candidate().pretty()
        assert "if queue_est" in s and "else" in s

    def test_next_cwnd_branch_selection(self):
        cand = aimd_candidate(threshold=Fraction(2))
        # clear: queue_est = 4 - (10-8) = 2 <= 2 -> additive increase
        w = cand.next_cwnd(Fraction(4), Fraction(10), Fraction(8), Fraction(6), Fraction(0))
        assert w == 5
        # congested: queue_est = 4 - (10-9) = 3 > 2 -> halve
        w = cand.next_cwnd(Fraction(4), Fraction(10), Fraction(9), Fraction(8), Fraction(0))
        assert w == 2

    def test_rocc_conditional_equals_linear_rocc_on_ideal_history(self):
        cand = rocc_conditional()
        # ack history at rate 1: acked over 2 RTTs = 2, +1 -> 3
        w = cand.next_cwnd(Fraction(3), Fraction(10), Fraction(9), Fraction(8), Fraction(0))
        assert w == 3

    def test_spec_contains_and_iterates(self):
        spec = ConditionalSpec()
        cands = list(spec.iterate_candidates())
        assert len(cands) == spec.search_space_size
        assert spec.contains(aimd_candidate(threshold=Fraction(2)))
        assert spec.contains(rocc_conditional())


class TestVerifier:
    def test_rocc_conditional_verified(self, fast_cfg):
        assert ConditionalVerifier(fast_cfg).verify(rocc_conditional())

    def test_aimd_refuted(self, fast_cfg):
        """The adversary can hide the queue signal (jitter the acks), so
        the self-clocked AIMD guard misfires — the analogue of CCAC's
        findings for delay-signal CCAs like Copa/BBR."""
        res = ConditionalVerifier(fast_cfg).find_counterexample(aimd_candidate())
        assert not res.verified
        assert res.counterexample.check_environment() == []

    def test_pure_md_refuted(self, fast_cfg):
        shrink = ConditionalCCA(
            Fraction(0), Fraction(1, 2), Fraction(0), Fraction(1, 2), Fraction(0)
        )
        assert not ConditionalVerifier(fast_cfg).verify(shrink)


class TestGenerator:
    def test_counterexample_filters(self, fast_cfg):
        verifier = ConditionalVerifier(fast_cfg)
        trace = verifier.find_counterexample(aimd_candidate()).counterexample
        spec = ConditionalSpec(threshold_domain=(Fraction(2),))
        gen = ConditionalGenerator(spec, fast_cfg)
        before = gen.survivor_count
        gen.add_counterexample(trace)
        assert gen.survivor_count < before
        # the refuted candidate must be gone (it reproduced this trace)
        assert all(
            c.key() != aimd_candidate().key() for c in gen._survivors
        ) or conditional_satisfies_spec(
            aimd_candidate(), trace, fast_cfg, PruningMode.RANGE
        )

    def test_simulation_consistency_with_verifier_trace(self, fast_cfg):
        """Simulating the refuted candidate on its own counterexample
        reproduces the trace's cwnd trajectory (the verifier and the
        numeric semantics agree)."""
        cand = aimd_candidate()
        trace = ConditionalVerifier(fast_cfg).find_counterexample(cand).counterexample
        cwnd, A = simulate_conditional(cand, trace, fast_cfg)
        assert tuple(cwnd) == trace.cwnd
        assert tuple(A) == trace.A


class TestSynthesis:
    def test_synthesizes_verified_conditional(self, fast_cfg):
        """The enriched space contains RoCC, so synthesis must find a
        provably correct rule."""
        spec = ConditionalSpec(
            threshold_domain=(Fraction(2),),
            mu_domain=(Fraction(0), Fraction(1)),
            delta_domain=(Fraction(0), Fraction(1)),
        )
        outcome = synthesize_conditional(fast_cfg, spec=spec, time_budget=600)
        assert outcome.solutions
        assert ConditionalVerifier(fast_cfg).verify(outcome.solutions[0])
