"""End-to-end synthesis tests (scaled-down versions of the paper's runs)."""

from fractions import Fraction

import pytest

from repro.cegis import PruningMode
from repro.core import (
    CcacVerifier,
    SMALL_DOMAIN,
    SynthesisQuery,
    TemplateSpec,
    brute_force,
    enumerate_all,
    is_rocc_family,
    synthesize,
)


@pytest.fixture
def tiny_spec(fast_cfg):
    """A deliberately small space that still contains RoCC variants."""
    return TemplateSpec(
        history=fast_cfg.history,
        use_cwnd_history=False,
        coeff_domain=(Fraction(-1), Fraction(0), Fraction(1)),
        const_domain=(Fraction(0), Fraction(1)),
    )


class TestSynthesize:
    def test_finds_verified_solution(self, fast_cfg, tiny_spec):
        query = SynthesisQuery(
            spec=tiny_spec, cfg=fast_cfg, pruning=PruningMode.RANGE,
            worst_case_cex=True, generator="enum",
        )
        result = synthesize(query)
        assert result.found
        # independently re-verify the synthesized rule
        assert CcacVerifier(fast_cfg).verify(result.first)

    def test_solution_is_telescoping(self, fast_cfg, tiny_spec):
        query = SynthesisQuery(
            spec=tiny_spec, cfg=fast_cfg, generator="enum", worst_case_cex=True
        )
        result = synthesize(query)
        assert result.found
        assert sum(result.first.betas, Fraction(0)) == 0

    def test_smt_generator_agrees(self, fast_cfg, tiny_spec):
        query = SynthesisQuery(
            spec=tiny_spec, cfg=fast_cfg, generator="smt", worst_case_cex=True
        )
        result = synthesize(query)
        assert result.found
        assert CcacVerifier(fast_cfg).verify(result.first)

    def test_iteration_budget(self, fast_cfg, tiny_spec):
        query = SynthesisQuery(
            spec=tiny_spec, cfg=fast_cfg, generator="enum", max_iterations=1
        )
        result = synthesize(query)
        assert result.iterations <= 1

    def test_unsatisfiable_thresholds_exhaust(self, fast_cfg):
        """At 100% utilization demanded under jitter, nothing survives."""
        cfg = fast_cfg.with_thresholds(util=Fraction(1), delay=Fraction(1, 10))
        spec = TemplateSpec(
            history=cfg.history, use_cwnd_history=False,
            coeff_domain=(Fraction(0), Fraction(1)), const_domain=(Fraction(0), Fraction(1)),
        )
        query = SynthesisQuery(spec=spec, cfg=cfg, generator="enum")
        result = synthesize(query)
        assert not result.found
        assert result.exhausted


class TestEnumerateAll:
    def test_all_solutions_verified_and_complete(self, fast_cfg, tiny_spec):
        query = SynthesisQuery(
            spec=tiny_spec, cfg=fast_cfg, generator="enum", worst_case_cex=True
        )
        result = enumerate_all(query)
        assert result.exhausted
        v = CcacVerifier(fast_cfg)
        keys = {c.key() for c in result.solutions}
        assert len(keys) == len(result.solutions)
        for cand in result.solutions:
            assert v.verify(cand)

    def test_matches_brute_force_ground_truth(self, fast_cfg):
        """CEGIS-all must find exactly the brute-force solution set
        (soundness AND completeness, the paper's §3.1.2 claim)."""
        spec = TemplateSpec(
            history=fast_cfg.history, use_cwnd_history=False,
            coeff_domain=(Fraction(-1), Fraction(1)),
            const_domain=(Fraction(1),),
        )
        cegis_result = enumerate_all(
            SynthesisQuery(spec=spec, cfg=fast_cfg, generator="enum",
                           worst_case_cex=True)
        )
        bf_result = brute_force(spec, fast_cfg, stop_at_first=False)
        assert {c.key() for c in cegis_result.solutions} == {
            c.key() for c in bf_result.solutions
        }


class TestBruteForce:
    def test_stop_at_first(self, fast_cfg):
        spec = TemplateSpec(
            history=fast_cfg.history, use_cwnd_history=False,
            coeff_domain=(Fraction(0), Fraction(1)), const_domain=(Fraction(1),),
        )
        result = brute_force(spec, fast_cfg, stop_at_first=True)
        if result.found:
            assert result.iterations <= spec.search_space_size

    def test_max_candidates_cap(self, fast_cfg, tiny_spec):
        result = brute_force(tiny_spec, fast_cfg, stop_at_first=False, max_candidates=5)
        assert result.iterations == 5
