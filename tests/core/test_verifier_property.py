"""Property-based soundness tests of the verifier over random candidates."""

import random
from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.cegis import PruningMode
from repro.core import (
    CcacVerifier,
    SMALL_DOMAIN,
    TemplateSpec,
    satisfies_spec,
)


def spec_for(cfg):
    return TemplateSpec(
        history=cfg.history, use_cwnd_history=False, coeff_domain=SMALL_DOMAIN
    )


class TestVerifierSoundness:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_counterexamples_are_admissible_and_breaking(self, seed):
        """For random candidates: any counterexample must (a) satisfy the
        network model exactly and (b) actually break the candidate under
        the exact-feasibility spec."""
        from repro.ccac import ModelConfig

        cfg = ModelConfig(T=5, history=3)
        rng = random.Random(seed)
        cand = spec_for(cfg).random_candidate(rng)
        res = CcacVerifier(cfg).find_counterexample(cand)
        if res.verified:
            return
        trace = res.counterexample
        assert trace.check_environment() == []
        assert not satisfies_spec(cand, trace, cfg, PruningMode.EXACT)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=6, deadline=None)
    def test_range_spec_also_violated(self, seed):
        """Range feasibility is weaker, so the spec under RANGE pruning
        must also be violated by the candidate's own counterexample."""
        from repro.ccac import ModelConfig

        cfg = ModelConfig(T=5, history=3)
        rng = random.Random(seed)
        cand = spec_for(cfg).random_candidate(rng)
        res = CcacVerifier(cfg).find_counterexample(cand)
        if res.verified:
            return
        assert not satisfies_spec(cand, res.counterexample, cfg, PruningMode.RANGE)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=4, deadline=None)
    def test_wce_counterexample_equally_sound(self, seed):
        from repro.ccac import ModelConfig

        cfg = ModelConfig(T=5, history=3)
        rng = random.Random(seed)
        cand = spec_for(cfg).random_candidate(rng)
        res = CcacVerifier(cfg).find_counterexample(cand, worst_case=True)
        if res.verified:
            return
        trace = res.counterexample
        assert trace.check_environment() == []
        assert not satisfies_spec(cand, trace, cfg, PruningMode.EXACT)
