"""Verifier behaviour tests beyond the basic verdicts."""

from fractions import Fraction

import pytest

from repro.ccac import ModelConfig
from repro.core import CcacVerifier, CandidateCCA, constant_cwnd, rocc


class TestVerifierContract:
    def test_result_fields(self, fast_cfg):
        v = CcacVerifier(fast_cfg)
        res = v.find_counterexample(rocc(fast_cfg.history))
        assert res.verified
        assert res.counterexample is None
        assert res.wall_time > 0
        assert res.candidate is rocc(fast_cfg.history) or res.candidate.key() == rocc(fast_cfg.history).key()

    def test_stats_accumulate(self, fast_cfg):
        v = CcacVerifier(fast_cfg)
        v.find_counterexample(constant_cwnd(1, fast_cfg.history))
        v.find_counterexample(constant_cwnd(2, fast_cfg.history))
        assert v.calls == 2
        assert v.total_time > 0

    def test_history_mismatch_rejected(self, fast_cfg):
        v = CcacVerifier(fast_cfg)
        with pytest.raises(ValueError):
            v.verify(rocc(history=fast_cfg.history + 2))

    def test_verdict_deterministic(self, fast_cfg):
        v = CcacVerifier(fast_cfg)
        cand = constant_cwnd(1, fast_cfg.history)
        assert v.find_counterexample(cand).verified == v.find_counterexample(cand).verified


class TestThresholdMonotonicity:
    """Verification verdicts must be monotone in the thresholds: easier
    requirements keep verified candidates verified."""

    def test_relaxing_utilization_preserves_verification(self, fast_cfg):
        assert CcacVerifier(fast_cfg).verify(rocc(fast_cfg.history))
        easier = fast_cfg.with_thresholds(util=Fraction(1, 4))
        assert CcacVerifier(easier).verify(rocc(fast_cfg.history))

    def test_relaxing_delay_preserves_verification(self, fast_cfg):
        easier = fast_cfg.with_thresholds(delay=Fraction(10))
        assert CcacVerifier(easier).verify(rocc(fast_cfg.history))

    def test_tightening_refutes_eventually(self, fast_cfg):
        harder = fast_cfg.with_thresholds(util=Fraction(99, 100))
        assert not CcacVerifier(harder).verify(rocc(fast_cfg.history))


class TestScaleInvariance:
    def test_rocc_scales_with_link_rate(self, fast_cfg):
        """The model is normalized; verifying at C=2 needs the rule's
        additive term scaled, but the C=1 rule with gamma=1 still works
        at C=2 (gamma only helps more at lower rates... it must at least
        stay verified when gamma is scaled proportionally)."""
        from dataclasses import replace

        cfg2 = replace(
            fast_cfg,
            C=Fraction(2),
            initial_queue_max=fast_cfg.initial_queue_max * 2,
            initial_cwnd_max=fast_cfg.initial_cwnd_max * 2,
            cwnd_min=fast_cfg.cwnd_min * 2,
            delay_thresh=fast_cfg.delay_thresh,
        )
        h = fast_cfg.history
        betas = [Fraction(0)] * h
        betas[0], betas[2] = Fraction(1), Fraction(-1)
        scaled_rocc = CandidateCCA(
            tuple([Fraction(0)] * h), tuple(betas), Fraction(2)
        )
        assert CcacVerifier(cfg2).verify(scaled_rocc)


class TestWorstCase:
    def test_wce_verified_candidate_still_verified(self, fast_cfg):
        """WCE only changes which counterexample is returned, never the
        verdict."""
        v = CcacVerifier(fast_cfg)
        assert v.find_counterexample(rocc(fast_cfg.history), worst_case=True).verified

    def test_wce_precision_configurable(self, fast_cfg):
        v = CcacVerifier(fast_cfg, wce_precision=Fraction(1, 2))
        res = v.find_counterexample(constant_cwnd(1, fast_cfg.history), worst_case=True)
        assert not res.verified
