"""Tests for verifier tuning (§5's "tuning verifiers with CEGIS")."""

from fractions import Fraction

from repro.core import (
    constant_cwnd,
    rocc,
    total_waste_budget,
    tune_verifier,
    weakest_sufficient_assumption,
)


class TestTuneVerifier:
    def test_panel_of_robust_ccas_keeps_full_environment(self, fast_cfg):
        """A panel of unconditionally verified CCAs needs no constraint:
        the tuned environment is the whole family range."""
        template = total_waste_budget(fast_cfg)
        h = fast_cfg.history
        tuned = tune_verifier([rocc(h)], fast_cfg, template)
        assert tuned.found
        assert tuned.theta == template.hi

    def test_fragile_member_tightens_environment(self, fast_cfg):
        """Adding a fragile heuristic forces the environment to shrink to
        what that heuristic can survive."""
        template = total_waste_budget(fast_cfg)
        h = fast_cfg.history
        tuned = tune_verifier([rocc(h), constant_cwnd(1, h)], fast_cfg, template)
        assert tuned.found
        assert tuned.theta < template.hi

    def test_panel_theta_is_min_of_members(self, fast_cfg):
        """The tuned theta equals the weakest-assumption theta of the most
        fragile member (intersection of monotone families)."""
        template = total_waste_budget(fast_cfg)
        h = fast_cfg.history
        fragile = constant_cwnd(1, h)
        solo = weakest_sufficient_assumption(fragile, fast_cfg, template)
        panel = tune_verifier([rocc(h), fragile], fast_cfg, template)
        assert panel.found and solo.found
        # same binary search bounds/precision -> same answer
        assert abs(panel.theta - solo.theta) <= Fraction(1, 8)

    def test_describe(self, fast_cfg):
        template = total_waste_budget(fast_cfg)
        tuned = tune_verifier([rocc(fast_cfg.history)], fast_cfg, template)
        assert "wastes at most" in tuned.describe()

    def test_empty_result_when_impossible(self, fast_cfg):
        """A panel containing a hopeless heuristic admits no environment."""
        cfg = fast_cfg.with_thresholds(util=Fraction(99, 100), delay=Fraction(1, 100))
        template = total_waste_budget(cfg)
        tuned = tune_verifier([constant_cwnd(1, cfg.history)], cfg, template)
        assert not tuned.found
        assert "no environment" in tuned.describe()
