"""Generator tests, including the SMT-vs-enumerative differential check:
both implement the same finite CSP, so on identical counterexample sets
they must agree on which candidates survive."""

from fractions import Fraction

import pytest

from repro.ccac import ModelConfig
from repro.cegis import PruningMode
from repro.core import (
    CandidateCCA,
    CcacVerifier,
    EnumerativeGenerator,
    SMALL_DOMAIN,
    SmtGenerator,
    TemplateSpec,
    constant_cwnd,
    satisfies_spec,
    simulate_on_trace,
)


@pytest.fixture
def tiny_spec(fast_cfg):
    return TemplateSpec(
        history=fast_cfg.history, use_cwnd_history=False, coeff_domain=SMALL_DOMAIN
    )


@pytest.fixture
def one_trace(fast_cfg):
    """A concrete counterexample trace to seed generators with."""
    res = CcacVerifier(fast_cfg).find_counterexample(
        constant_cwnd(1, fast_cfg.history), worst_case=True
    )
    assert not res.verified
    return res.counterexample


class TestSimulation:
    def test_trajectories_shape(self, fast_cfg, one_trace):
        cand = constant_cwnd(1, fast_cfg.history)
        cwnd, A = simulate_on_trace(cand, one_trace, fast_cfg)
        assert len(cwnd) == fast_cfg.T + 1
        assert len(A) == fast_cfg.T + 1
        assert all(A[t] >= A[t - 1] for t in range(1, fast_cfg.T + 1))

    def test_original_candidate_is_infeasible_or_fails(self, fast_cfg, one_trace):
        """sigma must be False for the candidate the trace was built from
        (that's what makes it a counterexample under exact pruning)."""
        cand = constant_cwnd(1, fast_cfg.history)
        assert not satisfies_spec(cand, one_trace, fast_cfg, PruningMode.EXACT)

    def test_exact_implies_range_elimination(self, fast_cfg, one_trace, tiny_spec):
        """Range pruning eliminates a superset of what exact pruning
        eliminates."""
        for cand in tiny_spec.iterate_candidates():
            if not satisfies_spec(cand, one_trace, fast_cfg, PruningMode.EXACT):
                assert not satisfies_spec(cand, one_trace, fast_cfg, PruningMode.RANGE)


class TestEnumerativeGenerator:
    def test_initial_proposal(self, fast_cfg, tiny_spec):
        gen = EnumerativeGenerator(tiny_spec, fast_cfg)
        assert gen.propose() is not None
        assert gen.survivor_count == tiny_spec.search_space_size

    def test_counterexample_shrinks_survivors(self, fast_cfg, tiny_spec, one_trace):
        gen = EnumerativeGenerator(tiny_spec, fast_cfg, PruningMode.RANGE)
        before = gen.survivor_count
        gen.add_counterexample(one_trace)
        assert gen.survivor_count < before

    def test_range_prunes_more_than_exact(self, fast_cfg, tiny_spec, one_trace):
        g_exact = EnumerativeGenerator(tiny_spec, fast_cfg, PruningMode.EXACT)
        g_range = EnumerativeGenerator(tiny_spec, fast_cfg, PruningMode.RANGE)
        g_exact.add_counterexample(one_trace)
        g_range.add_counterexample(one_trace)
        assert g_range.survivor_count <= g_exact.survivor_count

    def test_block_removes_candidate(self, fast_cfg, tiny_spec):
        gen = EnumerativeGenerator(tiny_spec, fast_cfg)
        cand = gen.propose()
        gen.block(cand)
        assert gen.survivor_count == tiny_spec.search_space_size - 1
        nxt = gen.propose()
        assert nxt is None or nxt.key() != cand.key()

    def test_space_too_large_rejected(self, fast_cfg):
        from repro.core import LARGE_DOMAIN

        huge = TemplateSpec(history=4, use_cwnd_history=True, coeff_domain=LARGE_DOMAIN)
        with pytest.raises(ValueError):
            EnumerativeGenerator(huge, fast_cfg)


class TestSmtGenerator:
    def test_initial_proposal_in_space(self, fast_cfg, tiny_spec):
        gen = SmtGenerator(tiny_spec, fast_cfg)
        cand = gen.propose()
        assert cand is not None
        assert tiny_spec.contains(cand)

    def test_proposal_respects_counterexample(self, fast_cfg, tiny_spec, one_trace):
        gen = SmtGenerator(tiny_spec, fast_cfg, PruningMode.RANGE)
        gen.add_counterexample(one_trace)
        cand = gen.propose()
        assert cand is not None
        assert satisfies_spec(cand, one_trace, fast_cfg, PruningMode.RANGE)

    def test_blocking_exhausts_space(self, fast_cfg):
        spec = TemplateSpec(history=3, use_cwnd_history=False,
                            coeff_domain=(Fraction(0), Fraction(1)),
                            const_domain=(Fraction(0),))
        gen = SmtGenerator(spec, fast_cfg)
        seen = set()
        while True:
            cand = gen.propose()
            if cand is None:
                break
            assert cand.key() not in seen
            seen.add(cand.key())
            gen.block(cand)
        assert len(seen) == spec.search_space_size

    def test_differential_vs_enum(self, fast_cfg, tiny_spec, one_trace):
        """The SMT generator's proposal must be a survivor of the
        enumerative generator under the same counterexamples, in both
        pruning modes."""
        for mode in (PruningMode.EXACT, PruningMode.RANGE):
            g_enum = EnumerativeGenerator(tiny_spec, fast_cfg, mode)
            g_smt = SmtGenerator(tiny_spec, fast_cfg, mode)
            g_enum.add_counterexample(one_trace)
            g_smt.add_counterexample(one_trace)
            survivors = {c.key() for c in g_enum._survivors}
            cand = g_smt.propose()
            assert cand is not None
            assert cand.key() in survivors, f"mode={mode}: SMT proposed a non-survivor"

    def test_differential_exhaustive_tiny(self, fast_cfg, one_trace):
        """On a space small enough to enumerate both ways, the SMT
        generator (with blocking) must produce exactly the enumerative
        survivor set."""
        spec = TemplateSpec(
            history=fast_cfg.history,
            use_cwnd_history=False,
            coeff_domain=(Fraction(-1), Fraction(1)),
            const_domain=(Fraction(1),),
        )
        g_enum = EnumerativeGenerator(spec, fast_cfg, PruningMode.RANGE)
        g_enum.add_counterexample(one_trace)
        expected = {c.key() for c in g_enum._survivors}

        g_smt = SmtGenerator(spec, fast_cfg, PruningMode.RANGE)
        g_smt.add_counterexample(one_trace)
        got = set()
        while True:
            cand = g_smt.propose()
            if cand is None:
                break
            got.add(cand.key())
            g_smt.block(cand)
        assert got == expected


class TestCwndModeGenerator:
    """The alpha-product case-split (the paper's ite linearization) only
    activates with cwnd history enabled; exercise it against the oracle."""

    def test_smt_differential_with_alpha_terms(self, fast_cfg, one_trace):
        spec = TemplateSpec(
            history=fast_cfg.history,
            use_cwnd_history=True,
            coeff_domain=(Fraction(0), Fraction(1)),
            const_domain=(Fraction(0), Fraction(1)),
        )
        g_enum = EnumerativeGenerator(spec, fast_cfg, PruningMode.RANGE)
        g_smt = SmtGenerator(spec, fast_cfg, PruningMode.RANGE)
        g_enum.add_counterexample(one_trace)
        g_smt.add_counterexample(one_trace)
        survivors = {c.key() for c in g_enum._survivors}
        cand = g_smt.propose()
        assert cand is not None
        assert cand.key() in survivors

    def test_smt_enumeration_matches_oracle_with_alphas(self, fast_cfg, one_trace):
        spec = TemplateSpec(
            history=fast_cfg.history,
            use_cwnd_history=True,
            coeff_domain=(Fraction(-1), Fraction(1)),
            const_domain=(Fraction(1),),
        )
        g_enum = EnumerativeGenerator(spec, fast_cfg, PruningMode.RANGE)
        g_enum.add_counterexample(one_trace)
        expected = {c.key() for c in g_enum._survivors}

        g_smt = SmtGenerator(spec, fast_cfg, PruningMode.RANGE)
        g_smt.add_counterexample(one_trace)
        got = set()
        while True:
            cand = g_smt.propose()
            if cand is None:
                break
            got.add(cand.key())
            g_smt.block(cand)
        assert got == expected

    def test_alpha_rule_verifier_roundtrip(self, fast_cfg):
        """A pure-EWMA rule (cwnd = cwnd(t-1), no drive) pins at its
        initial value; it cannot guarantee utilization and must be
        refuted — through the alpha code path of the verifier."""
        h = fast_cfg.history
        alphas = [Fraction(0)] * h
        alphas[0] = Fraction(1)
        cand = CandidateCCA(tuple(alphas), (Fraction(0),) * h, Fraction(0))
        res = CcacVerifier(fast_cfg).find_counterexample(cand)
        assert not res.verified
        assert res.counterexample.check_environment() == []
