"""The job API: JSON round-trips, fingerprints, version gating."""

import json
import os
import subprocess
import sys
from fractions import Fraction

import pytest

from repro.ccac import ModelConfig
from repro.core import SynthesisQuery, table1_spaces
from repro.runtime import RuntimeOptions
from repro.runtime.serialize import decode_config
from repro.service import (
    JOBSPEC_VERSION,
    JobRecord,
    JobSpec,
    JobSpecError,
    decode_synthesis_result,
    execute_job,
    falsify_spec,
    synthesis_spec,
    verify_spec,
)
from repro.service.jobs import _decode_options, _encode_options

pytestmark = pytest.mark.service


def _exact_cfg() -> ModelConfig:
    # thresholds that do not survive a float round-trip
    return ModelConfig(
        T=5, util_thresh=Fraction(1, 3), delay_thresh=Fraction(13, 7)
    )


class TestJobSpec:
    def test_roundtrip_preserves_exact_fractions(self):
        spec = verify_spec("rocc", _exact_cfg(), worst_case=True)
        wire = json.loads(json.dumps(spec.to_json()))
        back = JobSpec.from_json(wire)
        assert back == spec
        cfg = decode_config(back.params["cfg"])
        assert cfg.util_thresh == Fraction(1, 3)
        assert cfg.delay_thresh == Fraction(13, 7)

    def test_options_roundtrip_exact(self):
        options = RuntimeOptions(
            isolate=True,
            solver_timeout=12.5,
            wce_precision=Fraction(1, 1024),
            falsify=250,
            certify=True,
        )
        back = _decode_options(json.loads(json.dumps(_encode_options(options))))
        assert back.wce_precision == Fraction(1, 1024)
        assert back.isolate is True
        assert back.solver_timeout == 12.5
        assert back.falsify == 250
        assert back.certify is True

    def test_checkpoint_path_is_not_part_of_a_spec(self):
        options = RuntimeOptions(checkpoint_path="/tmp/run.ckpt")
        query = SynthesisQuery(
            spec=table1_spaces()["no_cwnd_small"], cfg=ModelConfig(T=5)
        )
        spec = synthesis_spec(query, options)
        assert "checkpoint" not in json.dumps(spec.to_json())

    def test_fingerprint_ignores_dict_ordering(self):
        spec = falsify_spec("aimd:8", _exact_cfg(), budget=100, seed=7)
        wire = spec.to_json()
        scrambled = json.loads(
            json.dumps(wire, sort_keys=True)
        )
        scrambled["params"] = dict(reversed(list(scrambled["params"].items())))
        assert JobSpec.from_json(scrambled).fingerprint() == spec.fingerprint()

    def test_fingerprint_stable_across_processes(self):
        spec = verify_spec("rocc", _exact_cfg(), worst_case=True, falsify=50)
        code = (
            "from fractions import Fraction\n"
            "from repro.ccac import ModelConfig\n"
            "from repro.service import verify_spec\n"
            "cfg = ModelConfig(T=5, util_thresh=Fraction(1, 3),"
            " delay_thresh=Fraction(13, 7))\n"
            "print(verify_spec('rocc', cfg, worst_case=True,"
            " falsify=50).fingerprint())\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True, env=dict(os.environ),
        )
        assert out.stdout.strip() == spec.fingerprint()

    def test_different_specs_different_fingerprints(self):
        cfg = _exact_cfg()
        assert verify_spec("rocc", cfg).fingerprint() != \
            verify_spec("eq3", cfg).fingerprint()

    def test_unsupported_version_rejected_with_clear_error(self):
        wire = verify_spec("rocc", ModelConfig(T=5)).to_json()
        wire["version"] = JOBSPEC_VERSION + 1
        with pytest.raises(JobSpecError, match="unsupported JobSpec version"):
            JobSpec.from_json(wire)

    def test_non_object_rejected(self):
        with pytest.raises(JobSpecError):
            JobSpec.from_json([1, 2, 3])
        with pytest.raises(JobSpecError):
            JobSpec.from_json({"version": JOBSPEC_VERSION, "kind": "verify",
                               "params": "nope"})

    def test_unknown_kind_rejected(self):
        with pytest.raises(JobSpecError, match="unknown job kind"):
            JobSpec(kind="frobnicate", params={})


class TestEnvironmentJobs:
    """v2 of the wire format: jobs carry their environment matrix."""

    def test_default_matches_explicit_lossless(self):
        from repro.ccac import lossless_environment

        cfg = _exact_cfg()
        implicit = verify_spec("rocc", cfg)
        explicit = verify_spec(
            "rocc", cfg, environments=[lossless_environment()]
        )
        assert implicit.fingerprint() == explicit.fingerprint()

    def test_environment_fingerprint_stable_across_processes(self):
        from repro.ccac import lossless_environment, lossy_environment

        envs = [lossless_environment(),
                lossy_environment(buffer=Fraction(13, 7))]
        spec = verify_spec("rocc", _exact_cfg(), environments=envs)
        code = (
            "from fractions import Fraction\n"
            "from repro.ccac import ModelConfig, lossless_environment,"
            " lossy_environment\n"
            "from repro.service import verify_spec\n"
            "cfg = ModelConfig(T=5, util_thresh=Fraction(1, 3),"
            " delay_thresh=Fraction(13, 7))\n"
            "envs = [lossless_environment(),"
            " lossy_environment(buffer=Fraction(13, 7))]\n"
            "print(verify_spec('rocc', cfg, environments=envs)"
            ".fingerprint())\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True, env=dict(os.environ),
        )
        assert out.stdout.strip() == spec.fingerprint()

    def test_v2_specs_round_trip_environments(self):
        from repro.ccac import lossy_environment
        from repro.runtime.serialize import decode_environments

        envs = [lossy_environment(buffer=2)]
        spec = verify_spec("rocc", ModelConfig(T=5), environments=envs)
        again = JobSpec.from_json(json.loads(json.dumps(spec.to_json())))
        assert decode_environments(again.params["environments"]) == envs

    def test_verify_job_reports_origin_environment(self):
        from repro.ccac import lossy_environment

        spec = verify_spec("rocc", ModelConfig(T=5),
                           environments=[lossy_environment(buffer=1)])
        payload = execute_job(spec)
        assert payload["verified"] is False
        assert payload["environment"] == "lossy:buffer=1,loss_thresh=1"
        assert payload["counterexample"]["kind"] == "lossy"


class TestResultPayload:
    @pytest.fixture(scope="class")
    def tiny_payload(self):
        query = SynthesisQuery(
            spec=table1_spaces()["no_cwnd_small"],
            cfg=ModelConfig(T=5),
            generator="enum",
            worst_case_cex=False,
        )
        return execute_job(synthesis_spec(query))

    def test_decode_rebuilds_result(self, tiny_payload):
        result = decode_synthesis_result(tiny_payload)
        assert result.iterations == tiny_payload["iterations"]
        assert len(result.solutions) == len(tiny_payload["solutions"])
        assert result.stop_reason is not None

    def test_payload_fingerprint_excludes_timings(self, tiny_payload):
        from repro.service.jobs import _payload_fingerprint

        warped = dict(tiny_payload)
        warped["wall_time"] = tiny_payload["wall_time"] + 1000.0
        assert _payload_fingerprint(warped) == tiny_payload["fingerprint"]

    def test_tampered_payload_refused(self, tiny_payload):
        tampered = dict(tiny_payload)
        tampered["iterations"] = tiny_payload["iterations"] + 1
        with pytest.raises(JobSpecError, match="fingerprint"):
            decode_synthesis_result(tampered)


class TestExecute:
    def test_verify_job(self):
        payload = execute_job(verify_spec("rocc", ModelConfig(T=5)))
        assert payload["verified"] is True
        assert payload["counterexample"] is None
        assert payload["pretty"]

    def test_verify_counterexample_job(self):
        payload = execute_job(verify_spec("const:1", ModelConfig(T=5)))
        assert payload["verified"] is False
        assert payload["counterexample"] is not None
        assert "utilization" in payload["counterexample_text"]

    def test_unknown_cca_is_a_job_spec_error(self):
        with pytest.raises(JobSpecError, match="unknown CCA"):
            execute_job(verify_spec("bbr", ModelConfig(T=5)))

    def test_progress_callback_sees_records(self):
        records = []
        execute_job(
            verify_spec("rocc", ModelConfig(T=5)),
            progress=records.append,
        )
        assert any(r.get("type") == "span" for r in records)


class TestJobRecord:
    def test_roundtrip(self):
        record = JobRecord(spec=verify_spec("rocc", ModelConfig(T=5)))
        record.state = "done"
        record.result = {"verified": True}
        back = JobRecord.from_json(json.loads(json.dumps(record.to_json())))
        assert back.job_id == record.job_id
        assert back.state == "done"
        assert back.result == {"verified": True}
        assert back.spec == record.spec

    def test_unknown_state_rejected(self):
        wire = JobRecord(spec=verify_spec("rocc", ModelConfig(T=5))).to_json()
        wire["state"] = "exploded"
        with pytest.raises(JobSpecError, match="unknown job state"):
            JobRecord.from_json(wire)
