"""WorkerPool behaviour: batches, cancellation, death and rebirth."""

import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro.runtime.errors import SoundnessError, WorkerError
from repro.service import WorkerPool

pytestmark = [pytest.mark.service, pytest.mark.runtime]


# top-level so they are picklable by the fork start method
def _add(a, b):
    return a + b


def _slow_add(a, b, delay=30.0):
    time.sleep(delay)
    return a + b


def _boom():
    raise RuntimeError("worker exploded")


def _soundness():
    raise SoundnessError("fabricated verdict")


def _pid():
    return os.getpid()


def _no_zombies():
    deadline = time.time() + 5.0
    while time.time() < deadline:
        if not multiprocessing.active_children():
            return True
        time.sleep(0.05)
    return False


def test_wait_all_batch_returns_every_result():
    with WorkerPool(size=2) as pool:
        outcome = pool.run_batch(
            [(_add, (1, 2)), (_add, (3, 4)), (_add, (5, 6))],
            accept=lambda _r: False,
        )
    assert outcome.winner is None
    assert {i: r.result for i, r in outcome.reports.items()} == {
        0: 3, 1: 7, 2: 11,
    }
    assert _no_zombies()


def test_first_winner_cancels_losers_but_keeps_workers():
    pool = WorkerPool(size=2, kill_grace=2.0)
    with pool:
        outcome = pool.run_batch(
            [(_slow_add, (1, 2)), (_add, (3, 4))], wall_time=25.0
        )
        assert outcome.winner == 1
        assert outcome.result == 7
        assert outcome.cancelled == [0]
        # the loser acknowledged SIGUSR1 cooperatively, so its worker
        # must still be alive and serving (keep, not respawn)
        assert pool.stats.respawns == 0
        verdicts = pool.probe()
        assert set(verdicts.values()) == {"idle"}
        again = pool.run_batch([(_add, (10, 20))])
        assert again.result == 30
    assert _no_zombies()


def test_workers_persist_across_batches():
    with WorkerPool(size=1) as pool:
        first = pool.run_batch([(_pid, ())]).result
        second = pool.run_batch([(_pid, ())]).result
        assert first == second  # same process served both batches
        assert pool.stats.spawns == 1
    assert _no_zombies()


@pytest.mark.chaos
def test_sigkill_mid_task_is_retried_not_lost():
    """Satellite: a pooled worker SIGKILLed mid-job is respawned and the
    job re-queued — the batch still completes with the right answer."""
    pool = WorkerPool(size=1, retries=1, kill_grace=2.0)
    with pool:
        victim = pool._lanes[0].proc.pid

        def _assassin():
            time.sleep(0.4)
            try:
                os.kill(victim, signal.SIGKILL)
            except ProcessLookupError:
                pass

        killer = threading.Thread(target=_assassin)
        killer.start()
        outcome = pool.run_batch(
            [(_slow_add, (100, 5), {"delay": 1.5})],
            accept=lambda _r: False,
            wall_time=60.0,
        )
        killer.join()
    assert outcome.reports[0].status == "ok"
    assert outcome.reports[0].result == 105
    assert pool.stats.respawns >= 1
    assert pool.stats.retries == 1
    assert _no_zombies()


@pytest.mark.chaos
def test_repeated_crashes_exhaust_retries():
    pool = WorkerPool(size=1, retries=0, kill_grace=2.0)
    with pool:
        victim = pool._lanes[0]

        def _assassin():
            time.sleep(0.4)
            try:
                os.kill(victim.proc.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass

        killer = threading.Thread(target=_assassin)
        killer.start()
        outcome = pool.run_batch(
            [(_slow_add, (1, 1), {"delay": 30.0})],
            accept=lambda _r: False,
            wall_time=20.0,
        )
        killer.join()
    assert outcome.reports[0].status == "crash"
    assert "died" in outcome.reports[0].detail
    assert _no_zombies()


def test_all_errors_raise_worker_error():
    with WorkerPool(size=2) as pool:
        with pytest.raises(WorkerError, match="worker exploded"):
            pool.run_batch([(_boom, ()), (_boom, ())])
    assert _no_zombies()


def test_soundness_error_propagates(tmp_path):
    from repro.obs import set_dump_dir

    set_dump_dir(str(tmp_path))
    with WorkerPool(size=1) as pool:
        with pytest.raises(SoundnessError, match="fabricated"):
            pool.run_batch([(_soundness, ())])
    assert _no_zombies()


def test_error_does_not_kill_the_worker():
    """A task-level exception is a report, not a worker death."""
    with WorkerPool(size=1) as pool:
        outcome = pool.run_batch(
            [(_boom, ()), (_add, (2, 2))], accept=lambda _r: False
        )
        assert outcome.reports[0].status == "error"
        assert outcome.reports[1].result == 4
        assert pool.stats.respawns == 0
    assert _no_zombies()


def test_recycle_after_task_quota():
    pool = WorkerPool(size=1, max_tasks_per_worker=1)
    with pool:
        first = pool.run_batch([(_pid, ())]).result
        assert pool.stats.recycles >= 1
        second = pool.run_batch([(_pid, ())]).result
        assert first != second  # quota hit -> fresh process
    assert _no_zombies()


def test_probe_respawns_dead_idle_worker():
    pool = WorkerPool(size=2, kill_grace=2.0)
    with pool:
        os.kill(pool._lanes[0].proc.pid, signal.SIGKILL)
        pool._lanes[0].proc.join(5.0)
        verdicts = pool.probe()
        assert verdicts[0] == "dead"
        assert verdicts[1] == "idle"
        assert pool.stats.respawns == 1
        # the respawned lane serves immediately
        outcome = pool.run_batch([(_add, (7, 8))])
        assert outcome.result == 15
    assert _no_zombies()


def test_prime_runs_on_spawn_and_respawn():
    events = []

    with WorkerPool(size=1, prime=(_pid, (), {})) as pool:
        events.append(pool.run_batch([(_add, (1, 1))]).result)
    assert events == [2]
    assert _no_zombies()
