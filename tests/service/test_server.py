"""Control-plane end-to-end: submit over HTTP, stream, fetch, shut down."""

import asyncio
import multiprocessing
import threading
import time

import pytest

from repro.ccac import ModelConfig
from repro.core import SynthesisQuery, table1_spaces
from repro.service import (
    JobServer,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    execute_job,
    synthesis_spec,
    verify_spec,
)

pytestmark = [pytest.mark.service, pytest.mark.runtime]


def _start_server(tmp_path, **overrides):
    """Run a JobServer on an ephemeral port in a background thread."""
    config = ServiceConfig(
        port=0, state_dir=str(tmp_path / "state"), pool_size=2, **overrides
    )
    server = JobServer(config)
    started = threading.Event()
    info = {}

    def _run():
        async def _main():
            await server.start()
            info["port"] = server.port
            started.set()
            await server.serve_until_shutdown()

        asyncio.run(_main())

    thread = threading.Thread(target=_run, daemon=True)
    thread.start()
    assert started.wait(60), "server never came up"
    return server, ServiceClient(port=info["port"], timeout=120.0), thread


@pytest.fixture
def service(tmp_path):
    server, client, thread = _start_server(tmp_path)
    yield client
    try:
        client.shutdown()
    except (OSError, ServiceError):
        pass
    thread.join(timeout=60)
    assert not thread.is_alive()


def _tiny_query() -> SynthesisQuery:
    return SynthesisQuery(
        spec=table1_spaces()["no_cwnd_small"],
        cfg=ModelConfig(T=5),
        generator="enum",
        worst_case_cex=False,
    )


def test_health_and_stats(service):
    assert service.healthy()
    stats = service.stats()
    assert stats["pool"]["size"] == 2
    assert stats["pool"]["spawns"] >= 2


def test_verify_job_end_to_end(service):
    accepted = service.submit(verify_spec("rocc", ModelConfig(T=5)))
    assert accepted["state"] == "queued"
    record = service.wait(accepted["job_id"])
    assert record["state"] == "done"
    payload = service.result(accepted["job_id"])
    assert payload["verified"] is True
    # the shared cache saw the verify traffic
    cache = service.cache_stats()
    assert cache["disk_entries"] >= 1
    assert cache["disk_bytes"] > 0


def test_events_stream_carries_progress_then_terminal(service):
    accepted = service.submit(verify_spec("rocc", ModelConfig(T=5)))
    records = list(service.events(accepted["job_id"]))
    assert records, "stream was empty"
    assert records[-1]["type"] == "job"
    assert records[-1]["state"] == "done"
    assert any(r.get("type") in ("span", "event") for r in records)


def test_local_and_submitted_runs_are_identical(service):
    """Acceptance: `ccmatic synthesize` (local) and submit+result produce
    payloads with the same semantic fingerprint for the same JobSpec."""
    spec = synthesis_spec(_tiny_query())
    local = execute_job(spec)
    accepted = service.submit(spec)
    record = service.wait(accepted["job_id"])
    assert record["state"] == "done", record.get("error")
    remote = service.result(accepted["job_id"])
    assert remote["fingerprint"] == local["fingerprint"]
    assert remote["solutions"] == local["solutions"]
    assert remote["stop_reason"] == local["stop_reason"]


def test_failed_job_reports_its_error(service):
    # the spec *format* is valid, so submission succeeds; execution then
    # fails on the unknown CCA and the failure lands in the record
    accepted = service.submit(verify_spec("bbr", ModelConfig(T=5)))
    record = service.wait(accepted["job_id"])
    assert record["state"] == "failed"
    assert "unknown CCA" in record["error"]
    with pytest.raises(ServiceError) as err:
        service.result(accepted["job_id"])
    assert err.value.status == 409


def test_unknown_job_is_404(service):
    with pytest.raises(ServiceError) as err:
        service.status("nope")
    assert err.value.status == 404


def test_bad_spec_is_rejected(service):
    with pytest.raises(ServiceError) as err:
        service._request("POST", "/jobs", {"version": 99, "kind": "verify",
                                           "params": {}})
    assert err.value.status == 400
    assert "version" in err.value.payload["error"]


def test_jobs_survive_a_server_restart(tmp_path):
    server, client, thread = _start_server(tmp_path)
    try:
        accepted = client.submit(verify_spec("rocc", ModelConfig(T=5)))
        client.wait(accepted["job_id"])
    finally:
        client.shutdown()
        thread.join(timeout=60)
    # reboot on the same state dir: the finished job is still known
    server2, client2, thread2 = _start_server(tmp_path)
    try:
        record = client2.status(accepted["job_id"])
        assert record["state"] == "done"
        payload = client2.result(accepted["job_id"])
        assert payload["verified"] is True
    finally:
        client2.shutdown()
        thread2.join(timeout=60)


def test_clean_shutdown_leaves_no_orphans(tmp_path):
    server, client, thread = _start_server(tmp_path)
    accepted = client.submit(verify_spec("rocc", ModelConfig(T=5)))
    client.wait(accepted["job_id"])
    client.shutdown()
    thread.join(timeout=60)
    assert not thread.is_alive()
    deadline = time.time() + 10.0
    while time.time() < deadline and multiprocessing.active_children():
        time.sleep(0.1)
    assert multiprocessing.active_children() == []
