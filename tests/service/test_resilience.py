"""Storm-proofing: admission control, leases, retries, chaos streams.

Each test drives a real :class:`JobServer` over HTTP (ephemeral port,
background thread) exactly like ``tests/service/test_server.py`` — the
resilience behaviour under test is wire-visible, so the tests assert it
from the client side.
"""

import asyncio
import json
import os
import threading
import time

import pytest

from repro.ccac import ModelConfig
from repro.chaos import ChaosConfig, FaultSpec, install, uninstall
from repro.obs import metrics
from repro.service import (
    JobServer,
    RetryPolicy,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    WorkerPool,
    falsify_spec,
    verify_spec,
)

pytestmark = [pytest.mark.service, pytest.mark.runtime]


def _start_server(tmp_path, **overrides):
    """Run a JobServer on an ephemeral port in a background thread."""
    config = ServiceConfig(
        port=0, state_dir=str(tmp_path / "state"), pool_size=2, **overrides
    )
    server = JobServer(config)
    started = threading.Event()
    info = {}

    def _run():
        async def _main():
            await server.start()
            info["port"] = server.port
            started.set()
            await server.serve_until_shutdown()

        asyncio.run(_main())

    thread = threading.Thread(target=_run, daemon=True)
    thread.start()
    assert started.wait(60), "server never came up"
    return server, ServiceClient(port=info["port"], timeout=120.0), thread


def _slow_spec(seed: int, **limits):
    """A falsify job that runs until cancelled: an exhaustive genetic
    search with an unreachable budget (distinct seeds -> distinct
    fingerprints, so dedup never collapses two of them)."""
    return falsify_spec(
        "aimd", ModelConfig(T=5), budget=10**8, ticks=300,
        exhaustive=True, no_verify=True, seed=seed, **limits,
    )


def _wait_state(client, job_id, *states, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = client.status(job_id)
        if record["state"] in states:
            return record
        time.sleep(0.1)
    raise AssertionError(
        f"job {job_id} never reached {states} (last: {record['state']})"
    )


def test_admission_dedup_and_running_cancel(tmp_path):
    """One executor, queue depth 1: the third distinct submit sheds with
    429 + Retry-After; identical specs dedup; running jobs cancel."""
    server, client, thread = _start_server(
        tmp_path, executors=1, max_queue=1, retry_after_s=1.5,
    )
    impatient = ServiceClient(
        port=client.port, timeout=120.0,
        retry_policy=RetryPolicy(retries=0),
    )
    try:
        running = client.submit(_slow_spec(seed=1))
        _wait_state(client, running["job_id"], "running")
        queued = client.submit(_slow_spec(seed=2))
        assert queued["state"] == "queued"

        # queue is full: the next distinct spec is shed, with advice
        with pytest.raises(ServiceError) as err:
            impatient.submit(_slow_spec(seed=3))
        assert err.value.status == 429
        assert err.value.retry_after == pytest.approx(1.5)

        # ...but an *identical* spec is not new work: dedup, not shed
        again = client.submit(_slow_spec(seed=1))
        assert again["deduped"] is True
        assert again["job_id"] == running["job_id"]

        stats = client.stats()
        assert stats["shed"] >= 1
        assert stats["queued"] == 1
        assert stats["running"] == 1
        assert stats["executors"] == 1

        # cancel the queued job: immediate terminal state
        out = client.cancel(queued["job_id"])
        assert out["state"] == "cancelled"

        # cancel the *running* job: cooperative, through the pool
        out = client.cancel(running["job_id"])
        assert out["state"] == "cancelling"
        record = _wait_state(
            client, running["job_id"], "done", "failed", "cancelled"
        )
        assert record["state"] == "cancelled"
        assert record["attempt_history"][-1]["outcome"] == "user"

        # terminal failure released the dedup claim: resubmit is new work
        fresh = client.submit(_slow_spec(seed=1))
        assert "deduped" not in fresh
        assert fresh["job_id"] != running["job_id"]
        client.cancel(fresh["job_id"])
        _wait_state(client, fresh["job_id"], "cancelled")
    finally:
        try:
            client.shutdown()
        except (OSError, ServiceError):
            pass
        thread.join(timeout=60)
    assert not thread.is_alive()


def test_deadline_requeues_then_fails_honestly(tmp_path):
    """A job past its wall-clock deadline is cancelled and re-queued,
    at most ``max_attempts`` times, then fails with its history."""
    server, client, thread = _start_server(
        tmp_path, executors=1, watchdog_interval=0.2,
        # a chatty search must not evict the requeue record under test
        event_buffer=65536,
    )
    try:
        accepted = client.submit(
            _slow_spec(seed=7, deadline_s=0.75, max_attempts=2)
        )
        record = _wait_state(
            client, accepted["job_id"], "done", "failed", "cancelled",
            timeout=120.0,
        )
        assert record["state"] == "failed"
        assert record["attempts"] == 2
        assert "gave up after 2/2 attempts" in record["error"]
        outcomes = [a["outcome"] for a in record["attempt_history"]]
        assert outcomes == ["deadline", "deadline"]

        # the replayable stream shows the requeue between the attempts
        records = list(client._stream_once(accepted["job_id"], 0, None))
        requeues = [
            r for r in records
            if r.get("type") == "job" and r.get("requeued")
        ]
        assert requeues and requeues[0]["reason"] == "deadline"
        seqs = [r["seq"] for r in records if "seq" in r]
        assert seqs == sorted(seqs)
        assert records[-1]["type"] == "job"
        assert records[-1]["state"] == "failed"
    finally:
        try:
            client.shutdown()
        except (OSError, ServiceError):
            pass
        thread.join(timeout=60)


def test_client_rides_out_503s_and_torn_streams(tmp_path):
    """Armed network chaos: responses answer 503 and streams tear
    mid-line; the retrying client still sees one coherent history."""
    server, client, thread = _start_server(tmp_path)
    try:
        accepted = client.submit(verify_spec("rocc", ModelConfig(T=5)))
        record = client.wait(accepted["job_id"])
        assert record["state"] == "done"

        # identical spec, job already done: resubmit returns it verbatim
        again = client.submit(verify_spec("rocc", ModelConfig(T=5)))
        assert again["deduped"] is True
        assert again["job_id"] == accepted["job_id"]

        install(ChaosConfig(seed=11, specs=(
            FaultSpec(point="service.response", kind="reject_503", count=2),
            FaultSpec(point="service.stream", kind="torn_stream", count=3),
        )))
        try:
            # two straight 503s: the default policy retries through them
            assert client.status(accepted["job_id"])["state"] == "done"
            # three torn stream writes: the cursor resume survives them
            stormy = ServiceClient(
                port=client.port, timeout=120.0,
                retry_policy=RetryPolicy(retries=6, backoff_base=0.05),
                retry_seed=1,
            )
            records = list(stormy.events(accepted["job_id"]))
        finally:
            uninstall()
        assert records, "stream never recovered"
        assert records[-1]["type"] == "job"
        assert records[-1]["state"] == "done"
        seqs = [r["seq"] for r in records if "seq" in r]
        assert seqs == sorted(seqs), "resume replayed out of order"
        assert len(seqs) == len(set(seqs)), "resume duplicated records"
    finally:
        uninstall()
        try:
            client.shutdown()
        except (OSError, ServiceError):
            pass
        thread.join(timeout=60)


def test_drain_rejects_new_work_and_requeues_in_flight(tmp_path):
    """POST /shutdown: new submits bounce with 503, the in-flight job is
    cancelled past ``drain_grace`` and lands back on disk *queued*."""
    server, client, thread = _start_server(
        tmp_path, executors=1, drain_grace=0.5,
    )
    accepted = client.submit(_slow_spec(seed=4))
    _wait_state(client, accepted["job_id"], "running")
    out = client.shutdown()
    assert out["state"] == "draining"
    impatient = ServiceClient(
        port=client.port, timeout=120.0,
        retry_policy=RetryPolicy(retries=0),
    )
    try:
        with pytest.raises((ServiceError, OSError)) as err:
            impatient.submit(_slow_spec(seed=5))
        if isinstance(err.value, ServiceError):
            assert err.value.status == 503
    finally:
        thread.join(timeout=60)
    assert not thread.is_alive()
    # durable truth: the interrupted job is queued for the next boot,
    # with the drain recorded in its attempt history
    path = os.path.join(
        str(tmp_path / "state"), "jobs", f"{accepted['job_id']}.json"
    )
    with open(path, "r", encoding="utf-8") as f:
        record = json.load(f)
    assert record["state"] == "queued"
    assert record["attempts"] == 1
    assert record["attempt_history"][-1]["outcome"] == "drain"


def test_v1_record_on_disk_migrates_and_requeues(tmp_path):
    """A pre-lease (v1) job record left ``running`` by an older server
    must migrate on boot — re-queued with the interruption recorded,
    never a crash."""
    jobs_dir = tmp_path / "state" / "jobs"
    jobs_dir.mkdir(parents=True)
    spec = verify_spec("rocc", ModelConfig(T=5))
    legacy = {
        # v1 shape: no record_version, attempts, attempt_history or lease
        "job_id": "legacy00deadbeef",
        "kind": "verify",
        "state": "running",
        "spec": spec.to_json(),
        "spec_fingerprint": spec.fingerprint(),
        "submitted_at": 1700000000.0,
        "started_at": 1700000001.0,
        "finished_at": None,
        "error": None,
        "result": None,
    }
    with open(jobs_dir / "legacy00deadbeef.json", "w", encoding="utf-8") as f:
        json.dump(legacy, f)
    server, client, thread = _start_server(tmp_path)
    try:
        record = _wait_state(
            client, "legacy00deadbeef", "done", "failed", "cancelled"
        )
        assert record["state"] == "done", record.get("error")
        assert record["record_version"] == 2
        assert record["attempt_history"][0]["outcome"] == "lease-expired"
        assert record["attempts"] == 1
        payload = client.result("legacy00deadbeef")
        assert payload["verified"] is True
        assert payload["fingerprint"]
    finally:
        try:
            client.shutdown()
        except (OSError, ServiceError):
            pass
        thread.join(timeout=60)


def test_probe_and_prime_timeouts_thread_through_config():
    config = ServiceConfig(probe_timeout=0.5, prime_timeout=12.0)
    server = JobServer(config)  # never started: construction is cheap
    assert server.pool.probe_timeout == 0.5
    assert server.pool.prime_timeout == 12.0


def test_probe_respawn_increments_obs_counter():
    pool = WorkerPool(size=1)
    pool.start()
    try:
        before = metrics().counter("service.pool.probe_respawns").value
        pool._lanes[0].proc.kill()
        pool._lanes[0].proc.join(timeout=10)
        verdicts = pool.probe(timeout=1.0)
        assert verdicts[0] == "dead"
        after = metrics().counter("service.pool.probe_respawns").value
        assert after == before + 1
        # the replacement lane answers the next probe
        assert pool.probe(timeout=1.0)[0] == "idle"
    finally:
        pool.shutdown()
