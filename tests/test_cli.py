"""CLI smoke tests (fast configurations only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        subactions = [
            a for a in parser._actions if hasattr(a, "choices") and a.choices
        ][0]
        assert set(subactions.choices) == {
            "synthesize", "verify", "sweep", "simulate", "assumption",
        }

    def test_unknown_cca_rejected(self):
        with pytest.raises(SystemExit):
            main(["verify", "bbr", "--T", "5"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestCommands:
    def test_verify_rocc(self, capsys):
        rc = main(["verify", "rocc", "--T", "5"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "VERIFIED" in out

    def test_verify_const1_refuted(self, capsys):
        rc = main(["verify", "const:1", "--T", "5"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "COUNTEREXAMPLE" in out
        assert "utilization" in out

    def test_simulate(self, capsys):
        rc = main(["simulate", "--ticks", "30"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "rocc" in out and "max_waste" in out

    def test_synthesize_tiny(self, capsys):
        rc = main([
            "synthesize", "--space", "no_cwnd_small", "--wce",
            "--T", "5", "--time-budget", "300",
        ])
        out = capsys.readouterr().out
        assert "iterations=" in out
        if rc == 0:
            assert "cwnd(t) =" in out

    def test_assumption_const1(self, capsys):
        rc = main(["assumption", "const:1", "--T", "5"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "wastes at most" in out
