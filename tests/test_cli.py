"""CLI smoke tests (fast configurations only)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        import argparse

        parser = build_parser()
        subactions = [
            a for a in parser._actions
            if isinstance(a, argparse._SubParsersAction)
        ][0]
        assert set(subactions.choices) == {
            "synthesize", "verify", "certify", "sweep", "simulate",
            "assumption", "report", "resume", "bench-diff", "falsify",
            "serve", "submit", "status", "result",
        }

    def test_unknown_cca_rejected(self):
        with pytest.raises(SystemExit):
            main(["verify", "bbr", "--T", "5"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    @pytest.mark.parametrize("flag,value", [
        ("--time-budget", "-1"),
        ("--time-budget", "0"),
        ("--time-budget", "soon"),
        ("--max-iterations", "0"),
        ("--max-iterations", "-5"),
        ("--max-iterations", "many"),
        ("--solver-timeout", "-2"),
        ("--solver-mem-mb", "0"),
    ])
    def test_invalid_synthesize_inputs_rejected(self, capsys, flag, value):
        with pytest.raises(SystemExit) as exc:
            main(["synthesize", flag, value])
        assert exc.value.code == 2  # argparse usage error, not a traceback
        err = capsys.readouterr().err
        assert flag in err

    def test_resume_missing_checkpoint_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["resume", "/nonexistent/run.ckpt"])
        assert exc.value.code == 2
        assert "no such file" in capsys.readouterr().err


class TestCommands:
    def test_verify_rocc(self, capsys):
        rc = main(["verify", "rocc", "--T", "5"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "VERIFIED" in out

    def test_verify_const1_refuted(self, capsys):
        rc = main(["verify", "const:1", "--T", "5"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "COUNTEREXAMPLE" in out
        assert "utilization" in out

    def test_simulate(self, capsys):
        rc = main(["simulate", "--ticks", "30"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "rocc" in out and "max_waste" in out

    def test_synthesize_tiny(self, capsys):
        rc = main([
            "synthesize", "--space", "no_cwnd_small", "--wce",
            "--T", "5", "--time-budget", "300",
        ])
        out = capsys.readouterr().out
        assert "iterations=" in out
        if rc == 0:
            assert "cwnd(t) =" in out

    def test_assumption_const1(self, capsys):
        rc = main(["assumption", "const:1", "--T", "5"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "wastes at most" in out


class TestCrossCheck:
    def test_synthesize_cross_check_prints_sim_verdicts(self, capsys):
        rc = main([
            "synthesize", "--space", "no_cwnd_small", "--wce",
            "--T", "5", "--time-budget", "300", "--cross-check",
        ])
        out = capsys.readouterr().out
        if rc == 0:
            assert "sim[" in out

    def test_cross_check_without_solutions_says_so(self, capsys):
        """One iteration of the bare small space cannot verify a
        solution; --cross-check must announce the skip, not stay mute."""
        rc = main([
            "synthesize", "--space", "no_cwnd_small", "--T", "5",
            "--max-iterations", "1", "--cross-check",
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "no solution found" in out
        assert "cross-check: requested but no solutions to check" in out


@pytest.mark.falsify
class TestFalsifyCommand:
    def test_weakened_aimd_falsified(self, capsys):
        rc = main([
            "falsify", "aimd:8", "--T", "7", "--budget", "400",
            "--no-corpus",
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "FALSIFIED" in out
        assert "minimized" in out

    def test_verified_rocc_survives(self, capsys):
        rc = main([
            "falsify", "rocc", "--no-verify", "--T", "5",
            "--budget", "80", "--ticks", "60",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "SURVIVED" in out

    def test_corpus_case_written(self, capsys, tmp_path):
        corpus = tmp_path / "cases"
        rc = main([
            "falsify", "aimd:8", "--T", "7", "--budget", "400",
            "--corpus-dir", str(corpus),
        ])
        capsys.readouterr()
        assert rc == 1
        assert list(corpus.glob("*.json"))

    def test_grid_manifest_written(self, capsys, tmp_path):
        manifest = tmp_path / "manifest.json"
        rc = main([
            "falsify", "rocc", "--no-verify", "--T", "5",
            "--budget", "40", "--ticks", "40",
            "--grid", "--grid-jobs", "2", "--manifest", str(manifest),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "grid:" in out
        assert manifest.exists()
        doc = json.loads(manifest.read_text())
        assert doc["records"]

    def test_unknown_spec_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["falsify", "bbr", "--no-verify", "--budget", "10"])


class TestObservability:
    def test_synthesize_trace_round_trip(self, capsys, tmp_path):
        """synthesize --trace writes parseable JSONL; report reads it back
        with generator/verifier span totals matching CegisStats closely."""
        trace = tmp_path / "out.jsonl"
        rc = main([
            "synthesize", "--space", "no_cwnd_small", "--wce",
            "--T", "5", "--time-budget", "300", "--trace", str(trace),
        ])
        capsys.readouterr()
        assert trace.exists()
        records = [json.loads(line) for line in trace.read_text().splitlines()]
        kinds = {r["type"] for r in records}
        assert {"meta", "span", "event", "metrics"} <= kinds
        done = [r for r in records
                if r["type"] == "event" and r["name"] == "cegis.done"]
        assert len(done) == 1
        gen_total = sum(r["dur"] for r in records
                        if r["type"] == "span" and r["name"] == "cegis.generate")
        ver_total = sum(r["dur"] for r in records
                        if r["type"] == "span" and r["name"] == "cegis.verify")
        attrs = done[0]["attrs"]
        assert abs(gen_total - attrs["generator_time"]) \
            <= 0.05 * max(attrs["generator_time"], 1e-9)
        assert abs(ver_total - attrs["verifier_time"]) \
            <= 0.05 * max(attrs["verifier_time"], 1e-9)

        rc = main(["report", str(trace)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cegis.verify" in out
        assert "smt.checks" in out

    def test_global_flag_position_before_subcommand(self, capsys, tmp_path):
        trace = tmp_path / "before.jsonl"
        rc = main(["--trace", str(trace), "verify", "rocc", "--T", "5"])
        capsys.readouterr()
        assert rc == 0
        records = [json.loads(line) for line in trace.read_text().splitlines()]
        assert any(r["type"] == "span" and r["name"] == "smt.check"
                   for r in records)

    def test_log_level_info_renders_events(self, capsys):
        rc = main([
            "synthesize", "--space", "no_cwnd_small", "--T", "5",
            "--time-budget", "300", "--log-level", "info",
        ])
        out = capsys.readouterr().out
        assert "[cegis] iter" in out

    def test_report_missing_file(self, capsys):
        with pytest.raises(SystemExit):
            main(["report", "/nonexistent/trace.jsonl"])

    def test_report_perfetto_export(self, capsys, tmp_path):
        trace = tmp_path / "out.jsonl"
        rc = main(["verify", "rocc", "--T", "5", "--trace", str(trace)])
        capsys.readouterr()
        assert rc == 0
        out_json = tmp_path / "perfetto.json"
        rc = main(["report", str(trace), "--perfetto", str(out_json)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "perfetto export:" in out
        doc = json.loads(out_json.read_text())
        assert any(e["ph"] == "X" and e["name"] == "smt.check"
                   for e in doc["traceEvents"])


class TestBenchDiff:
    REPORT = {
        "bench": "engine", "quick": True, "ok": True,
        "compile": {"pipeline_s": 2.0, "raw_s": 4.0, "speedup": 2.0},
        "cache": {"cold_s": 3.0, "warm_s": 0.5, "speedup": 6.0},
        "portfolio": {"jobs_1": {"wall_s": 10.0}, "jobs_4": {"wall_s": 4.0}},
    }

    def write(self, tmp_path, name, report):
        path = tmp_path / name
        path.write_text(json.dumps(report))
        return str(path)

    def baseline(self, tmp_path):
        from repro.obs.trajectory import append_entry

        history = str(tmp_path / "BENCH_engine.json")
        append_entry(history, self.REPORT, git_sha="base123")
        return history

    def test_within_gate_exits_zero(self, capsys, tmp_path):
        current = self.write(tmp_path, "current.json", self.REPORT)
        rc = main(["bench-diff", current, "--baseline", self.baseline(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "within the regression gate" in out
        assert "base123" in out

    def test_thirty_percent_regression_exits_nonzero(self, capsys, tmp_path):
        slow = json.loads(json.dumps(self.REPORT))
        slow["portfolio"]["jobs_4"]["wall_s"] = 4.0 * 1.35
        current = self.write(tmp_path, "current.json", slow)
        rc = main(["bench-diff", current, "--baseline", self.baseline(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "REGRESSION" in out
        assert "portfolio.jobs_4.wall_s" in out

    def test_max_regress_flag_widens_gate(self, capsys, tmp_path):
        slow = json.loads(json.dumps(self.REPORT))
        slow["portfolio"]["jobs_4"]["wall_s"] = 4.0 * 1.35
        current = self.write(tmp_path, "current.json", slow)
        rc = main(["bench-diff", current,
                   "--baseline", self.baseline(tmp_path),
                   "--max-regress", "50"])
        capsys.readouterr()
        assert rc == 0

    def test_empty_baseline_passes_with_notice(self, capsys, tmp_path):
        current = self.write(tmp_path, "current.json", self.REPORT)
        rc = main(["bench-diff", current,
                   "--baseline", str(tmp_path / "missing.json")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "no baseline" in out.lower()

    def test_committed_baseline_is_a_trajectory(self):
        """The repo ships a real BENCH_engine.json history (satellite of
        the trajectory work): bench-diff must be able to gate against it."""
        import os

        from repro.obs.trajectory import is_trajectory, load_history

        path = os.path.join(os.path.dirname(__file__), "..", "BENCH_engine.json")
        assert is_trajectory(path)
        trajectory = load_history(path)
        entry = trajectory["history"][-1]
        assert entry["git_sha"] and entry["metrics"]
