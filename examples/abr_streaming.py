#!/usr/bin/env python3
"""ABR verification on the CCAC environment model (paper §5).

The paper reports building an ABR verifier by reusing CCAC's environment
model and encoding video quality/stalls through the playback buffer.  This
example analyzes the classic buffer-threshold bitrate policy:

* the greedy policy (always request high quality) provably stalls on some
  admissible network trace;
* a synthesized threshold is provably stall-free on *every* admissible
  trace — a robust-by-construction ABR rule.

Run:  python examples/abr_streaming.py
"""

from fractions import Fraction

from repro.abr import AbrConfig, AbrPolicy, AbrVerifier, synthesize_threshold


def main() -> None:
    cfg = AbrConfig(
        n_chunks=6,
        startup_delay=2,
        size_low=Fraction(1, 2),
        size_high=Fraction(3, 2),
    )
    print(f"video: {cfg.n_chunks} chunks, qualities {cfg.size_low}/{cfg.size_high} "
          f"bytes, link rate {cfg.C}, jitter {cfg.jitter} RTT, "
          f"startup buffer {cfg.startup_delay} ticks\n")
    verifier = AbrVerifier(cfg)

    greedy = AbrPolicy(theta=Fraction(0))
    trace = verifier.find_counterexample(greedy)
    print(f"greedy policy ({greedy.describe()}):")
    if trace is None:
        print("  unexpectedly verified")
    else:
        print(f"  STALLS at chunk {trace.stalled_chunk} on this service trace:")
        print(f"  S = {[str(s) for s in trace.S]}")
        print(f"  qualities = {trace.qualities}\n")

    policy = synthesize_threshold(cfg)
    if policy is None:
        print("no stall-free threshold exists in the searched range")
        return
    print(f"synthesized policy: {policy.describe()}")
    print(f"  provably stall-free: {verifier.verify(policy)}")

    # quality floor: require at least one high-quality chunk too
    policy_q = synthesize_threshold(cfg, min_high_chunks=1)
    if policy_q is not None:
        print(f"with >=1 high-quality chunk required: {policy_q.describe()} "
              f"(verified: {verifier.verify(policy_q, min_high_chunks=1)})")
    else:
        print("no threshold meets the quality floor on every trace")


if __name__ == "__main__":
    main()
