#!/usr/bin/env python3
"""Run synthesized and classic CCAs on the discrete-time simulator.

The formal results say RoCC-style rules keep high utilization and bounded
queues on *every* admissible network; this example checks that empirically
against three concrete link adversaries (ideal, maximally-lazy delivery,
and the token-wasting starvation adversary) and shows how the classic
baselines degrade.

Run:  python examples/simulate_synthesized.py
"""

from fractions import Fraction

from repro.ccas import AIMD, ConstantCwnd, CubicLike, RoCC, TemplateCCA
from repro.core import paper_eq_iii, rocc
from repro.sim import run_simulation

TICKS = 200
WARMUP = 20


def main() -> None:
    ccas = [
        RoCC(),
        TemplateCCA(rocc()),           # the synthesized rule, via the adapter
        TemplateCCA(paper_eq_iii()),   # paper Eq. iii (multiplicative variant)
        AIMD(),
        CubicLike(),
        ConstantCwnd(Fraction(1)),     # one-BDP window: provably fragile
        ConstantCwnd(Fraction(3)),
    ]
    policies = ["ideal", "lazy", "max_waste"]

    header = f"{'CCA':42s}" + "".join(f"{p:>22s}" for p in policies)
    print(header)
    print("-" * len(header))
    for cca in ccas:
        cells = []
        for policy in policies:
            r = run_simulation(cca, ticks=TICKS, policy=policy)
            cells.append(
                f"util={float(r.utilization(WARMUP)):.2f} q={float(r.max_queue(WARMUP)):4.1f}"
            )
        name = cca.name if len(cca.name) <= 40 else cca.name[:37] + "..."
        print(f"{name:42s}" + "".join(f"{c:>22s}" for c in cells))

    print()
    print("Reading: the RoCC-family rules hold utilization ~1.0 with queue")
    print("<= 2 BDP under every adversary; the one-BDP constant window is")
    print("starved to exactly 50% by the waste adversary (the behaviour the")
    print("verifier's counterexample predicts), and AIMD/Cubic lose")
    print("throughput when acks are delayed.")


if __name__ == "__main__":
    main()
