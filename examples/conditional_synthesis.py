#!/usr/bin/env python3
"""Conditional-template synthesis (paper §4.1's extension).

The paper proposes extending the linear template with guarded updates —
``if cond then cwnd <- expr1 else cwnd <- expr2`` — which can express
traditional CCAs like AIMD.  This example:

1. verifies AIMD (expressed in the conditional template) and shows it is
   *refuted*: the adversary jitters acks so the delay guard misfires —
   the same mechanism CCAC used against delay-signal CCAs;
2. verifies RoCC expressed in branch form (it passes: its branches don't
   depend on the unreliable guard);
3. runs CEGIS over the conditional space and prints the synthesized rule.

Run:  python examples/conditional_synthesis.py
"""

from fractions import Fraction

from repro.ccac import ModelConfig
from repro.core import (
    ConditionalSpec,
    ConditionalVerifier,
    aimd_candidate,
    rocc_conditional,
    synthesize_conditional,
)


def main() -> None:
    cfg = ModelConfig(T=5, history=3)
    verifier = ConditionalVerifier(cfg)

    aimd = aimd_candidate()
    print(f"AIMD in the conditional template:\n  {aimd.pretty()}")
    res = verifier.find_counterexample(aimd)
    if res.verified:
        print("  -> verified (unexpected)\n")
    else:
        tr = res.counterexample
        print(f"  -> REFUTED: util={float(tr.utilization()):.2f}, "
              f"max queue={float(tr.max_queue()):.2f} on an adversarial trace\n")

    rocc_c = rocc_conditional()
    print(f"RoCC in branch form:\n  {rocc_c.pretty()}")
    print(f"  -> {'PROVED correct' if verifier.verify(rocc_c) else 'refuted?!'}\n")

    spec = ConditionalSpec(
        threshold_domain=(Fraction(2),),
        mu_domain=(Fraction(0), Fraction(1, 2), Fraction(1)),
        delta_domain=(Fraction(0), Fraction(1)),
    )
    print(f"synthesizing over {spec.search_space_size} conditional candidates ...")
    outcome = synthesize_conditional(cfg, spec=spec, time_budget=600)
    print(f"  iterations: {outcome.stats.iterations}")
    if outcome.solutions:
        sol = outcome.solutions[0]
        print(f"  synthesized: {sol.pretty()}")
        print(f"  AIMD-shaped: {sol.is_aimd_shaped()}")
    else:
        print("  no solution within budget")


if __name__ == "__main__":
    main()
