#!/usr/bin/env python3
"""Two-flow starvation analysis (the §4.1 open problem, made concrete).

"Recent work showed that network delays can cause competing flows to
starve for many known CCAs...  It is unknown if a CCA outside this class
can avoid starvation."  This example runs the two-flow CCAC model with
RoCC competing against itself and sweeps the one environment assumption
the multi-flow setting needs — the scheduler's minimum service share for
a backlogged flow:

* fully adversarial split (share 0): starvation traces exist, for any CCA;
* even split (share 1/2): RoCC is *provably* never starved below a
  quarter of its fair share.

Run:  python examples/fairness_analysis.py
"""

from fractions import Fraction

from repro.ccac import ModelConfig, StarvationVerifier
from repro.core import rocc


def main() -> None:
    cfg = ModelConfig(T=5, history=3)
    cand = rocc(cfg.history)
    phi = Fraction(1, 4)
    print(f"candidate: {cand.pretty()}")
    print(f"starvation threshold: phi={phi} of fair share, T={cfg.T}\n")

    for share in (Fraction(0), Fraction(1, 4), Fraction(1, 2)):
        verifier = StarvationVerifier(cfg, min_share=share)
        result = verifier.find_starvation(cand, phi=phi)
        print(f"scheduler min-share = {share}:")
        if result.verified:
            print(f"  PROVED: no admissible trace starves either flow "
                  f"({result.wall_time:.1f}s)")
        else:
            t1, t2 = result.throughputs
            print(f"  starvation trace found: throughputs "
                  f"{float(t1):.2f} vs {float(t2):.2f} "
                  f"(fair share {float(cfg.C * cfg.T / 2):.2f}) "
                  f"({result.wall_time:.1f}s)")
    print()
    print("Reading: multi-flow guarantees hinge on an explicit service-")
    print("discipline assumption — exactly the kind of constraint the")
    print("paper's assumption-synthesis agenda aims to surface.")


if __name__ == "__main__":
    main()
