#!/usr/bin/env python3
"""Explore the throughput-delay trade-off space (paper §4, "Extensions").

The paper's most interesting observation is how the *solution space*
changes with the desired thresholds: raising the utilization requirement
or tightening the delay bound shrinks the set of provably correct CCAs
until a single rule (or none) remains.  This example enumerates ALL
solutions in the small no-cwnd space at several thresholds and classifies
them.

Run:  python examples/explore_tradeoffs.py           (a few minutes)
      REPRO_FAST=1 python examples/explore_tradeoffs.py   (single sweep)
"""

import os
from fractions import Fraction

from repro.ccac import ModelConfig
from repro.core import (
    SMALL_DOMAIN,
    SynthesisQuery,
    TemplateSpec,
    enumerate_all,
    history_histogram,
    summarize,
)

FAST = bool(os.environ.get("REPRO_FAST"))


def run_point(util: Fraction, delay: Fraction) -> None:
    cfg = ModelConfig(T=7, util_thresh=util, delay_thresh=delay)
    spec = TemplateSpec(history=4, use_cwnd_history=False, coeff_domain=SMALL_DOMAIN)
    query = SynthesisQuery(spec=spec, cfg=cfg, generator="enum", find_all=True)
    result = enumerate_all(query)
    print(f"util >= {util}, delay <= {delay} RTT: "
          f"{len(result.solutions)} provably correct CCAs "
          f"({result.iterations} CEGIS iterations)")
    reports = summarize(result.solutions, cfg)
    for r in reports:
        tag = "RoCC-family" if r.rocc_family else "other"
        print(f"    {r.rule:50s} [{tag}, steady cwnd {r.steady_cwnd}]")
    if result.solutions:
        print(f"    history usage: {history_histogram(result.solutions)}")
    print()


def main() -> None:
    print("=== utilization sweep at delay <= 4 RTT ===")
    utils = [Fraction(1, 2)] if FAST else [Fraction(1, 2), Fraction(13, 20), Fraction(7, 10)]
    for u in utils:
        run_point(u, Fraction(4))
    if not FAST:
        print("=== delay sweep at util >= 50% ===")
        for d in [Fraction(8), Fraction(3)]:
            run_point(Fraction(1, 2), d)


if __name__ == "__main__":
    main()
