#!/usr/bin/env python3
"""Scheduling-domain demonstration (paper §5).

The paper argues the CEGIS methodology generalizes beyond congestion
control, naming scheduling as a domain where "it is unclear if existing
schedulers meet performance bounds".  Here the framework *proves* the
most classical scheduling guarantee — Graham's bound for greedy list
scheduling, makespan <= (2 - 1/m) * OPT — over all workloads of a given
shape, and rediscovers the tight adversarial instance just below it.

Run:  python examples/scheduling_bound.py
"""

from fractions import Fraction

from repro.sched import SchedulingConfig, SchedulingVerifier


def main() -> None:
    cfg = SchedulingConfig(n_jobs=4, n_machines=2, max_job=Fraction(4))
    verifier = SchedulingVerifier(cfg)
    graham = cfg.graham_ratio
    print(f"greedy list scheduling, {cfg.n_jobs} jobs on {cfg.n_machines} machines")
    print(f"Graham's bound: makespan <= {graham} * LB\n")

    result = verifier.verify_ratio(graham)
    print(f"rho = {graham}: {'PROVED for all workloads' if result.verified else 'refuted?!'} "
          f"({result.wall_time:.1f}s)")

    for rho in (Fraction(7, 5), Fraction(5, 4)):
        result = verifier.verify_ratio(rho)
        if result.verified:
            print(f"rho = {rho}: proved")
        else:
            w = result.witness
            sizes = ", ".join(str(s) for s in w.job_sizes)
            print(f"rho = {rho}: REFUTED — workload [{sizes}] drives greedy to "
                  f"ratio {w.ratio} (assignment {list(w.assignment)})")

    tight = verifier.tight_ratio(precision=Fraction(1, 32))
    print(f"\ntightest provable ratio for this shape: {tight} "
          f"(Graham's asymptotic constant is {graham})")


if __name__ == "__main__":
    main()
