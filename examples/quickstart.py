#!/usr/bin/env python3
"""Quickstart: synthesize a provably robust congestion-control algorithm.

Reproduces the paper's headline result in miniature: ask CCmatic for a CCA
that achieves >= 50% utilization and <= 4-RTT delay on every network trace
the CCAC model allows, and watch it rediscover a RoCC-style rule.

Run:  python examples/quickstart.py
"""

from repro.ccac import ModelConfig
from repro.cegis import PruningMode
from repro.core import (
    SynthesisQuery,
    TemplateSpec,
    SMALL_DOMAIN,
    CcacVerifier,
    classify,
    rocc,
    synthesize,
)


def main() -> None:
    # The network model: link rate C=1, propagation delay 1, jitter up to
    # one RTT, trace length 7.  Desired: util >= 50% AND delay <= 4 RTT
    # (in the induction-friendly relaxation of paper §3.1.1).
    cfg = ModelConfig(T=7)

    # Search space: the paper's "no historical cwnd, small domain" row —
    # coefficients over ack history from {-1, 0, 1}, 3^5 candidates.
    spec = TemplateSpec(history=4, use_cwnd_history=False, coeff_domain=SMALL_DOMAIN)
    print(f"search space: {spec.search_space_size} candidate CCAs")

    # First: verify the known-good RoCC rule (the paper's Eq. after §4).
    verifier = CcacVerifier(cfg)
    known = rocc()
    print(f"verifying known rule  {known.pretty()} ...")
    result = verifier.find_counterexample(known)
    print(f"  -> {'PROVED correct' if result.verified else 'refuted?!'} "
          f"({result.wall_time:.1f}s)\n")

    # Now: synthesize from scratch with range pruning + worst-case
    # counterexamples (the paper's two optimizations).
    print("synthesizing (CEGIS with range pruning + worst-case cex) ...")
    query = SynthesisQuery(
        spec=spec,
        cfg=cfg,
        pruning=PruningMode.RANGE,
        worst_case_cex=True,
        generator="enum",
    )
    outcome = synthesize(query)
    print(f"  iterations: {outcome.iterations}")
    print(f"  counterexamples: {outcome.counterexamples}")
    print(f"  wall time: {outcome.wall_time:.1f}s")
    if not outcome.found:
        print("  no solution found (unexpected at these thresholds)")
        return
    report = classify(outcome.first, cfg)
    print(f"  synthesized: {report.rule}")
    print(f"  RoCC family: {report.rocc_family}, "
          f"history used: {report.history_used} RTTs, "
          f"steady-state cwnd: {report.steady_cwnd} BDP")


if __name__ == "__main__":
    main()
