#!/usr/bin/env python3
"""Assumption synthesis and differential comparison (paper §2, §4.1).

Instead of individual counterexample traces, CCmatic can produce
human-interpretable *assumptions*: logical constraints on the environment
under which a CCA is guaranteed to meet its objectives.  This example

1. synthesizes the weakest sufficient waste-budget assumption for the
   fragile one-BDP constant window and for RoCC, and
2. runs the differential-comparison query between them ("what extra
   network constraints does CCA B need where CCA A already works?").

Run:  python examples/assumption_analysis.py
"""

from fractions import Fraction

from repro.ccac import ModelConfig
from repro.core import (
    constant_cwnd,
    differential_comparison,
    per_step_waste_budget,
    rocc,
    total_waste_budget,
    weakest_sufficient_assumption,
)


def main() -> None:
    cfg = ModelConfig(T=7)
    fragile = constant_cwnd(Fraction(1))
    robust = rocc()

    print("Query: 'exists assumption s.t. for all traces satisfying it,")
    print("the CCA achieves util >= 50% AND delay <= 4 RTT'\n")

    for template_maker in (total_waste_budget, per_step_waste_budget):
        template = template_maker(cfg)
        print(f"assumption family: {template.name}")
        for cand in (fragile, robust):
            res = weakest_sufficient_assumption(cand, cfg, template)
            verdict = res.assumption if res.found else "none sufficient in family"
            print(f"  {cand.pretty():45s} -> {verdict} "
                  f"({res.probes} probes, {res.wall_time:.1f}s)")
        print()

    print("differential comparison (paper §2):")
    diff = differential_comparison(robust, fragile, cfg, total_waste_budget(cfg))
    print(f"  A = {robust.pretty()}")
    print(f"  B = {fragile.pretty()}")
    print(f"  -> {diff.verdict}")


if __name__ == "__main__":
    main()
