"""The performance engine: parallelism, incrementality, and caching.

This package is the "runs as fast as the hardware allows" layer on top
of the CEGIS + SMT stack.  Three independent multipliers compose:

* **Portfolio parallelism** (:mod:`~repro.engine.portfolio`) — a batch
  of candidate CCAs is verified concurrently in isolated worker
  processes; the first conclusive verdict (counterexample or proof)
  wins the round and the losers are cancelled.  Enabled with
  ``SynthesisQuery(jobs=N)`` / ``ccmatic synthesize --jobs N``.
* **Incremental sessions** (:class:`repro.smt.SolverSession`) — the
  verifier keeps one long-lived session holding the candidate-
  independent CCAC encoding and push/pops only the per-candidate
  assertions; CNF conversion, theory atoms, and learned clauses are all
  amortized across candidates (``CcacVerifier(incremental=True)``).
* **Query caching** (:mod:`~repro.engine.cache`) — conclusive verdicts
  are content-addressed by the canonical hash of the assertion set, so
  repeated subqueries (common under range pruning and binary-search
  optimization) are answered without a solve; an on-disk layer
  (``--cache-dir``) is shared across runs and worker processes.

Observability: cache traffic is exported as ``engine.cache.*`` counters,
portfolio activity as ``engine.portfolio.*`` counters and
``engine.portfolio.round`` trace events.
"""

from ..smt.session import SessionStats, SolverSession
from .cache import CACHE_VERSION, QueryCache
from .portfolio import PortfolioOutcome, PortfolioVerifier, run_portfolio

__all__ = [
    "CACHE_VERSION",
    "PortfolioOutcome",
    "PortfolioVerifier",
    "QueryCache",
    "SessionStats",
    "SolverSession",
    "run_portfolio",
]
