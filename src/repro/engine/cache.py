"""Content-addressed SMT query cache.

Queries are keyed by the canonical hash of their assertion set
(:func:`repro.smt.terms.canonical_hash`): term interning plus
commutative-argument normalization make the key independent of assertion
order and term construction order, and — because it is built from names
and values rather than object identities — independent of the process
that computed it.  Repeated generator/verifier subqueries, which are
common under range pruning (closely related certificate queries differ
only in a few bounds), are answered without a solve.

Two layers:

* an in-memory table (bounded, FIFO eviction) for hits within a run;
* an optional on-disk layer (``cache_dir``; one JSON file per key,
  written atomically) shared across runs *and across portfolio worker
  processes* — workers populate it concurrently and later candidates
  benefit.

Only conclusive verdicts are stored.  ``sat`` entries carry the full
variable assignment so the model can be reconstructed (variables are
interned by name, so ``Real(name)``/``Bool(name)`` recover the exact
term keys); a reconstructed model goes through the same independent
validation (:mod:`repro.runtime.validate`) as a freshly solved one, so a
corrupt cache entry surfaces as a :class:`SoundnessError`, never as a
silently wrong verdict.  ``unknown`` is never cached — it describes a
budget, not the formula.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from fractions import Fraction
from typing import Optional

from ..chaos.faults import chaos_point
from ..chaos.supervisor import quarantine_file
from ..obs import metrics
from ..smt.solver import Model, Result, sat, unsat
from ..smt.terms import Bool, Real

#: bump when the canonical serialization or the entry format changes;
#: part of every key so stale disk entries can never be misread.
#: v2: keys hash the *post-compile* assertion form (the simplified,
#: atom-canonicalized formulas from :mod:`repro.smt.compile`), not the
#: raw assertion set — see ``SolverSession.check``.
CACHE_VERSION = 2

#: persisted cumulative counters for a shared cache directory; cheap to
#: read (one small JSON file, no directory walk) so a long-running
#: service can answer ``/cache/stats`` without touching the entries
STATS_FILE = "cache-stats.json"

#: flush pending counter deltas at most every N lookup/store operations
#: (every store also flushes — a store already pays for disk IO)
_STATS_FLUSH_EVERY = 64


def read_persisted_stats(cache_dir: str) -> dict:
    """Read the cumulative counter file for ``cache_dir`` (never raises).

    Counters are aggregated across every process that ever used the
    directory.  They are *approximate* under concurrent writers — the
    read-modify-write below is not locked, so two processes flushing at
    the same instant can lose one delta — which is the documented price
    for keeping the hot path free of locks; the counters inform
    operators, never verdicts.
    """
    try:
        with open(
            os.path.join(cache_dir, STATS_FILE), "r", encoding="utf-8"
        ) as f:
            data = json.load(f)
    except (OSError, ValueError):
        return {}
    return data if isinstance(data, dict) else {}


def _encode_model(model: Model) -> dict:
    bools, reals = model.assignment()
    return {
        "bools": {t.name: bool(v) for t, v in bools.items() if t.name},
        "reals": {t.name: str(v) for t, v in reals.items() if t.name},
    }


def _decode_model(data: dict) -> Model:
    bools = {Bool(name): bool(v) for name, v in data.get("bools", {}).items()}
    reals = {Real(name): Fraction(v) for name, v in data.get("reals", {}).items()}
    return Model(bools, reals)


class QueryCache:
    """In-memory + optional on-disk cache of conclusive SMT verdicts.

    Satisfies the :class:`repro.smt.session.QueryCacheProtocol`; plug it
    into a :class:`~repro.smt.session.SolverSession` (or a
    :class:`~repro.core.verifier.CcacVerifier` via ``cache=``).
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        max_entries: int = 4096,
        max_disk_mb: Optional[float] = None,
    ):
        self.cache_dir = cache_dir
        self.max_entries = max_entries
        #: on-disk size cap; when the directory grows past it the least
        #: recently *used* entries (mtime — refreshed on every disk hit)
        #: are deleted down to 90% of the cap
        self.max_disk_mb = max_disk_mb
        self._mem: OrderedDict[str, tuple[Result, Optional[Model]]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.evictions = 0
        self._pending = {"hits": 0, "misses": 0, "disk_hits": 0,
                         "stores": 0, "bytes": 0, "evictions": 0}
        self._ops_since_flush = 0
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)

    def __len__(self) -> int:
        return len(self._mem)

    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"q{CACHE_VERSION}-{key}.json")

    def lookup(self, key: str) -> Optional[tuple[Result, Optional[Model]]]:
        """Stored ``(result, model)`` for ``key``, or None on a miss."""
        entry = self._mem.get(key)
        if entry is not None:
            self.hits += 1
            self._count("hits")
            return entry
        if self.cache_dir:
            entry = self._read_disk(key)
            if entry is not None:
                self.hits += 1
                self.disk_hits += 1
                self._count("hits")
                self._count("disk_hits")
                metrics().counter("engine.cache.disk_hits").inc()
                self._remember(key, entry)
                return entry
        self.misses += 1
        self._count("misses")
        return None

    def store(self, key: str, result: Result, model: Optional[Model]) -> None:
        """Record a conclusive verdict (callers must not pass unknown)."""
        if result is not sat and result is not unsat:
            raise ValueError(f"only conclusive verdicts are cacheable: {result}")
        self._remember(key, (result, model))
        if self.cache_dir:
            self._write_disk(key, result, model)
            self._maybe_evict()
            self._flush_stats()

    def _remember(self, key: str, entry: tuple[Result, Optional[Model]]) -> None:
        self._mem[key] = entry
        self._mem.move_to_end(key)
        while len(self._mem) > self.max_entries:
            self._mem.popitem(last=False)

    # -- disk layer ----------------------------------------------------------

    def _read_disk(self, key: str) -> Optional[tuple[Result, Optional[Model]]]:
        path = self._path(key)
        chaos_point("cache.read", path=path)
        try:
            with open(path, "r", encoding="utf-8") as f:
                data = json.load(f)
        except OSError:
            return None  # no entry (or unreadable file): a plain miss
        except ValueError as exc:
            self._quarantine(path, f"invalid JSON: {exc}")
            return None
        try:
            result = Result(data["result"])
            model = _decode_model(data["model"]) if data.get("model") else None
        except (ValueError, KeyError, TypeError, AttributeError) as exc:
            self._quarantine(path, f"malformed entry: {exc}")
            return None
        if result is sat and model is None:
            return None  # sat without a model is useless to callers
        try:
            os.utime(path)  # mark recently-used for LRU eviction
        except OSError:
            pass
        return result, model

    def _quarantine(self, path: str, reason: str) -> None:
        """Move a corrupt entry aside (never an exception, never a retry)."""
        metrics().counter("engine.cache.quarantined").inc()
        quarantine_file(
            path, os.path.join(self.cache_dir, "quarantine"), reason
        )

    def _write_disk(self, key: str, result: Result, model: Optional[Model]) -> None:
        payload = {
            "version": CACHE_VERSION,
            "result": result.value,
            "model": _encode_model(model) if model is not None else None,
        }
        path = self._path(key)
        try:
            # atomic publish: concurrent portfolio workers may race on the
            # same key; rename is atomic so readers see old-or-new, never torn
            blob = json.dumps(payload)
            fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                f.write(blob)
            chaos_point("cache.write", path=tmp)
            os.replace(tmp, path)
            self._pending["stores"] += 1
            self._pending["bytes"] += len(blob)
        except OSError:
            pass  # cache write failure is never an error

    # -- persisted stats + eviction ------------------------------------------

    def _count(self, name: str) -> None:
        self._pending[name] += 1
        self._ops_since_flush += 1
        if self.cache_dir and self._ops_since_flush >= _STATS_FLUSH_EVERY:
            self._flush_stats()

    def _flush_stats(self) -> None:
        """Fold pending deltas into the on-disk counter file, atomically.

        Read-modify-write without a lock: concurrent flushers can lose
        one another's delta (documented in :func:`read_persisted_stats`);
        the write itself is ``os.replace`` so the file is never torn.
        """
        if not self.cache_dir or not any(self._pending.values()):
            self._ops_since_flush = 0
            return
        totals = read_persisted_stats(self.cache_dir)
        for name, delta in self._pending.items():
            if delta:
                totals[name] = int(totals.get(name, 0)) + delta
            self._pending[name] = 0
        self._ops_since_flush = 0
        try:
            fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(totals, f)
            os.replace(tmp, os.path.join(self.cache_dir, STATS_FILE))
        except OSError:
            pass  # stats are advisory

    def _entry_files(self) -> list[tuple[float, int, str]]:
        """(mtime, size, path) for every cache entry on disk."""
        out = []
        prefix = f"q{CACHE_VERSION}-"
        try:
            names = os.listdir(self.cache_dir)
        except OSError:
            return out
        for name in names:
            if not (name.startswith(prefix) and name.endswith(".json")):
                continue
            path = os.path.join(self.cache_dir, name)
            try:
                st = os.stat(path)
            except OSError:
                continue
            out.append((st.st_mtime, st.st_size, path))
        return out

    def disk_usage(self) -> dict:
        """Actual on-disk entry count and byte total (walks the dir)."""
        files = self._entry_files()
        return {"disk_entries": len(files), "disk_bytes": sum(s for _, s, _ in files)}

    def _maybe_evict(self) -> None:
        """Enforce ``max_disk_mb`` by deleting least-recently-used entries.

        The persisted byte counter is the cheap over-approximation that
        *triggers* a check; the walk inside :meth:`_evict_lru` is the
        ground truth that decides what (if anything) to delete.
        """
        if not self.cache_dir or self.max_disk_mb is None:
            return
        cap = self.max_disk_mb * 1024 * 1024
        approx = read_persisted_stats(self.cache_dir).get("bytes", 0)
        approx += self._pending["bytes"]
        if approx <= cap:
            return
        self._evict_lru(cap)

    def _evict_lru(self, cap_bytes: float) -> None:
        files = sorted(self._entry_files())  # oldest mtime first
        total = sum(size for _, size, _ in files)
        target = cap_bytes * 0.9
        evicted = 0
        for _, size, path in files:
            if total <= target:
                break
            try:
                os.remove(path)
            except OSError:
                continue
            total -= size
            evicted += 1
        if evicted:
            self.evictions += evicted
            self._pending["evictions"] += evicted
            metrics().counter("engine.cache.evictions").inc(evicted)
        # resync the approximate byte counter with reality
        totals = read_persisted_stats(self.cache_dir)
        totals["bytes"] = int(total)
        totals["evictions"] = int(totals.get("evictions", 0)) + evicted
        self._pending["evictions"] = 0
        self._pending["bytes"] = 0
        try:
            fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(totals, f)
            os.replace(tmp, os.path.join(self.cache_dir, STATS_FILE))
        except OSError:
            pass

    def stats(self) -> dict:
        """This instance's counters (also exported via repro.obs metrics).

        ``persisted`` aggregates every process that shares ``cache_dir``
        (from the cheap counter file — no directory walk).
        """
        self._flush_stats()
        out = {
            "entries": len(self._mem),
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "evictions": self.evictions,
        }
        if self.cache_dir:
            out["persisted"] = read_persisted_stats(self.cache_dir)
        return out
