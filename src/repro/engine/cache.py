"""Content-addressed SMT query cache.

Queries are keyed by the canonical hash of their assertion set
(:func:`repro.smt.terms.canonical_hash`): term interning plus
commutative-argument normalization make the key independent of assertion
order and term construction order, and — because it is built from names
and values rather than object identities — independent of the process
that computed it.  Repeated generator/verifier subqueries, which are
common under range pruning (closely related certificate queries differ
only in a few bounds), are answered without a solve.

Two layers:

* an in-memory table (bounded, FIFO eviction) for hits within a run;
* an optional on-disk layer (``cache_dir``; one JSON file per key,
  written atomically) shared across runs *and across portfolio worker
  processes* — workers populate it concurrently and later candidates
  benefit.

Only conclusive verdicts are stored.  ``sat`` entries carry the full
variable assignment so the model can be reconstructed (variables are
interned by name, so ``Real(name)``/``Bool(name)`` recover the exact
term keys); a reconstructed model goes through the same independent
validation (:mod:`repro.runtime.validate`) as a freshly solved one, so a
corrupt cache entry surfaces as a :class:`SoundnessError`, never as a
silently wrong verdict.  ``unknown`` is never cached — it describes a
budget, not the formula.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from fractions import Fraction
from typing import Optional

from ..chaos.faults import chaos_point
from ..chaos.supervisor import quarantine_file
from ..obs import metrics
from ..smt.solver import Model, Result, sat, unsat
from ..smt.terms import Bool, Real

#: bump when the canonical serialization or the entry format changes;
#: part of every key so stale disk entries can never be misread.
#: v2: keys hash the *post-compile* assertion form (the simplified,
#: atom-canonicalized formulas from :mod:`repro.smt.compile`), not the
#: raw assertion set — see ``SolverSession.check``.
CACHE_VERSION = 2


def _encode_model(model: Model) -> dict:
    bools, reals = model.assignment()
    return {
        "bools": {t.name: bool(v) for t, v in bools.items() if t.name},
        "reals": {t.name: str(v) for t, v in reals.items() if t.name},
    }


def _decode_model(data: dict) -> Model:
    bools = {Bool(name): bool(v) for name, v in data.get("bools", {}).items()}
    reals = {Real(name): Fraction(v) for name, v in data.get("reals", {}).items()}
    return Model(bools, reals)


class QueryCache:
    """In-memory + optional on-disk cache of conclusive SMT verdicts.

    Satisfies the :class:`repro.smt.session.QueryCacheProtocol`; plug it
    into a :class:`~repro.smt.session.SolverSession` (or a
    :class:`~repro.core.verifier.CcacVerifier` via ``cache=``).
    """

    def __init__(self, cache_dir: Optional[str] = None, max_entries: int = 4096):
        self.cache_dir = cache_dir
        self.max_entries = max_entries
        self._mem: OrderedDict[str, tuple[Result, Optional[Model]]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)

    def __len__(self) -> int:
        return len(self._mem)

    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"q{CACHE_VERSION}-{key}.json")

    def lookup(self, key: str) -> Optional[tuple[Result, Optional[Model]]]:
        """Stored ``(result, model)`` for ``key``, or None on a miss."""
        entry = self._mem.get(key)
        if entry is not None:
            self.hits += 1
            return entry
        if self.cache_dir:
            entry = self._read_disk(key)
            if entry is not None:
                self.hits += 1
                self.disk_hits += 1
                metrics().counter("engine.cache.disk_hits").inc()
                self._remember(key, entry)
                return entry
        self.misses += 1
        return None

    def store(self, key: str, result: Result, model: Optional[Model]) -> None:
        """Record a conclusive verdict (callers must not pass unknown)."""
        if result is not sat and result is not unsat:
            raise ValueError(f"only conclusive verdicts are cacheable: {result}")
        self._remember(key, (result, model))
        if self.cache_dir:
            self._write_disk(key, result, model)

    def _remember(self, key: str, entry: tuple[Result, Optional[Model]]) -> None:
        self._mem[key] = entry
        self._mem.move_to_end(key)
        while len(self._mem) > self.max_entries:
            self._mem.popitem(last=False)

    # -- disk layer ----------------------------------------------------------

    def _read_disk(self, key: str) -> Optional[tuple[Result, Optional[Model]]]:
        path = self._path(key)
        chaos_point("cache.read", path=path)
        try:
            with open(path, "r", encoding="utf-8") as f:
                data = json.load(f)
        except OSError:
            return None  # no entry (or unreadable file): a plain miss
        except ValueError as exc:
            self._quarantine(path, f"invalid JSON: {exc}")
            return None
        try:
            result = Result(data["result"])
            model = _decode_model(data["model"]) if data.get("model") else None
        except (ValueError, KeyError, TypeError, AttributeError) as exc:
            self._quarantine(path, f"malformed entry: {exc}")
            return None
        if result is sat and model is None:
            return None  # sat without a model is useless to callers
        return result, model

    def _quarantine(self, path: str, reason: str) -> None:
        """Move a corrupt entry aside (never an exception, never a retry)."""
        metrics().counter("engine.cache.quarantined").inc()
        quarantine_file(
            path, os.path.join(self.cache_dir, "quarantine"), reason
        )

    def _write_disk(self, key: str, result: Result, model: Optional[Model]) -> None:
        payload = {
            "version": CACHE_VERSION,
            "result": result.value,
            "model": _encode_model(model) if model is not None else None,
        }
        path = self._path(key)
        try:
            # atomic publish: concurrent portfolio workers may race on the
            # same key; rename is atomic so readers see old-or-new, never torn
            fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(payload, f)
            chaos_point("cache.write", path=tmp)
            os.replace(tmp, path)
        except OSError:
            pass  # cache write failure is never an error

    def stats(self) -> dict:
        """Hit/miss counters (also exported via repro.obs metrics)."""
        return {
            "entries": len(self._mem),
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
        }
