"""Parallel portfolio verification: many candidates, first verdict wins.

The CEGIS loop spends nearly all wall-clock time inside verifier SMT
checks, and a single check pins one core.  A *portfolio* round evaluates
several candidate CCAs concurrently in isolated worker processes
(reusing the :mod:`repro.runtime.workers` spawn/cap machinery) and
cancels the losers the moment one worker returns a *conclusive* result —
a counterexample to feed the generator, or a verified candidate.  This
is the CC-Fuzz observation (Ray & Seshan 2022) applied to synthesis:
stress-search over CCA behaviours scales near-linearly with workers
because any one discovered trace advances the loop.

Cancellation is safe for soundness: a cancelled worker's verdict is
simply never used, and candidates whose verification was cancelled stay
in the generator's space to be re-proposed later.  A
:class:`SoundnessError` raised in *any* worker — even one about to be
cancelled — aborts the whole round and propagates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction
from multiprocessing.connection import wait as _wait_connections
from typing import Any, Callable, Optional, Sequence

from ..obs import DEBUG, metrics, tracer
from ..obs.flight import dump_flight
from ..obs.relay import TraceContext, drain_telemetry, merge_frame
from ..runtime.errors import SoundnessError, WorkerError
from ..runtime.workers import WorkerLimits, WorkerReport, reap_worker, spawn_worker

__all__ = ["PortfolioOutcome", "PortfolioVerifier", "run_portfolio"]


@dataclass
class PortfolioOutcome:
    """Result of one portfolio race."""

    #: index of the task whose result won the race (None: nobody accepted)
    winner: Optional[int]
    #: the winning result (None when winner is None)
    result: Any
    #: indices of tasks cancelled while still running
    cancelled: list[int]
    #: per-index reports for tasks that finished on their own
    reports: dict[int, WorkerReport] = field(default_factory=dict)
    wall_time: float = 0.0
    #: telemetry frames received per task index (merged by run_portfolio;
    #: kept for callers that want per-worker attribution)
    telemetry: dict[int, list] = field(default_factory=dict)


def run_portfolio(
    tasks: Sequence[tuple],
    *,
    accept: Optional[Callable[[Any], bool]] = None,
    wall_time: Optional[float] = None,
    memory_mb: Optional[int] = None,
    kill_grace: float = 1.0,
) -> PortfolioOutcome:
    """Race ``tasks`` (``(fn, args)`` or ``(fn, args, kwargs)`` tuples)
    in parallel isolated workers; first accepted result wins.

    ``accept(result)`` decides whether a completed result ends the race
    (default: any ok result does).  Losers are terminated immediately —
    SIGTERM, then SIGKILL after ``kill_grace`` — and *joined* before
    returning, so no zombie workers outlive the call.  ``wall_time``
    bounds the whole race; on expiry every still-running worker is
    killed and reported with status ``timeout``.

    Raises :class:`SoundnessError` if any worker reports one (soundness
    is never racy), and :class:`WorkerError` if every task errored.
    """
    accept = accept or (lambda _result: True)
    tr = tracer()
    start = time.perf_counter()
    deadline = None if wall_time is None else start + wall_time
    workers: dict[int, tuple] = {}  # index -> (proc, conn)
    outcome = PortfolioOutcome(winner=None, result=None, cancelled=[])
    with tr.span("engine.portfolio.race", size=len(tasks)) as race:
        anchor = getattr(race, "span_id", None)
        anchor_depth = getattr(race, "depth", 0)
        try:
            for i, task in enumerate(tasks):
                fn, args = task[0], task[1]
                kwargs = task[2] if len(task) > 2 else None
                workers[i] = spawn_worker(
                    fn, args, kwargs, memory_mb,
                    trace_ctx=TraceContext(
                        trace_id=tr.trace_id,
                        parent_span=anchor,
                        worker_id=f"w{i}",
                    ),
                )
            pending = dict(workers)
            while pending and outcome.winner is None:
                timeout = None
                if deadline is not None:
                    timeout = deadline - time.perf_counter()
                    if timeout <= 0:
                        break
                conns = {conn: i for i, (_p, conn) in pending.items()}
                ready = _wait_connections(list(conns), timeout=timeout)
                if not ready:
                    break  # race-level timeout
                for conn in ready:
                    i = conns[conn]
                    proc, _ = pending[i]
                    try:
                        msg = conn.recv()
                    except (EOFError, OSError):
                        msg = ("crash", f"worker died with exit code {proc.exitcode}")
                    if (
                        isinstance(msg, tuple) and len(msg) == 2
                        and msg[0] == "telemetry"
                    ):
                        # the final status message follows on this pipe;
                        # leave the worker pending until it arrives
                        outcome.telemetry.setdefault(i, []).append(msg[1])
                        continue
                    pending.pop(i)
                    status, payload = msg
                    if status == "soundness":
                        # merge what already arrived so the black box
                        # carries the offending worker's final spans
                        for frames in outcome.telemetry.values():
                            for frame in frames:
                                merge_frame(
                                    frame, anchor_span=anchor,
                                    anchor_depth=anchor_depth,
                                )
                        outcome.telemetry.clear()
                        dump_flight("soundness")
                        raise SoundnessError(payload)
                    if status == "ok":
                        report = WorkerReport(
                            status="ok", result=payload,
                            wall_time=time.perf_counter() - start,
                        )
                        outcome.reports[i] = report
                        if accept(payload):
                            outcome.winner = i
                            outcome.result = payload
                            break
                    else:
                        outcome.reports[i] = WorkerReport(
                            status=status, detail=str(payload),
                            wall_time=time.perf_counter() - start,
                        )
            # anything still pending lost the race (or hit the deadline);
            # a loser that finished just after the winner may have its
            # telemetry sitting in the pipe — keep it, drop its verdict
            for i, (proc, conn) in pending.items():
                drain_telemetry(conn, outcome.telemetry.setdefault(i, []))
                if not outcome.telemetry[i]:
                    del outcome.telemetry[i]
                if outcome.winner is not None:
                    outcome.cancelled.append(i)
                else:
                    outcome.reports[i] = WorkerReport(
                        status="timeout",
                        detail=f"portfolio race exceeded {wall_time:.1f}s" if wall_time else "timeout",
                    )
        finally:
            for proc, conn in workers.values():
                reap_worker(proc, conn, kill_grace)
        for i, frames in sorted(outcome.telemetry.items()):
            for frame in frames:
                merge_frame(frame, anchor_span=anchor, anchor_depth=anchor_depth)
        race.set(
            winner=outcome.winner,
            relayed=sum(len(f) for f in outcome.telemetry.values()),
        )
    outcome.cancelled.sort()
    outcome.wall_time = time.perf_counter() - start
    if outcome.winner is None and outcome.reports and all(
        r.status == "error" for r in outcome.reports.values()
    ):
        raise WorkerError(
            "; ".join(r.detail for r in outcome.reports.values())
        )
    return outcome


# -- the portfolio CCAC verifier ---------------------------------------------


def _verify_candidate_task(
    cfg, precision, candidate, worst_case, time_limit, validate, cache_dir,
    certify=False, environments=None,
):
    """Runs inside a worker: one fresh verifier, one candidate.

    ``cache_dir`` (when set) plugs a shared on-disk
    :class:`~repro.engine.cache.QueryCache` into the verifier, so
    concurrent workers pool their conclusive subquery verdicts.
    ``certify`` makes the worker's verifier proof-producing; the result
    carries a picklable certificate summary back across the pipe.
    ``environments`` restricts the worker to one cell of the environment
    matrix (the parent races the full candidates × environments grid and
    aggregates per-environment verdicts).
    """
    from ..core.verifier import CcacVerifier
    from .cache import QueryCache

    cache = QueryCache(cache_dir) if cache_dir else None
    verifier = CcacVerifier(
        cfg, wce_precision=precision, validate=validate, cache=cache,
        certify=certify, environments=environments,
    )
    deadline = None if time_limit is None else time.perf_counter() + time_limit
    return verifier.find_counterexample(
        candidate, worst_case=worst_case, deadline=deadline
    )


#: per-process warm state for pooled workers: one incremental verifier,
#: keyed by its full configuration.  Lives in the *pool child* process
#: (the task fn is pickled by reference, so this global is the child's
#: own copy) and is what amortizes base-network encoding, compile work
#: and learned clauses across the batches a persistent worker serves.
_WORKER_STATE: dict = {}


def _pooled_verify_candidate_task(
    cfg, precision, candidate, worst_case, time_limit, validate, cache_dir,
    certify=False, environments=None,
):
    """Runs inside a *persistent* pool worker: warm verifier, one candidate.

    Unlike :func:`_verify_candidate_task` (fresh process, fresh verifier)
    this keeps one incremental :class:`~repro.core.verifier.CcacVerifier`
    alive in ``_WORKER_STATE`` across tasks — the base CCAC encoding is
    asserted once and candidates come and go in push/pop scopes, learned
    clauses carrying over.  Soundness: any abnormal exit (cancellation
    via ``TaskCancelled``, solver crash, ``SoundnessError``) drops the
    warm verifier before re-raising, so a session that might be stuck
    mid-scope is never reused; the independent model validator checks
    each verdict regardless.
    """
    import json as _json

    from ..core.verifier import CcacVerifier
    from ..runtime.serialize import encode_config
    from .cache import QueryCache

    key = (
        _json.dumps(encode_config(cfg), sort_keys=True),
        str(precision),
        bool(validate),
        str(cache_dir or ""),
        bool(certify),
        tuple(env.key() for env in environments) if environments else None,
    )
    verifier = _WORKER_STATE.get(key)
    if verifier is None:
        cache = QueryCache(cache_dir) if cache_dir else None
        verifier = CcacVerifier(
            cfg, wce_precision=precision, validate=validate, cache=cache,
            certify=certify, incremental=True, environments=environments,
        )
        # bounded: at most one warm verifier per environment cell (the
        # grid dispatch hands each worker a single-environment task, so
        # a worker serving mixed cells keeps one session per cell warm
        # instead of rebuilding the base encoding on every alternation)
        if len(_WORKER_STATE) >= 8:
            _WORKER_STATE.clear()
        _WORKER_STATE[key] = verifier
    deadline = None if time_limit is None else time.perf_counter() + time_limit
    try:
        return verifier.find_counterexample(
            candidate, worst_case=worst_case, deadline=deadline
        )
    except BaseException:
        _WORKER_STATE.pop(key, None)
        raise


def _conclusive(result) -> bool:
    """Does this verification result advance the CEGIS loop?"""
    return bool(
        getattr(result, "verified", False)
        or getattr(result, "counterexample", None) is not None
    )


class PortfolioVerifier:
    """Batch-capable verifier racing candidates across worker processes.

    Implements both :class:`repro.cegis.interfaces.Verifier` (single
    candidate, one isolated worker) and
    :class:`repro.cegis.interfaces.BatchVerifier`
    (:meth:`verify_batch`: race a batch, first conclusive verdict wins,
    losers cancelled).  ``cache_dir`` gives every worker a shared
    on-disk query cache.

    ``pool`` (duck-typed: anything with
    ``run_batch(tasks, accept=, wall_time=)`` returning a
    :class:`PortfolioOutcome`, normally a
    :class:`repro.service.pool.WorkerPool`) switches dispatch from
    fork-per-batch to the persistent pool: tasks use
    :func:`_pooled_verify_candidate_task`, whose warm incremental
    verifier amortizes encoding/compile/learned-clause work across
    batches.  The pool's lifecycle belongs to the caller — this class
    never starts or shuts it down.
    """

    def __init__(
        self,
        cfg,
        jobs: int = 2,
        wce_precision: Fraction = Fraction(1, 8),
        limits: WorkerLimits = WorkerLimits(),
        validate: bool = True,
        cache_dir: Optional[str] = None,
        certify: bool = False,
        pool=None,
        environments=None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1 (got {jobs})")
        self.cfg = cfg
        self.jobs = jobs
        self.wce_precision = Fraction(wce_precision)
        self.limits = limits
        self.validate = validate
        self.cache_dir = cache_dir
        self.certify = certify
        self.pool = pool
        self.environments = (
            tuple(environments) if environments is not None else None
        )
        self.calls = 0
        self.rounds = 0
        self.cancelled = 0
        self.total_time = 0.0
        self.degradations: list[dict] = []

    def _task(
        self, candidate, worst_case: bool, budget: Optional[float], env=None
    ):
        return (
            _pooled_verify_candidate_task if self.pool is not None
            else _verify_candidate_task,
            (
                self.cfg,
                self.wce_precision,
                candidate,
                worst_case,
                budget,
                self.validate,
                self.cache_dir,
                self.certify,
                [env] if env is not None else None,
            ),
        )

    def _budget(self, deadline: Optional[float]) -> tuple[Optional[float], Optional[float]]:
        """(soft in-worker budget, hard watchdog) for one round."""
        budget = self.limits.wall_time
        if deadline is not None:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                return None, None
            budget = min(budget, remaining)
        watchdog = budget * 1.25 + self.limits.kill_grace
        return budget, watchdog

    def verify_batch(self, candidates, worst_case: bool = False, deadline=None):
        """Race ``candidates``; returns a
        :class:`repro.cegis.interfaces.BatchVerdict`.

        The verdict's winner is the first worker to return a conclusive
        result (counterexample found or candidate verified); the rest
        are cancelled and their candidates stay un-judged.  When no
        worker is conclusive (all unknown / killed / expired) the
        verdict has ``winner=None`` and a degraded unknown result.

        With an environment matrix the race runs over the
        candidates × environments grid (one single-environment worker
        per cell, candidate-major).  Any cell's *counterexample* wins
        immediately — it prunes the shared generator under its own
        environment's semantics.  A *verified* cell only counts toward
        its candidate: the race ends on the first candidate whose every
        environment returned UNSAT, and the verdict aggregates the
        per-environment results (a candidate is never declared verified
        on a subset of the matrix).
        """
        from ..cegis.interfaces import BatchVerdict
        from ..core.verifier import VerificationResult

        start = time.perf_counter()
        candidates = list(candidates)
        self.rounds += 1
        self.calls += len(candidates)
        budget, watchdog = self._budget(deadline)
        tr = tracer()
        envs = self.environments
        n_envs = len(envs) if envs else 1
        if envs:
            tasks = [
                self._task(c, worst_case, budget, env)
                for c in candidates
                for env in envs
            ]
            # aggregation state lives in the parent (accept runs there):
            # candidate key -> per-environment verified results seen so far
            verified_runs: dict = {}

            def accept(result):
                if getattr(result, "counterexample", None) is not None:
                    return True
                if getattr(result, "verified", False):
                    bucket = verified_runs.setdefault(
                        result.candidate.key(), []
                    )
                    bucket.append(result)
                    return len(bucket) == n_envs
                return False
        else:
            tasks = [self._task(c, worst_case, budget) for c in candidates]
            accept = _conclusive
        if budget is None:
            outcome = PortfolioOutcome(winner=None, result=None, cancelled=[])
        elif self.pool is not None:
            outcome = self.pool.run_batch(
                tasks, accept=accept, wall_time=watchdog,
            )
        else:
            outcome = run_portfolio(
                tasks,
                accept=accept,
                wall_time=watchdog,
                memory_mb=self.limits.memory_mb,
                kill_grace=self.limits.kill_grace,
            )
        self.cancelled += len(outcome.cancelled)
        self.total_time += time.perf_counter() - start
        reg = metrics()
        reg.counter("engine.portfolio.rounds").inc()
        reg.counter("engine.portfolio.launched").inc(len(candidates))
        reg.counter("engine.portfolio.cancelled").inc(len(outcome.cancelled))
        for report in outcome.reports.values():
            if report.status not in ("ok",):
                self.degradations.append(
                    {
                        "kind": "portfolio_worker_lost",
                        "status": report.status,
                        "detail": report.detail,
                    }
                )
                reg.counter("runtime.worker_kills").inc()
        if tr.enabled:
            tr.event(
                "engine.portfolio.round",
                level=DEBUG,
                size=len(candidates),
                winner=outcome.winner,
                cancelled=len(outcome.cancelled),
                wall_time=round(outcome.wall_time, 4),
            )
        if outcome.winner is not None:
            result = outcome.result
            winner = outcome.winner
            if envs:
                # grid indices are candidate-major; translate back to the
                # batch index the CEGIS loop addresses candidates by
                winner = outcome.winner // n_envs
                if getattr(result, "verified", False):
                    runs = verified_runs.get(
                        result.candidate.key(), [result]
                    )
                    certified = len(runs) == n_envs and all(
                        r.certified for r in runs
                    )
                    result = VerificationResult(
                        candidate=result.candidate,
                        verified=True,
                        counterexample=None,
                        wall_time=max(r.wall_time for r in runs),
                        solver_checks=sum(r.solver_checks for r in runs),
                        certified=certified,
                        certificate=(
                            tuple(r.certificate for r in runs)
                            if certified else None
                        ),
                    )
            return BatchVerdict(
                winner=winner,
                result=result,
                launched=len(candidates),
                cancelled=len(outcome.cancelled),
            )
        # nobody conclusive: honest degraded unknown for the first candidate
        if outcome.reports and all(
            r.status in ("timeout", "oom", "crash")
            for r in outcome.reports.values()
        ):
            # the entire round was killed — preserve the black box
            dump_flight("portfolio-lost")
        result = VerificationResult(
            candidate=candidates[0],
            verified=False,
            counterexample=None,
            wall_time=outcome.wall_time,
            solver_checks=0,
            unknown=True,
            degraded=True,
        )
        return BatchVerdict(
            winner=None,
            result=result,
            launched=len(candidates),
            cancelled=len(outcome.cancelled),
        )

    def find_counterexample(self, candidate, worst_case: bool = False, deadline=None):
        """Single-candidate path (a batch of one, same isolation)."""
        verdict = self.verify_batch([candidate], worst_case=worst_case, deadline=deadline)
        return verdict.result

    def verify(self, candidate) -> bool:
        """Convenience wrapper mirroring :meth:`CcacVerifier.verify`."""
        return self.find_counterexample(candidate).verified
