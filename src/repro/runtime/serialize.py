"""Exact JSON serialization of CEGIS state (Fractions survive round-trips).

Checkpoints must reproduce solver-visible state *bit-for-bit*: a
counterexample trace that comes back as a float would change which
candidates the generator prunes.  Every rational is therefore encoded as
its exact ``Fraction`` string (``"3/2"``) and parsed back with
``Fraction(str)``.

Also home to :func:`query_fingerprint`: a stable SHA-256 digest of the
*semantic* content of a :class:`~repro.core.synthesizer.SynthesisQuery`
(search space, network model, pruning mode, generator backend).  Resuming
a checkpoint under a different fingerprint is a hard error — volatile
knobs (budgets, verbosity, iteration caps) are deliberately excluded so a
run may be resumed with, say, a larger time budget.
"""

from __future__ import annotations

import hashlib
import json
from fractions import Fraction
from typing import Optional, Sequence

from ..ccac import ModelConfig
from ..ccac.trace import CexTrace

__all__ = [
    "decode_candidate",
    "decode_config",
    "decode_environments",
    "decode_query",
    "decode_spec",
    "decode_trace",
    "encode_candidate",
    "encode_config",
    "encode_environments",
    "encode_query",
    "encode_spec",
    "encode_trace",
    "query_fingerprint",
]


def _frac(value) -> str:
    return str(Fraction(value))


def _fracs(values: Sequence) -> list[str]:
    return [_frac(v) for v in values]


def _unfrac(value: str) -> Fraction:
    return Fraction(value)


def _unfracs(values: Sequence[str]) -> tuple[Fraction, ...]:
    return tuple(Fraction(v) for v in values)


# -- candidates ---------------------------------------------------------------

def encode_candidate(candidate) -> dict:
    return {
        "alphas": _fracs(candidate.alphas),
        "betas": _fracs(candidate.betas),
        "gamma": _frac(candidate.gamma),
    }


def decode_candidate(data: dict):
    from ..core.template import CandidateCCA

    return CandidateCCA(
        alphas=_unfracs(data["alphas"]),
        betas=_unfracs(data["betas"]),
        gamma=_unfrac(data["gamma"]),
    )


# -- network model configuration ----------------------------------------------

_CONFIG_INT_FIELDS = ("T", "D", "jitter", "history")
_CONFIG_FRAC_FIELDS = (
    "C",
    "util_thresh",
    "delay_thresh",
    "initial_queue_max",
    "initial_cwnd_max",
    "cwnd_min",
)


def encode_config(cfg: ModelConfig) -> dict:
    data: dict = {name: getattr(cfg, name) for name in _CONFIG_INT_FIELDS}
    data.update({name: _frac(getattr(cfg, name)) for name in _CONFIG_FRAC_FIELDS})
    return data


def decode_config(data: dict) -> ModelConfig:
    kwargs: dict = {name: int(data[name]) for name in _CONFIG_INT_FIELDS}
    kwargs.update({name: _unfrac(data[name]) for name in _CONFIG_FRAC_FIELDS})
    return ModelConfig(**kwargs)


# -- environments -------------------------------------------------------------

def encode_environments(environments) -> list[dict]:
    """Canonical encoding of a query's environment list: ``None`` (the
    paper's fragment) encodes as ``[lossless]``, so a query that never
    mentions environments and one that spells out ``[lossless]`` have
    the same fingerprint and checkpoint identity."""
    from ..ccac.environments import default_environments

    envs = environments if environments else default_environments()
    return [env.to_json() for env in envs]


def decode_environments(data) -> Optional[list]:
    """Inverse of :func:`encode_environments`; a missing/``[lossless]``
    list decodes back to ``None`` (the canonical default form)."""
    from ..ccac.environments import default_environments, environment_from_json

    if not data:
        return None
    envs = [environment_from_json(item) for item in data]
    if tuple(envs) == default_environments():
        return None
    return envs


# -- counterexample traces ----------------------------------------------------

def _encode_flat_trace(trace) -> dict:
    data = {
        "A": _fracs(trace.A),
        "S": _fracs(trace.S),
        "W": _fracs(trace.W),
        "cwnd": _fracs(trace.cwnd),
        "S_pre": _fracs(trace.S_pre),
        "cwnd_pre": _fracs(trace.cwnd_pre),
        "ack_offset": _frac(trace.ack_offset),
    }
    return data


def encode_trace(trace) -> dict:
    """Encode any counterexample trace (lossless, lossy, two-flow).

    The lossless shape is unchanged from the original format; variants
    add a ``"kind"`` discriminator, and any trace tagged with an origin
    environment carries it under ``"env"`` so checkpointed
    counterexamples keep pruning under the right semantics on resume.
    """
    flows = getattr(trace, "flows", None)
    if flows is not None:
        data: dict = {
            "kind": "twoflow",
            "W": _fracs(trace.W),
            "flows": [_encode_flat_trace(f) for f in flows],
            "min_share": _frac(trace.min_share),
            "phi": _frac(trace.phi),
        }
    else:
        data = _encode_flat_trace(trace)
        if hasattr(trace, "L"):
            data["kind"] = "lossy"
            data["L"] = _fracs(trace.L)
            data["buffer"] = _frac(trace.buffer)
            data["loss_thresh"] = _frac(trace.loss_thresh)
    env = getattr(trace, "environment", None)
    if env is not None:
        data["env"] = env.to_json()
    return data


def decode_trace(data: dict, cfg: ModelConfig):
    environment = None
    if data.get("env") is not None:
        from ..ccac.environments import environment_from_json

        environment = environment_from_json(data["env"])
        cfg = environment.model_config(cfg)
    kind = data.get("kind")
    if kind == "twoflow":
        from ..ccac.multiflow import TwoFlowCexTrace

        flows = tuple(decode_trace(f, cfg) for f in data["flows"])
        return TwoFlowCexTrace(
            cfg=cfg,
            W=_unfracs(data["W"]),
            flows=flows,
            min_share=_unfrac(data["min_share"]),
            phi=_unfrac(data["phi"]),
            environment=environment,
        )
    common = dict(
        cfg=cfg,
        A=_unfracs(data["A"]),
        S=_unfracs(data["S"]),
        W=_unfracs(data["W"]),
        cwnd=_unfracs(data["cwnd"]),
        S_pre=_unfracs(data["S_pre"]),
        cwnd_pre=_unfracs(data["cwnd_pre"]),
        ack_offset=_unfrac(data["ack_offset"]),
        environment=environment,
    )
    if kind == "lossy":
        from ..ccac.lossy import LossyCexTrace

        return LossyCexTrace(
            L=_unfracs(data["L"]),
            buffer=_unfrac(data["buffer"]),
            loss_thresh=_unfrac(data["loss_thresh"]),
            **common,
        )
    return CexTrace(**common)


# -- template specs and queries -----------------------------------------------

def encode_spec(spec) -> dict:
    return {
        "history": spec.history,
        "use_cwnd_history": spec.use_cwnd_history,
        "coeff_domain": _fracs(spec.coeff_domain),
        "const_domain": None if spec.const_domain is None else _fracs(spec.const_domain),
    }


def decode_spec(data: dict):
    from ..core.template import TemplateSpec

    const = data.get("const_domain")
    return TemplateSpec(
        history=int(data["history"]),
        use_cwnd_history=bool(data["use_cwnd_history"]),
        coeff_domain=_unfracs(data["coeff_domain"]),
        const_domain=None if const is None else _unfracs(const),
    )


def encode_query(query) -> dict:
    """Full description of a query — enough to rebuild it for resume."""
    return {
        "spec": encode_spec(query.spec),
        "cfg": encode_config(query.cfg),
        "pruning": query.pruning.value,
        "worst_case_cex": query.worst_case_cex,
        "generator": query.generator,
        "find_all": query.find_all,
        "max_iterations": query.max_iterations,
        "max_solutions": query.max_solutions,
        "time_budget": query.time_budget,
        "jobs": query.jobs,
        "environments": encode_environments(query.environments),
    }


def decode_query(data: dict):
    from ..cegis import PruningMode
    from ..core.synthesizer import SynthesisQuery

    return SynthesisQuery(
        spec=decode_spec(data["spec"]),
        cfg=decode_config(data["cfg"]),
        pruning=PruningMode(data["pruning"]),
        worst_case_cex=bool(data["worst_case_cex"]),
        generator=data["generator"],
        find_all=bool(data["find_all"]),
        max_iterations=int(data["max_iterations"]),
        max_solutions=data["max_solutions"],
        time_budget=data["time_budget"],
        # volatile like the budgets: absent in old checkpoints, and a
        # resumed run may legally change it
        jobs=int(data.get("jobs", 1)),
        # absent in old checkpoints == the lossless default
        environments=decode_environments(data.get("environments")),
    )


#: fields of the encoded query that define its *identity*; budgets and
#: iteration caps are resumable knobs, not identity.  ``environments``
#: is identity: verifying against a different matrix is a different ∃∀
#: question (the canonical encoding makes ``None`` == ``[lossless]``).
_FINGERPRINT_FIELDS = (
    "spec",
    "cfg",
    "pruning",
    "worst_case_cex",
    "generator",
    "find_all",
    "environments",
)


def query_fingerprint(query) -> str:
    """Stable digest of the semantic content of a synthesis query."""
    encoded = encode_query(query)
    canonical = {name: encoded[name] for name in _FINGERPRINT_FIELDS}
    blob = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
