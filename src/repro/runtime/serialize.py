"""Exact JSON serialization of CEGIS state (Fractions survive round-trips).

Checkpoints must reproduce solver-visible state *bit-for-bit*: a
counterexample trace that comes back as a float would change which
candidates the generator prunes.  Every rational is therefore encoded as
its exact ``Fraction`` string (``"3/2"``) and parsed back with
``Fraction(str)``.

Also home to :func:`query_fingerprint`: a stable SHA-256 digest of the
*semantic* content of a :class:`~repro.core.synthesizer.SynthesisQuery`
(search space, network model, pruning mode, generator backend).  Resuming
a checkpoint under a different fingerprint is a hard error — volatile
knobs (budgets, verbosity, iteration caps) are deliberately excluded so a
run may be resumed with, say, a larger time budget.
"""

from __future__ import annotations

import hashlib
import json
from fractions import Fraction
from typing import Optional, Sequence

from ..ccac import ModelConfig
from ..ccac.trace import CexTrace

__all__ = [
    "decode_candidate",
    "decode_config",
    "decode_query",
    "decode_spec",
    "decode_trace",
    "encode_candidate",
    "encode_config",
    "encode_query",
    "encode_spec",
    "encode_trace",
    "query_fingerprint",
]


def _frac(value) -> str:
    return str(Fraction(value))


def _fracs(values: Sequence) -> list[str]:
    return [_frac(v) for v in values]


def _unfrac(value: str) -> Fraction:
    return Fraction(value)


def _unfracs(values: Sequence[str]) -> tuple[Fraction, ...]:
    return tuple(Fraction(v) for v in values)


# -- candidates ---------------------------------------------------------------

def encode_candidate(candidate) -> dict:
    return {
        "alphas": _fracs(candidate.alphas),
        "betas": _fracs(candidate.betas),
        "gamma": _frac(candidate.gamma),
    }


def decode_candidate(data: dict):
    from ..core.template import CandidateCCA

    return CandidateCCA(
        alphas=_unfracs(data["alphas"]),
        betas=_unfracs(data["betas"]),
        gamma=_unfrac(data["gamma"]),
    )


# -- network model configuration ----------------------------------------------

_CONFIG_INT_FIELDS = ("T", "D", "jitter", "history")
_CONFIG_FRAC_FIELDS = (
    "C",
    "util_thresh",
    "delay_thresh",
    "initial_queue_max",
    "initial_cwnd_max",
    "cwnd_min",
)


def encode_config(cfg: ModelConfig) -> dict:
    data: dict = {name: getattr(cfg, name) for name in _CONFIG_INT_FIELDS}
    data.update({name: _frac(getattr(cfg, name)) for name in _CONFIG_FRAC_FIELDS})
    return data


def decode_config(data: dict) -> ModelConfig:
    kwargs: dict = {name: int(data[name]) for name in _CONFIG_INT_FIELDS}
    kwargs.update({name: _unfrac(data[name]) for name in _CONFIG_FRAC_FIELDS})
    return ModelConfig(**kwargs)


# -- counterexample traces ----------------------------------------------------

def encode_trace(trace: CexTrace) -> dict:
    return {
        "A": _fracs(trace.A),
        "S": _fracs(trace.S),
        "W": _fracs(trace.W),
        "cwnd": _fracs(trace.cwnd),
        "S_pre": _fracs(trace.S_pre),
        "cwnd_pre": _fracs(trace.cwnd_pre),
        "ack_offset": _frac(trace.ack_offset),
    }


def decode_trace(data: dict, cfg: ModelConfig) -> CexTrace:
    return CexTrace(
        cfg=cfg,
        A=_unfracs(data["A"]),
        S=_unfracs(data["S"]),
        W=_unfracs(data["W"]),
        cwnd=_unfracs(data["cwnd"]),
        S_pre=_unfracs(data["S_pre"]),
        cwnd_pre=_unfracs(data["cwnd_pre"]),
        ack_offset=_unfrac(data["ack_offset"]),
    )


# -- template specs and queries -----------------------------------------------

def encode_spec(spec) -> dict:
    return {
        "history": spec.history,
        "use_cwnd_history": spec.use_cwnd_history,
        "coeff_domain": _fracs(spec.coeff_domain),
        "const_domain": None if spec.const_domain is None else _fracs(spec.const_domain),
    }


def decode_spec(data: dict):
    from ..core.template import TemplateSpec

    const = data.get("const_domain")
    return TemplateSpec(
        history=int(data["history"]),
        use_cwnd_history=bool(data["use_cwnd_history"]),
        coeff_domain=_unfracs(data["coeff_domain"]),
        const_domain=None if const is None else _unfracs(const),
    )


def encode_query(query) -> dict:
    """Full description of a query — enough to rebuild it for resume."""
    return {
        "spec": encode_spec(query.spec),
        "cfg": encode_config(query.cfg),
        "pruning": query.pruning.value,
        "worst_case_cex": query.worst_case_cex,
        "generator": query.generator,
        "find_all": query.find_all,
        "max_iterations": query.max_iterations,
        "max_solutions": query.max_solutions,
        "time_budget": query.time_budget,
        "jobs": query.jobs,
    }


def decode_query(data: dict):
    from ..cegis import PruningMode
    from ..core.synthesizer import SynthesisQuery

    return SynthesisQuery(
        spec=decode_spec(data["spec"]),
        cfg=decode_config(data["cfg"]),
        pruning=PruningMode(data["pruning"]),
        worst_case_cex=bool(data["worst_case_cex"]),
        generator=data["generator"],
        find_all=bool(data["find_all"]),
        max_iterations=int(data["max_iterations"]),
        max_solutions=data["max_solutions"],
        time_budget=data["time_budget"],
        # volatile like the budgets: absent in old checkpoints, and a
        # resumed run may legally change it
        jobs=int(data.get("jobs", 1)),
    )


#: fields of the encoded query that define its *identity*; budgets and
#: iteration caps are resumable knobs, not identity
_FINGERPRINT_FIELDS = ("spec", "cfg", "pruning", "worst_case_cex", "generator", "find_all")


def query_fingerprint(query) -> str:
    """Stable digest of the semantic content of a synthesis query."""
    encoded = encode_query(query)
    canonical = {name: encoded[name] for name in _FINGERPRINT_FIELDS}
    blob = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
