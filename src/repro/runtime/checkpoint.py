"""Atomic JSON checkpoints of CEGIS state (crash-safe save, verified resume).

A checkpoint captures everything the loop needs to continue a run after a
hard kill: the counterexample set, the blocked solutions, the solutions
found so far, the iteration/stat counters, and the query fingerprint that
guards against resuming state into a *different* query.

Write protocol: serialize to ``<path>.tmp``, ``fsync``, then
``os.replace`` over the real path — a SIGKILL at any instant leaves
either the previous checkpoint or the new one, never a torn file.

The store is domain-agnostic: candidates and counterexamples pass through
caller-supplied codecs (identity by default, for JSON-native toy domains;
:mod:`repro.runtime.serialize` provides the CCmatic codecs).  It
implements the duck-typed checkpoint interface the CEGIS loop consumes
(``load()`` / ``save(...)``; see :class:`repro.cegis.interfaces` docs).
"""

from __future__ import annotations

import json
import os
import shutil
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..chaos.faults import chaos_point
from ..obs import DEBUG, tracer
from .errors import CheckpointError, CheckpointMismatchError

SCHEMA_VERSION = 1

#: stat counters persisted per checkpoint (mirrors CegisStats fields)
STAT_FIELDS = (
    "iterations",
    "counterexamples",
    "generator_time",
    "verifier_time",
    "verifier_calls",
    "cancelled_checks",
    "certified_verdicts",
    "falsification_attempts",
    "falsification_survivals",
)


def _identity(value):
    return value


@dataclass
class CheckpointState:
    """Decoded contents of one checkpoint."""

    fingerprint: str
    stats: dict = field(default_factory=dict)
    solutions: list = field(default_factory=list)
    counterexamples: list = field(default_factory=list)
    blocked: list = field(default_factory=list)
    stop_reason: Optional[str] = None
    meta: dict = field(default_factory=dict)
    saved_at: float = 0.0

    @property
    def complete(self) -> bool:
        """Whether the checkpointed run reached a final verdict."""
        return self.stop_reason is not None


class CheckpointStore:
    """Atomic JSON checkpoint file with fingerprint verification."""

    def __init__(
        self,
        path: str,
        fingerprint: str = "",
        meta: Optional[dict] = None,
        encode_candidate: Callable = _identity,
        decode_candidate: Callable = _identity,
        encode_cex: Callable = _identity,
        decode_cex: Callable = _identity,
    ):
        self.path = str(path)
        self.fingerprint = fingerprint
        self.meta = dict(meta or {})
        self._encode_candidate = encode_candidate
        self._decode_candidate = decode_candidate
        self._encode_cex = encode_cex
        self._decode_cex = decode_cex
        self.saves = 0

    # -- reading --------------------------------------------------------------

    @property
    def backup_path(self) -> str:
        """The previous checkpoint, kept on every save (``<path>.bak``)."""
        return self.path + ".bak"

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def has_backup(self) -> bool:
        return os.path.exists(self.backup_path)

    def load(self, from_backup: bool = False) -> Optional[CheckpointState]:
        """Decoded state, or None when no checkpoint exists yet.

        Raises :class:`CheckpointMismatchError` when the stored query
        fingerprint differs from this store's — resuming would corrupt
        the run — and :class:`CheckpointError` (naming the failing
        field) on a damaged file.  ``from_backup=True`` reads the
        previous checkpoint (``<path>.bak``) instead, the recovery path
        when the latest file is corrupt.
        """
        path = self.backup_path if from_backup else self.path
        if not os.path.exists(path):
            return None
        raw = self._read_raw(path)
        stored = raw.get("fingerprint", "")
        if self.fingerprint and stored != self.fingerprint:
            raise CheckpointMismatchError(
                f"checkpoint {path!r} belongs to a different query "
                f"(stored fingerprint {stored[:12]}..., "
                f"expected {self.fingerprint[:12]}...)"
            )

        def decode(fld: str, fn):
            # per-field decode so a diagnostic can name what is damaged
            try:
                return fn(raw.get(fld))
            except (KeyError, TypeError, ValueError) as exc:
                raise CheckpointError(
                    f"checkpoint {path!r} field {fld!r} could not be "
                    f"decoded: {exc}"
                ) from exc

        return CheckpointState(
            fingerprint=stored,
            stats=decode(
                "stats", lambda v: {k: (v or {}).get(k, 0) for k in STAT_FIELDS}
            ),
            solutions=decode(
                "solutions",
                lambda v: [self._decode_candidate(c) for c in (v or [])],
            ),
            counterexamples=decode(
                "counterexamples",
                lambda v: [self._decode_cex(c) for c in (v or [])],
            ),
            blocked=decode(
                "blocked",
                lambda v: [self._decode_candidate(c) for c in (v or [])],
            ),
            stop_reason=raw.get("stop_reason"),
            meta=raw.get("meta", {}),
            saved_at=raw.get("saved_at", 0.0),
        )

    @staticmethod
    def _read_raw(path: str) -> dict:
        try:
            with open(path, "r", encoding="utf-8") as f:
                raw = json.load(f)
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
        except ValueError as exc:
            # JSONDecodeError and UnicodeDecodeError both subclass
            # ValueError; a bitflipped file can produce either
            raise CheckpointError(
                f"checkpoint {path!r} is not valid JSON (torn write without "
                f"atomic replace?): {exc}"
            ) from exc
        if not isinstance(raw, dict) or raw.get("version") != SCHEMA_VERSION:
            raise CheckpointError(
                f"checkpoint {path!r} has unsupported schema "
                f"{raw.get('version') if isinstance(raw, dict) else type(raw).__name__!r}"
            )
        return raw

    def _keep_backup(self) -> None:
        """Hardlink (or copy) the current checkpoint to ``<path>.bak``.

        Runs just before the atomic replace: after a save the previous
        generation survives as the backup, so a checkpoint corrupted on
        disk later never costs more than one save interval of work.
        Best-effort — a backup failure must not fail the save.
        """
        if not os.path.exists(self.path):
            return
        bak = self.backup_path
        try:
            if os.path.exists(bak):
                os.unlink(bak)
            os.link(self.path, bak)
        except OSError:
            try:
                shutil.copyfile(self.path, bak)
            except OSError:
                pass

    @staticmethod
    def read_meta(path: str) -> tuple[str, dict]:
        """(fingerprint, meta) of a checkpoint without decoding its state.

        Used by ``ccmatic resume`` to rebuild the original query before a
        full, fingerprint-verified load.
        """
        raw = CheckpointStore._read_raw(path)
        return raw.get("fingerprint", ""), raw.get("meta", {})

    # -- writing --------------------------------------------------------------

    def save(
        self,
        *,
        stats,
        solutions,
        counterexamples,
        blocked,
        stop_reason: Optional[str] = None,
    ) -> None:
        """Atomically persist the current loop state.

        ``stats`` may be a :class:`~repro.cegis.interfaces.CegisStats` or
        a plain dict carrying the same counters.
        """
        if isinstance(stats, dict):
            stat_dict = {k: stats.get(k, 0) for k in STAT_FIELDS}
        else:
            stat_dict = {k: getattr(stats, k, 0) for k in STAT_FIELDS}
        payload = {
            "version": SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "meta": self.meta,
            "saved_at": time.time(),
            "stats": stat_dict,
            "solutions": [self._encode_candidate(c) for c in solutions],
            "counterexamples": [self._encode_cex(c) for c in counterexamples],
            "blocked": [self._encode_candidate(c) for c in blocked],
            "stop_reason": stop_reason,
        }
        tmp = self.path + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as f:
                json.dump(payload, f)
                f.flush()
                os.fsync(f.fileno())
            chaos_point("checkpoint.write", path=tmp)
            self._keep_backup()
            os.replace(tmp, self.path)
        except OSError as exc:
            raise CheckpointError(
                f"cannot write checkpoint {self.path!r}: {exc}"
            ) from exc
        self.saves += 1
        tr = tracer()
        if tr.enabled:
            tr.event(
                "runtime.checkpoint",
                level=DEBUG,
                iterations=stat_dict["iterations"],
                solutions=len(payload["solutions"]),
                counterexamples=len(payload["counterexamples"]),
                final=stop_reason is not None,
            )
