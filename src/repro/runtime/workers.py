"""Isolated solver workers: hard wall-clock and memory caps around checks.

The from-scratch DPLL(T) solver runs exact-Fraction arithmetic in pure
Python: a single pathological query can pin a core for hours or swallow
all RAM, and the in-band ``deadline`` check only fires *between*
conflicts.  This module provides the out-of-band guarantee: the verifier
call runs in a forked ``multiprocessing`` worker whose parent enforces a
hard watchdog (SIGTERM, then SIGKILL) and whose child self-limits memory
via ``resource.setrlimit(RLIMIT_AS, ...)``.

A killed or OOM'd worker is an *honest* ``unknown`` — never a crash of
the synthesis run and never a silent "verified".  Failures are retried a
bounded number of times in a fresh worker with an escalated wall-clock
budget, each kill emitting a ``runtime.degrade`` event.

The one exception: a :class:`SoundnessError` raised inside the worker
(independent validation refuting a solver result) is re-raised in the
parent verbatim.  Soundness failures must never be degraded to
``unknown``.
"""

from __future__ import annotations

import multiprocessing
import random
import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Optional

from ..chaos.faults import chaos_point, maybe_install_from_env
from ..chaos.supervisor import full_jitter_backoff
from ..obs import WARN, metrics, tracer
from ..smt.terms import interned_scope
from .errors import SoundnessError, WorkerError

__all__ = [
    "IsolatedVerifier",
    "WorkerLimits",
    "WorkerReport",
    "run_isolated",
    "spawn_worker",
    "reap_worker",
]


@dataclass(frozen=True)
class WorkerLimits:
    """Resource caps for one isolated call (and its retry policy)."""

    wall_time: float = 60.0          # soft in-child deadline, seconds
    memory_mb: Optional[int] = None  # RLIMIT_AS cap; None = unlimited
    retries: int = 1                 # extra attempts after the first failure
    escalation: float = 2.0          # wall-time multiplier per retry
    kill_grace: float = 1.0          # SIGTERM -> SIGKILL grace, seconds
    backoff_base: float = 0.25       # full-jitter retry backoff base, seconds
    backoff_cap: float = 5.0         # full-jitter retry backoff ceiling

    def budget(self, attempt: int) -> float:
        """Wall-clock budget of the given (0-based) attempt."""
        return self.wall_time * (self.escalation ** attempt)


@dataclass
class WorkerReport:
    """Outcome of one isolated call."""

    status: str  # ok | timeout | oom | crash | error | soundness
    result: Any = None
    detail: str = ""
    wall_time: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _child_entry(conn, fn, args, kwargs, memory_mb: Optional[int]) -> None:
    """Worker bootstrap: drop inherited sinks, cap memory, run, report."""
    tr = tracer()
    for sink in list(tr.sinks):
        # a forked child shares the parent's open trace file; writing from
        # both would interleave records mid-line
        tr.remove_sink(sink)
    if memory_mb is not None:
        try:
            import resource

            limit = memory_mb * 1024 * 1024
            resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
        except (ImportError, ValueError, OSError):
            pass  # platform without rlimits: watchdog still applies
    maybe_install_from_env()
    try:
        # inside the try: an injected MemoryError reports as "oom", an
        # injected RuntimeError as "error"; a kill is a hard death the
        # parent sees as "crash" — exactly like the real faults
        chaos_point("worker.child")
        # Scope the term intern table: a forked child inherits the
        # parent's interned terms, and verification builds large per-task
        # DAGs on top.  The scope releases the task's term churn as soon
        # as the work is done (results crossing the pipe are plain data,
        # never Term objects, so nothing escapes the scope).
        with interned_scope():
            result = fn(*args, **(kwargs or {}))
        conn.send(("ok", result))
    except SoundnessError as exc:
        conn.send(("soundness", str(exc)))
    except MemoryError:
        conn.send(("oom", f"worker exceeded {memory_mb} MiB"))
    except BaseException as exc:  # noqa: BLE001 - report, parent decides
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
    finally:
        conn.close()


def spawn_worker(
    fn,
    args: tuple = (),
    kwargs: Optional[dict] = None,
    memory_mb: Optional[int] = None,
):
    """Start one capped worker; returns ``(process, connection)``.

    The caller owns the lifecycle: poll/recv on the connection, then
    :func:`reap_worker`.  This is the spawn primitive shared by
    :func:`run_isolated` (one worker, blocking) and the parallel
    portfolio (:mod:`repro.engine.portfolio`: many workers, first
    conclusive result wins).
    """
    ctx = _mp_context()
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_child_entry,
        args=(child_conn, fn, args, kwargs, memory_mb),
        daemon=True,
    )
    proc.start()
    child_conn.close()
    return proc, parent_conn


def reap_worker(proc, conn, kill_grace: float = 1.0) -> None:
    """Terminate (if needed) and join one worker, closing its pipe."""
    if proc.is_alive():
        proc.terminate()
        proc.join(kill_grace)
        if proc.is_alive():
            proc.kill()
    proc.join(5.0)
    conn.close()


def run_isolated(
    fn,
    args: tuple = (),
    kwargs: Optional[dict] = None,
    wall_time: Optional[float] = None,
    memory_mb: Optional[int] = None,
    kill_grace: float = 1.0,
) -> WorkerReport:
    """One attempt: run ``fn(*args, **kwargs)`` in a fresh capped worker.

    ``wall_time`` is the hard watchdog; callers that also thread a soft
    deadline into ``fn`` should leave a little headroom so the in-band
    abort usually wins and the watchdog is the backstop.  Raises
    :class:`SoundnessError` if the worker reported one.
    """
    start = time.perf_counter()
    proc, parent_conn = spawn_worker(fn, args, kwargs, memory_mb)
    status, payload = "crash", ""
    got_message = False
    try:
        if parent_conn.poll(wall_time):
            try:
                status, payload = parent_conn.recv()
                got_message = True
            except (EOFError, OSError):
                got_message = False  # child died before completing the send
        else:
            status = "timeout"
            payload = f"worker exceeded {wall_time:.1f}s wall clock"
    finally:
        reap_worker(proc, parent_conn, kill_grace)
    elapsed = time.perf_counter() - start
    if not got_message and status != "timeout":
        # hard death without a report: OOM-killer or native abort
        code = proc.exitcode
        status = "crash"
        payload = f"worker died with exit code {code}"
    if status == "soundness":
        raise SoundnessError(payload)
    if status == "ok":
        return WorkerReport(status="ok", result=payload, wall_time=elapsed)
    return WorkerReport(status=status, detail=str(payload), wall_time=elapsed)


# -- the isolated CCAC verifier ----------------------------------------------


def _verify_task(
    cfg, precision, candidate, worst_case, time_limit, validate, certify=False
):
    """Runs inside the worker: one fresh verifier, one call."""
    from ..core.verifier import CcacVerifier

    verifier = CcacVerifier(
        cfg, wce_precision=precision, validate=validate, certify=certify
    )
    deadline = None if time_limit is None else time.perf_counter() + time_limit
    return verifier.find_counterexample(
        candidate, worst_case=worst_case, deadline=deadline
    )


class IsolatedVerifier:
    """Drop-in for :class:`repro.core.CcacVerifier` with process isolation.

    Each ``find_counterexample`` call runs in a fresh worker under
    ``limits``; a killed worker yields ``unknown`` (with ``degraded=True``
    so the CEGIS loop reports an honest stop reason) after bounded
    retries with escalated budgets.
    """

    #: hard watchdog headroom over the in-child soft deadline
    WATCHDOG_SLACK = 1.25

    def __init__(
        self,
        cfg,
        wce_precision: Fraction = Fraction(1, 8),
        limits: WorkerLimits = WorkerLimits(),
        validate: bool = True,
        retry_seed: Optional[int] = None,
        certify: bool = False,
    ):
        self.cfg = cfg
        self.wce_precision = Fraction(wce_precision)
        self.limits = limits
        self.validate = validate
        self.certify = certify
        self.calls = 0
        self.total_time = 0.0
        self.kills = 0
        self.degradations: list[dict] = []
        # seedable so chaos experiments replay the same retry schedule
        self._retry_rng = random.Random(retry_seed)

    def find_counterexample(
        self,
        candidate,
        worst_case: bool = False,
        deadline: Optional[float] = None,
    ):
        from ..core.verifier import VerificationResult

        self.calls += 1
        tr = tracer()
        start = time.perf_counter()
        limits = self.limits
        attempts = max(0, limits.retries) + 1
        last_report: Optional[WorkerReport] = None
        for attempt in range(attempts):
            budget = limits.budget(attempt)
            if deadline is not None:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                budget = min(budget, remaining)
            watchdog = budget * self.WATCHDOG_SLACK + limits.kill_grace
            report = run_isolated(
                _verify_task,
                args=(
                    self.cfg,
                    self.wce_precision,
                    candidate,
                    worst_case,
                    budget,
                    self.validate,
                    self.certify,
                ),
                wall_time=watchdog,
                memory_mb=limits.memory_mb,
                kill_grace=limits.kill_grace,
            )
            last_report = report
            self.total_time += report.wall_time
            if report.ok:
                result = report.result
                # in-child soft-deadline expiry is a plain unknown, not a
                # kill: return it as-is and let the caller's policy decide
                return result
            if report.status == "error":
                raise WorkerError(report.detail)
            # killed (timeout / oom / crash): record, notify, retry fresh
            self.kills += 1
            event = {
                "kind": "worker_killed",
                "status": report.status,
                "attempt": attempt + 1,
                "attempts": attempts,
                "budget": round(budget, 3),
                "detail": report.detail,
            }
            self.degradations.append(event)
            metrics().counter("runtime.worker_kills").inc()
            if tr.enabled:
                tr.event(
                    "runtime.degrade",
                    level=WARN,
                    msg=(
                        f"[runtime] solver worker {report.status} "
                        f"(attempt {attempt + 1}/{attempts}, "
                        f"budget {budget:.1f}s) -> "
                        + ("retrying" if attempt + 1 < attempts else "unknown")
                    ),
                    **event,
                )
            if attempt + 1 < attempts:
                # full-jitter backoff between attempts: a fanned-out bad
                # query must not stampede back in lockstep.  Deadline-aware:
                # never sleep past the caller's remaining time budget.
                delay = full_jitter_backoff(
                    limits.backoff_base,
                    attempt,
                    cap=limits.backoff_cap,
                    rng=self._retry_rng,
                )
                if deadline is not None:
                    delay = min(delay, max(0.0, deadline - time.perf_counter()))
                if delay > 0:
                    time.sleep(delay)
        elapsed = time.perf_counter() - start
        detail = last_report.detail if last_report else "deadline already expired"
        return VerificationResult(
            candidate=candidate,
            verified=False,
            counterexample=None,
            wall_time=elapsed,
            solver_checks=0,
            unknown=True,
            degraded=True,
        )

    def verify(self, candidate) -> bool:
        """Convenience wrapper mirroring :meth:`CcacVerifier.verify`."""
        return self.find_counterexample(candidate).verified
