"""Isolated solver workers: hard wall-clock and memory caps around checks.

The from-scratch DPLL(T) solver runs exact-Fraction arithmetic in pure
Python: a single pathological query can pin a core for hours or swallow
all RAM, and the in-band ``deadline`` check only fires *between*
conflicts.  This module provides the out-of-band guarantee: the verifier
call runs in a forked ``multiprocessing`` worker whose parent enforces a
hard watchdog (SIGTERM, then SIGKILL) and whose child self-limits memory
via ``resource.setrlimit(RLIMIT_AS, ...)``.

A killed or OOM'd worker is an *honest* ``unknown`` — never a crash of
the synthesis run and never a silent "verified".  Failures are retried a
bounded number of times in a fresh worker with an escalated wall-clock
budget, each kill emitting a ``runtime.degrade`` event.

The one exception: a :class:`SoundnessError` raised inside the worker
(independent validation refuting a solver result) is re-raised in the
parent verbatim.  Soundness failures must never be degraded to
``unknown``.
"""

from __future__ import annotations

import multiprocessing
import random
import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Optional

from ..chaos.faults import chaos_point, maybe_install_from_env
from ..chaos.supervisor import full_jitter_backoff
from ..obs import WARN, metrics, tracer
from ..obs.flight import dump_flight
from ..obs.relay import TraceContext, merge_frame, start_capture
from ..smt.terms import interned_scope
from .errors import SoundnessError, WorkerError

__all__ = [
    "IsolatedVerifier",
    "WorkerLimits",
    "WorkerReport",
    "probe_worker",
    "run_isolated",
    "spawn_worker",
    "spawn_pool_worker",
    "reap_worker",
]


@dataclass(frozen=True)
class WorkerLimits:
    """Resource caps for one isolated call (and its retry policy)."""

    wall_time: float = 60.0          # soft in-child deadline, seconds
    memory_mb: Optional[int] = None  # RLIMIT_AS cap; None = unlimited
    retries: int = 1                 # extra attempts after the first failure
    escalation: float = 2.0          # wall-time multiplier per retry
    kill_grace: float = 1.0          # SIGTERM -> SIGKILL grace, seconds
    backoff_base: float = 0.25       # full-jitter retry backoff base, seconds
    backoff_cap: float = 5.0         # full-jitter retry backoff ceiling

    def budget(self, attempt: int) -> float:
        """Wall-clock budget of the given (0-based) attempt."""
        return self.wall_time * (self.escalation ** attempt)


@dataclass
class WorkerReport:
    """Outcome of one isolated call."""

    status: str  # ok | timeout | oom | crash | error | soundness
    result: Any = None
    detail: str = ""
    wall_time: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _child_entry(
    conn, fn, args, kwargs, memory_mb: Optional[int],
    trace_ctx: Optional[TraceContext] = None,
) -> None:
    """Worker bootstrap: neutralize inherited sinks (the relay supersedes
    them — writing to the parent's shared trace fd would interleave
    records mid-line), start telemetry capture, cap memory, run, then
    ship the telemetry frame followed by the final status message."""
    capture = start_capture(trace_ctx)
    if memory_mb is not None:
        try:
            import resource

            limit = memory_mb * 1024 * 1024
            resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
        except (ImportError, ValueError, OSError):
            pass  # platform without rlimits: watchdog still applies
    maybe_install_from_env()

    def _ship_telemetry() -> None:
        # advisory by design: a frame that cannot be built or sent is
        # simply absent; the status message that follows must still go out
        try:
            conn.send(("telemetry", capture.finish()))
        except Exception:  # noqa: BLE001 - never mask the real outcome
            pass

    try:
        # inside the try: an injected MemoryError reports as "oom", an
        # injected RuntimeError as "error"; a kill is a hard death the
        # parent sees as "crash" — exactly like the real faults
        chaos_point("worker.child")
        # Scope the term intern table: a forked child inherits the
        # parent's interned terms, and verification builds large per-task
        # DAGs on top.  The scope releases the task's term churn as soon
        # as the work is done (results crossing the pipe are plain data,
        # never Term objects, so nothing escapes the scope).
        with interned_scope():
            with tracer().span(
                "worker.run", task=getattr(fn, "__name__", "?"),
            ):
                result = fn(*args, **(kwargs or {}))
        _ship_telemetry()
        conn.send(("ok", result))
    except SoundnessError as exc:
        _ship_telemetry()
        conn.send(("soundness", str(exc)))
    except MemoryError:
        _ship_telemetry()
        conn.send(("oom", f"worker exceeded {memory_mb} MiB"))
    except BaseException as exc:  # noqa: BLE001 - report, parent decides
        _ship_telemetry()
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
    finally:
        conn.close()


def spawn_worker(
    fn,
    args: tuple = (),
    kwargs: Optional[dict] = None,
    memory_mb: Optional[int] = None,
    trace_ctx: Optional[TraceContext] = None,
):
    """Start one capped worker; returns ``(process, connection)``.

    The caller owns the lifecycle: poll/recv on the connection, then
    :func:`reap_worker`.  This is the spawn primitive shared by
    :func:`run_isolated` (one worker, blocking) and the parallel
    portfolio (:mod:`repro.engine.portfolio`: many workers, first
    conclusive result wins).

    ``trace_ctx`` threads the parent's trace id, anchor span, and the
    worker's lane tag into the child; the child answers with a
    ``("telemetry", frame)`` message before its final status message
    (see :mod:`repro.obs.relay`).  When None, a default context is built
    from the calling thread's innermost open span.
    """
    if trace_ctx is None:
        trace_ctx = TraceContext.current()
    ctx = _mp_context()
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_child_entry,
        args=(child_conn, fn, args, kwargs, memory_mb, trace_ctx),
        daemon=True,
    )
    proc.start()
    child_conn.close()
    return proc, parent_conn


def reap_worker(proc, conn, kill_grace: float = 1.0) -> None:
    """Terminate (if needed) and join one worker, closing its pipe.

    This is the *disposal* primitive — it always ends the process.  A
    pooled worker that should survive the call must not come here;
    :func:`probe_worker` is the keep-or-respawn decision
    ("idle, keep" vs "dead, respawn") and the pool only disposes of
    workers the probe condemned (or at shutdown).
    """
    if proc.is_alive():
        proc.terminate()
        proc.join(kill_grace)
        if proc.is_alive():
            proc.kill()
    proc.join(5.0)
    conn.close()


# -- persistent pool workers --------------------------------------------------


class TaskCancelled(BaseException):
    """Raised inside a pool child by the SIGUSR1 cancel handler.

    Derives from ``BaseException`` so task code that catches ``Exception``
    (retry loops, advisory telemetry) cannot swallow a cancellation.
    """


def _pool_child(conn, memory_mb: Optional[int], trace_ctx: Optional[TraceContext]) -> None:
    """Long-lived pool worker: boot once, then serve tasks over ``conn``.

    Protocol (all messages are tuples; first element is the kind):

    * parent -> child: ``("task", task_id, fn, args, kwargs)``,
      ``("prime", fn, args, kwargs)``, ``("ping", nonce)``,
      ``("shutdown",)``
    * child -> parent: per task one ``("telemetry", frame)`` followed by
      ``(status, task_id, payload)`` with status in
      ``ok | cancelled | soundness | oom | error``; ``("pong", nonce)``
      answers a ping; ``("primed", detail)`` acknowledges a prime.

    Cancellation: the parent sends ``SIGUSR1``; the handler raises
    :class:`TaskCancelled` *only while a task is executing*, so a signal
    that lands between tasks is ignored.  Unlike the one-shot
    :func:`_child_entry`, tasks here run *without* an
    ``interned_scope`` — keeping interned terms (and any process-global
    state the tasks build, e.g. incremental verifier sessions) warm
    across tasks is the point of pooling; the pool bounds the resulting
    memory growth by recycling workers after ``max_tasks_per_worker``.
    """
    import signal

    from .errors import SoundnessError as _SoundnessError

    from ..obs.relay import TelemetryCapture, reset_child_tracing

    reset_child_tracing(trace_ctx)
    if memory_mb is not None:
        try:
            import resource

            limit = memory_mb * 1024 * 1024
            resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
        except (ImportError, ValueError, OSError):
            pass
    maybe_install_from_env()

    busy = [False]

    def _on_cancel(signum, frame):
        if busy[0]:
            raise TaskCancelled()

    try:
        signal.signal(signal.SIGUSR1, _on_cancel)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass

    def _safe_send(msg) -> bool:
        try:
            conn.send(msg)
            return True
        except Exception:  # noqa: BLE001 - parent gone or unpicklable
            return False

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        kind = msg[0]
        if kind == "shutdown":
            break
        if kind == "ping":
            _safe_send(("pong", msg[1]))
            continue
        if kind == "prime":
            _, fn, args, kwargs = msg
            try:
                fn(*args, **(kwargs or {}))
                _safe_send(("primed", ""))
            except Exception as exc:  # noqa: BLE001 - priming is advisory
                _safe_send(("primed", f"{type(exc).__name__}: {exc}"))
            continue
        # ("task", task_id, fn, args, kwargs)
        _, task_id, fn, args, kwargs = msg
        capture = TelemetryCapture(trace_ctx, task=str(task_id))
        busy[0] = True
        try:
            chaos_point("worker.child")
            with tracer().span(
                "worker.run", task=getattr(fn, "__name__", "?"),
            ):
                result = fn(*args, **(kwargs or {}))
            status, payload = "ok", result
        except TaskCancelled:
            status, payload = "cancelled", ""
        except _SoundnessError as exc:
            status, payload = "soundness", str(exc)
        except MemoryError:
            status, payload = "oom", f"worker exceeded {memory_mb} MiB"
        except BaseException as exc:  # noqa: BLE001 - report, parent decides
            status, payload = "error", f"{type(exc).__name__}: {exc}"
        finally:
            busy[0] = False
        _safe_send(("telemetry", capture.finish()))
        if not _safe_send((status, task_id, payload)):
            # the result itself may be the unpicklable part; degrade to
            # an error message so the parent is never left hanging
            if not _safe_send(
                ("error", task_id, "worker result could not be sent")
            ):
                break
    try:
        conn.close()
    except OSError:  # pragma: no cover
        pass


def spawn_pool_worker(
    memory_mb: Optional[int] = None,
    trace_ctx: Optional[TraceContext] = None,
):
    """Start one persistent pool worker; returns ``(process, connection)``.

    The connection is *duplex*: the parent sends task/prime/ping messages
    and receives telemetry frames and results (see :func:`_pool_child`).
    The caller owns the lifecycle — :mod:`repro.service.pool` wraps this
    in a :class:`~repro.service.pool.WorkerPool` with heartbeats,
    respawn-on-death, and in-flight task retry.
    """
    if trace_ctx is None:
        trace_ctx = TraceContext.current()
    ctx = _mp_context()
    parent_conn, child_conn = ctx.Pipe(duplex=True)
    proc = ctx.Process(
        target=_pool_child,
        args=(child_conn, memory_mb, trace_ctx),
        daemon=True,
    )
    proc.start()
    child_conn.close()
    return proc, parent_conn


def probe_worker(proc, conn, timeout: float = 1.0) -> str:
    """Heartbeat check of an *idle* pooled worker: keep it or condemn it.

    Returns ``"idle"`` (alive and answering pings — keep), ``"dead"``
    (process gone or pipe broken — respawn), or ``"stuck"`` (alive but
    not answering within ``timeout`` — condemn and respawn; an idle
    worker has no legitimate reason to be silent).  Telemetry frames or
    stale results sitting in the pipe are drained, never mistaken for
    the pong.
    """
    if not proc.is_alive():
        return "dead"
    nonce = f"hb-{time.monotonic_ns()}"
    try:
        conn.send(("ping", nonce))
    except (OSError, ValueError, BrokenPipeError):
        return "dead"
    deadline = time.monotonic() + timeout
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return "stuck"
        try:
            if not conn.poll(remaining):
                return "stuck"
            msg = conn.recv()
        except (EOFError, OSError):
            return "dead"
        if isinstance(msg, tuple) and len(msg) == 2 and msg[0] == "pong":
            if msg[1] == nonce:
                return "idle"
            continue  # stale pong from an earlier probe
        # stale telemetry/result from a cancelled task: drop and keep
        # waiting for the pong
        continue


def run_isolated(
    fn,
    args: tuple = (),
    kwargs: Optional[dict] = None,
    wall_time: Optional[float] = None,
    memory_mb: Optional[int] = None,
    kill_grace: float = 1.0,
    worker_id: str = "w0",
) -> WorkerReport:
    """One attempt: run ``fn(*args, **kwargs)`` in a fresh capped worker.

    ``wall_time`` is the hard watchdog; callers that also thread a soft
    deadline into ``fn`` should leave a little headroom so the in-band
    abort usually wins and the watchdog is the backstop.  Raises
    :class:`SoundnessError` if the worker reported one.

    The worker's lifetime appears in the parent trace as a
    ``runtime.worker`` span tagged ``worker_id``; spans and metric
    deltas recorded inside the child are relayed back and merged under
    it (a killed worker simply has no relayed telemetry — the parent
    span still marks the lane and the loss).
    """
    tr = tracer()
    start = time.perf_counter()
    frames: list = []
    status, payload = "crash", ""
    got_message = False
    with tr.span("runtime.worker", worker=worker_id) as wspan:
        trace_ctx = TraceContext(
            trace_id=tr.trace_id,
            parent_span=tr.current_span_id(),
            worker_id=worker_id,
        )
        proc, parent_conn = spawn_worker(
            fn, args, kwargs, memory_mb, trace_ctx=trace_ctx
        )
        deadline = None if wall_time is None else time.monotonic() + wall_time
        try:
            while True:
                remaining = (
                    None if deadline is None
                    else max(0.0, deadline - time.monotonic())
                )
                if not parent_conn.poll(remaining):
                    status = "timeout"
                    payload = f"worker exceeded {wall_time:.1f}s wall clock"
                    break
                try:
                    msg = parent_conn.recv()
                except (EOFError, OSError):
                    break  # child died before completing the send
                if (
                    isinstance(msg, tuple) and len(msg) == 2
                    and msg[0] == "telemetry"
                ):
                    frames.append(msg[1])
                    continue  # the final status message follows
                status, payload = msg
                got_message = True
                break
        finally:
            reap_worker(proc, parent_conn, kill_grace)
        wspan.set(status=status)
        anchor = getattr(wspan, "span_id", None)
        depth = getattr(wspan, "depth", 0)
        for frame in frames:
            merge_frame(frame, anchor_span=anchor, anchor_depth=depth)
    elapsed = time.perf_counter() - start
    if not got_message and status != "timeout":
        # hard death without a report: OOM-killer or native abort
        code = proc.exitcode
        status = "crash"
        payload = f"worker died with exit code {code}"
    if status == "soundness":
        dump_flight("soundness")
        raise SoundnessError(payload)
    if status == "ok":
        return WorkerReport(status="ok", result=payload, wall_time=elapsed)
    return WorkerReport(status=status, detail=str(payload), wall_time=elapsed)


# -- the isolated CCAC verifier ----------------------------------------------


def _verify_task(
    cfg, precision, candidate, worst_case, time_limit, validate,
    certify=False, environments=None,
):
    """Runs inside the worker: one fresh verifier, one call."""
    from ..core.verifier import CcacVerifier

    verifier = CcacVerifier(
        cfg, wce_precision=precision, validate=validate, certify=certify,
        environments=environments,
    )
    deadline = None if time_limit is None else time.perf_counter() + time_limit
    return verifier.find_counterexample(
        candidate, worst_case=worst_case, deadline=deadline
    )


class IsolatedVerifier:
    """Drop-in for :class:`repro.core.CcacVerifier` with process isolation.

    Each ``find_counterexample`` call runs in a fresh worker under
    ``limits``; a killed worker yields ``unknown`` (with ``degraded=True``
    so the CEGIS loop reports an honest stop reason) after bounded
    retries with escalated budgets.
    """

    #: hard watchdog headroom over the in-child soft deadline
    WATCHDOG_SLACK = 1.25

    def __init__(
        self,
        cfg,
        wce_precision: Fraction = Fraction(1, 8),
        limits: WorkerLimits = WorkerLimits(),
        validate: bool = True,
        retry_seed: Optional[int] = None,
        certify: bool = False,
        environments=None,
    ):
        self.cfg = cfg
        self.wce_precision = Fraction(wce_precision)
        self.limits = limits
        self.validate = validate
        self.certify = certify
        self.environments = (
            tuple(environments) if environments is not None else None
        )
        self.calls = 0
        self.total_time = 0.0
        self.kills = 0
        self.degradations: list[dict] = []
        # seedable so chaos experiments replay the same retry schedule
        self._retry_rng = random.Random(retry_seed)

    def find_counterexample(
        self,
        candidate,
        worst_case: bool = False,
        deadline: Optional[float] = None,
    ):
        from ..core.verifier import VerificationResult

        self.calls += 1
        tr = tracer()
        start = time.perf_counter()
        limits = self.limits
        attempts = max(0, limits.retries) + 1
        last_report: Optional[WorkerReport] = None
        for attempt in range(attempts):
            budget = limits.budget(attempt)
            if deadline is not None:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                budget = min(budget, remaining)
            watchdog = budget * self.WATCHDOG_SLACK + limits.kill_grace
            report = run_isolated(
                _verify_task,
                args=(
                    self.cfg,
                    self.wce_precision,
                    candidate,
                    worst_case,
                    budget,
                    self.validate,
                    self.certify,
                    self.environments,
                ),
                wall_time=watchdog,
                memory_mb=limits.memory_mb,
                kill_grace=limits.kill_grace,
                worker_id=f"w{attempt}",
            )
            last_report = report
            self.total_time += report.wall_time
            if report.ok:
                result = report.result
                # in-child soft-deadline expiry is a plain unknown, not a
                # kill: return it as-is and let the caller's policy decide
                return result
            if report.status == "error":
                raise WorkerError(report.detail)
            # killed (timeout / oom / crash): record, notify, retry fresh
            self.kills += 1
            event = {
                "kind": "worker_killed",
                "status": report.status,
                "attempt": attempt + 1,
                "attempts": attempts,
                "budget": round(budget, 3),
                "detail": report.detail,
            }
            self.degradations.append(event)
            metrics().counter("runtime.worker_kills").inc()
            if tr.enabled:
                tr.event(
                    "runtime.degrade",
                    level=WARN,
                    msg=(
                        f"[runtime] solver worker {report.status} "
                        f"(attempt {attempt + 1}/{attempts}, "
                        f"budget {budget:.1f}s) -> "
                        + ("retrying" if attempt + 1 < attempts else "unknown")
                    ),
                    **event,
                )
            if attempt + 1 < attempts:
                # full-jitter backoff between attempts: a fanned-out bad
                # query must not stampede back in lockstep.  Deadline-aware:
                # never sleep past the caller's remaining time budget.
                delay = full_jitter_backoff(
                    limits.backoff_base,
                    attempt,
                    cap=limits.backoff_cap,
                    rng=self._retry_rng,
                )
                if deadline is not None:
                    delay = min(delay, max(0.0, deadline - time.perf_counter()))
                if delay > 0:
                    time.sleep(delay)
        elapsed = time.perf_counter() - start
        detail = last_report.detail if last_report else "deadline already expired"
        if last_report is not None and last_report.status in (
            "timeout", "oom", "crash",
        ):
            # every retry was killed: the escalation ladder is exhausted
            # and the run degrades — preserve the black box
            dump_flight("worker-escalation")
        return VerificationResult(
            candidate=candidate,
            verified=False,
            counterexample=None,
            wall_time=elapsed,
            solver_checks=0,
            unknown=True,
            degraded=True,
        )

    def verify(self, candidate) -> bool:
        """Convenience wrapper mirroring :meth:`CcacVerifier.verify`."""
        return self.find_counterexample(candidate).verified
