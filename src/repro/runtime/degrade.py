"""Graceful degradation ladder: finish with *some* verdict, honestly.

A long synthesis should not die because the worst-case-counterexample
search (an expensive binary-search maximization) times out, nor loop
forever on a verifier that keeps answering ``unknown``.  The ladder
weakens the search in controlled, recorded steps:

1. **worst-case fallback** — a worst-case search that comes back
   ``unknown`` is retried as a plain counterexample search (any
   counterexample still makes progress, it just prunes less);
2. **worst-case disable** — after ``wce_fail_limit`` fallbacks the
   worst-case search is skipped outright;
3. **precision step-down** — after ``unknown_threshold`` consecutive
   inconclusive calls, ``wce_precision`` is coarsened (doubled, up to 1)
   so future binary searches need fewer probes.

Every step emits a structured ``runtime.degrade`` event and is appended
to :attr:`ResilientVerifier.degradations`, so a run that finishes
degraded carries an explicit record of exactly what was weakened.
Results produced after (or because of) a degradation are flagged
``degraded=True``; the CEGIS loop reports them as ``stop_reason
= degraded`` rather than pretending the budget simply ran out.

:class:`~repro.runtime.errors.SoundnessError` is deliberately *not*
handled anywhere in this module: validation failures must crash the run.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional, Sequence

from ..obs import WARN, metrics, tracer

__all__ = ["ResilientVerifier", "default_precision_ladder"]


def default_precision_ladder(start: Fraction) -> tuple[Fraction, ...]:
    """Coarsening schedule for ``wce_precision``: double up to 1."""
    rungs = [Fraction(start)]
    while rungs[-1] < 1:
        rungs.append(min(rungs[-1] * 2, Fraction(1)))
    return tuple(rungs)


def _mark_degraded(result):
    """Flag a verification result as degraded (best effort, duck-typed)."""
    try:
        result.degraded = True
    except AttributeError:  # pragma: no cover - frozen result types
        pass
    return result


class ResilientVerifier:
    """Wraps a verifier with the degradation ladder.

    ``base`` is any object with the :class:`repro.cegis.interfaces.Verifier`
    shape whose results carry ``unknown``; ``wce_precision`` is stepped on
    the base when it exposes that attribute (both
    :class:`repro.core.CcacVerifier` and
    :class:`repro.runtime.workers.IsolatedVerifier` do).
    """

    def __init__(
        self,
        base,
        precision_ladder: Optional[Sequence[Fraction]] = None,
        unknown_threshold: int = 2,
        wce_fail_limit: int = 3,
    ):
        self.base = base
        if precision_ladder is None:
            start = getattr(base, "wce_precision", None)
            precision_ladder = (
                default_precision_ladder(start) if start is not None else ()
            )
        self.precision_ladder = tuple(Fraction(p) for p in precision_ladder)
        self.unknown_threshold = unknown_threshold
        self.wce_fail_limit = wce_fail_limit
        self.degradations: list[dict] = []
        self.calls = 0
        self._rung = 0
        self._unknown_streak = 0
        self._wce_failures = 0
        self._wce_disabled = False

    # -- bookkeeping ----------------------------------------------------------

    def _degrade(self, kind: str, msg: str, **detail) -> None:
        event = {"kind": kind, "call": self.calls, **detail}
        self.degradations.append(event)
        metrics().counter("runtime.degradations").inc()
        tr = tracer()
        if tr.enabled:
            tr.event("runtime.degrade", level=WARN, msg=f"[runtime] {msg}", **event)

    def _step_precision(self) -> bool:
        """Coarsen the base's ``wce_precision`` one rung; False at bottom."""
        if self._rung + 1 >= len(self.precision_ladder):
            return False
        if not hasattr(self.base, "wce_precision"):
            return False
        old = self.precision_ladder[self._rung]
        self._rung += 1
        new = self.precision_ladder[self._rung]
        self.base.wce_precision = new
        self._degrade(
            "wce_precision",
            f"stepping wce_precision {old} -> {new} after "
            f"{self._unknown_streak} consecutive unknowns",
            old=str(old),
            new=str(new),
        )
        return True

    # -- the verifier protocol ------------------------------------------------

    def find_counterexample(self, candidate, worst_case: bool = False, deadline=None):
        self.calls += 1
        degraded_call = False
        want_wce = worst_case and not self._wce_disabled
        if worst_case and self._wce_disabled:
            degraded_call = True  # the caller asked for wce and isn't getting it
        result = self.base.find_counterexample(
            candidate, worst_case=want_wce, deadline=deadline
        )
        if want_wce and getattr(result, "unknown", False):
            # rung 1: worst-case search timed out -> plain counterexample
            self._wce_failures += 1
            self._degrade(
                "wce_fallback",
                "worst-case counterexample search inconclusive; "
                "falling back to plain search",
                failures=self._wce_failures,
            )
            degraded_call = True
            result = self.base.find_counterexample(
                candidate, worst_case=False, deadline=deadline
            )
            if not self._wce_disabled and self._wce_failures >= self.wce_fail_limit:
                self._wce_disabled = True
                self._degrade(
                    "wce_disabled",
                    f"disabling worst-case search after "
                    f"{self._wce_failures} failures",
                )
        if getattr(result, "unknown", False):
            self._unknown_streak += 1
            degraded_call = True
            if self._unknown_streak >= self.unknown_threshold:
                # rung 2: repeated unknowns -> coarsen the wce precision
                if self._step_precision():
                    self._unknown_streak = 0
        else:
            self._unknown_streak = 0
        if degraded_call:
            result = _mark_degraded(result)
        return result

    def verify(self, candidate) -> bool:
        return self.find_counterexample(candidate).verified

    # -- batched rounds (only exposed when the base is batch-capable) ---------

    def __getattr__(self, name):
        # hasattr(wrapper, "verify_batch") must mirror the base: the
        # CEGIS loop feature-detects batch support, and advertising it
        # over a non-batch base would break portfolio fallback
        if name == "verify_batch" and hasattr(self.base, "verify_batch"):
            return self._verify_batch
        raise AttributeError(name)

    def _verify_batch(self, candidates, worst_case: bool = False, deadline=None):
        """One portfolio round under the same degradation ladder."""
        self.calls += 1
        degraded_call = False
        want_wce = worst_case and not self._wce_disabled
        if worst_case and self._wce_disabled:
            degraded_call = True
        verdict = self.base.verify_batch(
            candidates, worst_case=want_wce, deadline=deadline
        )
        inconclusive = verdict.winner is None and getattr(
            verdict.result, "unknown", False
        )
        if want_wce and inconclusive:
            # rung 1, batch edition: nobody finished the worst-case
            # search -> race again with the plain search
            self._wce_failures += 1
            self._degrade(
                "wce_fallback",
                "worst-case portfolio round inconclusive; "
                "falling back to plain search",
                failures=self._wce_failures,
            )
            degraded_call = True
            verdict = self.base.verify_batch(
                candidates, worst_case=False, deadline=deadline
            )
            if not self._wce_disabled and self._wce_failures >= self.wce_fail_limit:
                self._wce_disabled = True
                self._degrade(
                    "wce_disabled",
                    f"disabling worst-case search after "
                    f"{self._wce_failures} failures",
                )
        if getattr(verdict.result, "unknown", False):
            self._unknown_streak += 1
            degraded_call = True
            if self._unknown_streak >= self.unknown_threshold:
                if self._step_precision():
                    self._unknown_streak = 0
        else:
            self._unknown_streak = 0
        if degraded_call:
            _mark_degraded(verdict.result)
        return verdict
