"""Fault-tolerant synthesis runtime.

Long synthesis runs fail in boring ways — the process is killed, a solver
query blows the memory budget, the worst-case search times out — and in
one scary way: the from-scratch SMT solver silently returns a wrong
answer.  This package handles both classes explicitly:

- :mod:`~repro.runtime.checkpoint` — atomic JSON checkpoints of CEGIS
  state; a SIGKILL'd run resumes deterministically (``ccmatic resume``).
- :mod:`~repro.runtime.workers` — verifier calls in isolated
  ``multiprocessing`` workers with hard wall-clock and memory caps; a
  killed worker is an honest ``unknown``, retried with escalated budgets.
- :mod:`~repro.runtime.degrade` — the degradation ladder: recorded,
  structured weakenings (worst-case fallback, precision step-down) so a
  stuck run still terminates with a verdict.
- :mod:`~repro.runtime.validate` — independent result validation: an
  exact-arithmetic evaluator re-checks every SAT model against the
  asserted constraints, and every counterexample trace is replayed
  against the CCAC environment.  Failures raise
  :class:`~repro.runtime.errors.SoundnessError` and are *never* degraded
  away.
- :mod:`~repro.runtime.runner` — the policy layer tying it together:
  :func:`~repro.runtime.runner.run_synthesis` /
  :func:`~repro.runtime.runner.resume_synthesis`.

Import discipline: :mod:`repro.core` imports :mod:`repro.runtime.validate`,
so this ``__init__`` must not (transitively) import :mod:`repro.core` at
module load — the runner is exposed lazily via PEP 562.
"""

from .checkpoint import SCHEMA_VERSION, CheckpointState, CheckpointStore
from .degrade import ResilientVerifier, default_precision_ladder
from .errors import (
    CheckpointError,
    CheckpointMismatchError,
    RuntimeFault,
    SoundnessError,
    WorkerError,
)
from .serialize import (
    decode_candidate,
    decode_query,
    decode_trace,
    encode_candidate,
    encode_query,
    encode_trace,
    query_fingerprint,
)
from .validate import (
    CrossValidation,
    cross_validate,
    evaluate_term,
    validate_assignment,
    validate_counterexample,
    validate_model,
)
from .workers import IsolatedVerifier, WorkerLimits, WorkerReport, run_isolated

__all__ = [
    "SCHEMA_VERSION",
    "CheckpointError",
    "CheckpointMismatchError",
    "CheckpointState",
    "CheckpointStore",
    "CrossValidation",
    "IsolatedVerifier",
    "ResilientVerifier",
    "RuntimeFault",
    "RuntimeOptions",
    "SoundnessError",
    "WorkerError",
    "WorkerLimits",
    "WorkerReport",
    "cross_validate",
    "decode_candidate",
    "decode_query",
    "decode_trace",
    "default_precision_ladder",
    "encode_candidate",
    "encode_query",
    "encode_trace",
    "evaluate_term",
    "query_fingerprint",
    "resume_synthesis",
    "run_isolated",
    "run_synthesis",
    "validate_assignment",
    "validate_counterexample",
    "validate_model",
]

_LAZY = {"RuntimeOptions", "run_synthesis", "resume_synthesis"}


def __getattr__(name: str):
    # runner imports repro.core (which imports runtime.validate); loading
    # it eagerly here would close an import cycle mid-initialization
    if name in _LAZY:
        from . import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
