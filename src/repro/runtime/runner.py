"""The fault-tolerant runtime's policy layer: one entry point per run mode.

:func:`run_synthesis` composes the runtime pieces around
:func:`repro.core.synthesize` according to :class:`RuntimeOptions`:

    CcacVerifier                    (validation always innermost)
      -> IsolatedVerifier           (optional: worker isolation + caps)
        -> ResilientVerifier        (optional: degradation ladder)
          -> CegisLoop + CheckpointStore (optional: crash-safe state)

:func:`resume_synthesis` rebuilds the original query from the checkpoint's
embedded metadata, verifies the fingerprint, and continues the run —
``ccmatic resume <ckpt>`` is a thin shell over it.  Volatile knobs
(time budget, iteration cap) may be overridden on resume; semantic fields
cannot be (the fingerprint would refuse the state).
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass, replace
from fractions import Fraction
from typing import Optional

from ..obs import tracer
from .checkpoint import CheckpointStore
from .degrade import ResilientVerifier
from .errors import CheckpointError
from .serialize import (
    decode_candidate,
    decode_query,
    decode_trace,
    encode_candidate,
    encode_query,
    encode_trace,
    query_fingerprint,
)
from .workers import IsolatedVerifier, WorkerLimits

__all__ = [
    "RuntimeOptions",
    "make_checkpoint_store",
    "resume_synthesis",
    "run_synthesis",
]


@dataclass
class RuntimeOptions:
    """Fault-tolerance configuration of one synthesis run."""

    #: checkpoint file; None disables crash-safe persistence
    checkpoint_path: Optional[str] = None
    #: run verifier calls in isolated, resource-capped workers
    isolate: bool = False
    #: per-call wall-clock cap for isolated workers, seconds
    solver_timeout: float = 60.0
    #: per-worker address-space cap in MiB (None = unlimited)
    solver_mem_mb: Optional[int] = None
    #: extra attempts after a killed worker
    retries: int = 1
    #: apply the degradation ladder (wce fallback / precision step-down)
    degrade: bool = True
    #: independently validate every SAT model and counterexample
    validate: bool = True
    #: precision of the worst-case counterexample binary search
    wce_precision: Fraction = Fraction(1, 8)
    #: advisory: run every solution through the discrete simulator and
    #: attach the reports to ``SynthesisResult.cross_checks``
    cross_check: bool = False
    #: adversarial falsification budget (trace evaluations) to spend on
    #: every solution after synthesis; 0 disables.  An in-fragment
    #: violation of a verified solution raises
    #: :class:`~repro.runtime.errors.SoundnessError`
    falsify: int = 0
    #: seed of the falsification search (replayable)
    falsify_seed: int = 0
    #: directory of the shared on-disk query cache (None disables it);
    #: portfolio workers and successive runs pool conclusive verdicts
    cache_dir: Optional[str] = None
    #: keep one incremental solver session across verifier calls
    #: (in-process verifier only; isolated/portfolio workers are fresh
    #: per call by design)
    incremental: bool = False
    #: produce and independently check an UNSAT proof for every verified
    #: verdict (see :mod:`repro.trust`); a proof that fails to check
    #: raises :class:`~repro.runtime.errors.SoundnessError`
    certify: bool = False
    #: runtime-injected persistent worker pool
    #: (:class:`repro.service.pool.WorkerPool`); portfolio rounds
    #: (``jobs > 1``) dispatch to it instead of forking per batch.  Never
    #: serialized — a pool belongs to the process that started it, and
    #: its lifecycle stays with that owner (this module never shuts one
    #: down)
    worker_pool: Optional[object] = None


def make_checkpoint_store(query, path: str) -> CheckpointStore:
    """A :class:`CheckpointStore` wired with the CCmatic codecs for
    ``query`` (exact-Fraction candidates/traces, query fingerprint, and
    the encoded query embedded as metadata for ``resume``)."""
    cfg = query.cfg
    return CheckpointStore(
        path,
        fingerprint=query_fingerprint(query),
        meta={"query": encode_query(query)},
        encode_candidate=encode_candidate,
        decode_candidate=decode_candidate,
        encode_cex=encode_trace,
        decode_cex=lambda data: decode_trace(data, cfg),
    )


def _build_verifier(query, options: RuntimeOptions):
    """The verifier stack for a run; returns (verifier, parts) where
    ``parts`` are the layers whose ``degradations`` should be merged."""
    from ..core.verifier import CcacVerifier

    parts = []
    jobs = int(getattr(query, "jobs", 1))
    environments = getattr(query, "environments", None)
    if jobs > 1:
        from ..engine import PortfolioVerifier

        base = PortfolioVerifier(
            query.cfg,
            jobs=jobs,
            wce_precision=options.wce_precision,
            limits=WorkerLimits(
                wall_time=options.solver_timeout,
                memory_mb=options.solver_mem_mb,
                retries=options.retries,
            ),
            validate=options.validate,
            cache_dir=options.cache_dir,
            certify=options.certify,
            pool=options.worker_pool,
            environments=environments,
        )
    elif options.isolate:
        base = IsolatedVerifier(
            query.cfg,
            wce_precision=options.wce_precision,
            limits=WorkerLimits(
                wall_time=options.solver_timeout,
                memory_mb=options.solver_mem_mb,
                retries=options.retries,
            ),
            validate=options.validate,
            certify=options.certify,
            environments=environments,
        )
    else:
        cache = None
        if options.cache_dir:
            from ..engine import QueryCache

            cache = QueryCache(options.cache_dir)
        base = CcacVerifier(
            query.cfg,
            wce_precision=options.wce_precision,
            validate=options.validate,
            incremental=options.incremental,
            cache=cache,
            certify=options.certify,
            environments=environments,
        )
    parts.append(base)
    verifier = base
    if options.degrade:
        verifier = ResilientVerifier(base)
        parts.append(verifier)
    return verifier, parts


def run_synthesis(query, options: Optional[RuntimeOptions] = None):
    """Run a synthesis query under the fault-tolerant runtime.

    Returns a :class:`repro.core.synthesizer.SynthesisResult` whose
    ``degradations`` aggregates every recorded weakening (worker kills,
    worst-case fallbacks, precision step-downs) across the verifier
    stack.
    """
    from ..core.synthesizer import synthesize
    from ..obs import ensure_flight_recorder, set_dump_dir

    options = options or RuntimeOptions()
    # arm the flight recorder next to the checkpoint so a soundness
    # error or worker escalation leaves a black box beside the run state
    if options.checkpoint_path:
        set_dump_dir(
            os.path.dirname(os.path.abspath(options.checkpoint_path)) or "."
        )
    ensure_flight_recorder()
    verifier, parts = _build_verifier(query, options)
    checkpoint = (
        make_checkpoint_store(query, options.checkpoint_path)
        if options.checkpoint_path
        else None
    )
    result = synthesize(query, verifier=verifier, checkpoint=checkpoint)
    merged: list = []
    for part in parts:
        merged.extend(getattr(part, "degradations", ()))
    result.degradations = merged
    if options.cross_check:
        if result.solutions:
            from .validate import cross_validate

            result.cross_checks = [
                cross_validate(cand, query.cfg) for cand in result.solutions
            ]
        else:
            # requested but nothing to check: record the skip loudly
            # (an empty list, NOT None — reports distinguish "ran, no
            # solutions" from "never requested")
            result.cross_checks = []
            tracer().event(
                "runtime.cross_check_skipped",
                solutions=0,
                msg="[runtime] cross-check requested but the run found "
                    "no solutions to check",
            )
    if options.falsify > 0 and result.solutions:
        from ..ccas import TemplateCCA
        from ..falsify import FalsifyBudget, falsify_cca

        budget = FalsifyBudget(evaluations=options.falsify, stop_after=1)
        for cand in result.solutions:
            falsify_cca(
                lambda cand=cand: TemplateCCA(
                    cand, cwnd_min=query.cfg.cwnd_min
                ),
                query.cfg,
                spec=cand.pretty(),
                budget=budget,
                seed=options.falsify_seed,
                verified=True,
                stats=result,
            )
    return result


def _promote_backup(path: str) -> None:
    """Set the damaged checkpoint aside and promote ``<path>.bak``."""
    bak = path + ".bak"
    if not os.path.exists(bak):
        raise CheckpointError(
            f"no backup checkpoint {bak!r} to resume from (backups are "
            f"kept from the second save onward)"
        )
    if os.path.exists(path):
        os.replace(path, path + ".corrupt")
    # copy, not move: the backup stays available if this resume also dies
    shutil.copyfile(bak, path)
    tracer().event(
        "runtime.resume_from_backup",
        path=path,
        msg=f"[runtime] promoted backup checkpoint {bak} -> {path}",
    )


def resume_synthesis(
    path: str,
    options: Optional[RuntimeOptions] = None,
    time_budget: Optional[float] = None,
    max_iterations: Optional[int] = None,
    jobs: Optional[int] = None,
    from_backup: bool = False,
):
    """Continue a checkpointed run (``ccmatic resume``).

    The original query is reconstructed from the checkpoint's embedded
    metadata; ``time_budget`` / ``max_iterations`` / ``jobs`` optionally
    override the stored volatile knobs (they are excluded from the
    fingerprint, so extending a budget or changing the portfolio width
    on resume is legal).  Raises
    :class:`CheckpointError` when the file carries no query metadata and
    :class:`CheckpointMismatchError` when the state belongs to a
    different query than its metadata claims.

    ``from_backup=True`` recovers from a corrupt latest checkpoint: the
    damaged file is set aside as ``<path>.corrupt`` and the previous
    generation (``<path>.bak``, kept on every save) is promoted before
    resuming — at most one save interval of work is lost.
    """
    if from_backup:
        _promote_backup(path)
    fingerprint, meta = CheckpointStore.read_meta(path)
    encoded = meta.get("query")
    if not encoded:
        raise CheckpointError(
            f"checkpoint {path!r} carries no query metadata; it was not "
            f"written by run_synthesis and cannot be resumed standalone"
        )
    query = decode_query(encoded)
    if query_fingerprint(query) != fingerprint:
        raise CheckpointError(
            f"checkpoint {path!r} metadata does not match its fingerprint; "
            f"refusing to resume from inconsistent state"
        )
    overrides = {}
    if time_budget is not None:
        overrides["time_budget"] = time_budget
    if max_iterations is not None:
        overrides["max_iterations"] = max_iterations
    if jobs is not None:
        overrides["jobs"] = jobs
    if overrides:
        query = replace(query, **overrides)
    options = options or RuntimeOptions()
    options = replace(options, checkpoint_path=path)
    tracer().event(
        "runtime.resume",
        path=path,
        fingerprint=fingerprint[:12],
        msg=f"[runtime] resuming checkpoint {path}",
    )
    return run_synthesis(query, options)
