"""Independent result validation: re-check solver verdicts with no solver.

The reproduction replaces z3 with a from-scratch DPLL(T) solver
(:mod:`repro.smt`), so the paper's "provably correct" claim is only as
strong as that solver.  This module provides the compensating check: every
SAT model and every counterexample trace is re-validated by code that
shares *no search code* with the solver —

* :func:`evaluate_term` is a standalone exact-arithmetic (``Fraction``)
  interpreter over the term AST.  It deliberately re-implements the
  semantics instead of calling :func:`repro.smt.terms.evaluate` or
  :meth:`repro.smt.solver.Model.value`, so a bug in those paths cannot
  vouch for itself.
* :func:`validate_model` evaluates every *raw* asserted formula (before
  preprocessing) under the model's variable assignment; a single False
  raises :class:`~repro.runtime.errors.SoundnessError`.  Because the
  check runs on the raw formulas while the solver encodes the
  *compiled* form (:mod:`repro.smt.compile`), it also soundness-checks
  the compile pipeline itself: variables the pipeline eliminated appear
  in the model via the reconstruction map
  (:meth:`repro.smt.compile.CompiledQuery.reconstruct` — the solver
  extends its models with the recorded definitions), so any unsound
  simplification, inlining, or bounds fix shows up as a failed raw
  evaluation here.
* :func:`validate_counterexample` replays a trace against the CCAC
  environment constraints numerically, re-derives the candidate's cwnd
  trajectory from its coefficients, and confirms the trace actually
  violates the desired property — a bogus counterexample fed to the
  generator would silently prune correct candidates.
* :func:`cross_validate` (advisory) runs a synthesized CCA through the
  discrete-event simulator :mod:`repro.sim` as an end-to-end sanity
  check of verified solutions.

Only the term *language* (:mod:`repro.smt.terms` data structures) is
shared; the SAT core, Simplex, and model construction are not on any
code path here.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Mapping, Optional

from ..obs import DEBUG, metrics, tracer
from ..smt.terms import Kind, Sort, Term
from .errors import SoundnessError

__all__ = [
    "CrossValidation",
    "cross_validate",
    "evaluate_term",
    "validate_assignment",
    "validate_counterexample",
    "validate_model",
]


def evaluate_term(
    term: Term,
    bools: Mapping[Term, bool],
    reals: Mapping[Term, Fraction],
):
    """Exact evaluation of ``term`` under a (possibly partial) assignment.

    Unassigned variables default to ``False`` / ``Fraction(0)``, matching
    the solver's don't-care convention, so a model that simply omits a
    variable agrees with this evaluator on what the variable means.
    """
    cache: dict[int, object] = {}
    # iterative post-order walk: validation runs on arbitrary user
    # formulas, so no recursion-depth assumption is made
    stack: list[tuple[Term, bool]] = [(term, False)]
    while stack:
        t, ready = stack.pop()
        if id(t) in cache:
            continue
        k = t.kind
        if not ready and t.args:
            stack.append((t, True))
            for a in t.args:
                stack.append((a, False))
            continue
        if k is Kind.CONST:
            val: object = t.value
        elif k is Kind.VAR:
            if t.sort is Sort.BOOL:
                val = bool(bools.get(t, False))
            else:
                val = Fraction(reals.get(t, Fraction(0)))
        else:
            args = [cache[id(a)] for a in t.args]
            if k is Kind.NOT:
                val = not args[0]
            elif k is Kind.AND:
                val = all(args)
            elif k is Kind.OR:
                val = any(args)
            elif k is Kind.IMPLIES:
                val = (not args[0]) or bool(args[1])
            elif k is Kind.IFF:
                val = bool(args[0]) == bool(args[1])
            elif k is Kind.ITE:
                val = args[1] if args[0] else args[2]
            elif k is Kind.ADD:
                val = sum(args[1:], args[0])
            elif k is Kind.NEG:
                val = -args[0]
            elif k is Kind.SCALE:
                if t.value is None:
                    val = args[0] * args[1]
                else:
                    val = t.value * args[0]
            elif k is Kind.LE:
                val = args[0] <= args[1]
            elif k is Kind.LT:
                val = args[0] < args[1]
            elif k is Kind.EQ:
                val = args[0] == args[1]
            else:  # pragma: no cover - the term language is closed
                raise SoundnessError(f"validator cannot evaluate kind {k}")
        cache[id(t)] = val
    return cache[id(term)]


def validate_assignment(
    assertions: Iterable[Term],
    bools: Mapping[Term, bool],
    reals: Mapping[Term, Fraction],
    context: str = "model",
) -> int:
    """Check that every assertion evaluates to True under the assignment.

    Returns the number of assertions checked; raises
    :class:`SoundnessError` on the first violation.
    """
    checked = 0
    for formula in assertions:
        checked += 1
        if evaluate_term(formula, bools, reals) is not True:
            raise SoundnessError(
                f"{context}: assertion #{checked} evaluates to False under "
                f"the solver's assignment (independent re-check): {formula}"
            )
    return checked


def validate_model(assertions: Iterable[Term], model, context: str = "model") -> int:
    """Validate a :class:`repro.smt.Model` against the raw assertions.

    ``model`` must expose ``assignment() -> (bools, reals)``.  The raw
    (pre-preprocessing) assertions are evaluated, so bugs in
    preprocessing, Tseitin conversion, the SAT core, or Simplex are all
    caught by the same check.
    """
    bools, reals = model.assignment()
    checked = validate_assignment(assertions, bools, reals, context=context)
    reg = metrics()
    reg.counter("runtime.models_validated").inc()
    tr = tracer()
    if tr.enabled:
        tr.event("runtime.validate", level=DEBUG, kind="model",
                 assertions=checked)
    return checked


def _desired_holds(trace) -> bool:
    """The trace's environment-specific desired property, numerically.

    Every trace class carries its own exact-arithmetic property check
    (:meth:`~repro.ccac.trace.CexTrace.desired_holds` for the paper's
    lossless property; the lossy subclass adds the loss-budget leg; the
    two-flow trace checks no-starvation), so this dispatch follows the
    counterexample's origin environment automatically.
    """
    return trace.desired_holds()


def _template_violations(trace, candidate) -> list[str]:
    """Re-derive the candidate's cwnd trajectory on the trace.

    Uses the candidate's raw coefficients directly (not its own
    ``next_cwnd`` helper) so the check stays independent of the
    template's evaluation code as well as the SMT encoding.  A two-flow
    trace runs the check once per flow (both flows execute the same
    candidate on their own observations).
    """
    flows = getattr(trace, "flows", None)
    if flows is not None:
        errors = []
        for i, flow in enumerate(flows, start=1):
            errors.extend(
                f"flow {i}: {e}" for e in _template_violations(flow, candidate)
            )
        return errors
    cfg = trace.cfg
    errors: list[str] = []
    history = len(candidate.betas)
    for t in range(cfg.T + 1):
        total = Fraction(candidate.gamma)
        for i in range(1, history + 1):
            back = t - i
            if candidate.alphas[i - 1] != 0:
                total += candidate.alphas[i - 1] * trace.cwnd_at(back)
            if candidate.betas[i - 1] != 0:
                total += candidate.betas[i - 1] * trace.ack_at(back)
        expected = max(total, cfg.cwnd_min)
        if trace.cwnd[t] != expected:
            errors.append(
                f"cwnd({t}) = {trace.cwnd[t]} but template rule gives {expected}"
            )
    return errors


def validate_counterexample(trace, candidate=None, must_violate: bool = True) -> None:
    """Replay a counterexample trace before it is fed to the generator.

    Three independent checks, any failure raising :class:`SoundnessError`:

    1. the trace satisfies every environment constraint of its origin
       environment (monotonicity, token bucket, service bounds, eager
       sender; loss semantics for finite-buffer traces; aggregate
       service splits and the min-share assumption for two-flow traces)
       under exact arithmetic — each trace class replays its own
       environment's constraints;
    2. if ``candidate`` is given, the trace's cwnd trajectory matches the
       candidate's template rule at every step (per flow for two-flow
       traces);
    3. if ``must_violate``, the trace actually violates its
       environment's desired property — otherwise it would wrongly prune
       correct candidates.
    """
    errors = trace.check_environment()
    if errors:
        raise SoundnessError(
            "counterexample violates its environment constraints: "
            + "; ".join(errors)
        )
    if candidate is not None:
        errors = _template_violations(trace, candidate)
        if errors:
            raise SoundnessError(
                "counterexample does not follow the candidate's rule: "
                + "; ".join(errors)
            )
    if must_violate and _desired_holds(trace):
        raise SoundnessError(
            "counterexample satisfies the desired property — it refutes "
            "nothing and would corrupt the generator's pruning"
        )
    reg = metrics()
    reg.counter("runtime.cex_validated").inc()
    tr = tracer()
    if tr.enabled:
        tr.event("runtime.validate", level=DEBUG, kind="counterexample")


@dataclass
class CrossValidation:
    """Advisory simulator cross-check of one synthesized CCA."""

    candidate: str
    policy: str
    ticks: int
    utilization: Fraction
    max_queue: Fraction
    ok: bool

    def describe(self) -> str:
        verdict = "consistent" if self.ok else "CONTRADICTED"
        return (
            f"sim[{self.policy}] util={float(self.utilization):.3f} "
            f"max_queue={float(self.max_queue):.3f} -> {verdict}"
        )


def cross_validate(
    candidate,
    cfg,
    ticks: int = 60,
    policy: str = "ideal",
    warmup: Optional[int] = None,
) -> CrossValidation:
    """Run a synthesized CCA through :mod:`repro.sim` and compare verdicts.

    The simulator is one concrete adversary out of the model's many, so
    this is a one-sided check: a verified CCA must keep its queue within
    the delay threshold and deliver non-trivial throughput on any
    admissible link, including the simulated one.  The check is advisory
    (returns a report rather than raising) because warmup and horizon
    differences make the utilization comparison approximate.
    """
    # imported lazily: repro.ccas / repro.sim sit above this module in the
    # package graph and are only needed when cross-validation is requested
    from ..ccas import TemplateCCA
    from ..sim import run_simulation

    if warmup is None:
        warmup = max(cfg.history + 1, ticks // 4)
    cca = TemplateCCA(candidate, cwnd_min=cfg.cwnd_min)
    result = run_simulation(cca, ticks=ticks, policy=policy, capacity=cfg.C)
    util = result.utilization(warmup)
    steady = range(warmup, ticks + 1)
    max_queue = max(result.A[t] - result.S[t] for t in steady)
    queue_limit = cfg.delay_thresh * cfg.C * cfg.D
    ok = max_queue <= queue_limit and util > 0
    report = CrossValidation(
        candidate=str(candidate),
        policy=policy,
        ticks=ticks,
        utilization=util,
        max_queue=max_queue,
        ok=ok,
    )
    tr = tracer()
    if tr.enabled:
        tr.event(
            "runtime.cross_validate",
            ok=ok,
            policy=policy,
            utilization=float(util),
            max_queue=float(max_queue),
        )
    return report
