"""Exception hierarchy of the fault-tolerant runtime.

The one rule that shapes this hierarchy: :class:`SoundnessError` is the
single error class the runtime must never degrade away.  Watchdog kills,
OOM'd workers, and solver timeouts all collapse to an honest ``unknown``
verdict; a failed *independent validation* of a solver result means the
stack can no longer be trusted and must crash loudly.
"""

from __future__ import annotations


class RuntimeFault(Exception):
    """Base class for all fault-tolerant-runtime errors."""


class SoundnessError(RuntimeFault):
    """Independent validation refuted a solver result.

    Raised when a SAT model violates an asserted constraint under exact
    re-evaluation, or when a counterexample trace fails to satisfy the
    CCAC environment constraints (or fails to violate the desired
    property).  Unlike every other failure the runtime handles, this one
    is never retried, degraded, or converted to ``unknown`` — a single
    occurrence invalidates the run's correctness claim.
    """


class CheckpointError(RuntimeFault):
    """A checkpoint could not be read or written."""


class CheckpointMismatchError(CheckpointError):
    """A checkpoint's query fingerprint does not match the resuming query.

    Resuming CEGIS state against a different query would silently corrupt
    the counterexample set, so a mismatch is a hard error, never a warning.
    """


class WorkerError(RuntimeFault):
    """An isolated solver worker raised a deterministic exception.

    Distinct from a watchdog kill or OOM (which yield ``unknown`` and a
    bounded retry): a Python-level exception inside the worker would fail
    identically on retry, so it is surfaced to the caller instead.
    """
