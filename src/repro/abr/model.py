"""Adaptive-bitrate (ABR) verification on the CCAC environment (paper §5).

The paper reports: "We were able to reuse CCAC's environment model and
encode video quality/stall in terms of playback buffer to build a verifier
for ABR."  This module is that construction:

* the **network** is the same jittery token-bucket service envelope as the
  CCA model — the client is always backlogged (it downloads as fast as the
  link allows), so cumulative downloaded bytes ``S_t`` satisfy
  ``C*(t-j) <= S_t <= C*t`` with per-tick rate at most ``C``;
* the **video** is a sequence of chunks, one unit of playback each, at two
  quality levels with sizes ``size_low < size_high`` (bytes);
* chunk ``k`` must be fully downloaded by its playback deadline
  ``startup_delay + k``; violating that is a **stall**;
* the **ABR rule** under analysis is the classic buffer-threshold policy:
  pick high quality for chunk ``k`` iff the downloader is at least
  ``theta`` bytes ahead of the playback schedule when the chunk is
  requested.

The verifier asks: does some admissible service trace make the rule stall
(or fall below a target average quality)?  UNSAT = the rule is provably
stall-free on every network the envelope allows.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from ..smt import And, Ite, Not, Or, Real, RealVal, Solver, Term, sat, unsat


@dataclass(frozen=True)
class AbrConfig:
    """Parameters of the ABR verification model.

    ``n_chunks`` chunks play back-to-back, one per tick, starting after
    ``startup_delay`` ticks of pre-buffering.  The trace is long enough to
    cover the last deadline.
    """

    n_chunks: int = 6
    startup_delay: int = 2
    size_low: Fraction = Fraction(1, 2)
    size_high: Fraction = Fraction(3, 2)
    C: Fraction = Fraction(1)
    jitter: int = 1

    @property
    def T(self) -> int:
        return self.startup_delay + self.n_chunks

    def __post_init__(self):
        if self.size_low >= self.size_high:
            raise ValueError("size_low must be below size_high")
        if self.size_low > self.C:
            raise ValueError("low quality must be sustainable at link rate")


@dataclass(frozen=True)
class AbrPolicy:
    """Buffer-threshold rule: request high quality for a chunk iff the
    download is at least ``theta`` bytes ahead of the playback need."""

    theta: Fraction

    def describe(self) -> str:
        return f"high quality iff download lead >= {self.theta} bytes"


@dataclass
class AbrTrace:
    """Counterexample: concrete service trace + chosen qualities."""

    S: list[Fraction]
    qualities: list[int]  # 0 = low, 1 = high per chunk
    stalled_chunk: Optional[int]
    avg_quality: Fraction


class AbrModel:
    """SMT encoding of the ABR client on the jittery service envelope."""

    def __init__(self, cfg: AbrConfig, policy: AbrPolicy, prefix: str = "abr"):
        self.cfg = cfg
        self.policy = policy
        self.prefix = prefix
        T = cfg.T
        self.S = [Real(f"{prefix}_S_{t}") for t in range(T + 1)]
        # cumulative bytes needed to finish chunks 0..k
        self.need = [Real(f"{prefix}_need_{k}") for k in range(cfg.n_chunks)]

    def request_tick(self, k: int) -> int:
        """Tick at which chunk ``k``'s quality is decided: its download
        cannot start before the previous chunk's deadline window opens."""
        return min(k, self.cfg.T)

    def deadline(self, k: int) -> int:
        return self.cfg.startup_delay + k + 1 - 1  # plays during this tick

    def environment_constraints(self) -> list[Term]:
        """The backlogged-client service envelope."""
        cfg = self.cfg
        cons: list[Term] = [self.S[0].eq(0)]
        for t in range(1, cfg.T + 1):
            cons.append(self.S[t] >= self.S[t - 1])
            cons.append(self.S[t] - self.S[t - 1] <= RealVal(cfg.C))
            cons.append(self.S[t] <= RealVal(cfg.C * t))
            back = t - cfg.jitter
            if back >= 0:
                cons.append(self.S[t] >= RealVal(cfg.C * back))
        return cons

    def policy_constraints(self) -> list[Term]:
        """Chunk sizes as chosen by the threshold rule."""
        cfg = self.cfg
        theta = RealVal(self.policy.theta)
        cons: list[Term] = []
        prev_need: Term = RealVal(0)
        for k in range(cfg.n_chunks):
            t_req = self.request_tick(k)
            lead = self.S[t_req] - prev_need
            size = Ite(
                lead >= theta, RealVal(cfg.size_high), RealVal(cfg.size_low)
            )
            cons.append(self.need[k].eq(prev_need + size))
            prev_need = self.need[k]
        return cons

    def high_quality_flags(self) -> list[Term]:
        """Boolean terms: was chunk k fetched at high quality?"""
        cfg = self.cfg
        flags: list[Term] = []
        prev_need: Term = RealVal(0)
        for k in range(cfg.n_chunks):
            lead = self.S[self.request_tick(k)] - prev_need
            flags.append(lead >= RealVal(self.policy.theta))
            prev_need = self.need[k]
        return flags

    def no_stall(self) -> Term:
        """Every chunk downloaded by its playback deadline."""
        return And(
            *[
                self.need[k] <= self.S[self.deadline(k)]
                for k in range(self.cfg.n_chunks)
            ]
        )

    def quality_at_least(self, min_high_chunks: int) -> Term:
        """At least ``min_high_chunks`` chunks at high quality.

        Encoded through the total bytes needed: total = n*low + k*(high-low)
        for k high-quality chunks, so a count threshold is one linear atom.
        """
        cfg = self.cfg
        total_min = (
            cfg.n_chunks * cfg.size_low
            + min_high_chunks * (cfg.size_high - cfg.size_low)
        )
        return self.need[cfg.n_chunks - 1] >= RealVal(total_min)


class AbrVerifier:
    """Prove or refute stall-freedom (and quality floors) of a policy."""

    def __init__(self, cfg: AbrConfig):
        self.cfg = cfg

    def find_counterexample(
        self, policy: AbrPolicy, min_high_chunks: int = 0
    ) -> Optional[AbrTrace]:
        """A service trace where the policy stalls or misses the quality
        floor; None when the policy is provably correct."""
        model = AbrModel(self.cfg, policy)
        solver = Solver()
        solver.add(*model.environment_constraints())
        solver.add(*model.policy_constraints())
        desired = model.no_stall()
        if min_high_chunks > 0:
            desired = And(desired, model.quality_at_least(min_high_chunks))
        solver.add(Not(desired))
        if solver.check() is not sat:
            return None
        m = solver.model()
        S = [m.value(s) for s in model.S]
        needs = [m.value(n) for n in model.need]
        qualities = []
        prev = Fraction(0)
        for k in range(self.cfg.n_chunks):
            size = needs[k] - prev
            qualities.append(1 if size == self.cfg.size_high else 0)
            prev = needs[k]
        stalled = None
        for k in range(self.cfg.n_chunks):
            if needs[k] > S[model.deadline(k)]:
                stalled = k
                break
        avg_q = Fraction(sum(qualities), len(qualities))
        return AbrTrace(S=S, qualities=qualities, stalled_chunk=stalled, avg_quality=avg_q)

    def verify(self, policy: AbrPolicy, min_high_chunks: int = 0) -> bool:
        return self.find_counterexample(policy, min_high_chunks) is None


def synthesize_threshold(
    cfg: AbrConfig,
    lo: Fraction = Fraction(0),
    hi: Fraction = Fraction(8),
    precision: Fraction = Fraction(1, 8),
    min_high_chunks: int = 0,
) -> Optional[AbrPolicy]:
    """Smallest provably stall-free threshold (binary search; smaller
    theta = more aggressive quality choices).  None when even ``hi``
    stalls on some trace."""
    verifier = AbrVerifier(cfg)
    if not verifier.verify(AbrPolicy(hi), min_high_chunks):
        return None
    if verifier.verify(AbrPolicy(lo), min_high_chunks):
        return AbrPolicy(lo)
    while hi - lo > precision:
        mid = (lo + hi) / 2
        if verifier.verify(AbrPolicy(mid), min_high_chunks):
            hi = mid
        else:
            lo = mid
    return AbrPolicy(hi)
