"""ABR verification on the CCAC environment model (paper §5)."""

from .model import (
    AbrConfig,
    AbrModel,
    AbrPolicy,
    AbrTrace,
    AbrVerifier,
    synthesize_threshold,
)

__all__ = [
    "AbrConfig",
    "AbrModel",
    "AbrPolicy",
    "AbrTrace",
    "AbrVerifier",
    "synthesize_threshold",
]
