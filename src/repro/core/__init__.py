"""CCmatic: CEGIS-based synthesis of provably robust congestion control.

The paper's primary contribution.  Public surface:

* :class:`TemplateSpec` / :class:`CandidateCCA` — the search space.
* :func:`synthesize` / :func:`enumerate_all` / :func:`brute_force` —
  the synthesis drivers.
* :class:`CcacVerifier` — per-candidate verification against CCAC-lite.
* :mod:`repro.core.solutions` — classification of synthesized rules.
* :mod:`repro.core.queries` — assumption synthesis and differential
  comparison.
"""

from .conditional import (
    ConditionalCCA,
    ConditionalGenerator,
    ConditionalSpec,
    ConditionalVerifier,
    aimd_candidate,
    rocc_conditional,
    synthesize_conditional,
)
from .generator_enum import EnumerativeGenerator, satisfies_spec, simulate_on_trace
from .generator_smt import SmtGenerator
from .queries import (
    AssumptionResult,
    AssumptionTemplate,
    DifferentialResult,
    differential_comparison,
    initial_queue_budget,
    per_step_waste_budget,
    total_waste_budget,
    weakest_sufficient_assumption,
)
from .solutions import (
    SolutionReport,
    SteadyState,
    classify,
    history_histogram,
    is_rocc_family,
    is_shift_invariant,
    steady_state,
    summarize,
)
from .synthesizer import (
    SynthesisQuery,
    SynthesisResult,
    brute_force,
    enumerate_all,
    make_generator,
    synthesize,
)
from .template import (
    LARGE_DOMAIN,
    SMALL_DOMAIN,
    CandidateCCA,
    TemplateSpec,
    constant_cwnd,
    paper_eq_iii,
    rocc,
    table1_spaces,
)
from .verifier import CcacVerifier, VerificationResult
from .verifier_tuning import TunedVerifier, tune_verifier

__all__ = [
    "AssumptionResult",
    "ConditionalCCA",
    "ConditionalGenerator",
    "ConditionalSpec",
    "ConditionalVerifier",
    "TunedVerifier",
    "aimd_candidate",
    "rocc_conditional",
    "synthesize_conditional",
    "tune_verifier",
    "AssumptionTemplate",
    "CandidateCCA",
    "CcacVerifier",
    "DifferentialResult",
    "EnumerativeGenerator",
    "LARGE_DOMAIN",
    "SMALL_DOMAIN",
    "SmtGenerator",
    "SolutionReport",
    "SteadyState",
    "SynthesisQuery",
    "SynthesisResult",
    "VerificationResult",
    "TemplateSpec",
    "brute_force",
    "classify",
    "constant_cwnd",
    "differential_comparison",
    "enumerate_all",
    "history_histogram",
    "is_rocc_family",
    "is_shift_invariant",
    "make_generator",
    "paper_eq_iii",
    "per_step_waste_budget",
    "initial_queue_budget",
    "rocc",
    "satisfies_spec",
    "simulate_on_trace",
    "steady_state",
    "summarize",
    "synthesize",
    "table1_spaces",
    "total_waste_budget",
    "weakest_sufficient_assumption",
]
