"""CCmatic's synthesis driver: wires template, generator, verifier, CEGIS.

This is the public entry point of the reproduction.  A
:class:`SynthesisQuery` describes the ∃∀ question ("does there exist a CCA
in this template space such that for all CCAC traces the desired property
holds"); :func:`synthesize` runs the CEGIS loop and returns provably
correct CCAs, and :func:`brute_force` provides the paper's comparison
baseline (call the verifier on every candidate).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Literal, Optional

from ..ccac import ModelConfig
from ..cegis import (
    CegisCheckpoint,
    CegisLoop,
    CegisOptions,
    CegisOutcome,
    Generator,
    PruningMode,
    StopReason,
    Verifier,
)
from .generator_enum import EnumerativeGenerator
from .generator_smt import SmtGenerator
from .template import CandidateCCA, TemplateSpec
from .verifier import CcacVerifier

GeneratorBackend = Literal["smt", "enum"]


@dataclass
class SynthesisQuery:
    """One ∃∀ synthesis question (a Table 1 cell is one of these plus an
    optimization configuration)."""

    spec: TemplateSpec
    cfg: ModelConfig = field(default_factory=ModelConfig)
    pruning: PruningMode = PruningMode.RANGE
    worst_case_cex: bool = True
    generator: GeneratorBackend = "smt"
    find_all: bool = False
    max_iterations: int = 100_000
    max_solutions: Optional[int] = None
    time_budget: Optional[float] = None
    verbose: bool = False
    #: portfolio width: >1 verifies batches of candidates concurrently
    #: (see :class:`repro.engine.PortfolioVerifier`)
    jobs: int = 1
    #: environment matrix to verify against (see
    #: :mod:`repro.ccac.environments`).  ``None`` means the paper's
    #: lossless fragment — identical, for fingerprints and verdicts, to
    #: ``[lossless_environment()]``.  With several environments a
    #: candidate is a solution only when *every* environment's verifier
    #: says UNSAT; any environment's counterexample prunes the shared
    #: generator under its own semantics.
    environments: Optional[list] = None


@dataclass
class SynthesisResult:
    """Solutions plus the bookkeeping Table 1 reports."""

    query: SynthesisQuery
    solutions: list[CandidateCCA]
    iterations: int
    counterexamples: int
    generator_time: float
    verifier_time: float
    wall_time: float
    exhausted: bool
    timed_out: bool
    #: why the run stopped (see :class:`repro.cegis.StopReason`)
    stop_reason: Optional[StopReason] = None
    #: verified verdicts carrying an independently checked UNSAT proof
    #: (see :mod:`repro.trust`; nonzero only under certify runs)
    certified_verdicts: int = 0
    #: True when restored from a checkpoint rather than started fresh
    resumed: bool = False
    #: recorded degradation events (see :mod:`repro.runtime.degrade`)
    degradations: list = field(default_factory=list)
    #: advisory simulator cross-checks of the solutions.  ``None`` means
    #: cross-checking was never requested; ``[]`` means it was requested
    #: but there were no solutions to check — reports must distinguish
    #: "not run" from "ran and had nothing to do"
    cross_checks: Optional[list] = None
    #: adversarial falsification evaluations spent on the solutions
    #: (see :mod:`repro.falsify`; populated by ``--falsify`` runs)
    falsification_attempts: int = 0
    #: solutions that survived their falsification budget
    falsification_survivals: int = 0

    @property
    def found(self) -> bool:
        return bool(self.solutions)

    @property
    def first(self) -> Optional[CandidateCCA]:
        return self.solutions[0] if self.solutions else None


def make_generator(query: SynthesisQuery) -> Generator:
    """Instantiate the configured generator backend.

    Both backends satisfy :class:`repro.cegis.Generator` (and its
    :class:`~repro.cegis.BatchGenerator` extension) — the protocols in
    :mod:`repro.cegis.interfaces` are the contract; nothing here
    re-declares it.
    """
    if query.generator == "enum":
        return EnumerativeGenerator(query.spec, query.cfg, query.pruning)
    return SmtGenerator(query.spec, query.cfg, query.pruning)


def synthesize(
    query: SynthesisQuery,
    *,
    verifier: Optional[Verifier] = None,
    checkpoint: Optional[CegisCheckpoint] = None,
) -> SynthesisResult:
    """Run the CEGIS loop for a query.

    ``verifier`` substitutes the default (any
    :class:`repro.cegis.Verifier`; the fault-tolerant runtime passes an
    isolated and/or resilient wrapper); ``checkpoint`` enables
    per-iteration crash-safe state persistence (see
    :mod:`repro.runtime.checkpoint`).  With ``query.jobs > 1`` and no
    explicit verifier, a :class:`repro.engine.PortfolioVerifier` races
    batches of candidates across worker processes.
    """
    start = time.perf_counter()
    generator = make_generator(query)
    if verifier is None:
        if query.jobs > 1:
            from ..engine import PortfolioVerifier

            verifier = PortfolioVerifier(
                query.cfg, jobs=query.jobs, environments=query.environments
            )
        else:
            verifier = CcacVerifier(query.cfg, environments=query.environments)
    options = CegisOptions(
        worst_case_cex=query.worst_case_cex,
        find_all=query.find_all,
        max_iterations=query.max_iterations,
        max_solutions=query.max_solutions,
        time_budget=query.time_budget,
        verbose=query.verbose,
        jobs=query.jobs,
    )
    outcome: CegisOutcome = CegisLoop(
        generator, verifier, options, checkpoint=checkpoint
    ).run()
    return SynthesisResult(
        query=query,
        solutions=outcome.solutions,
        iterations=outcome.stats.iterations,
        counterexamples=outcome.stats.counterexamples,
        generator_time=outcome.stats.generator_time,
        verifier_time=outcome.stats.verifier_time,
        wall_time=time.perf_counter() - start,
        exhausted=outcome.exhausted,
        timed_out=outcome.timed_out,
        stop_reason=outcome.stop_reason,
        resumed=outcome.resumed,
        certified_verdicts=outcome.stats.certified_verdicts,
        degradations=list(getattr(verifier, "degradations", ())),
    )


def enumerate_all(query: SynthesisQuery) -> SynthesisResult:
    """All solutions in the space (the paper's exhaustive-set claim)."""
    import dataclasses

    q = dataclasses.replace(query, find_all=True)
    return synthesize(q)


def brute_force(
    spec: TemplateSpec,
    cfg: Optional[ModelConfig] = None,
    stop_at_first: bool = True,
    max_candidates: Optional[int] = None,
) -> SynthesisResult:
    """The paper's brute-force comparison: call the verifier on every
    candidate in the space (no generator at all)."""
    cfg = cfg or ModelConfig()
    verifier = CcacVerifier(cfg)
    start = time.perf_counter()
    solutions: list[CandidateCCA] = []
    tried = 0
    for cand in spec.iterate_candidates():
        if max_candidates is not None and tried >= max_candidates:
            break
        tried += 1
        if verifier.find_counterexample(cand).verified:
            solutions.append(cand)
            if stop_at_first:
                break
    query = SynthesisQuery(spec=spec, cfg=cfg, generator="enum")
    return SynthesisResult(
        query=query,
        solutions=solutions,
        iterations=tried,
        counterexamples=tried - len(solutions),
        generator_time=0.0,
        verifier_time=verifier.total_time,
        wall_time=time.perf_counter() - start,
        exhausted=max_candidates is None,
        timed_out=False,
    )
