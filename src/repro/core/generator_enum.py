"""Enumerative finite-domain generator (fast path + test oracle).

Because the coefficient domains are finite, the generator's constraint
problem is a finite CSP; this implementation keeps the explicit set of
surviving candidates and filters it with exact rational simulation of the
specification on each counterexample.  It is mathematically equivalent to
:class:`repro.core.generator_smt.SmtGenerator` (the tests check the two
against each other) and much faster for the spaces that fit in memory
(3^5, 9^5, 3^9); the 9^9 space only fits the symbolic generator.

The simulation semantics mirror the SMT encoding exactly:

* cwnd follows the clamped template on the trace's ack observations,
* sends follow the eager window-limited recurrence,
* feasibility is exact-trace or range membership per the pruning mode,
* the specification is ``feasible => desired``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from ..ccac import CexTrace, ModelConfig
from ..cegis import PruningMode
from .template import CandidateCCA, TemplateSpec


def simulate_on_trace(
    candidate: CandidateCCA, trace: CexTrace, cfg: ModelConfig
) -> tuple[list[Fraction], list[Fraction]]:
    """Candidate's (cwnd, A) trajectories on a trace's observations."""
    T = cfg.T
    cwnd: list[Fraction] = []
    for t in range(T + 1):
        total = Fraction(candidate.gamma)
        for i in range(1, candidate.history + 1):
            back = t - i
            if candidate.alphas[i - 1] != 0:
                hist = cwnd[back] if back >= 0 else trace.cwnd_at(back)
                total += candidate.alphas[i - 1] * hist
            if candidate.betas[i - 1] != 0:
                total += candidate.betas[i - 1] * trace.ack_at(back)
        cwnd.append(max(total, cfg.cwnd_min))
    A: list[Fraction] = [trace.A[0]]
    for t in range(1, T + 1):
        A.append(max(A[t - 1], trace.S[t - 1] + cwnd[t]))
    return cwnd, A


def satisfies_spec(
    candidate: CandidateCCA,
    trace: CexTrace,
    cfg: ModelConfig,
    pruning: PruningMode,
) -> bool:
    """Evaluate ``sigma(candidate, trace) = feasible => desired`` exactly.

    Counterexamples from other cells of the environment matrix (lossy,
    two-flow) are replayed under *their own* semantics — conservative
    exact replay, see :mod:`repro.ccac.environments` — so a lossy trace
    can never unsoundly prune lossless-only behaviour.  Lossless-family
    traces use the trace's own config (a jitter/threshold environment
    overrides fields of the query config)."""
    if getattr(trace, "flows", None) is not None or hasattr(trace, "L"):
        from ..ccac.environments import replay_satisfies

        return replay_satisfies(candidate, trace, pruning)
    cfg = trace.cfg
    cwnd, A = simulate_on_trace(candidate, trace, cfg)
    T = cfg.T

    feasible = trace.A[0] <= trace.S_pre[0] + cwnd[0]
    if feasible:
        if pruning is PruningMode.EXACT:
            feasible = all(A[t] == trace.A[t] for t in range(1, T + 1))
        else:
            for t, bound in enumerate(trace.range_bounds()):
                if t == 0:
                    continue
                if A[t] < bound.lower or (bound.upper is not None and A[t] > bound.upper):
                    feasible = False
                    break
    if not feasible:
        return True

    util_ok = trace.S[T] - trace.S[0] >= cfg.util_thresh * cfg.C * cfg.T
    limit = cfg.delay_thresh * cfg.C * cfg.D
    queue_ok = all(A[t] - trace.S[t] <= limit for t in range(T + 1))
    increased = cwnd[T] > cwnd[0]
    decreased = cwnd[T] < cwnd[0]
    return (util_ok or increased) and (queue_ok or decreased)


class EnumerativeGenerator:
    """Explicit-survivor-set generator over a finite template space."""

    # guard against accidentally materializing the 9^9 space
    MAX_SPACE = 2_000_000

    def __init__(
        self,
        spec: TemplateSpec,
        cfg: ModelConfig,
        pruning: PruningMode = PruningMode.RANGE,
    ):
        if spec.search_space_size > self.MAX_SPACE:
            raise ValueError(
                f"search space {spec.search_space_size} too large to enumerate; "
                "use SmtGenerator"
            )
        self.spec = spec
        self.cfg = cfg
        self.pruning = pruning
        self._survivors: list[CandidateCCA] = list(spec.iterate_candidates())
        self._traces: list[CexTrace] = []

    @property
    def survivor_count(self) -> int:
        return len(self._survivors)

    def propose(self) -> Optional[CandidateCCA]:
        if not self._survivors:
            return None
        return self._survivors[0]

    def propose_batch(self, k: int) -> list[CandidateCCA]:
        """Up to ``k`` distinct survivors (for portfolio verification);
        none are blocked by being proposed."""
        return list(self._survivors[:k])

    def add_counterexample(self, trace: CexTrace) -> None:
        self._traces.append(trace)
        self._survivors = [
            c
            for c in self._survivors
            if satisfies_spec(c, trace, self.cfg, self.pruning)
        ]

    def block(self, candidate: CandidateCCA) -> None:
        key = candidate.key()
        self._survivors = [c for c in self._survivors if c.key() != key]
