"""Analysis and classification of synthesized CCAs.

The paper reports that all 12 solutions in the no-cwnd large-domain space
are "minor variations of RoCC": telescoping ack differences (the beta
coefficients sum to zero, so cwnd tracks bytes acked over a recent window)
plus a non-negative additive term.  This module provides the predicates
used to reproduce those observations and a steady-state analysis of a
rule's throughput/delay operating point.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Optional

from ..ccac import ModelConfig
from .template import CandidateCCA


def beta_sum(cand: CandidateCCA) -> Fraction:
    """Sum of the ack coefficients; zero means shift-invariant
    (the rule reads ack *differences* only)."""
    return sum(cand.betas, Fraction(0))


def alpha_sum(cand: CandidateCCA) -> Fraction:
    return sum(cand.alphas, Fraction(0))


def is_shift_invariant(cand: CandidateCCA) -> bool:
    """The rule is unchanged when all acks are shifted by a constant."""
    return beta_sum(cand) == 0


def is_rocc_family(cand: CandidateCCA) -> bool:
    """RoCC-style rule: no cwnd history, telescoping ack differences with
    net positive recent weight, plus a non-negative additive term."""
    if any(a != 0 for a in cand.alphas):
        return False
    if beta_sum(cand) != 0:
        return False
    if all(b == 0 for b in cand.betas):
        return False
    return cand.gamma >= 0


@dataclass(frozen=True)
class SteadyState:
    """Fixed point of a rule on an ideal constant-rate link.

    On an ideal link at full utilization, ``ack(t-i) = ack(t) - C*i`` and
    cwnd is constant, so the template becomes a linear equation in the
    steady cwnd.  ``cwnd`` is None when no positive fixed point exists
    (the rule starves or diverges on the ideal link).
    """

    cwnd: Optional[Fraction]
    queue: Optional[Fraction]  # steady bytes in flight beyond the BDP

    @property
    def utilizes_link(self) -> bool:
        return self.cwnd is not None and self.cwnd > 0


def steady_state(cand: CandidateCCA, cfg: ModelConfig) -> SteadyState:
    """Solve the rule's fixed point on an ideal link of rate C.

    With cwnd fixed at w and ``ack(t-i) = ack_now - C*i``:

        w = sum(alpha_i) * w + sum(beta_i) * ack_now
            - C * sum(i * beta_i) + gamma

    A finite fixed point requires ``sum(beta_i) == 0`` (otherwise the rule
    depends on the absolute ack level, which grows without bound) and
    ``sum(alpha_i) != 1``.
    """
    if beta_sum(cand) != 0:
        return SteadyState(None, None)
    a_sum = alpha_sum(cand)
    if a_sum == 1:
        return SteadyState(None, None)
    weighted = sum(
        (Fraction(i) * cand.betas[i - 1] for i in range(1, cand.history + 1)),
        Fraction(0),
    )
    w = (cand.gamma - cfg.C * weighted) / (1 - a_sum)
    if w <= 0:
        return SteadyState(None, None)
    queue = w - cfg.bdp
    return SteadyState(cwnd=w, queue=max(queue, Fraction(0)))


@dataclass(frozen=True)
class SolutionReport:
    """One synthesized CCA with its classification and operating point."""

    candidate: CandidateCCA
    rule: str
    rocc_family: bool
    shift_invariant: bool
    history_used: int
    steady_cwnd: Optional[Fraction]
    steady_queue: Optional[Fraction]


def classify(cand: CandidateCCA, cfg: ModelConfig) -> SolutionReport:
    ss = steady_state(cand, cfg)
    return SolutionReport(
        candidate=cand,
        rule=cand.pretty(),
        rocc_family=is_rocc_family(cand),
        shift_invariant=is_shift_invariant(cand),
        history_used=cand.history_used(),
        steady_cwnd=ss.cwnd,
        steady_queue=ss.queue,
    )


def summarize(solutions: Iterable[CandidateCCA], cfg: ModelConfig) -> list[SolutionReport]:
    """Classify a batch of solutions, sorted by history used then rule."""
    reports = [classify(c, cfg) for c in solutions]
    reports.sort(key=lambda r: (r.history_used, r.rule))
    return reports


def history_histogram(solutions: Iterable[CandidateCCA]) -> dict[int, int]:
    """How many solutions read k RTTs of history (the paper's 6-and-6
    split between 2-RTT and 3-RTT solutions)."""
    hist: dict[int, int] = {}
    for c in solutions:
        k = c.history_used()
        hist[k] = hist.get(k, 0) + 1
    return dict(sorted(hist.items()))
