"""Verifier tuning (paper §5, "Generalizing to other domains").

Building verifiers is the hard part of porting CEGIS to a new domain:
they must "capture diverse/realistic behaviors while avoiding adversarial
behaviors that no heuristics can handle".  The paper proposes using the
CEGIS loop itself to tune a verifier:

    "We can synthesize verifier constraints by asking: ∃ constraints on
    system parameters such that ∀ traces that satisfy these constraints,
    at least one known heuristic achieves its desired goals.  The
    intuition is that different heuristics are designed for different
    realistic environments.  The union of traces over all heuristics
    captures a broad set of behaviors that realistic systems can
    exhibit."

Implementation: given a *panel* of known-good heuristics and a monotone
one-parameter family of environment constraints (the same
:class:`~repro.core.queries.AssumptionTemplate` machinery), find the
weakest parameter such that every panel member provably meets the
property under the constraint.  The resulting constraint is the tuned
verifier environment: adversarial enough that it exercises real
behaviours, tame enough that known-good algorithms survive it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence

from ..ccac import ModelConfig
from ..obs import DEBUG, tracer
from .queries import AssumptionTemplate, _holds_under, _probe_verifier
from .template import CandidateCCA


@dataclass
class TunedVerifier:
    """Outcome of verifier tuning: the synthesized environment constraint."""

    template: AssumptionTemplate
    theta: Optional[Fraction]
    panel: Sequence[CandidateCCA]
    probes: int
    wall_time: float

    @property
    def found(self) -> bool:
        return self.theta is not None

    def describe(self) -> str:
        if self.theta is None:
            return "no environment in the family admits the whole panel"
        return self.template.describe(self.theta)


def tune_verifier(
    panel: Sequence[CandidateCCA],
    cfg: ModelConfig,
    template: AssumptionTemplate,
    precision: Fraction = Fraction(1, 16),
) -> TunedVerifier:
    """Weakest theta under which *every* panel heuristic is verified.

    Monotonicity makes the conjunction over the panel monotone too, so a
    single binary search suffices; each probe is one verifier call per
    panel member (short-circuited on the first failure).
    """
    start = time.perf_counter()
    probes = 0
    tr = tracer()
    # one incremental verifier amortizes the environment encoding across
    # every (candidate, theta) probe of the tuning search
    verifier = _probe_verifier(cfg, None)

    def panel_holds(theta: Fraction) -> bool:
        nonlocal probes
        for cand in panel:
            probes += 1
            holds = _holds_under(cand, cfg, template, theta, verifier=verifier)
            tr.event(
                "tuning.probe", level=DEBUG, probe=probes,
                theta=str(theta), candidate=str(cand), holds=holds,
            )
            if not holds:
                return False
        return True

    with tr.span("tuning.run", panel=len(panel)):
        lo, hi = template.lo, template.hi
        if not panel_holds(lo):
            return TunedVerifier(template, None, panel, probes, time.perf_counter() - start)
        if panel_holds(hi):
            best = hi
        else:
            best = lo
            while hi - lo > precision:
                mid = (lo + hi) / 2
                if panel_holds(mid):
                    best = mid
                    lo = mid
                else:
                    hi = mid
    return TunedVerifier(template, best, panel, probes, time.perf_counter() - start)
