"""The CCA template and its search spaces (paper Eq. ii).

    cwnd(t) = sum_{i=1..h} ( alpha_i * cwnd(t-i) + beta_i * ack(t-i) ) + gamma

``ack(t)`` is cumulative bytes acknowledged by time ``t`` (the model's
``S_t``); coefficients are drawn from a small discrete domain:

* **small**: ``{-1, 0, 1}`` — additive responses only;
* **large**: ``{i/2 : |i| <= 4}`` — includes multiplicative responses.

The *no-cwnd* spaces pin every ``alpha_i`` to 0 (5 free parameters with
``h = 4``); the *cwnd* spaces free all ``2h + 1`` parameters.  These are
exactly the four spaces of the paper's Table 1 (3^5, 9^5, 3^9, 9^9).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterator, Sequence

from ..ccac import CcacModel
from ..smt import RealVal, Sum, Term, encode_max

SMALL_DOMAIN: tuple[Fraction, ...] = (Fraction(-1), Fraction(0), Fraction(1))
LARGE_DOMAIN: tuple[Fraction, ...] = tuple(Fraction(i, 2) for i in range(-4, 5))


@dataclass(frozen=True)
class CandidateCCA:
    """A concrete filling of the template's holes."""

    alphas: tuple[Fraction, ...]
    betas: tuple[Fraction, ...]
    gamma: Fraction

    @property
    def history(self) -> int:
        return len(self.betas)

    def history_used(self) -> int:
        """RTTs of history the rule actually reads (paper's 2-vs-3-RTT
        classification of the 12 solutions)."""
        used = 0
        for i, (a, b) in enumerate(zip(self.alphas, self.betas), start=1):
            if a != 0 or b != 0:
                used = i
        return used

    def next_cwnd(
        self,
        cwnd_hist: Sequence[Fraction],
        ack_hist: Sequence[Fraction],
        cwnd_min: Fraction = Fraction(0),
    ) -> Fraction:
        """Numerically evaluate the rule (with the model's cwnd floor).

        ``cwnd_hist[i-1]`` is ``cwnd(t-i)`` and ``ack_hist[i-1]`` is
        ``ack(t-i)``; both must have length >= h.
        """
        total = Fraction(self.gamma)
        for i in range(self.history):
            total += self.alphas[i] * Fraction(cwnd_hist[i])
            total += self.betas[i] * Fraction(ack_hist[i])
        return max(total, Fraction(cwnd_min))

    def cwnd_term(self, model: CcacModel, t: int) -> Term:
        """The rule as a linear SMT term over the model's variables at t
        (negative indices read the model's pre-history variables)."""
        parts = []
        for i in range(1, self.history + 1):
            if self.alphas[i - 1] != 0:
                parts.append(RealVal(self.alphas[i - 1]) * model.cwnd_at(t - i))
            if self.betas[i - 1] != 0:
                parts.append(RealVal(self.betas[i - 1]) * model.ack_at(t - i))
        parts.append(RealVal(self.gamma))
        return Sum(parts)

    def constraints_for(self, model: CcacModel) -> list[Term]:
        """Template equalities for every in-trace timestep (t >= 0); the
        history the rule reads before t=0 comes from the model's
        adversarially chosen — but rate-consistent — pre-history.

        The window is floored at ``cfg.cwnd_min`` (one MSS), as every
        deployed CCA does: ``cwnd(t) = max(rule(t), cwnd_min)``.
        """
        h = model.cfg.history
        if h != self.history:
            raise ValueError(f"model history {h} != candidate history {self.history}")
        floor = RealVal(model.cfg.cwnd_min)
        return [
            encode_max(model.cwnd[t], [self.cwnd_term(model, t), floor])
            for t in range(0, model.cfg.T + 1)
        ]

    def pretty(self) -> str:
        """Human-readable rule, e.g. ``cwnd(t) = ack(t-1) - ack(t-3) + 1``."""

        def fmt_coeff(c: Fraction, atom: str, first: bool) -> str:
            sign = "-" if c < 0 else ("" if first else "+")
            mag = abs(c)
            body = atom if mag == 1 else f"{mag}*{atom}"
            return f"{sign} {body}" if not first else (f"-{body}" if sign == "-" else body)

        parts: list[str] = []
        for i in range(1, self.history + 1):
            a = self.alphas[i - 1]
            if a != 0:
                parts.append(fmt_coeff(a, f"cwnd(t-{i})", first=not parts))
            b = self.betas[i - 1]
            if b != 0:
                parts.append(fmt_coeff(b, f"ack(t-{i})", first=not parts))
        if self.gamma != 0 or not parts:
            g = self.gamma
            sign = "-" if g < 0 else ("" if not parts else "+")
            parts.append(f"{sign} {abs(g)}" if parts else str(g))
        return "cwnd(t) = " + " ".join(parts)

    def key(self) -> tuple:
        """Hashable identity used for blocking clauses and dedup."""
        return (self.alphas, self.betas, self.gamma)


def rocc(history: int = 4) -> CandidateCCA:
    """The RoCC rule the paper rediscovers:
    ``cwnd(t) = ack(t-1) - ack(t-3) + 1``."""
    betas = [Fraction(0)] * history
    betas[0] = Fraction(1)
    betas[2] = Fraction(-1)
    return CandidateCCA(
        alphas=tuple([Fraction(0)] * history),
        betas=tuple(betas),
        gamma=Fraction(1),
    )


def paper_eq_iii(history: int = 4) -> CandidateCCA:
    """Paper Eq. iii: ``cwnd(t) = 3/2 ack(t-1) - 1/2 ack(t-2) - ack(t-3)``."""
    betas = [Fraction(0)] * history
    betas[0] = Fraction(3, 2)
    betas[1] = Fraction(-1, 2)
    betas[2] = Fraction(-1)
    return CandidateCCA(
        alphas=tuple([Fraction(0)] * history),
        betas=tuple(betas),
        gamma=Fraction(0),
    )


def constant_cwnd(value: Fraction | int, history: int = 4) -> CandidateCCA:
    """The trivial rule ``cwnd(t) = value`` (a known-bad candidate)."""
    zeros = tuple([Fraction(0)] * history)
    return CandidateCCA(alphas=zeros, betas=zeros, gamma=Fraction(value))


@dataclass(frozen=True)
class TemplateSpec:
    """A search space over :class:`CandidateCCA` (one Table 1 row)."""

    history: int = 4
    use_cwnd_history: bool = False
    coeff_domain: tuple[Fraction, ...] = SMALL_DOMAIN
    const_domain: tuple[Fraction, ...] | None = None

    @property
    def gamma_domain(self) -> tuple[Fraction, ...]:
        return self.const_domain if self.const_domain is not None else self.coeff_domain

    @property
    def parameter_count(self) -> int:
        per_lag = 2 if self.use_cwnd_history else 1
        return per_lag * self.history + 1

    @property
    def search_space_size(self) -> int:
        per_lag = 2 if self.use_cwnd_history else 1
        return len(self.coeff_domain) ** (per_lag * self.history) * len(self.gamma_domain)

    def contains(self, cand: CandidateCCA) -> bool:
        """Is the candidate inside this search space?"""
        if cand.history != self.history:
            return False
        if not self.use_cwnd_history and any(a != 0 for a in cand.alphas):
            return False
        if self.use_cwnd_history and any(a not in self.coeff_domain for a in cand.alphas):
            return False
        return (
            all(b in self.coeff_domain for b in cand.betas)
            and cand.gamma in self.gamma_domain
        )

    def make(self, values: Sequence[Fraction]) -> CandidateCCA:
        """Candidate from a flat parameter vector
        (alphas if used, then betas, then gamma)."""
        values = [Fraction(v) for v in values]
        if len(values) != self.parameter_count:
            raise ValueError(f"expected {self.parameter_count} parameters")
        if self.use_cwnd_history:
            alphas = tuple(values[: self.history])
            betas = tuple(values[self.history : 2 * self.history])
            gamma = values[-1]
        else:
            alphas = tuple([Fraction(0)] * self.history)
            betas = tuple(values[: self.history])
            gamma = values[-1]
        return CandidateCCA(alphas, betas, gamma)

    def iterate_candidates(self) -> Iterator[CandidateCCA]:
        """Enumerate the whole space (brute force / enumerative generator)."""
        per_lag = 2 if self.use_cwnd_history else 1
        coeff_slots = per_lag * self.history
        for coeffs in itertools.product(self.coeff_domain, repeat=coeff_slots):
            for gamma in self.gamma_domain:
                yield self.make(list(coeffs) + [gamma])

    def random_candidate(self, rng: random.Random) -> CandidateCCA:
        per_lag = 2 if self.use_cwnd_history else 1
        coeffs = [rng.choice(self.coeff_domain) for _ in range(per_lag * self.history)]
        coeffs.append(rng.choice(self.gamma_domain))
        return self.make(coeffs)


def table1_spaces(history: int = 4) -> dict[str, TemplateSpec]:
    """The four search spaces of the paper's Table 1."""
    return {
        "no_cwnd_small": TemplateSpec(history, False, SMALL_DOMAIN),
        "no_cwnd_large": TemplateSpec(history, False, LARGE_DOMAIN),
        "cwnd_small": TemplateSpec(history, True, SMALL_DOMAIN),
        "cwnd_large": TemplateSpec(history, True, LARGE_DOMAIN),
    }
