"""The CEGIS verifier: CCAC as an SMT query per candidate CCA.

Given a concrete candidate, the verifier asks whether some feasible network
trace violates the desired property:

    SAT( environment /\\ sender /\\ template(candidate) /\\ not desired )

SAT yields a counterexample trace; UNSAT *proves* the candidate achieves
the property on every trace the model allows.

**Environment matrix** (ISSUE 9): the verifier runs over a list of
:class:`~repro.ccac.environments.EnvironmentSpec` values — one SMT model,
one (optionally incremental) solver session, and one verdict per
environment.  A candidate is *verified* only when **every** environment
answers UNSAT; the first environment to answer SAT short-circuits the
loop and yields a counterexample tagged with its origin environment, so
the generator can prune under that environment's semantics.  With
``environments=None`` (the default) the verifier behaves exactly like
the paper's fragment: a single lossless environment and untagged traces.

It also implements the paper's **worst-case counterexample** optimization:
instead of any counterexample, find one that maximizes
``min_t (u_t - l_t)`` — the narrowest width of the range-pruning intervals
— "we maximize using binary search" (§3.1.2).  Wider intervals let each
counterexample eliminate more candidates in the generator.  Each
environment supplies its own interval widths (two-flow models measure
aggregate service against the shared token bucket).

**Independent validation** (on by default): because the reproduction
substitutes z3 with the from-scratch :mod:`repro.smt` solver, every SAT
model is re-checked by :mod:`repro.runtime.validate` — an exact-arithmetic
evaluator sharing no code with the solver — against all asserted
constraints, and every extracted trace is replayed against its origin
environment's constraints and the candidate's template semantics.  A
refuted result raises :class:`~repro.runtime.errors.SoundnessError`;
soundness failures are never converted to ``unknown``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from fractions import Fraction
from typing import Optional, Sequence

from ..ccac import ModelConfig
from ..ccac.environments import EnvironmentSpec, lossless_environment
from ..obs import DEBUG, tracer
from ..runtime.validate import validate_counterexample, validate_model
from ..smt import CheckOptions, Or, Real, RealVal, Solver, SolverSession, Term, sat, unknown
from ..smt.optimize import maximize
from .template import CandidateCCA


@dataclass
class VerificationResult:
    """Outcome of one verifier call."""

    candidate: CandidateCCA
    verified: bool
    counterexample: Optional[object]
    wall_time: float
    solver_checks: int
    unknown: bool = False
    #: True when the runtime weakened the search to produce this result
    #: (see :mod:`repro.runtime.degrade` / :mod:`repro.runtime.workers`)
    degraded: bool = False
    #: True when the verified UNSAT verdict carries an independently
    #: checked proof (see :mod:`repro.trust`); ``certificate`` holds the
    #: picklable :class:`~repro.trust.certify.CertificateSummary` (one
    #: per environment for multi-environment verifiers)
    certified: bool = False
    certificate: Optional[object] = None
    #: origin environment of ``counterexample`` (an
    #: :class:`~repro.ccac.environments.EnvironmentSpec`); None in
    #: single-fragment mode or when there is no counterexample
    environment: Optional[EnvironmentSpec] = None


class _EnvState:
    """Lazily built per-environment solver state."""

    __slots__ = ("env", "cfg", "prefix", "net", "base", "session")

    def __init__(self, env: EnvironmentSpec, cfg: ModelConfig, prefix: str):
        self.env = env
        self.cfg = cfg
        self.prefix = prefix
        self.net = None
        self.base: Optional[tuple[Term, ...]] = None
        self.session: Optional[SolverSession] = None


class CcacVerifier:
    """The per-candidate CCAC verifier.

    Two operating modes:

    * **fresh** (default): each call builds a fresh solver over the full
      encoding — stateless, trivially correct, and what the original
      reproduction did.
    * **incremental** (``incremental=True``): one long-lived
      :class:`~repro.smt.SolverSession` *per environment* holds the
      candidate-independent encoding (environment + negated desired
      property); each call push/pops only the candidate's template
      constraints.  The CNF conversion, theory atoms, and learned
      clauses are amortized across every candidate the verifier ever
      sees.

    Either mode accepts a ``cache`` (``QueryCacheProtocol``-shaped, e.g.
    :class:`repro.engine.cache.QueryCache`): conclusive subquery verdicts
    are content-addressed and reused, which pays off under worst-case
    binary search and across portfolio workers sharing a ``cache_dir``.

    ``environments`` selects the cells of the CCAC matrix to verify
    against (in order); ``None`` keeps the legacy single-lossless
    behaviour, including untagged counterexample traces.
    """

    def __init__(
        self,
        cfg: ModelConfig,
        wce_precision: Fraction = Fraction(1, 8),
        validate: bool = True,
        incremental: bool = False,
        cache=None,
        certify: bool = False,
        environments: Optional[Sequence[EnvironmentSpec]] = None,
    ):
        self.cfg = cfg
        self.wce_precision = wce_precision
        self.validate = validate
        self.incremental = incremental
        self.cache = cache
        self.certify = certify
        self.environments = (
            tuple(environments) if environments is not None else None
        )
        self.calls = 0
        self.certified = 0
        self.total_time = 0.0
        self._states: Optional[list[_EnvState]] = None

    # -- per-environment state -----------------------------------------

    def _env_states(self) -> list[_EnvState]:
        if self._states is None:
            envs = self.environments
            if envs is None:
                envs = (lossless_environment(),)
            states = []
            for i, env in enumerate(envs):
                prefix = "v" if len(envs) == 1 else f"v{i}"
                states.append(
                    _EnvState(env, env.model_config(self.cfg), prefix)
                )
            self._states = states
        return self._states

    @property
    def _session(self) -> Optional[SolverSession]:
        """The first environment's incremental session (None until the
        first incremental call) — kept for stats introspection."""
        if not self._states:
            return None
        return self._states[0].session

    def network(self, index: int = 0):
        """The environment model object (e.g. for building assumption
        terms over its variables); built lazily like the solver state."""
        state = self._env_states()[index]
        self._ensure_net(state)
        return state.net

    def _ensure_net(self, state: _EnvState):
        """The candidate-independent encoding, built once per environment.

        Terms are immutable and interned, so the same environment terms
        are shared by every per-candidate solver; because the compile
        memo (:mod:`repro.smt.compile`) keys on term identity, the
        shared-environment compile work is done once, not per candidate.
        """
        if state.net is None:
            state.net = state.env.build_model(state.cfg, prefix=state.prefix)
            base = list(state.net.constraints())
            base.append(state.env.negated_desired(state.net))
            state.base = tuple(base)
        return state.net, state.base

    def _ensure_session(self, state: _EnvState) -> SolverSession:
        """The long-lived session holding the candidate-independent base."""
        if state.session is None:
            _, base = self._ensure_net(state)
            state.session = SolverSession(
                base, cache=self.cache, produce_proofs=self.certify
            )
        return state.session

    @contextmanager
    def _candidate_scope(
        self,
        candidate: CandidateCCA,
        state: _EnvState,
        extra_constraints: Sequence[Term] = (),
    ):
        """Yields ``(solver_like, net)`` with the full per-candidate
        encoding asserted; incremental mode reuses the shared base.
        Fresh mode asserts the shared base and the candidate delta as
        separate batches so the base compile is memo-amortized."""
        if self.incremental:
            session = self._ensure_session(state)
            net = state.net
            delta = state.env.candidate_constraints(net, candidate)
            with session.scope(*delta, *extra_constraints):
                yield session, net
        else:
            net, base = self._ensure_net(state)
            delta = list(state.env.candidate_constraints(net, candidate))
            delta.extend(extra_constraints)
            if self.cache is not None:
                session = SolverSession(
                    base, cache=self.cache, produce_proofs=self.certify
                )
                session.add(*delta)
                yield session, net
            else:
                solver = Solver(produce_proofs=self.certify)
                solver.add(*base)
                solver.add(*delta)
                yield solver, net

    @staticmethod
    def _solver_checks(solver) -> int:
        """Underlying SMT check count (sessions wrap the raw solver)."""
        stats = getattr(getattr(solver, "solver", solver), "stats", None)
        return getattr(stats, "checks", 0)

    def _extract_trace(
        self, solver, state: _EnvState, model, candidate: CandidateCCA
    ):
        """Build the counterexample trace, independently validating both
        the SAT model and the extracted trace first (when enabled)."""
        if self.validate:
            validate_model(solver.assertions(), model, context="verifier cex")
        trace = state.env.extract_trace(model, state.net)
        if self.environments is None:
            # legacy single-fragment mode: plain untagged traces
            trace = replace(trace, environment=None)
        if self.validate:
            validate_counterexample(trace, candidate=candidate)
        return trace

    def find_counterexample(
        self,
        candidate: CandidateCCA,
        worst_case: bool = False,
        max_conflicts: Optional[int] = None,
        deadline: Optional[float] = None,
        extra_constraints: Sequence[Term] = (),
    ) -> VerificationResult:
        """Search every environment for a property-violating trace
        (optionally worst-case).

        ``deadline`` (a ``time.perf_counter()`` timestamp) bounds the
        wall-clock the underlying SMT search may consume; an expired
        deadline yields an inconclusive result (``unknown=True``), never
        a false "verified".  ``extra_constraints`` are asserted inside
        the per-candidate frame (assumption-synthesis probes use this to
        restrict the adversary without rebuilding the base encoding).

        The first environment to answer SAT returns immediately with a
        counterexample tagged with that environment; *verified* requires
        every environment to answer UNSAT.
        """
        start = time.perf_counter()
        self.calls += 1
        opts = CheckOptions(max_conflicts=max_conflicts, deadline=deadline)
        tr = tracer()
        states = self._env_states()
        with tr.span(
            "verifier.find_cex", level=DEBUG,
            candidate=str(candidate), worst_case=worst_case,
            incremental=self.incremental, environments=len(states),
        ) as span:
            total_checks = 0
            any_unknown = False
            summaries: list[object] = []
            outcome_trace = None
            outcome_env: Optional[EnvironmentSpec] = None
            for state in states:
                # in incremental mode the session's stats are cumulative;
                # report this call's delta like the fresh-solver path does
                base_checks = (
                    self._solver_checks(state.session)
                    if state.session is not None
                    else 0
                )
                with self._candidate_scope(
                    candidate, state, extra_constraints
                ) as (solver, net):
                    inconclusive = False
                    if worst_case:
                        model, inconclusive = self._solve_worst_case(
                            solver, net, state, opts
                        )
                    else:
                        outcome = solver.check(opts)
                        if outcome is unknown:
                            model, inconclusive = None, True
                        elif outcome is sat:
                            model = solver.model()
                        else:
                            model = None
                    if model is not None:
                        outcome_trace = self._extract_trace(
                            solver, state, model, candidate
                        )
                        outcome_env = state.env
                    summary = None
                    if (
                        self.certify
                        and model is None
                        and not inconclusive
                    ):
                        # snapshot + check the proof while the candidate
                        # frame is still active (pop would disable its
                        # guard)
                        summary, inconclusive = self._certify_unsat(
                            solver, worst_case, opts
                        )
                    if summary is not None:
                        summaries.append(summary)
                    total_checks += self._solver_checks(solver) - base_checks
                any_unknown = any_unknown or inconclusive
                if outcome_trace is not None:
                    break
            elapsed = time.perf_counter() - start
            self.total_time += elapsed
            found = outcome_trace is not None
            verified = not found and not any_unknown
            all_certified = (
                self.certify and verified and len(summaries) == len(states)
            )
            span.set(
                verified=verified,
                unknown=not found and any_unknown,
                solver_checks=total_checks,
                certified=all_certified,
                environment=outcome_env.key() if outcome_env else None,
            )
        certificate: Optional[object] = None
        if all_certified:
            certificate = (
                summaries[0] if len(summaries) == 1 else tuple(summaries)
            )
        return VerificationResult(
            candidate=candidate,
            verified=verified,
            counterexample=outcome_trace,
            wall_time=elapsed,
            solver_checks=total_checks,
            unknown=not found and any_unknown,
            certified=all_certified,
            certificate=certificate,
            environment=outcome_env if self.environments is not None else None,
        )

    def _certify_unsat(self, solver, worst_case: bool, opts: CheckOptions):
        """Independently check the proof of the current UNSAT verdict.

        Returns ``(summary, inconclusive)``.  In worst-case mode the
        binary search ends by popping its probe frames, so the solver's
        last verdict is not the final UNSAT — one extra plain check
        re-derives it under the active frames (with the proof still
        accumulating); if budgets expire there the result degrades to an
        honest ``unknown`` rather than an uncertified "verified".

        A proof that fails to check raises
        :class:`~repro.runtime.errors.SoundnessError` — like independent
        model validation, certification gaps are never degraded.
        """
        from ..trust.certify import certify_certificate
        from ..smt import unsat

        if worst_case and solver.check(opts) is not unsat:
            return None, True
        cert = solver.certificate()
        summary = certify_certificate(cert)
        self.certified += 1
        return summary, False

    def _solve_worst_case(
        self, solver, net, state: _EnvState, opts: CheckOptions
    ):
        """Maximize ``min_t (u_t - l_t)`` over counterexample traces.

        The environment supplies its per-step interval widths (the
        lossless/lossy width is ``(C*t - W_t) - S_t`` at steps where the
        waste grew; the two-flow width measures aggregate service).  A
        fresh objective variable ``m`` is tied below every finite width
        and maximized by binary search.

        Returns ``(model, inconclusive)``: ``(None, False)`` proves no
        counterexample exists, ``(None, True)`` means the search budget
        ran out before the initial probe was decided.
        """
        cfg = state.cfg
        m = Real(f"{net.prefix}_wce_m")
        solver.add(m >= 0)
        hi = Fraction(cfg.C * cfg.T + cfg.initial_queue_max)
        solver.add(m <= RealVal(hi))
        for flat, width in state.env.wce_widths(net):
            solver.add(Or(flat, width >= m))
        opt = maximize(
            solver,
            m,
            lo=Fraction(0),
            hi=hi,
            precision=self.wce_precision,
            options=opts,
        )
        if not opt.feasible or opt.model is None:
            return None, opt.unknown
        return opt.model, False

    def verify(self, candidate: CandidateCCA) -> bool:
        """Convenience wrapper: True iff the candidate is proved correct."""
        return self.find_counterexample(candidate).verified
