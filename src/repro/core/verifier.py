"""The CEGIS verifier: CCAC as an SMT query per candidate CCA.

Given a concrete candidate, the verifier asks whether some feasible network
trace violates the desired property:

    SAT( environment /\\ sender /\\ template(candidate) /\\ not desired )

SAT yields a counterexample trace; UNSAT *proves* the candidate achieves
the property on every trace the model allows.

It also implements the paper's **worst-case counterexample** optimization:
instead of any counterexample, find one that maximizes
``min_t (u_t - l_t)`` — the narrowest width of the range-pruning intervals
— "we maximize using binary search" (§3.1.2).  Wider intervals let each
counterexample eliminate more candidates in the generator.

**Independent validation** (on by default): because the reproduction
substitutes z3 with the from-scratch :mod:`repro.smt` solver, every SAT
model is re-checked by :mod:`repro.runtime.validate` — an exact-arithmetic
evaluator sharing no code with the solver — against all asserted
constraints, and every extracted trace is replayed against the CCAC
environment and the candidate's template semantics.  A refuted result
raises :class:`~repro.runtime.errors.SoundnessError`; soundness failures
are never converted to ``unknown``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from ..ccac import CcacModel, CexTrace, ModelConfig, negated_desired
from ..obs import DEBUG, tracer
from ..runtime.validate import validate_counterexample, validate_model
from ..smt import CheckOptions, Or, Real, RealVal, Solver, SolverSession, Term, sat, unknown
from ..smt.optimize import maximize
from .template import CandidateCCA


@dataclass
class VerificationResult:
    """Outcome of one verifier call."""

    candidate: CandidateCCA
    verified: bool
    counterexample: Optional[CexTrace]
    wall_time: float
    solver_checks: int
    unknown: bool = False
    #: True when the runtime weakened the search to produce this result
    #: (see :mod:`repro.runtime.degrade` / :mod:`repro.runtime.workers`)
    degraded: bool = False
    #: True when the verified UNSAT verdict carries an independently
    #: checked proof (see :mod:`repro.trust`); ``certificate`` holds the
    #: picklable :class:`~repro.trust.certify.CertificateSummary`
    certified: bool = False
    certificate: Optional[object] = None


class CcacVerifier:
    """The per-candidate CCAC verifier.

    Two operating modes:

    * **fresh** (default): each call builds a fresh solver over the full
      encoding — stateless, trivially correct, and what the original
      reproduction did.
    * **incremental** (``incremental=True``): one long-lived
      :class:`~repro.smt.SolverSession` holds the candidate-independent
      CCAC encoding (environment + negated desired property); each call
      push/pops only the candidate's template constraints.  The CNF
      conversion, theory atoms, and learned clauses are amortized across
      every candidate the verifier ever sees.

    Either mode accepts a ``cache`` (``QueryCacheProtocol``-shaped, e.g.
    :class:`repro.engine.cache.QueryCache`): conclusive subquery verdicts
    are content-addressed and reused, which pays off under worst-case
    binary search and across portfolio workers sharing a ``cache_dir``.
    """

    def __init__(
        self,
        cfg: ModelConfig,
        wce_precision: Fraction = Fraction(1, 8),
        validate: bool = True,
        incremental: bool = False,
        cache=None,
        certify: bool = False,
    ):
        self.cfg = cfg
        self.wce_precision = wce_precision
        self.validate = validate
        self.incremental = incremental
        self.cache = cache
        self.certify = certify
        self.calls = 0
        self.certified = 0
        self.total_time = 0.0
        self._session: Optional[SolverSession] = None
        self._net: Optional[CcacModel] = None
        self._base: Optional[tuple[Term, ...]] = None

    def _ensure_net(self) -> tuple[CcacModel, tuple[Term, ...]]:
        """The candidate-independent encoding, built once per verifier.

        Terms are immutable and interned, so the same environment terms
        are shared by every per-candidate solver; because the compile
        memo (:mod:`repro.smt.compile`) keys on term identity, the
        shared-environment compile work is done once, not per candidate.
        """
        if self._net is None:
            self._net = CcacModel(self.cfg, prefix="v")
            base = list(self._net.constraints())
            base.append(negated_desired(self._net))
            self._base = tuple(base)
        return self._net, self._base

    def _ensure_session(self) -> tuple[SolverSession, CcacModel]:
        """The long-lived session holding the candidate-independent base."""
        if self._session is None:
            net, base = self._ensure_net()
            self._session = SolverSession(
                base, cache=self.cache, produce_proofs=self.certify
            )
        return self._session, self._net

    @contextmanager
    def _candidate_scope(self, candidate: CandidateCCA):
        """Yields ``(solver_like, net)`` with the full per-candidate
        encoding asserted; incremental mode reuses the shared base.
        Fresh mode asserts the shared base and the candidate delta as
        separate batches so the base compile is memo-amortized."""
        if self.incremental:
            session, net = self._ensure_session()
            with session.scope(*candidate.constraints_for(net)):
                yield session, net
        else:
            net, base = self._ensure_net()
            if self.cache is not None:
                session = SolverSession(
                    base, cache=self.cache, produce_proofs=self.certify
                )
                session.add(*candidate.constraints_for(net))
                yield session, net
            else:
                solver = Solver(produce_proofs=self.certify)
                solver.add(*base)
                solver.add(*candidate.constraints_for(net))
                yield solver, net

    @staticmethod
    def _solver_checks(solver) -> int:
        """Underlying SMT check count (sessions wrap the raw solver)."""
        stats = getattr(getattr(solver, "solver", solver), "stats", None)
        return getattr(stats, "checks", 0)

    def _extract_trace(
        self, solver, net: CcacModel, model, candidate: CandidateCCA
    ) -> CexTrace:
        """Build the counterexample trace, independently validating both
        the SAT model and the extracted trace first (when enabled)."""
        if self.validate:
            validate_model(solver.assertions(), model, context="verifier cex")
        trace = CexTrace.from_model(model, net)
        if self.validate:
            validate_counterexample(trace, candidate=candidate)
        return trace

    def find_counterexample(
        self,
        candidate: CandidateCCA,
        worst_case: bool = False,
        max_conflicts: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> VerificationResult:
        """Search for a property-violating trace (optionally worst-case).

        ``deadline`` (a ``time.perf_counter()`` timestamp) bounds the
        wall-clock the underlying SMT search may consume; an expired
        deadline yields an inconclusive result (``unknown=True``), never
        a false "verified".
        """
        start = time.perf_counter()
        self.calls += 1
        opts = CheckOptions(max_conflicts=max_conflicts, deadline=deadline)
        tr = tracer()
        with tr.span(
            "verifier.find_cex", level=DEBUG,
            candidate=str(candidate), worst_case=worst_case,
            incremental=self.incremental,
        ) as span:
            # in incremental mode the session's stats are cumulative;
            # report this call's delta like the fresh-solver path does
            base_checks = (
                self._solver_checks(self._session)
                if self._session is not None
                else 0
            )
            with self._candidate_scope(candidate) as (solver, net):
                inconclusive = False
                if worst_case:
                    model, inconclusive = self._solve_worst_case(solver, net, opts)
                else:
                    outcome = solver.check(opts)
                    if outcome is unknown:
                        model, inconclusive = None, True
                    elif outcome is sat:
                        model = solver.model()
                    else:
                        model = None
                result = (
                    None
                    if model is None
                    else self._extract_trace(solver, net, model, candidate)
                )
                summary = None
                if self.certify and model is None and not inconclusive:
                    # snapshot + check the proof while the candidate frame
                    # is still active (pop would disable its guard)
                    summary, inconclusive = self._certify_unsat(
                        solver, worst_case, opts
                    )
                checks = self._solver_checks(solver) - base_checks
            elapsed = time.perf_counter() - start
            self.total_time += elapsed
            span.set(
                verified=result is None and not inconclusive,
                unknown=inconclusive,
                solver_checks=checks,
                certified=summary is not None,
            )
        return VerificationResult(
            candidate=candidate,
            verified=result is None and not inconclusive,
            counterexample=result,
            wall_time=elapsed,
            solver_checks=checks,
            unknown=inconclusive,
            certified=summary is not None,
            certificate=summary,
        )

    def _certify_unsat(self, solver, worst_case: bool, opts: CheckOptions):
        """Independently check the proof of the current UNSAT verdict.

        Returns ``(summary, inconclusive)``.  In worst-case mode the
        binary search ends by popping its probe frames, so the solver's
        last verdict is not the final UNSAT — one extra plain check
        re-derives it under the active frames (with the proof still
        accumulating); if budgets expire there the result degrades to an
        honest ``unknown`` rather than an uncertified "verified".

        A proof that fails to check raises
        :class:`~repro.runtime.errors.SoundnessError` — like independent
        model validation, certification gaps are never degraded.
        """
        from ..trust.certify import certify_certificate
        from ..smt import unsat

        if worst_case and solver.check(opts) is not unsat:
            return None, True
        cert = solver.certificate()
        summary = certify_certificate(cert)
        self.certified += 1
        return summary, False

    def _solve_worst_case(self, solver, net: CcacModel, opts: CheckOptions):
        """Maximize ``min_t (u_t - l_t)`` over counterexample traces.

        ``u_t - l_t = (C*t - W_t) - S_t`` at steps where the waste grew
        (elsewhere the interval is unbounded and exempt).  A fresh
        objective variable ``m`` is tied below every finite width and
        maximized by binary search.

        Returns ``(model, inconclusive)``: ``(None, False)`` proves no
        counterexample exists, ``(None, True)`` means the search budget
        ran out before the initial probe was decided.
        """
        cfg = self.cfg
        m = Real(f"{net.prefix}_wce_m")
        solver.add(m >= 0)
        hi = Fraction(cfg.C * cfg.T + cfg.initial_queue_max)
        solver.add(m <= RealVal(hi))
        for t in range(1, cfg.T + 1):
            width = net.tokens(t) - net.S[t]
            solver.add(Or(net.W[t].eq(net.W[t - 1]), width >= m))
        opt = maximize(
            solver,
            m,
            lo=Fraction(0),
            hi=hi,
            precision=self.wce_precision,
            options=opts,
        )
        if not opt.feasible or opt.model is None:
            return None, opt.unknown
        return opt.model, False

    def verify(self, candidate: CandidateCCA) -> bool:
        """Convenience wrapper: True iff the candidate is proved correct."""
        return self.find_counterexample(candidate).verified
