"""Conditional CCA templates (paper §4.1, "Environment and objectives").

The linear template suffices for lossless networks; the paper's proposed
extension is a guarded template

    if cond then cwnd <- expr1 else cwnd <- expr2

"where cond, expr1, and expr2 are decided by the generator (similar to
Equation ii).  This template expresses traditional CCAs, e.g., for AIMD,
cond is loss detected, expr1 is multiplicative decrease, and expr2 is
additive increments."

Our network is lossless, so the guard observes the *delay signal* instead
of loss: ``cond(t) = [queue-estimate(t) > threshold]`` where the queue
estimate is the window's excess over bytes acked in the last RTT
(``cwnd(t-1) - (ack(t-1) - ack(t-2))``, i.e. data in flight not being
cleared at link rate).  Each branch is a small linear rule over the same
observations:

    branch(t) = mu * cwnd(t-1) + nu * (ack(t-1) - ack(t-3)) + delta

so AIMD is ``cond -> mu=1/2, nu=0, delta=0``, ``!cond -> mu=1, nu=0,
delta=gamma`` and RoCC is both branches ``mu=0, nu=1, delta=1``.

The synthesis query is identical in shape to the linear one; both the
verifier-side encoding and an exact numeric simulation are provided, and
a :class:`ConditionalGenerator` plugs into the same CEGIS loop.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, Optional, Sequence

from ..ccac import CcacModel, CexTrace, ModelConfig
from ..cegis import PruningMode
from ..smt import And, Implies, Ite, Not, Or, RealVal, Term, encode_max

#: domains used by the conditional search spaces
MU_DOMAIN: tuple[Fraction, ...] = (
    Fraction(0), Fraction(1, 2), Fraction(3, 4), Fraction(1), Fraction(3, 2),
)
DELTA_DOMAIN: tuple[Fraction, ...] = (Fraction(-1), Fraction(0), Fraction(1))
NU_DOMAIN: tuple[Fraction, ...] = (Fraction(0), Fraction(1))
THRESHOLD_DOMAIN: tuple[Fraction, ...] = (
    Fraction(0), Fraction(1), Fraction(2), Fraction(4),
)


@dataclass(frozen=True)
class ConditionalCCA:
    """A filled conditional template.

    ``cwnd(t) = branch_hi(t)`` when the delay signal exceeds
    ``threshold`` (congestion), else ``branch_lo(t)``; each branch is
    ``mu * cwnd(t-1) + nu * acked-in-2-RTTs + delta``.
    """

    threshold: Fraction
    mu_congested: Fraction
    delta_congested: Fraction
    mu_clear: Fraction
    delta_clear: Fraction
    nu_congested: Fraction = Fraction(0)
    nu_clear: Fraction = Fraction(0)

    def key(self) -> tuple:
        return (
            self.threshold,
            self.mu_congested,
            self.delta_congested,
            self.mu_clear,
            self.delta_clear,
            self.nu_congested,
            self.nu_clear,
        )

    def pretty(self) -> str:
        def branch(mu, nu, delta):
            parts = []
            if mu:
                parts.append(f"{mu}*cwnd(t-1)")
            if nu:
                parts.append(f"{nu}*acked2rtt(t)")
            parts.append(str(delta))
            return " + ".join(parts)

        return (
            f"if queue_est(t) > {self.threshold}: "
            f"cwnd = {branch(self.mu_congested, self.nu_congested, self.delta_congested)} "
            f"else: cwnd = {branch(self.mu_clear, self.nu_clear, self.delta_clear)}"
        )

    def is_aimd_shaped(self) -> bool:
        """Multiplicative decrease under congestion, additive increase
        otherwise — the classic AIMD stability recipe."""
        return (
            self.mu_congested < 1
            and self.delta_congested <= 0
            and self.mu_clear == 1
            and self.delta_clear > 0
        )

    # -- numeric semantics ---------------------------------------------------

    def queue_estimate(
        self, cwnd_prev: Fraction, ack_prev: Fraction, ack_prev2: Fraction
    ) -> Fraction:
        """Delay signal: window not cleared by last RTT's acks."""
        return Fraction(cwnd_prev) - (Fraction(ack_prev) - Fraction(ack_prev2))

    def next_cwnd(
        self,
        cwnd_prev: Fraction,
        ack_prev: Fraction,
        ack_prev2: Fraction,
        ack_prev3: Fraction,
        cwnd_min: Fraction,
    ) -> Fraction:
        congested = self.queue_estimate(cwnd_prev, ack_prev, ack_prev2) > self.threshold
        acked2 = Fraction(ack_prev) - Fraction(ack_prev3)
        if congested:
            raw = (
                self.mu_congested * cwnd_prev
                + self.nu_congested * acked2
                + self.delta_congested
            )
        else:
            raw = self.mu_clear * cwnd_prev + self.nu_clear * acked2 + self.delta_clear
        return max(raw, Fraction(cwnd_min))

    # -- SMT semantics ---------------------------------------------------------

    def constraints_for(self, model: CcacModel) -> list[Term]:
        """Template equalities over a network model (concrete candidate,
        so everything is linear)."""
        cfg = model.cfg
        floor = RealVal(cfg.cwnd_min)
        cons: list[Term] = []
        for t in range(0, cfg.T + 1):
            qe = model.cwnd_at(t - 1) - (model.ack_at(t - 1) - model.ack_at(t - 2))
            congested = qe > RealVal(self.threshold)
            acked2 = model.ack_at(t - 1) - model.ack_at(t - 3)
            hi = (
                RealVal(self.mu_congested) * model.cwnd_at(t - 1)
                + RealVal(self.nu_congested) * acked2
                + RealVal(self.delta_congested)
            )
            lo = (
                RealVal(self.mu_clear) * model.cwnd_at(t - 1)
                + RealVal(self.nu_clear) * acked2
                + RealVal(self.delta_clear)
            )
            rule = Ite(congested, hi, lo)
            cons.append(encode_max(model.cwnd[t], [rule, floor]))
        return cons


def aimd_candidate(
    threshold: Fraction = Fraction(2),
    beta: Fraction = Fraction(1, 2),
    alpha: Fraction = Fraction(1),
) -> ConditionalCCA:
    """The classic AIMD point of the space."""
    return ConditionalCCA(
        threshold=Fraction(threshold),
        mu_congested=Fraction(beta),
        delta_congested=Fraction(0),
        mu_clear=Fraction(1),
        delta_clear=Fraction(alpha),
    )


def rocc_conditional(increment: Fraction = Fraction(1)) -> ConditionalCCA:
    """RoCC expressed in the conditional template: both branches are the
    ack-difference rule (the guard is irrelevant)."""
    return ConditionalCCA(
        threshold=Fraction(0),
        mu_congested=Fraction(0),
        delta_congested=Fraction(increment),
        mu_clear=Fraction(0),
        delta_clear=Fraction(increment),
        nu_congested=Fraction(1),
        nu_clear=Fraction(1),
    )


@dataclass(frozen=True)
class ConditionalSpec:
    """Search space over :class:`ConditionalCCA` (paper §4.1's template)."""

    threshold_domain: tuple[Fraction, ...] = THRESHOLD_DOMAIN
    mu_domain: tuple[Fraction, ...] = MU_DOMAIN
    delta_domain: tuple[Fraction, ...] = DELTA_DOMAIN
    nu_domain: tuple[Fraction, ...] = NU_DOMAIN

    @property
    def search_space_size(self) -> int:
        return (
            len(self.threshold_domain)
            * (len(self.mu_domain) * len(self.delta_domain) * len(self.nu_domain)) ** 2
        )

    def iterate_candidates(self) -> Iterator[ConditionalCCA]:
        for thr, mu_c, d_c, nu_c, mu_o, d_o, nu_o in itertools.product(
            self.threshold_domain,
            self.mu_domain,
            self.delta_domain,
            self.nu_domain,
            self.mu_domain,
            self.delta_domain,
            self.nu_domain,
        ):
            yield ConditionalCCA(thr, mu_c, d_c, mu_o, d_o, nu_c, nu_o)

    def contains(self, cand: ConditionalCCA) -> bool:
        return (
            cand.threshold in self.threshold_domain
            and cand.mu_congested in self.mu_domain
            and cand.mu_clear in self.mu_domain
            and cand.delta_congested in self.delta_domain
            and cand.delta_clear in self.delta_domain
            and cand.nu_congested in self.nu_domain
            and cand.nu_clear in self.nu_domain
        )


class ConditionalVerifier:
    """Verifier for conditional candidates (same CCAC query)."""

    def __init__(self, cfg: ModelConfig):
        from .verifier import CcacVerifier

        self._inner = CcacVerifier(cfg)
        self.cfg = cfg

    def find_counterexample(self, candidate: ConditionalCCA, worst_case: bool = False):
        from ..ccac import negated_desired
        from ..smt import Solver, sat, unknown
        from .verifier import VerificationResult
        import time

        start = time.perf_counter()
        net = CcacModel(self.cfg, prefix="cv")
        solver = Solver()
        solver.add(*net.constraints())
        solver.add(*candidate.constraints_for(net))
        solver.add(negated_desired(net))
        if worst_case:
            state = self._inner._env_states()[0]
            model, inconclusive = self._inner._solve_worst_case(
                solver, net, state, None
            )
        else:
            outcome = solver.check()
            inconclusive = outcome is unknown
            model = solver.model() if outcome is sat else None
        trace = None
        if model is not None:
            if self._inner.validate:
                from ..runtime.validate import validate_counterexample, validate_model

                validate_model(solver.assertions(), model, context="conditional cex")
            trace = CexTrace.from_model(model, net)
            if self._inner.validate:
                # conditional candidates have branch semantics the linear
                # template re-derivation doesn't cover; validate the
                # environment and property violation only
                validate_counterexample(trace, candidate=None)
        return VerificationResult(
            candidate=candidate,
            verified=trace is None and not inconclusive,
            counterexample=trace,
            wall_time=time.perf_counter() - start,
            solver_checks=solver.stats.checks,
            unknown=inconclusive,
        )

    def verify(self, candidate: ConditionalCCA) -> bool:
        return self.find_counterexample(candidate).verified


def simulate_conditional(
    candidate: ConditionalCCA, trace: CexTrace, cfg: ModelConfig
) -> tuple[list[Fraction], list[Fraction]]:
    """Candidate's (cwnd, A) trajectories on a trace's observations
    (mirrors :func:`repro.core.generator_enum.simulate_on_trace`)."""
    T = cfg.T
    cwnd: list[Fraction] = []
    for t in range(T + 1):
        prev_cwnd = cwnd[t - 1] if t >= 1 else trace.cwnd_at(t - 1)
        value = candidate.next_cwnd(
            prev_cwnd,
            trace.ack_at(t - 1),
            trace.ack_at(t - 2),
            trace.ack_at(t - 3),
            cfg.cwnd_min,
        )
        cwnd.append(value)
    A: list[Fraction] = [trace.A[0]]
    for t in range(1, T + 1):
        A.append(max(A[t - 1], trace.S[t - 1] + cwnd[t]))
    return cwnd, A


def conditional_satisfies_spec(
    candidate: ConditionalCCA,
    trace: CexTrace,
    cfg: ModelConfig,
    pruning: PruningMode,
) -> bool:
    """``feasible => desired`` for a conditional candidate on a trace."""
    cwnd, A = simulate_conditional(candidate, trace, cfg)
    T = cfg.T
    feasible = trace.A[0] <= trace.S_pre[0] + cwnd[0]
    if feasible:
        if pruning is PruningMode.EXACT:
            feasible = all(A[t] == trace.A[t] for t in range(1, T + 1))
        else:
            for t, bound in enumerate(trace.range_bounds()):
                if t == 0:
                    continue
                if A[t] < bound.lower or (
                    bound.upper is not None and A[t] > bound.upper
                ):
                    feasible = False
                    break
    if not feasible:
        return True
    util_ok = trace.S[T] - trace.S[0] >= cfg.util_thresh * cfg.C * cfg.T
    limit = cfg.delay_thresh * cfg.C * cfg.D
    queue_ok = all(A[t] - trace.S[t] <= limit for t in range(T + 1))
    return (util_ok or cwnd[T] > cwnd[0]) and (queue_ok or cwnd[T] < cwnd[0])


class ConditionalGenerator:
    """Enumerative generator over the conditional space (plugs into the
    same :class:`repro.cegis.CegisLoop`)."""

    def __init__(
        self,
        spec: ConditionalSpec,
        cfg: ModelConfig,
        pruning: PruningMode = PruningMode.RANGE,
    ):
        self.spec = spec
        self.cfg = cfg
        self.pruning = pruning
        self._survivors = list(spec.iterate_candidates())

    @property
    def survivor_count(self) -> int:
        return len(self._survivors)

    def propose(self) -> Optional[ConditionalCCA]:
        return self._survivors[0] if self._survivors else None

    def add_counterexample(self, trace: CexTrace) -> None:
        self._survivors = [
            c
            for c in self._survivors
            if conditional_satisfies_spec(c, trace, self.cfg, self.pruning)
        ]

    def block(self, candidate: ConditionalCCA) -> None:
        key = candidate.key()
        self._survivors = [c for c in self._survivors if c.key() != key]


def synthesize_conditional(
    cfg: ModelConfig,
    spec: Optional[ConditionalSpec] = None,
    worst_case_cex: bool = True,
    find_all: bool = False,
    time_budget: Optional[float] = None,
):
    """CEGIS over the conditional template; returns a CegisOutcome."""
    from ..cegis import CegisLoop, CegisOptions

    spec = spec or ConditionalSpec()
    generator = ConditionalGenerator(spec, cfg)
    verifier = ConditionalVerifier(cfg)
    options = CegisOptions(
        worst_case_cex=worst_case_cex,
        find_all=find_all,
        time_budget=time_budget,
    )
    return CegisLoop(generator, verifier, options).run()
