"""Assumption synthesis and differential comparison (paper §2 and §4.1).

The paper's second and third query types ask for *environment assumptions*
— human-interpretable logical constraints on network behaviour — instead
of concrete counterexamples:

* **Identifying assumptions**: "does there exist an assumption such that
  for all traces, the trace ensures the desired property iff it satisfies
  the assumption".  §4.1 notes that the practical target is the *weakest
  sufficient* assumption.
* **Differential comparison**: given CCAs A and B, what additional
  constraints does B need on top of the environments where A works.

We implement the parameterized-inequality template §4.1 suggests ("a set
of parameterized inequalities, similar to [40]").  Each
:class:`AssumptionTemplate` is a family of constraints monotone in one
rational parameter theta (larger theta = weaker assumption = more network
behaviours allowed); the weakest sufficient theta is found by binary
search, each probe being one verifier call with the assumption conjoined
to the environment.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Optional

from ..ccac import CcacModel, ModelConfig
from ..ccac.environments import EnvironmentSpec
from ..smt import And, CheckOptions, RealVal, Term
from .template import CandidateCCA


@dataclass(frozen=True)
class AssumptionTemplate:
    """A one-parameter family of environment assumptions.

    ``build(model, theta)`` returns the assumption constraint for a given
    parameter value.  The family must be monotone: any trace satisfying
    the assumption at theta also satisfies it at any theta' >= theta.
    ``lo``/``hi`` bracket the search; ``describe`` renders the synthesized
    assumption as the human-readable constraint the paper advertises.
    """

    name: str
    build: Callable[[CcacModel, Fraction], Term]
    lo: Fraction
    hi: Fraction
    describe: Callable[[Fraction], str]


def total_waste_budget(cfg: ModelConfig) -> AssumptionTemplate:
    """Assumption family: "the network wastes at most theta tokens over
    the trace" — i.e. bounds ACK aggregation / link stalls."""
    return AssumptionTemplate(
        name="total_waste",
        build=lambda net, theta: net.W[cfg.T] <= RealVal(theta),
        lo=Fraction(0),
        hi=Fraction(cfg.C * cfg.T),
        describe=lambda theta: f"network wastes at most {theta} * C*D tokens per {cfg.T} RTTs",
    )


def per_step_waste_budget(cfg: ModelConfig) -> AssumptionTemplate:
    """Assumption family: "waste grows at most theta per RTT" — a bound on
    instantaneous jitter."""

    def build(net: CcacModel, theta: Fraction) -> Term:
        limit = RealVal(theta)
        return And(
            *[net.W[t] - net.W[t - 1] <= limit for t in range(1, cfg.T + 1)]
        )

    return AssumptionTemplate(
        name="per_step_waste",
        build=build,
        lo=Fraction(0),
        hi=Fraction(cfg.C * cfg.T),
        describe=lambda theta: f"network wastes at most {theta} * C*D tokens per RTT",
    )


def initial_queue_budget(cfg: ModelConfig) -> AssumptionTemplate:
    """Assumption family: "the flow starts with at most theta queued"."""
    return AssumptionTemplate(
        name="initial_queue",
        build=lambda net, theta: net.A[0] <= RealVal(theta),
        lo=Fraction(0),
        hi=Fraction(cfg.initial_queue_max),
        describe=lambda theta: f"initial queue is at most {theta} * C*D bytes",
    )


@dataclass
class AssumptionResult:
    """Outcome of a weakest-sufficient-assumption query."""

    candidate: CandidateCCA
    template: AssumptionTemplate
    theta: Optional[Fraction]  # None: no theta in [lo, hi] suffices
    assumption: Optional[str]
    probes: int
    wall_time: float
    #: probes the solver could not decide within the given
    #: :class:`~repro.smt.CheckOptions` budget (counted as insufficient)
    unknown_probes: int = 0

    @property
    def found(self) -> bool:
        return self.theta is not None


def _probe_verifier(cfg, environment, cache=None):
    """One incremental verifier shared by all binary-search probes: the
    environment encoding, CNF conversion, and learned clauses are
    amortized across probes (each probe is a push/pop of the assumption
    plus the candidate's template constraints)."""
    from .verifier import CcacVerifier

    return CcacVerifier(
        cfg,
        incremental=True,
        cache=cache,
        environments=[environment] if environment is not None else None,
    )


def _holds_under(
    candidate: CandidateCCA,
    cfg: ModelConfig,
    template: AssumptionTemplate,
    theta: Fraction,
    verifier=None,
    options: Optional[CheckOptions] = None,
) -> bool:
    """Does the candidate provably meet the property on every trace
    satisfying the assumption at theta?

    Routed through :class:`~repro.core.verifier.CcacVerifier` (the
    assumption rides in as an extra constraint of the candidate frame),
    so probes share the environment encoding, benefit from a query
    cache, honour a ``deadline``, and validate any SAT model found.  An
    inconclusive probe (budget exhausted) counts as *not* sufficient —
    never a false "holds".
    """
    if verifier is None:
        verifier = _probe_verifier(cfg, None)
    net = verifier.network()
    opts = options or CheckOptions()
    result = verifier.find_counterexample(
        candidate,
        max_conflicts=opts.max_conflicts,
        deadline=opts.deadline,
        extra_constraints=[template.build(net, theta)],
    )
    return result.verified


def weakest_sufficient_assumption(
    candidate: CandidateCCA,
    cfg: ModelConfig,
    template: AssumptionTemplate,
    precision: Fraction = Fraction(1, 16),
    environment: Optional[EnvironmentSpec] = None,
    options: Optional[CheckOptions] = None,
    cache=None,
) -> AssumptionResult:
    """Binary-search the weakest (largest-theta) sufficient assumption.

    Querying only for *sufficiency* would trivially return the assumption
    "False" (paper §4.1); restricting to a monotone family and maximizing
    theta is the paper's "weakest sufficient assumption" resolution.

    ``environment`` runs the query in another cell of the CCAC matrix
    (the assumption template must build over that cell's model
    variables); ``options`` carries the per-probe solver budget
    (``deadline`` bounds each probe's wall clock).
    """
    start = time.perf_counter()
    probes = 0
    unknown_probes = 0
    verifier = _probe_verifier(cfg, environment, cache=cache)
    net = verifier.network()
    opts = options or CheckOptions()

    def sufficient(theta: Fraction) -> bool:
        nonlocal probes, unknown_probes
        probes += 1
        result = verifier.find_counterexample(
            candidate,
            max_conflicts=opts.max_conflicts,
            deadline=opts.deadline,
            extra_constraints=[template.build(net, theta)],
        )
        if result.unknown:
            unknown_probes += 1
        return result.verified

    lo, hi = template.lo, template.hi
    if not sufficient(lo):
        return AssumptionResult(
            candidate, template, None, None, probes,
            time.perf_counter() - start, unknown_probes,
        )
    if sufficient(hi):
        best = hi
    else:
        # invariant: sufficient(lo), not sufficient(hi)
        best = lo
        while hi - lo > precision:
            mid = (lo + hi) / 2
            if sufficient(mid):
                best = mid
                lo = mid
            else:
                hi = mid
    return AssumptionResult(
        candidate,
        template,
        best,
        template.describe(best),
        probes,
        time.perf_counter() - start,
        unknown_probes,
    )


@dataclass
class DifferentialResult:
    """Outcome of a differential comparison between two CCAs."""

    template: AssumptionTemplate
    theta_a: Optional[Fraction]
    theta_b: Optional[Fraction]
    verdict: str

    def gap(self) -> Optional[Fraction]:
        if self.theta_a is None or self.theta_b is None:
            return None
        return self.theta_a - self.theta_b


def differential_comparison(
    cand_a: CandidateCCA,
    cand_b: CandidateCCA,
    cfg: ModelConfig,
    template: AssumptionTemplate,
    precision: Fraction = Fraction(1, 16),
    environment: Optional[EnvironmentSpec] = None,
    options: Optional[CheckOptions] = None,
) -> DifferentialResult:
    """Compare two CCAs through the lens of one assumption family:
    which tolerates a weaker (larger-theta) environment assumption?

    This answers the paper's operator question "what heuristic should I
    deploy in my custom system" with an interpretable constraint rather
    than individual traces.
    """
    ra = weakest_sufficient_assumption(
        cand_a, cfg, template, precision,
        environment=environment, options=options,
    )
    rb = weakest_sufficient_assumption(
        cand_b, cfg, template, precision,
        environment=environment, options=options,
    )
    if ra.theta is None and rb.theta is None:
        verdict = "neither CCA meets the property under any assumption in the family"
    elif rb.theta is None:
        verdict = "A works under some assumption; B under none in the family"
    elif ra.theta is None:
        verdict = "B works under some assumption; A under none in the family"
    elif ra.theta > rb.theta:
        verdict = (
            f"A tolerates strictly more network behaviours "
            f"({template.describe(ra.theta)} vs {template.describe(rb.theta)})"
        )
    elif ra.theta < rb.theta:
        verdict = (
            f"B tolerates strictly more network behaviours "
            f"({template.describe(rb.theta)} vs {template.describe(ra.theta)})"
        )
    else:
        verdict = f"A and B tolerate the same assumption ({template.describe(ra.theta)})"
    return DifferentialResult(template, ra.theta, rb.theta, verdict)
