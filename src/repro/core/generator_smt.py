"""The CEGIS generator as an incremental SMT query (paper §3.1).

One solver instance lives across the whole CEGIS run.  The template's
holes are real variables restricted to the discrete coefficient domain;
every counterexample trace adds a block of constraints describing how a
candidate *would have behaved* on that trace and requiring the
specification ``feasible => desired`` to hold there.

Linearization (paper §3.1.2, "Time per iteration"): the only non-linear
terms are products ``alpha_i * cwnd(t-i)`` of two unknowns.  Because the
coefficient domain is discrete, each product is expanded into the
case-split ``alpha_i == a  =>  prod == a * cwnd(t-i)`` over the domain —
the paper's ``sum(ite(v == a, a*u, 0))`` rewriting.  Products with trace
constants (``beta_i * ack(t-i)``) are linear as-is.

Pruning modes (paper §3.1.2, "Number of iterations"):

* EXACT (baseline): feasibility on a recorded trace means reproducing its
  exact cumulative sends, so each trace eliminates a single behaviour;
* RANGE: feasibility means staying inside the interval
  ``[S_t, C*t - W_t]`` (or ``[S_t, inf)`` where the waste stayed flat),
  so each trace eliminates a whole range of behaviours.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Optional

from ..ccac import CexTrace, ModelConfig
from ..cegis import PruningMode
from ..smt import (
    And,
    Implies,
    Not,
    Or,
    Real,
    RealVal,
    Solver,
    Sum,
    Term,
    encode_max,
    sat,
)
from .template import CandidateCCA, TemplateSpec


class SmtGenerator:
    """Incremental SMT generator over a :class:`TemplateSpec`."""

    def __init__(
        self,
        spec: TemplateSpec,
        cfg: ModelConfig,
        pruning: PruningMode = PruningMode.RANGE,
    ):
        self.spec = spec
        self.cfg = cfg
        self.pruning = pruning
        self.solver = Solver()
        self._trace_count = 0
        h = spec.history
        # hole variables
        self.alpha_vars = [Real(f"hole_alpha_{i}") for i in range(1, h + 1)]
        self.beta_vars = [Real(f"hole_beta_{i}") for i in range(1, h + 1)]
        self.gamma_var = Real("hole_gamma")
        self._assert_domains()

    # ------------------------------------------------------------------

    def _assert_domains(self) -> None:
        spec = self.spec
        for a in self.alpha_vars:
            if spec.use_cwnd_history:
                self.solver.add(Or(*[a.eq(RealVal(v)) for v in spec.coeff_domain]))
            else:
                self.solver.add(a.eq(0))
        for b in self.beta_vars:
            self.solver.add(Or(*[b.eq(RealVal(v)) for v in spec.coeff_domain]))
        self.solver.add(
            Or(*[self.gamma_var.eq(RealVal(v)) for v in spec.gamma_domain])
        )

    # ------------------------------------------------------------------

    def _rule_term(self, k: int, t: int, cwnd_vars: dict[int, Term], trace: CexTrace) -> Term:
        """The template RHS at time t on trace k.

        ``cwnd_vars`` maps in-trace times to the candidate's cwnd
        variables; negative times read the trace's recorded pre-history.
        ``ack`` values come from the trace (they are observations).
        """
        spec = self.spec
        parts: list[Term] = [self.gamma_var]
        for i in range(1, spec.history + 1):
            back = t - i
            # beta_i * ack(t-i): ack is a trace constant -> linear
            ack_const = RealVal(trace.ack_at(back))
            parts.append(self.beta_vars[i - 1] * ack_const)
            if spec.use_cwnd_history:
                if back < 0:
                    # pre-history cwnd is a trace constant -> linear
                    parts.append(
                        self.alpha_vars[i - 1] * RealVal(trace.cwnd_at(back))
                    )
                else:
                    # alpha_i * cwnd-variable: case-split over the domain
                    prod = Real(f"g{k}_prod_{i}_{t}")
                    for v in spec.coeff_domain:
                        self.solver.add(
                            Implies(
                                self.alpha_vars[i - 1].eq(RealVal(v)),
                                prod.eq(RealVal(v) * cwnd_vars[back]),
                            )
                        )
                    parts.append(prod)
        return Sum(parts)

    def add_counterexample(self, trace: CexTrace) -> None:
        """Constrain future proposals to satisfy the spec on this trace.

        Counterexamples are applied under their *origin environment's*
        semantics (a tag carried by the trace): lossless-family traces
        use the paper's exact/range pruning; lossy and two-flow traces
        use conservative exact replay (see
        :mod:`repro.ccac.environments`), so pruning across the matrix
        stays sound.
        """
        if getattr(trace, "flows", None) is not None:
            self._add_twoflow_counterexample(trace)
            return
        if hasattr(trace, "L"):
            self._add_lossy_counterexample(trace)
            return
        k = self._trace_count
        self._trace_count += 1
        # a jitter/threshold environment overrides fields of the query
        # config; the trace carries the effective one
        cfg = trace.cfg
        T = cfg.T

        cwnd_vars: dict[int, Term] = {t: Real(f"g{k}_cwnd_{t}") for t in range(T + 1)}
        A_vars: dict[int, Term] = {t: Real(f"g{k}_A_{t}") for t in range(1, T + 1)}
        floor = RealVal(cfg.cwnd_min)

        # candidate cwnd trajectory on this trace's observations
        for t in range(T + 1):
            rule = self._rule_term(k, t, cwnd_vars, trace)
            self.solver.add(encode_max(cwnd_vars[t], [rule, floor]))

        # candidate send trajectory (eager window-limited sender)
        A0 = RealVal(trace.A[0])
        prev: Term = A0
        for t in range(1, T + 1):
            window_point = RealVal(trace.S[t - 1]) + cwnd_vars[t]
            self.solver.add(encode_max(A_vars[t], [prev, window_point]))
            prev = A_vars[t]

        # feasibility of this trace under the candidate
        feas_parts: list[Term] = []
        # the recorded initial queue must fit the candidate's initial window
        feas_parts.append(A0 <= RealVal(trace.S_pre[0]) + cwnd_vars[0])
        if self.pruning is PruningMode.EXACT:
            for t in range(1, T + 1):
                feas_parts.append(A_vars[t].eq(RealVal(trace.A[t])))
        else:
            for t, bound in enumerate(trace.range_bounds()):
                if t == 0:
                    continue
                feas_parts.append(A_vars[t] >= RealVal(bound.lower))
                if bound.upper is not None:
                    feas_parts.append(A_vars[t] <= RealVal(bound.upper))
        feasible = And(*feas_parts)

        # desired property with the candidate's A/cwnd and the trace's S
        util_target = cfg.util_thresh * cfg.C * cfg.T
        util_ok = (trace.S[T] - trace.S[0]) >= util_target  # a constant
        limit = RealVal(cfg.delay_thresh * cfg.C * cfg.D)
        queue_parts = [A0 - RealVal(trace.S[0]) <= limit]
        for t in range(1, T + 1):
            queue_parts.append(A_vars[t] - RealVal(trace.S[t]) <= limit)
        desired = And(
            Or(_const_bool(util_ok), cwnd_vars[T] > cwnd_vars[0]),
            Or(And(*queue_parts), cwnd_vars[T] < cwnd_vars[0]),
        )
        self.solver.add(Implies(feasible, desired))

    def _candidate_trajectories(self, k: int, trace, cfg, window_base):
        """Per-trace cwnd variables plus the send recurrence under a
        given per-step window base (``S_{t-1}`` lossless,
        ``S_{t-1} + L_{t-1}`` lossy); returns ``(cwnd_vars, A_vars)``."""
        T = cfg.T
        cwnd_vars: dict[int, Term] = {
            t: Real(f"g{k}_cwnd_{t}") for t in range(T + 1)
        }
        floor = RealVal(cfg.cwnd_min)
        for t in range(T + 1):
            rule = self._rule_term(k, t, cwnd_vars, trace)
            self.solver.add(encode_max(cwnd_vars[t], [rule, floor]))
        A_vars: dict[int, Term] = {
            t: Real(f"g{k}_A_{t}") for t in range(1, T + 1)
        }
        prev: Term = RealVal(trace.A[0])
        for t in range(1, T + 1):
            window_point = RealVal(window_base(t)) + cwnd_vars[t]
            self.solver.add(encode_max(A_vars[t], [prev, window_point]))
            prev = A_vars[t]
        return cwnd_vars, A_vars

    def _exact_feasibility(self, trace, cwnd_vars, A_vars, cfg) -> list[Term]:
        """Exact-replay feasibility: the recorded initial queue fits the
        candidate's initial window and the recorded sends are reproduced
        step for step.  Used for non-lossless traces regardless of the
        requested pruning mode — range intervals are a lossless-only
        construction, and exact replay is the conservative sound choice
        (a diverging candidate is simply not pruned by this trace)."""
        parts: list[Term] = []
        if trace.S_pre:
            parts.append(
                RealVal(trace.A[0]) <= RealVal(trace.S_pre[0]) + cwnd_vars[0]
            )
        for t in range(1, cfg.T + 1):
            parts.append(A_vars[t].eq(RealVal(trace.A[t])))
        return parts

    def _add_lossy_counterexample(self, trace) -> None:
        """A finite-buffer counterexample: exact replay under the lossy
        send recurrence; the desired property gains the loss-budget leg.
        Because feasibility pins the sends to the recorded trace, the
        utilization/queue/loss legs are trace constants — only the cwnd
        comparison legs stay symbolic."""
        k = self._trace_count
        self._trace_count += 1
        cfg = trace.cfg
        T = cfg.T
        cwnd_vars, A_vars = self._candidate_trajectories(
            k, trace, cfg, lambda t: trace.S[t - 1] + trace.L[t - 1]
        )
        feasible = And(*self._exact_feasibility(trace, cwnd_vars, A_vars, cfg))
        limit = cfg.delay_thresh * cfg.C * cfg.D
        util_ok = trace.S[T] - trace.S[0] >= cfg.util_thresh * cfg.C * cfg.T
        queue_ok = all(trace.A[t] - trace.S[t] <= limit for t in range(T + 1))
        loss_ok = trace.L[T] <= trace.loss_thresh * cfg.C * cfg.D
        increases = cwnd_vars[T] > cwnd_vars[0]
        decreases = cwnd_vars[T] < cwnd_vars[0]
        desired = And(
            Or(_const_bool(util_ok), increases),
            Or(_const_bool(queue_ok), decreases),
            Or(_const_bool(loss_ok), decreases),
        )
        self.solver.add(Implies(feasible, desired))

    def _add_twoflow_counterexample(self, trace) -> None:
        """A starvation counterexample: both flows replay the candidate
        exactly on their own observations; the desired property is
        per-flow "phi-fair throughput OR cwnd still growing", with the
        throughputs being trace constants under exact replay."""
        cfg = trace.cfg
        T = cfg.T
        fair = cfg.C * cfg.T / 2
        feas_parts: list[Term] = []
        desired_parts: list[Term] = []
        for flow in trace.flows:
            k = self._trace_count
            self._trace_count += 1
            cwnd_vars, A_vars = self._candidate_trajectories(
                k, flow, cfg, lambda t, flow=flow: flow.S[t - 1]
            )
            feas_parts.extend(
                self._exact_feasibility(flow, cwnd_vars, A_vars, cfg)
            )
            thr_ok = flow.S[T] - flow.S[0] >= trace.phi * fair
            desired_parts.append(
                Or(_const_bool(thr_ok), cwnd_vars[T] > cwnd_vars[0])
            )
        self.solver.add(
            Implies(And(*feas_parts), And(*desired_parts))
        )

    # ------------------------------------------------------------------

    def propose(self) -> Optional[CandidateCCA]:
        """Solve the accumulated constraints; None when UNSAT."""
        if self.solver.check() is not sat:
            return None
        model = self.solver.model()
        alphas = tuple(model.value(a) for a in self.alpha_vars)
        betas = tuple(model.value(b) for b in self.beta_vars)
        gamma = model.value(self.gamma_var)
        return CandidateCCA(alphas, betas, gamma)

    def propose_batch(self, k: int) -> list[CandidateCCA]:
        """Up to ``k`` *distinct* candidates for one portfolio round.

        Diversity is forced with temporary blocking constraints inside a
        pushed frame, popped before returning — so no candidate is
        permanently excluded by having been proposed (only
        :meth:`block` does that)."""
        batch: list[CandidateCCA] = []
        self.solver.push()
        try:
            for _ in range(max(k, 1)):
                candidate = self.propose()
                if candidate is None:
                    break
                batch.append(candidate)
                self.solver.add(Not(self._assignment_term(candidate)))
        finally:
            self.solver.pop()
        return batch

    def _assignment_term(self, candidate: CandidateCCA) -> Term:
        """The conjunction pinning the holes to this candidate."""
        parts = [
            a.eq(RealVal(v)) for a, v in zip(self.alpha_vars, candidate.alphas)
        ] + [
            b.eq(RealVal(v)) for b, v in zip(self.beta_vars, candidate.betas)
        ] + [self.gamma_var.eq(RealVal(candidate.gamma))]
        return And(*parts)

    def block(self, candidate: CandidateCCA) -> None:
        """Exclude exactly this hole assignment (all-solutions mode)."""
        self.solver.add(Not(self._assignment_term(candidate)))


def _const_bool(value: bool) -> Term:
    from ..smt import FALSE, TRUE

    return TRUE if value else FALSE
