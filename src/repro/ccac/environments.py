"""First-class network environments: the CCAC matrix behind one protocol.

The paper's evaluation (§4) runs the lossless / infinite-buffer /
single-flow CCAC fragment; :mod:`repro.ccac.lossy` and
:mod:`repro.ccac.multiflow` encode the neighbouring cells of the matrix.
This module names those cells.  An :class:`EnvironmentSpec` is a small,
versioned, JSON-round-trippable value (exact ``Fraction`` parameters)
that knows how to

* build the environment's SMT model for a :class:`~repro.ccac.config.ModelConfig`,
* state the environment's desired property (and its negation),
* assert a candidate's template constraints against the model,
* extract and independently re-validate counterexample traces,
* replay a counterexample numerically for *sound* generator pruning.

Registered kinds:

``lossless``
    the paper's fragment (:class:`~repro.ccac.model.CcacModel`).
``lossy``
    finite drop-tail buffer with the loss-budget property leg
    (:class:`~repro.ccac.lossy.LossyCcacModel`); parameters ``buffer``
    (required, > 0) and ``loss_thresh`` (default 1, in ``C*D`` units).
``multiflow``
    two flows of the candidate sharing one link
    (:class:`~repro.ccac.multiflow.TwoFlowModel`); parameters
    ``min_share`` (default 0) and ``phi`` (default 1/4, the starvation
    threshold).
``jitter``
    lossless with the model's jitter bound overridden; parameter
    ``jitter`` (required, integer time units).
``thresholds``
    lossless with the desired-property thresholds overridden; parameters
    ``util_thresh`` and/or ``delay_thresh``.

**Pruning soundness.**  Counterexamples are tagged with their origin
environment, and the generators apply each one only under that
environment's semantics.  Lossless traces keep the paper's exact/range
pruning.  Lossy and two-flow traces prune by *exact replay*: the
candidate's cwnd trajectory is fully determined by the trace's recorded
ack observations, and if replaying the environment's send recurrence on
those cwnds reproduces the recorded arrivals exactly, the entire
recorded trace — with its loss counter / service split / waste — is an
admissible behaviour for the candidate, so the environment's desired
property on that trace decides feasibly and soundly.  A candidate whose
replay diverges is simply not pruned by that trace (conservative, never
unsound): a lossy counterexample can never eliminate behaviour that only
exists in the lossless cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as _dc_replace
from fractions import Fraction
from typing import Optional, Sequence

from ..smt import And, Not, Or, RealVal, Term
from .config import ModelConfig
from .model import CcacModel
from .properties import cwnd_decreases, desired_property

__all__ = [
    "ENVIRONMENT_VERSION",
    "EnvironmentSpec",
    "default_environments",
    "environment",
    "environment_from_json",
    "lossless_environment",
    "lossy_environment",
    "multiflow_environment",
    "parse_environment",
    "registered_kinds",
]

#: schema version of the EnvironmentSpec JSON encoding (gate on decode)
ENVIRONMENT_VERSION = 1


# ---------------------------------------------------------------------------
# kind implementations


class _Kind:
    """One registered environment kind (stateless; parameters arrive as
    an exact-``Fraction`` mapping extracted from the spec)."""

    name: str = ""
    #: parameters that must be supplied
    required: tuple[str, ...] = ()
    #: parameters filled with canonical defaults when omitted
    defaults: dict[str, Fraction] = {}
    #: optional parameters with no default (present only when given)
    optional: tuple[str, ...] = ()

    def check(self, params: dict[str, Fraction]) -> None:
        pass

    def model_config(self, cfg: ModelConfig, params) -> ModelConfig:
        return cfg

    def build_model(self, cfg: ModelConfig, params, prefix: str):
        return CcacModel(cfg, prefix=prefix)

    def desired(self, net, params) -> Term:
        return desired_property(net)

    def candidate_constraints(self, net, candidate) -> list[Term]:
        return list(candidate.constraints_for(net))

    def wce_widths(self, net) -> list[tuple[Term, Term]]:
        """Per-step ``(waste_flat, width)`` pairs for the worst-case
        counterexample search: the range-pruning interval width is
        ``C*t - W_t - S_t`` wherever the waste grew."""
        return [
            (net.W[t].eq(net.W[t - 1]), net.tokens(t) - net.S[t])
            for t in range(1, net.cfg.T + 1)
        ]

    def extract_trace(self, spec: "EnvironmentSpec", model, net):
        from .trace import CexTrace

        trace = CexTrace.from_model(model, net)
        return _dc_replace(trace, environment=spec)

    def replay_satisfies(self, candidate, trace, pruning) -> bool:
        """``feasible => desired`` for this candidate on this trace."""
        from ..core.generator_enum import satisfies_spec

        return satisfies_spec(candidate, trace, trace.cfg, pruning)


class _Lossless(_Kind):
    name = "lossless"


class _Jitter(_Lossless):
    name = "jitter"
    required = ("jitter",)

    def check(self, params) -> None:
        j = params["jitter"]
        if j.denominator != 1 or j < 0:
            raise ValueError("jitter must be a non-negative integer")

    def model_config(self, cfg, params):
        return _dc_replace(cfg, jitter=int(params["jitter"]))


class _Thresholds(_Lossless):
    name = "thresholds"
    optional = ("util_thresh", "delay_thresh")

    def check(self, params) -> None:
        if not params:
            raise ValueError(
                "thresholds environment needs util_thresh and/or delay_thresh"
            )

    def model_config(self, cfg, params):
        overrides = {
            k: Fraction(v)
            for k, v in params.items()
            if k in ("util_thresh", "delay_thresh")
        }
        return _dc_replace(cfg, **overrides)


class _Lossy(_Kind):
    name = "lossy"
    required = ("buffer",)
    defaults = {"loss_thresh": Fraction(1)}

    def check(self, params) -> None:
        if params["buffer"] <= 0:
            raise ValueError("lossy buffer must be positive")
        if params["loss_thresh"] < 0:
            raise ValueError("loss_thresh must be non-negative")

    def build_model(self, cfg, params, prefix):
        from .lossy import LossyCcacModel

        return LossyCcacModel(cfg, buffer=params["buffer"], prefix=prefix)

    def desired(self, net, params) -> Term:
        cfg = net.cfg
        loss_ok = net.L[cfg.T] <= RealVal(
            params["loss_thresh"] * cfg.C * cfg.D
        )
        return And(
            desired_property(net), Or(loss_ok, cwnd_decreases(net))
        )

    def extract_trace(self, spec, model, net):
        from .lossy import LossyCexTrace

        trace = LossyCexTrace.from_model(model, net)
        return _dc_replace(
            trace,
            loss_thresh=spec.param("loss_thresh"),
            environment=spec,
        )

    def replay_satisfies(self, candidate, trace, pruning) -> bool:
        # Exact replay regardless of the requested pruning mode (see the
        # module docstring's soundness argument); RANGE intervals are a
        # lossless-only construction.
        cfg = trace.cfg
        T = cfg.T
        cwnd = _replay_cwnd(candidate, trace, cfg)
        feasible = (
            not trace.S_pre or trace.A[0] <= trace.S_pre[0] + cwnd[0]
        )
        if feasible:
            A = [trace.A[0]]
            for t in range(1, T + 1):
                A.append(
                    max(A[t - 1], trace.S[t - 1] + trace.L[t - 1] + cwnd[t])
                )
            feasible = all(A[t] == trace.A[t] for t in range(1, T + 1))
        if not feasible:
            return True
        return _dc_replace(trace, cwnd=tuple(cwnd)).desired_holds()


class _Multiflow(_Kind):
    name = "multiflow"
    defaults = {"min_share": Fraction(0), "phi": Fraction(1, 4)}

    def check(self, params) -> None:
        if not (0 <= params["min_share"] <= Fraction(1, 2)):
            raise ValueError("min_share must be in [0, 1/2]")
        if not (0 < params["phi"] <= 1):
            raise ValueError("phi must be in (0, 1]")

    def build_model(self, cfg, params, prefix):
        from .multiflow import TwoFlowModel

        return TwoFlowModel(cfg, min_share=params["min_share"], prefix=prefix)

    def desired(self, net, params) -> Term:
        return net.no_starvation(params["phi"])

    def candidate_constraints(self, net, candidate) -> list[Term]:
        cons: list[Term] = []
        for i in (0, 1):
            cons.extend(candidate.constraints_for(net.flow_view(i)))
        return cons

    def wce_widths(self, net) -> list[tuple[Term, Term]]:
        return [
            (net.W[t].eq(net.W[t - 1]), net.tokens(t) - net.total_S(t))
            for t in range(1, net.cfg.T + 1)
        ]

    def extract_trace(self, spec, model, net):
        from .multiflow import TwoFlowCexTrace

        trace = TwoFlowCexTrace.from_model(
            model,
            net,
            min_share=spec.param("min_share"),
            phi=spec.param("phi"),
        )
        return _dc_replace(trace, environment=spec)

    def replay_satisfies(self, candidate, trace, pruning) -> bool:
        cfg = trace.cfg
        T = cfg.T
        replayed = []
        for flow in trace.flows:
            cwnd = _replay_cwnd(candidate, flow, cfg)
            feasible = (
                not flow.S_pre or flow.A[0] <= flow.S_pre[0] + cwnd[0]
            )
            if feasible:
                A = [flow.A[0]]
                for t in range(1, T + 1):
                    A.append(max(A[t - 1], flow.S[t - 1] + cwnd[t]))
                feasible = all(A[t] == flow.A[t] for t in range(1, T + 1))
            if not feasible:
                return True
            replayed.append(cwnd)
        fair = cfg.C * cfg.T / 2
        for flow, cwnd in zip(trace.flows, replayed):
            thr = flow.S[T] - flow.S[0]
            if thr < trace.phi * fair and not cwnd[T] > cwnd[0]:
                return False
        return True


def _replay_cwnd(candidate, trace, cfg) -> list[Fraction]:
    """The candidate's cwnd trajectory on a trace's ack observations
    (the trace supplies pre-history cwnds; the rule fills ``t >= 0``)."""
    cwnd: list[Fraction] = []
    for t in range(cfg.T + 1):
        total = Fraction(candidate.gamma)
        for i in range(1, candidate.history + 1):
            back = t - i
            if candidate.alphas[i - 1] != 0:
                hist = cwnd[back] if back >= 0 else trace.cwnd_at(back)
                total += candidate.alphas[i - 1] * hist
            if candidate.betas[i - 1] != 0:
                total += candidate.betas[i - 1] * trace.ack_at(back)
        cwnd.append(max(total, cfg.cwnd_min))
    return cwnd


_REGISTRY: dict[str, _Kind] = {
    kind.name: kind
    for kind in (_Lossless(), _Jitter(), _Thresholds(), _Lossy(), _Multiflow())
}


def registered_kinds() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


# ---------------------------------------------------------------------------
# the spec


@dataclass(frozen=True)
class EnvironmentSpec:
    """A named, versioned cell of the CCAC environment matrix.

    ``params`` is canonical: kind-level defaults are filled in and keys
    are sorted, so two specs describing the same environment are equal,
    hash equal, and serialize identically (fingerprint-stable).
    """

    kind: str
    params: tuple[tuple[str, Fraction], ...] = ()
    version: int = ENVIRONMENT_VERSION

    def __post_init__(self):
        if self.kind not in _REGISTRY:
            raise ValueError(
                f"unknown environment kind {self.kind!r} "
                f"(registered: {', '.join(registered_kinds())})"
            )
        impl = _REGISTRY[self.kind]
        given = dict(self.params)
        allowed = set(impl.required) | set(impl.defaults) | set(impl.optional)
        unknown = sorted(set(given) - allowed)
        if unknown:
            raise ValueError(
                f"environment {self.kind!r} does not take parameter(s) "
                f"{', '.join(unknown)}"
            )
        missing = sorted(set(impl.required) - set(given))
        if missing:
            raise ValueError(
                f"environment {self.kind!r} requires parameter(s) "
                f"{', '.join(missing)}"
            )
        canonical = dict(impl.defaults)
        canonical.update(given)
        canonical = {k: Fraction(v) for k, v in canonical.items()}
        impl.check(canonical)
        object.__setattr__(
            self, "params", tuple(sorted(canonical.items()))
        )

    # -- identity ----------------------------------------------------------

    @property
    def _impl(self) -> _Kind:
        return _REGISTRY[self.kind]

    def param(self, name: str) -> Fraction:
        return dict(self.params)[name]

    def key(self) -> str:
        """Canonical human-readable identity, e.g. ``lossy:buffer=2,loss_thresh=1``."""
        if not self.params:
            return self.kind
        args = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.kind}:{args}"

    def describe(self) -> str:
        return self.key()

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "params": {k: str(v) for k, v in self.params},
            "version": self.version,
        }

    @classmethod
    def from_json(cls, data: dict) -> "EnvironmentSpec":
        version = int(data.get("version", 0))
        if version != ENVIRONMENT_VERSION:
            raise ValueError(
                f"unsupported environment version {version} "
                f"(this build speaks {ENVIRONMENT_VERSION})"
            )
        return cls(
            kind=str(data["kind"]),
            params=tuple(
                (str(k), Fraction(v))
                for k, v in dict(data.get("params", {})).items()
            ),
        )

    # -- the protocol ------------------------------------------------------

    def model_config(self, cfg: ModelConfig) -> ModelConfig:
        """The effective model configuration under this environment
        (jitter / threshold kinds override fields of ``cfg``)."""
        return self._impl.model_config(cfg, dict(self.params))

    def build_model(self, cfg: ModelConfig, prefix: str = "net"):
        """The environment's SMT model (``cfg`` must already be the
        effective config from :meth:`model_config`)."""
        return self._impl.build_model(cfg, dict(self.params), prefix)

    def desired(self, net) -> Term:
        return self._impl.desired(net, dict(self.params))

    def negated_desired(self, net) -> Term:
        return Not(self.desired(net))

    def candidate_constraints(self, net, candidate) -> list[Term]:
        return self._impl.candidate_constraints(net, candidate)

    def wce_widths(self, net) -> list[tuple[Term, Term]]:
        return self._impl.wce_widths(net)

    def extract_trace(self, model, net):
        """Build this environment's counterexample trace from a SAT
        model, tagged with this spec as its origin."""
        return self._impl.extract_trace(self, model, net)

    def validate_counterexample(self, trace, candidate=None,
                                must_violate: bool = True) -> None:
        from ..runtime.validate import validate_counterexample

        validate_counterexample(
            trace, candidate=candidate, must_violate=must_violate
        )

    def replay_satisfies(self, candidate, trace, pruning) -> bool:
        """Numeric ``feasible => desired`` replay for generator pruning
        (applies *this* environment's send recurrence and property)."""
        return self._impl.replay_satisfies(candidate, trace, pruning)


# ---------------------------------------------------------------------------
# constructors


def environment(kind: str, **params) -> EnvironmentSpec:
    """Registry constructor: ``environment("lossy", buffer=2)``."""
    return EnvironmentSpec(
        kind=kind,
        params=tuple((k, Fraction(v)) for k, v in params.items()),
    )


def lossless_environment() -> EnvironmentSpec:
    return environment("lossless")


def lossy_environment(buffer, loss_thresh=Fraction(1)) -> EnvironmentSpec:
    return environment("lossy", buffer=buffer, loss_thresh=loss_thresh)


def multiflow_environment(
    min_share=Fraction(0), phi=Fraction(1, 4)
) -> EnvironmentSpec:
    return environment("multiflow", min_share=min_share, phi=phi)


def default_environments() -> tuple[EnvironmentSpec, ...]:
    """The environment set implied when a query names none: the paper's
    lossless fragment."""
    return (lossless_environment(),)


def environment_from_json(data: dict) -> EnvironmentSpec:
    return EnvironmentSpec.from_json(data)


def parse_environment(text: str) -> EnvironmentSpec:
    """Parse the CLI form ``NAME[:key=val,...]`` (values are exact
    fractions: ``lossy:buffer=2``, ``multiflow:min_share=1/4``)."""
    text = text.strip()
    if not text:
        raise ValueError("empty environment spec")
    kind, _, rest = text.partition(":")
    params: dict[str, Fraction] = {}
    if rest:
        for piece in rest.split(","):
            piece = piece.strip()
            if not piece:
                continue
            key, sep, value = piece.partition("=")
            if not sep:
                raise ValueError(
                    f"malformed environment parameter {piece!r} "
                    f"(expected key=value)"
                )
            try:
                params[key.strip()] = Fraction(value.strip())
            except (ValueError, ZeroDivisionError) as exc:
                raise ValueError(
                    f"environment parameter {key.strip()!r} has "
                    f"non-rational value {value.strip()!r}"
                ) from exc
    return environment(kind.strip(), **params)


def replay_satisfies(candidate, trace, pruning) -> bool:
    """``feasible => desired`` for a candidate on a trace, under the
    trace's *origin environment* semantics.

    Dispatches on the trace's environment tag; untagged traces fall back
    to shape-based dispatch (a loss counter means lossy, a flow tuple
    means two-flow) so checkpointed traces from older runs stay usable.
    """
    env = getattr(trace, "environment", None)
    if env is not None:
        return env.replay_satisfies(candidate, trace, pruning)
    if getattr(trace, "flows", None) is not None:
        kind = "multiflow"
    elif hasattr(trace, "L"):
        kind = "lossy"
    else:
        kind = "lossless"
    return _REGISTRY[kind].replay_satisfies(candidate, trace, pruning)


def parse_environments(texts: Optional[Sequence[str]]):
    """Parse a repeated ``--env`` list; None/empty stays None (the
    canonical "paper fragment" default)."""
    if not texts:
        return None
    return [parse_environment(t) for t in texts]
