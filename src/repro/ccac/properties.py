"""Desired-property encodings (paper §3.1.1, "Steady state behavior").

The raw objective "high utilization AND low delay" is unachievable on a
finite trace with adversarial initial conditions (a flow that starts with
an empty pipe cannot show high utilization immediately; one that starts
behind a huge queue cannot show low delay).  The paper relaxes it to

    (high utilization  OR  cwnd increased) AND
    (queue bounded     OR  cwnd decreased)

which, by induction over successive windows, implies the original property
in steady state.  Concretely (paper's encoding):

* ``ack(T) - ack(0) >= thresh_U * C * T``        (high utilization)
* ``cwnd(T) > cwnd(0)``                          (increase cwnd)
* ``cwnd(T) < cwnd(0)``                          (decrease cwnd)
* ``forall t: queue(t) <= thresh_D * C * D``     (bounded delay)
"""

from __future__ import annotations

from ..smt import And, Not, Or, RealVal, Term
from .config import ModelConfig
from .model import CcacModel


def high_utilization(model: CcacModel) -> Term:
    """``S_T - S_0 >= thresh_U * C * T`` (S_0 is normalized to 0)."""
    cfg = model.cfg
    target = cfg.util_thresh * cfg.C * cfg.T
    return model.S[cfg.T] - model.S[0] >= RealVal(target)


def bounded_queue(model: CcacModel) -> Term:
    """``forall t: A_t - S_t <= thresh_D * C * D``."""
    cfg = model.cfg
    limit = RealVal(cfg.delay_thresh * cfg.C * cfg.D)
    return And(*[model.queue(t) <= limit for t in range(cfg.T + 1)])


def cwnd_increases(model: CcacModel) -> Term:
    """``cwnd(T) > cwnd(0)``."""
    return model.cwnd[model.cfg.T] > model.cwnd[0]


def cwnd_decreases(model: CcacModel) -> Term:
    """``cwnd(T) < cwnd(0)``."""
    return model.cwnd[model.cfg.T] < model.cwnd[0]


def desired_property(model: CcacModel) -> Term:
    """The paper's induction-friendly relaxation (see module docstring)."""
    return And(
        Or(high_utilization(model), cwnd_increases(model)),
        Or(bounded_queue(model), cwnd_decreases(model)),
    )


def negated_desired(model: CcacModel) -> Term:
    """``not desired`` — what the verifier searches for."""
    return Not(desired_property(model))
