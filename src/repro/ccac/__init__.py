"""CCAC-lite: the network model used as the CEGIS verifier's environment.

A faithful re-encoding of the lossless / infinite-buffer fragment of CCAC
(Arun et al., SIGCOMM '21) — the fragment the CCmatic paper's evaluation
exercises — expressed over :mod:`repro.smt`.
"""

from .config import ModelConfig
from .model import CcacModel
from .properties import (
    bounded_queue,
    cwnd_decreases,
    cwnd_increases,
    desired_property,
    high_utilization,
    negated_desired,
)
from .lossy import LossyCcacModel, LossyCexTrace, LossyVerifier, minimum_buffer
from .multiflow import (
    StarvationResult,
    StarvationVerifier,
    TwoFlowCexTrace,
    TwoFlowModel,
)
from .trace import CexTrace, RangeBound
from .environments import (
    ENVIRONMENT_VERSION,
    EnvironmentSpec,
    default_environments,
    environment,
    environment_from_json,
    lossless_environment,
    lossy_environment,
    multiflow_environment,
    parse_environment,
    parse_environments,
    registered_kinds,
)

__all__ = [
    "CcacModel",
    "CexTrace",
    "ENVIRONMENT_VERSION",
    "EnvironmentSpec",
    "ModelConfig",
    "LossyCcacModel",
    "LossyCexTrace",
    "LossyVerifier",
    "RangeBound",
    "StarvationResult",
    "StarvationVerifier",
    "TwoFlowCexTrace",
    "TwoFlowModel",
    "default_environments",
    "environment",
    "environment_from_json",
    "lossless_environment",
    "lossy_environment",
    "multiflow_environment",
    "parse_environment",
    "parse_environments",
    "registered_kinds",
    "bounded_queue",
    "cwnd_decreases",
    "cwnd_increases",
    "desired_property",
    "high_utilization",
    "minimum_buffer",
    "negated_desired",
]
