"""CCAC-lite: the network model used as the CEGIS verifier's environment.

A faithful re-encoding of the lossless / infinite-buffer fragment of CCAC
(Arun et al., SIGCOMM '21) — the fragment the CCmatic paper's evaluation
exercises — expressed over :mod:`repro.smt`.
"""

from .config import ModelConfig
from .model import CcacModel
from .properties import (
    bounded_queue,
    cwnd_decreases,
    cwnd_increases,
    desired_property,
    high_utilization,
    negated_desired,
)
from .lossy import LossyCcacModel, LossyVerifier, minimum_buffer
from .multiflow import StarvationResult, StarvationVerifier, TwoFlowModel
from .trace import CexTrace, RangeBound

__all__ = [
    "CcacModel",
    "CexTrace",
    "ModelConfig",
    "LossyCcacModel",
    "LossyVerifier",
    "RangeBound",
    "StarvationResult",
    "StarvationVerifier",
    "TwoFlowModel",
    "bounded_queue",
    "cwnd_decreases",
    "cwnd_increases",
    "desired_property",
    "high_utilization",
    "minimum_buffer",
    "negated_desired",
]
