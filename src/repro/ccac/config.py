"""Configuration of the CCAC-lite network model.

The model is non-dimensionalized the way CCAC does it: time is measured in
units of the propagation delay ``D`` and data in units such that the link
rate ``C`` defaults to 1 (so ``C*D`` — one bandwidth-delay product — is 1).
The paper's experiments use jitter of one RTT and, unless swept, a desired
property of "utilization >= 50% AND delay <= 4 RTT".
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from fractions import Fraction


@dataclass(frozen=True)
class ModelConfig:
    """Parameters of the verifier's network model and desired property.

    Attributes:
        T: trace length; the model has timesteps ``0..T`` inclusive.
        C: link rate (bytes per unit time).
        D: propagation delay (the time unit; keep at 1).
        jitter: maximum extra queueing the non-deterministic box may inject,
            in units of ``D`` — the paper lets CCAC "jitter each packet up
            to 1 x RTT".
        history: template history ``h``; timesteps ``0..h-1`` carry
            adversarially chosen initial cwnd values, later steps follow
            the CCA template.
        util_thresh: desired utilization fraction (``thresh_U``).
        delay_thresh: desired delay bound in RTTs (``thresh_D``); encoded
            as ``A_t - S_t <= delay_thresh * C * D`` (bytes in flight,
            i.e. end-to-end delay including the propagation RTT).
        initial_queue_max: box bound on the adversarial initial queue.
        initial_cwnd_max: box bound on adversarial initial cwnd values.
        cwnd_min: floor on the congestion window (one MSS in practice —
            every deployed CCA keeps at least one segment in flight; the
            RoCC kernel clamps the same way).  In BDP units; the default
            0.1 corresponds to a 10-segment BDP.
    """

    T: int = 9
    C: Fraction = Fraction(1)
    D: int = 1
    jitter: int = 1
    history: int = 4
    util_thresh: Fraction = Fraction(1, 2)
    delay_thresh: Fraction = Fraction(4)
    initial_queue_max: Fraction = Fraction(8)
    initial_cwnd_max: Fraction = Fraction(8)
    cwnd_min: Fraction = Fraction(1, 10)

    def __post_init__(self):
        if self.T <= self.history:
            raise ValueError(f"T={self.T} must exceed history={self.history}")
        if self.jitter < 0 or self.D <= 0 or self.C <= 0:
            raise ValueError("C, D must be positive and jitter non-negative")

    def with_thresholds(self, util: Fraction | None = None, delay: Fraction | None = None) -> "ModelConfig":
        """Copy with different desired-property thresholds (for sweeps)."""
        cfg = self
        if util is not None:
            cfg = replace(cfg, util_thresh=Fraction(util))
        if delay is not None:
            cfg = replace(cfg, delay_thresh=Fraction(delay))
        return cfg

    @property
    def bdp(self) -> Fraction:
        """Bandwidth-delay product ``C*D`` (the natural cwnd unit)."""
        return self.C * self.D
