"""Lossy / finite-buffer CCAC model (paper §4.1, "Environment and objectives").

The evaluation in §4 uses lossless networks with infinite buffers; the
paper's next step is lossy environments, where "a simple CCA template may
not suffice".  This module adds CCAC's finite-buffer loss semantics:

* a drop-tail buffer of ``buffer`` bytes at the bottleneck;
* a cumulative loss counter ``L_t`` (monotone, never exceeding sends);
* bytes in the queue are bounded: ``(A_t - L_t) - S_t <= buffer`` —
  arrivals beyond the buffer *must* be dropped;
* losses happen only when the buffer is actually full:
  ``L_t > L_{t-1}  =>  (A_t - L_t) - S_t >= buffer``;
* service applies to non-dropped bytes: ``S_t <= A_t - L_t``;
* the window constraint counts only non-dropped in-flight data; losses
  detected by the previous RTT free window space, so the eager sender is
  ``A_t = max(A_{t-1}, S_{t-1} + L_{t-1} + cwnd_t)``.  (Using ``L_{t-1}``
  rather than ``L_t`` is essential: the current step's drops are an
  effect of this step's sends, and closing that loop would let the
  constraint system manufacture infinite send/drop fixpoints or, worse,
  make small-buffer systems infeasible and every CCA vacuously correct.)

The desired property gains a third leg: losses are retransmitted work, so
"(losses bounded OR cwnd decreases)" joins the utilization and delay
conjuncts.  Without it a tiny buffer would *trivially* verify every CCA —
the buffer physically enforces the delay bound while unpenalized drops
absorb the rest — which is exactly the kind of vacuous-verifier pitfall
§5 warns about when porting environments.

With these semantics the verifier answers the paper's question directly:
which lossless-synthesized rules survive a finite buffer?  (RoCC needs
the buffer to cover its steady queue of ~BDP+increment; below that it
drops every RTT and fails the loss budget.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from ..smt import And, Not, Or, Real, RealVal, Solver, Term, encode_max, sat
from .config import ModelConfig
from .model import CcacModel
from .properties import desired_property
from .trace import CexTrace


class LossyCcacModel(CcacModel):
    """CCAC-lite with a finite drop-tail buffer.

    Inherits all lossless variables/constraints and adds the loss
    counter; the sender constraint is overridden to account for lost
    bytes freeing window space.
    """

    def __init__(self, cfg: ModelConfig, buffer: Fraction, prefix: str = "ln"):
        super().__init__(cfg, prefix)
        if buffer <= 0:
            raise ValueError("buffer must be positive (use CcacModel for infinite)")
        self.buffer = Fraction(buffer)
        self.L = [Real(f"{prefix}_L_{t}") for t in range(cfg.T + 1)]

    def delivered(self, t: int) -> Term:
        """Arrivals that were not dropped."""
        return self.A[t] - self.L[t]

    def loss_constraints(self) -> list[Term]:
        cfg = self.cfg
        buf = RealVal(self.buffer)
        cons: list[Term] = [self.L[0].eq(0)]
        for t in range(1, cfg.T + 1):
            cons.append(self.L[t] >= self.L[t - 1])
            cons.append(self.L[t] <= self.A[t])
            # queue never exceeds the buffer
            cons.append(self.delivered(t) - self.S[t] <= buf)
            # drops only when the buffer is full
            cons.append(
                Or(
                    self.L[t].eq(self.L[t - 1]),
                    self.delivered(t) - self.S[t] >= buf,
                )
            )
        return cons

    def environment_constraints(self) -> list[Term]:
        cons = super().environment_constraints()
        # service applies to non-dropped data: S_t <= A_t - L_t tightens
        # the lossless S_t <= A_t
        for t in range(1, self.cfg.T + 1):
            cons.append(self.S[t] <= self.delivered(t))
        return cons + self.loss_constraints()

    def sender_constraints(self) -> list[Term]:
        cons: list[Term] = []
        for t in range(1, self.cfg.T + 1):
            cons.append(
                encode_max(
                    self.A[t],
                    [self.A[t - 1], self.S[t - 1] + self.L[t - 1] + self.cwnd[t]],
                )
            )
        return cons


@dataclass
class LossyVerificationResult:
    """Outcome of a lossy-model verification."""

    verified: bool
    counterexample: Optional[CexTrace]
    loss: Optional[tuple[Fraction, ...]]
    wall_time: float


class LossyVerifier:
    """Verify a candidate against the finite-buffer model.

    ``loss_thresh`` bounds acceptable cumulative losses over the trace
    (in C*D units); like the delay leg, it is relaxed by "or the cwnd is
    already decreasing".
    """

    def __init__(self, cfg: ModelConfig, buffer: Fraction, loss_thresh: Fraction = Fraction(1)):
        self.cfg = cfg
        self.buffer = Fraction(buffer)
        self.loss_thresh = Fraction(loss_thresh)

    def desired(self, net: LossyCcacModel) -> Term:
        from .properties import cwnd_decreases

        loss_ok = net.L[self.cfg.T] <= RealVal(self.loss_thresh * self.cfg.C * self.cfg.D)
        return And(
            desired_property(net),
            Or(loss_ok, cwnd_decreases(net)),
        )

    def find_counterexample(self, candidate) -> LossyVerificationResult:
        start = time.perf_counter()
        net = LossyCcacModel(self.cfg, self.buffer)
        solver = Solver()
        solver.add(*net.constraints())
        solver.add(*candidate.constraints_for(net))
        solver.add(Not(self.desired(net)))
        outcome = solver.check()
        if outcome is not sat:
            return LossyVerificationResult(True, None, None, time.perf_counter() - start)
        model = solver.model()
        trace = CexTrace.from_model(model, net)
        loss = tuple(model.value(v) for v in net.L)
        return LossyVerificationResult(
            False, trace, loss, time.perf_counter() - start
        )

    def verify(self, candidate) -> bool:
        return self.find_counterexample(candidate).verified


def minimum_buffer(
    candidate,
    cfg: ModelConfig,
    lo: Fraction = Fraction(1, 4),
    hi: Fraction = Fraction(16),
    precision: Fraction = Fraction(1, 4),
) -> Optional[Fraction]:
    """Smallest buffer (to ``precision``) at which the candidate still
    verifies; None if even ``hi`` is insufficient.  Buffer sizing — the
    classic network-provisioning question — answered formally."""
    if not LossyVerifier(cfg, hi).verify(candidate):
        return None
    if LossyVerifier(cfg, lo).verify(candidate):
        return lo
    while hi - lo > precision:
        mid = (lo + hi) / 2
        if LossyVerifier(cfg, mid).verify(candidate):
            hi = mid
        else:
            lo = mid
    return hi
