"""Lossy / finite-buffer CCAC model (paper §4.1, "Environment and objectives").

The evaluation in §4 uses lossless networks with infinite buffers; the
paper's next step is lossy environments, where "a simple CCA template may
not suffice".  This module adds CCAC's finite-buffer loss semantics:

* a drop-tail buffer of ``buffer`` bytes at the bottleneck;
* a cumulative loss counter ``L_t`` (monotone, never exceeding sends);
* bytes in the queue are bounded: ``(A_t - L_t) - S_t <= buffer`` —
  arrivals beyond the buffer *must* be dropped;
* losses happen only when the buffer is actually full:
  ``L_t > L_{t-1}  =>  (A_t - L_t) - S_t >= buffer``;
* service applies to non-dropped bytes: ``S_t <= A_t - L_t``;
* the window constraint counts only non-dropped in-flight data; losses
  detected by the previous RTT free window space, so the eager sender is
  ``A_t = max(A_{t-1}, S_{t-1} + L_{t-1} + cwnd_t)``.  (Using ``L_{t-1}``
  rather than ``L_t`` is essential: the current step's drops are an
  effect of this step's sends, and closing that loop would let the
  constraint system manufacture infinite send/drop fixpoints or, worse,
  make small-buffer systems infeasible and every CCA vacuously correct.)

The desired property gains a third leg: losses are retransmitted work, so
"(losses bounded OR cwnd decreases)" joins the utilization and delay
conjuncts.  Without it a tiny buffer would *trivially* verify every CCA —
the buffer physically enforces the delay bound while unpenalized drops
absorb the rest — which is exactly the kind of vacuous-verifier pitfall
§5 warns about when porting environments.

With these semantics the verifier answers the paper's question directly:
which lossless-synthesized rules survive a finite buffer?  (RoCC needs
the buffer to cover its steady queue of ~BDP+increment; below that it
drops every RTT and fails the loss budget.)

:class:`LossyVerifier` is a compatibility wrapper: verification routes
through :class:`~repro.core.verifier.CcacVerifier` with a ``lossy``
:class:`~repro.ccac.environments.EnvironmentSpec`, so lossy queries gain
independent validation, query caching, incremental sessions, and UNSAT
certification exactly like the lossless path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional

from ..smt import Real, RealVal, Term, encode_max
from .config import ModelConfig
from .model import CcacModel
from .trace import CexTrace


class LossyCcacModel(CcacModel):
    """CCAC-lite with a finite drop-tail buffer.

    Inherits all lossless variables/constraints and adds the loss
    counter; the sender constraint is overridden to account for lost
    bytes freeing window space.
    """

    def __init__(self, cfg: ModelConfig, buffer: Fraction, prefix: str = "ln"):
        super().__init__(cfg, prefix)
        if buffer <= 0:
            raise ValueError("buffer must be positive (use CcacModel for infinite)")
        self.buffer = Fraction(buffer)
        self.L = [Real(f"{prefix}_L_{t}") for t in range(cfg.T + 1)]

    def delivered(self, t: int) -> Term:
        """Arrivals that were not dropped."""
        return self.A[t] - self.L[t]

    def loss_constraints(self) -> list[Term]:
        from ..smt import Or

        cfg = self.cfg
        buf = RealVal(self.buffer)
        cons: list[Term] = [self.L[0].eq(0)]
        for t in range(1, cfg.T + 1):
            cons.append(self.L[t] >= self.L[t - 1])
            cons.append(self.L[t] <= self.A[t])
            # queue never exceeds the buffer
            cons.append(self.delivered(t) - self.S[t] <= buf)
            # drops only when the buffer is full
            cons.append(
                Or(
                    self.L[t].eq(self.L[t - 1]),
                    self.delivered(t) - self.S[t] >= buf,
                )
            )
        return cons

    def environment_constraints(self) -> list[Term]:
        cons = super().environment_constraints()
        # service applies to non-dropped data: S_t <= A_t - L_t tightens
        # the lossless S_t <= A_t
        for t in range(1, self.cfg.T + 1):
            cons.append(self.S[t] <= self.delivered(t))
        return cons + self.loss_constraints()

    def sender_constraints(self) -> list[Term]:
        cons: list[Term] = []
        for t in range(1, self.cfg.T + 1):
            cons.append(
                encode_max(
                    self.A[t],
                    [self.A[t - 1], self.S[t - 1] + self.L[t - 1] + self.cwnd[t]],
                )
            )
        return cons


@dataclass(frozen=True)
class LossyCexTrace(CexTrace):
    """A counterexample of the finite-buffer model: the lossless trace
    fields plus the loss counter and the buffer/threshold it ran under."""

    L: tuple[Fraction, ...] = ()
    buffer: Fraction = Fraction(0)
    loss_thresh: Fraction = Fraction(1)

    @classmethod
    def from_model(cls, model, net: LossyCcacModel) -> "LossyCexTrace":
        ts = range(net.cfg.T + 1)
        return cls(
            cfg=net.cfg,
            A=tuple(model.value(net.A[t]) for t in ts),
            S=tuple(model.value(net.S[t]) for t in ts),
            W=tuple(model.value(net.W[t]) for t in ts),
            cwnd=tuple(model.value(net.cwnd[t]) for t in ts),
            S_pre=tuple(model.value(v) for v in net.S_pre),
            cwnd_pre=tuple(model.value(v) for v in net.cwnd_pre),
            ack_offset=model.value(net.ack_offset),
            L=tuple(model.value(net.L[t]) for t in ts),
            buffer=net.buffer,
        )

    def delivered(self, t: int) -> Fraction:
        return self.A[t] - self.L[t]

    def _sender_expected(self, t: int) -> Fraction:
        # losses detected in the previous RTT free window space
        return max(
            self.A[t - 1], self.S[t - 1] + self.L[t - 1] + self.cwnd[t]
        )

    def check_environment(self) -> list[str]:
        errors = super().check_environment()
        if self.L[0] != 0:
            errors.append(f"L_0 = {self.L[0]} != 0")
        for t in range(1, self.cfg.T + 1):
            if self.L[t] < self.L[t - 1]:
                errors.append(f"L not monotone at {t}")
            if self.L[t] > self.A[t]:
                errors.append(f"losses exceed sends at {t}")
            if self.S[t] > self.delivered(t):
                errors.append(f"service exceeds non-dropped data at {t}")
            if self.delivered(t) - self.S[t] > self.buffer:
                errors.append(f"queue exceeds the buffer at {t}")
            if (
                self.L[t] > self.L[t - 1]
                and self.delivered(t) - self.S[t] < self.buffer
            ):
                errors.append(f"drop without a full buffer at {t}")
        return errors

    def desired_holds(self) -> bool:
        cfg = self.cfg
        T = cfg.T
        loss_ok = self.L[T] <= self.loss_thresh * cfg.C * cfg.D
        decreased = self.cwnd[T] < self.cwnd[0]
        return super().desired_holds() and (loss_ok or decreased)

    def __str__(self) -> str:
        loss = " ".join(f"{float(v):.3f}" for v in self.L)
        return (
            super().__str__()
            + f"\nloss L = [{loss}] buffer={float(self.buffer):.3f}"
        )


@dataclass
class LossyVerificationResult:
    """Outcome of a lossy-model verification."""

    verified: bool
    counterexample: Optional[LossyCexTrace]
    loss: Optional[tuple[Fraction, ...]]
    wall_time: float


class LossyVerifier:
    """Verify a candidate against the finite-buffer model.

    ``loss_thresh`` bounds acceptable cumulative losses over the trace
    (in C*D units); like the delay leg, it is relaxed by "or the cwnd is
    already decreasing".  Extra keyword arguments are forwarded to the
    underlying :class:`~repro.core.verifier.CcacVerifier` (``validate``,
    ``cache``, ``incremental``, ``certify``, ...).
    """

    def __init__(
        self,
        cfg: ModelConfig,
        buffer: Fraction,
        loss_thresh: Fraction = Fraction(1),
        **verifier_kwargs,
    ):
        from ..core.verifier import CcacVerifier
        from .environments import lossy_environment

        self.cfg = cfg
        self.buffer = Fraction(buffer)
        self.loss_thresh = Fraction(loss_thresh)
        self.environment = lossy_environment(
            buffer=self.buffer, loss_thresh=self.loss_thresh
        )
        self._verifier = CcacVerifier(
            cfg, environments=[self.environment], **verifier_kwargs
        )

    def find_counterexample(self, candidate) -> LossyVerificationResult:
        result = self._verifier.find_counterexample(candidate)
        trace = result.counterexample
        loss = trace.L if trace is not None else None
        return LossyVerificationResult(
            result.verified, trace, loss, result.wall_time
        )

    def verify(self, candidate) -> bool:
        return self.find_counterexample(candidate).verified


def minimum_buffer(
    candidate,
    cfg: ModelConfig,
    lo: Fraction = Fraction(1, 4),
    hi: Fraction = Fraction(16),
    precision: Fraction = Fraction(1, 4),
) -> Optional[Fraction]:
    """Smallest buffer (to ``precision``) at which the candidate still
    verifies; None if even ``hi`` is insufficient.  Buffer sizing — the
    classic network-provisioning question — answered formally."""
    if not LossyVerifier(cfg, hi).verify(candidate):
        return None
    if LossyVerifier(cfg, lo).verify(candidate):
        return lo
    while hi - lo > precision:
        mid = (lo + hi) / 2
        if LossyVerifier(cfg, mid).verify(candidate):
            hi = mid
        else:
            lo = mid
    return hi
