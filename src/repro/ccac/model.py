"""The CCAC-lite network model as SMT constraints.

This encodes the lossless / infinite-buffer fragment of CCAC (Arun et al.,
SIGCOMM '21) that the CCmatic paper's evaluation uses.  Cumulative counters
over discrete time ``t = 0..T`` (units of propagation delay ``D``):

``A_t``     bytes the sender has sent ("arrivals" at the bottleneck),
``S_t``     bytes the network has delivered/ACKed ("service"),
``W_t``     "wasted" tokens of the non-deterministic token bucket,
``cwnd_t``  congestion window.

Constraints (cfg.C is the link rate):

1. monotonicity of ``A``, ``S``, ``W``;
2. token-bucket upper service: ``S_t <= C*t - W_t``;
3. jittered lower service: ``S_t >= C*(t-j) - W_{t-j}`` for ``t >= j``
   (the adversary can delay any byte by up to ``j`` time units);
4. no service before arrival: ``S_t <= A_t``;
5. waste only when sender-limited: ``W_t > W_{t-1}`` requires
   ``A_t <= C*t - W_t``;
6. eager window-limited sender: ``A_t = max(A_{t-1}, S_{t-1} + cwnd_t)``
   (the RTT is one time unit, so the window constraint references
   ``S_{t-1}``);
7. arbitrary-but-reachable initial conditions: ``S_0 = 0``, ``W_0 = 0``;
   the initial queue ``A_0`` satisfies the window constraint
   ``A_0 <= S_{-1} + cwnd_0``.

**Pre-history.**  CCAC lets the solver pick arbitrary behaviour before
``t = 0``.  We expose that as explicit *pre-history* variables: ack counts
``S_{-1} .. S_{-h}`` (monotone, at most 0, and at least ``-C*i`` because
the service rate never exceeds ``C``) and cwnd values ``cwnd_{-1} ..
cwnd_{-h}``.  The CCA template is then applied at *every* ``t >= 0``, so
the cwnd trajectory inside the trace is always consistent with the
candidate CCA — the adversary cannot fabricate unreachable cwnd history,
only choose what the network did before the window started.
"""

from __future__ import annotations

from fractions import Fraction

from ..smt import And, Or, Real, RealVal, Term, encode_max
from .config import ModelConfig


class CcacModel:
    """SMT variables + constraints of one network trace.

    ``prefix`` namespaces the variables, so several independent traces can
    coexist in one solver (the generator instantiates one copy per
    counterexample).
    """

    def __init__(self, cfg: ModelConfig, prefix: str = "net"):
        self.cfg = cfg
        self.prefix = prefix
        ts = range(cfg.T + 1)
        self.A = [Real(f"{prefix}_A_{t}") for t in ts]
        self.S = [Real(f"{prefix}_S_{t}") for t in ts]
        self.W = [Real(f"{prefix}_W_{t}") for t in ts]
        self.cwnd = [Real(f"{prefix}_cwnd_{t}") for t in ts]
        h = cfg.history
        # pre-history: index i-1 holds the value at time -i
        self.S_pre = [Real(f"{prefix}_S_m{i}") for i in range(1, h + 1)]
        self.cwnd_pre = [Real(f"{prefix}_cwnd_m{i}") for i in range(1, h + 1)]
        # Bytes acked before the trace window started.  The in-window
        # service S is normalized to S_0 = 0, but the CCA observes
        # *cumulative* acks since connection start; exposing the offset as
        # a free non-negative variable makes the encoding shift-invariant,
        # which rejects template fillings that depend on the absolute ack
        # level (only telescoping ack differences can survive).
        self.ack_offset = Real(f"{prefix}_ackoff")

    # ------------------------------------------------------------------

    def S_at(self, t: int) -> Term:
        """Ack counter at time ``t`` (negative t reads pre-history)."""
        if t >= 0:
            return self.S[t]
        return self.S_pre[-t - 1]

    def cwnd_at(self, t: int) -> Term:
        """cwnd at time ``t`` (negative t reads pre-history)."""
        if t >= 0:
            return self.cwnd[t]
        return self.cwnd_pre[-t - 1]

    def ack_at(self, t: int) -> Term:
        """Cumulative acks as the CCA observes them: ``S(t) + offset``."""
        return self.S_at(t) + self.ack_offset

    def tokens(self, t: int) -> Term:
        """Upper service curve ``C*t - W_t``."""
        return RealVal(self.cfg.C * t) - self.W[t]

    def queue(self, t: int) -> Term:
        """Bytes in flight ``A_t - S_t`` (queue plus propagation)."""
        return self.A[t] - self.S[t]

    # ------------------------------------------------------------------

    def environment_constraints(self) -> list[Term]:
        """Constraints 1-5 and 7: everything the *network* controls."""
        cfg = self.cfg
        cons: list[Term] = []
        # normalization and initial conditions (7)
        cons.append(self.S[0].eq(0))
        cons.append(self.W[0].eq(0))
        cons.append(self.A[0] >= 0)
        cons.append(self.A[0] <= RealVal(cfg.initial_queue_max))
        # the initial outstanding data was sent under the initial window
        cons.append(self.A[0] <= self.S_pre[0] + self.cwnd[0])
        cons.append(self.ack_offset >= 0)
        # pre-history acks: monotone, non-positive, rate-limited by C
        prev = self.S[0]
        for i in range(1, cfg.history + 1):
            s = self.S_pre[i - 1]
            cons.append(s <= prev)
            cons.append(s >= RealVal(-cfg.C * i))
            prev = s
        # pre-history cwnds: within the sanity box (the floor applies —
        # pre-history cwnds were also produced by the CCA)
        for cw in self.cwnd_pre:
            cons.append(cw >= RealVal(cfg.cwnd_min))
            cons.append(cw <= RealVal(cfg.initial_cwnd_max))
        for t in range(1, cfg.T + 1):
            # monotonicity (1)
            cons.append(self.A[t] >= self.A[t - 1])
            cons.append(self.S[t] >= self.S[t - 1])
            cons.append(self.W[t] >= self.W[t - 1])
            # token bucket upper bound (2)
            cons.append(self.S[t] <= self.tokens(t))
            # jittered lower service (3)
            if t >= cfg.jitter:
                back = t - cfg.jitter
                cons.append(self.S[t] >= RealVal(cfg.C * back) - self.W[back])
            # causality (4)
            cons.append(self.S[t] <= self.A[t])
            # waste only when sender-limited (5)
            cons.append(Or(self.W[t].eq(self.W[t - 1]), self.A[t] <= self.tokens(t)))
        return cons

    def sender_constraints(self) -> list[Term]:
        """Constraint 6: the eager window-limited sender."""
        cons: list[Term] = []
        for t in range(1, self.cfg.T + 1):
            cons.append(
                encode_max(self.A[t], [self.A[t - 1], self.S[t - 1] + self.cwnd[t]])
            )
        return cons

    def constraints(self) -> list[Term]:
        """All network + sender constraints (cwnd still unconstrained —
        the candidate template supplies the cwnd-defining equalities)."""
        return self.environment_constraints() + self.sender_constraints()
