"""Two-flow CCAC model for fairness / starvation queries (paper §4.1).

The paper's "next steps" call out co-existence objectives and the open
starvation question ("Recent work showed that network delays can cause
competing flows to starve for many known CCAs...  It is unknown if a CCA
outside this class can avoid starvation").  This module provides the
model those queries need: two flows of the *same* candidate CCA sharing
one jittery token-bucket link.

Aggregate service follows exactly the single-flow constraints; the split
between flows is adversarial, softened by one explicit assumption knob:

    ``min_share``: a backlogged flow receives at least this fraction of
    each step's aggregate service.

``min_share = 0`` is the fully adversarial split (any scheduler,
including one that never serves a flow); CCAC leaves multi-flow service
discipline out of scope, so the knob *is* the environment assumption —
the fairness analogue of the §4.1 assumption-synthesis story, and the
test suite sweeps it.

The starvation property checked is the induction-friendly per-flow form:

    for each flow i:  throughput_i >= phi * fair_share  OR  cwnd_i grows
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional

from ..smt import And, Not, Or, Real, RealVal, Term, encode_max
from .config import ModelConfig
from .model import CcacModel
from .trace import CexTrace


class TwoFlowModel:
    """Two window-limited senders sharing one CCAC link."""

    def __init__(self, cfg: ModelConfig, min_share: Fraction = Fraction(0), prefix: str = "mf"):
        if not (0 <= min_share <= Fraction(1, 2)):
            raise ValueError("min_share must be in [0, 1/2]")
        self.cfg = cfg
        self.min_share = Fraction(min_share)
        self.prefix = prefix
        ts = range(cfg.T + 1)
        h = cfg.history
        self.W = [Real(f"{prefix}_W_{t}") for t in ts]
        self.flows = []
        for i in (1, 2):
            flow = {
                "A": [Real(f"{prefix}{i}_A_{t}") for t in ts],
                "S": [Real(f"{prefix}{i}_S_{t}") for t in ts],
                "cwnd": [Real(f"{prefix}{i}_cwnd_{t}") for t in ts],
                "S_pre": [Real(f"{prefix}{i}_S_m{j}") for j in range(1, h + 1)],
                "cwnd_pre": [Real(f"{prefix}{i}_cwnd_m{j}") for j in range(1, h + 1)],
                "ack_offset": Real(f"{prefix}{i}_ackoff"),
            }
            self.flows.append(flow)

    # -- single-flow views so CandidateCCA.constraints_for can be reused ----

    def flow_view(self, i: int) -> "FlowView":
        return FlowView(self, i)

    def total_S(self, t: int) -> Term:
        return self.flows[0]["S"][t] + self.flows[1]["S"][t]

    def total_A(self, t: int) -> Term:
        return self.flows[0]["A"][t] + self.flows[1]["A"][t]

    def tokens(self, t: int) -> Term:
        return RealVal(self.cfg.C * t) - self.W[t]

    # ------------------------------------------------------------------

    def environment_constraints(self) -> list[Term]:
        cfg = self.cfg
        cons: list[Term] = [self.W[0].eq(0)]
        for flow in self.flows:
            cons.append(flow["S"][0].eq(0))
            cons.append(flow["A"][0] >= 0)
            cons.append(flow["A"][0] <= RealVal(cfg.initial_queue_max))
            cons.append(flow["A"][0] <= flow["S_pre"][0] + flow["cwnd"][0])
            cons.append(flow["ack_offset"] >= 0)
            prev = flow["S"][0]
            for j in range(1, cfg.history + 1):
                s = flow["S_pre"][j - 1]
                cons.append(s <= prev)
                cons.append(s >= RealVal(-cfg.C * j))
                prev = s
            for cw in flow["cwnd_pre"]:
                cons.append(cw >= RealVal(cfg.cwnd_min))
                cons.append(cw <= RealVal(cfg.initial_cwnd_max))
        for t in range(1, cfg.T + 1):
            cons.append(self.W[t] >= self.W[t - 1])
            # aggregate token bucket + jittered lower bound
            cons.append(self.total_S(t) <= self.tokens(t))
            if t >= cfg.jitter:
                back = t - cfg.jitter
                cons.append(
                    self.total_S(t) >= RealVal(cfg.C * back) - self.W[back]
                )
            # waste only when both senders jointly token-limited
            cons.append(
                Or(self.W[t].eq(self.W[t - 1]), self.total_A(t) <= self.tokens(t))
            )
            for flow in self.flows:
                cons.append(flow["A"][t] >= flow["A"][t - 1])
                cons.append(flow["S"][t] >= flow["S"][t - 1])
                cons.append(flow["S"][t] <= flow["A"][t])
            # minimum-share scheduling assumption: a backlogged flow gets
            # at least min_share of the step's aggregate service
            if self.min_share > 0:
                for flow in self.flows:
                    step_i = flow["S"][t] - flow["S"][t - 1]
                    step_tot = self.total_S(t) - self.total_S(t - 1)
                    backlogged = flow["A"][t - 1] - flow["S"][t - 1] > 0
                    cons.append(
                        Or(
                            Not(backlogged),
                            step_i >= RealVal(self.min_share) * step_tot,
                        )
                    )
        return cons

    def sender_constraints(self) -> list[Term]:
        cons: list[Term] = []
        for flow in self.flows:
            for t in range(1, self.cfg.T + 1):
                cons.append(
                    encode_max(
                        flow["A"][t],
                        [flow["A"][t - 1], flow["S"][t - 1] + flow["cwnd"][t]],
                    )
                )
        return cons

    def constraints(self) -> list[Term]:
        return self.environment_constraints() + self.sender_constraints()

    # -- properties ------------------------------------------------------

    def no_starvation(self, phi: Fraction) -> Term:
        """Per-flow: throughput at least phi * fair share, or the flow's
        cwnd is still growing (ramping up)."""
        cfg = self.cfg
        fair = cfg.C * cfg.T / 2
        parts = []
        for flow in self.flows:
            thr = flow["S"][cfg.T] - flow["S"][0]
            growing = flow["cwnd"][cfg.T] > flow["cwnd"][0]
            parts.append(Or(thr >= RealVal(Fraction(phi) * fair), growing))
        return And(*parts)


class FlowView:
    """Adapter exposing one flow of a :class:`TwoFlowModel` through the
    single-flow :class:`~repro.ccac.model.CcacModel` attribute interface,
    so template ``constraints_for`` works unchanged."""

    def __init__(self, parent: TwoFlowModel, index: int):
        flow = parent.flows[index]
        self.cfg = parent.cfg
        self.prefix = f"{parent.prefix}{index + 1}"
        self.A = flow["A"]
        self.S = flow["S"]
        self.W = parent.W
        self.cwnd = flow["cwnd"]
        self.S_pre = flow["S_pre"]
        self.cwnd_pre = flow["cwnd_pre"]
        self.ack_offset = flow["ack_offset"]

    def S_at(self, t: int) -> Term:
        if t >= 0:
            return self.S[t]
        return self.S_pre[-t - 1]

    def cwnd_at(self, t: int) -> Term:
        if t >= 0:
            return self.cwnd[t]
        return self.cwnd_pre[-t - 1]

    def ack_at(self, t: int) -> Term:
        return self.S_at(t) + self.ack_offset


@dataclass(frozen=True)
class TwoFlowCexTrace:
    """A starvation counterexample: two per-flow traces sharing one
    link's waste process, plus the assumption knobs they ran under."""

    cfg: ModelConfig
    W: tuple[Fraction, ...]
    flows: tuple[CexTrace, CexTrace]
    min_share: Fraction = Fraction(0)
    phi: Fraction = Fraction(1, 4)
    environment: Optional[object] = field(default=None, compare=False, repr=False)

    @classmethod
    def from_model(
        cls,
        model,
        net: TwoFlowModel,
        min_share: Fraction = Fraction(0),
        phi: Fraction = Fraction(1, 4),
    ) -> "TwoFlowCexTrace":
        ts = range(net.cfg.T + 1)
        W = tuple(model.value(net.W[t]) for t in ts)
        flows = tuple(
            CexTrace(
                cfg=net.cfg,
                A=tuple(model.value(flow["A"][t]) for t in ts),
                S=tuple(model.value(flow["S"][t]) for t in ts),
                W=W,
                cwnd=tuple(model.value(flow["cwnd"][t]) for t in ts),
                S_pre=tuple(model.value(v) for v in flow["S_pre"]),
                cwnd_pre=tuple(model.value(v) for v in flow["cwnd_pre"]),
                ack_offset=model.value(flow["ack_offset"]),
            )
            for flow in net.flows
        )
        return cls(
            cfg=net.cfg,
            W=W,
            flows=flows,
            min_share=Fraction(min_share),
            phi=Fraction(phi),
        )

    def total_S(self, t: int) -> Fraction:
        return self.flows[0].S[t] + self.flows[1].S[t]

    def total_A(self, t: int) -> Fraction:
        return self.flows[0].A[t] + self.flows[1].A[t]

    def throughputs(self) -> tuple[Fraction, Fraction]:
        T = self.cfg.T
        return tuple(f.S[T] - f.S[0] for f in self.flows)

    # -- independent numeric replay ------------------------------------

    def check_environment(self) -> list[str]:
        """Re-validate the two-flow network constraints numerically."""
        cfg = self.cfg
        errors: list[str] = []
        if self.W[0] != 0:
            errors.append(f"W_0 = {self.W[0]} != 0")
        for i, flow in enumerate(self.flows, start=1):
            if flow.S[0] != 0:
                errors.append(f"flow {i}: S_0 != 0")
            if not (0 <= flow.A[0] <= cfg.initial_queue_max):
                errors.append(f"flow {i}: A_0 outside initial queue box")
            if flow.S_pre and flow.A[0] > flow.S_pre[0] + flow.cwnd[0]:
                errors.append(f"flow {i}: initial queue exceeds initial window")
            prev = flow.S[0]
            for j, s in enumerate(flow.S_pre, start=1):
                if s > prev:
                    errors.append(f"flow {i}: pre-history S not monotone at -{j}")
                if s < -cfg.C * j:
                    errors.append(f"flow {i}: pre-history S below rate bound at -{j}")
                prev = s
            for cw in flow.cwnd_pre:
                if not (cfg.cwnd_min <= cw <= cfg.initial_cwnd_max):
                    errors.append(f"flow {i}: pre-history cwnd outside box")
        for t in range(1, cfg.T + 1):
            if self.W[t] < self.W[t - 1]:
                errors.append(f"W not monotone at {t}")
            tokens = cfg.C * t - self.W[t]
            if self.total_S(t) > tokens:
                errors.append(f"aggregate token bucket violated at {t}")
            if t >= cfg.jitter:
                back = t - cfg.jitter
                if self.total_S(t) < cfg.C * back - self.W[back]:
                    errors.append(f"aggregate lower service violated at {t}")
            if self.W[t] > self.W[t - 1] and self.total_A(t) > tokens:
                errors.append(f"waste condition violated at {t}")
            step_tot = self.total_S(t) - self.total_S(t - 1)
            for i, flow in enumerate(self.flows, start=1):
                if flow.A[t] < flow.A[t - 1]:
                    errors.append(f"flow {i}: A not monotone at {t}")
                if flow.S[t] < flow.S[t - 1]:
                    errors.append(f"flow {i}: S not monotone at {t}")
                if flow.S[t] > flow.A[t]:
                    errors.append(f"flow {i}: causality violated at {t}")
                expected = max(
                    flow.A[t - 1], flow.S[t - 1] + flow.cwnd[t]
                )
                if flow.A[t] != expected:
                    errors.append(f"flow {i}: sender not eager at {t}")
                if self.min_share > 0:
                    backlogged = flow.A[t - 1] - flow.S[t - 1] > 0
                    step_i = flow.S[t] - flow.S[t - 1]
                    if backlogged and step_i < self.min_share * step_tot:
                        errors.append(
                            f"flow {i}: min-share assumption violated at {t}"
                        )
        return errors

    def desired_holds(self) -> bool:
        """No-starvation, computed numerically: each flow reaches
        ``phi * fair_share`` throughput or its cwnd is still growing."""
        cfg = self.cfg
        T = cfg.T
        fair = cfg.C * cfg.T / 2
        for flow in self.flows:
            thr = flow.S[T] - flow.S[0]
            growing = flow.cwnd[T] > flow.cwnd[0]
            if thr < self.phi * fair and not growing:
                return False
        return True

    def __str__(self) -> str:
        thr = self.throughputs()
        parts = [
            f"two-flow trace (min_share={self.min_share}, phi={self.phi}) "
            f"throughputs=({float(thr[0]):.3f}, {float(thr[1]):.3f})"
        ]
        for i, flow in enumerate(self.flows, start=1):
            parts.append(f"flow {i}:")
            parts.append(str(flow))
        return "\n".join(parts)


@dataclass
class StarvationResult:
    """Outcome of one starvation query."""

    verified: bool  # True: no admissible trace starves either flow
    throughputs: Optional[tuple[Fraction, Fraction]]
    wall_time: float
    counterexample: Optional[TwoFlowCexTrace] = None


class StarvationVerifier:
    """Checks whether a candidate CCA can be starved when competing with
    itself under a given scheduling assumption.

    A compatibility wrapper: the query routes through
    :class:`~repro.core.verifier.CcacVerifier` with a ``multiflow``
    :class:`~repro.ccac.environments.EnvironmentSpec`, gaining
    independent validation, caching, and incremental sessions; extra
    keyword arguments are forwarded to the underlying verifier.
    """

    def __init__(
        self,
        cfg: ModelConfig,
        min_share: Fraction = Fraction(0),
        **verifier_kwargs,
    ):
        self.cfg = cfg
        self.min_share = Fraction(min_share)
        self._verifier_kwargs = verifier_kwargs
        self._verifiers: dict[Fraction, object] = {}

    def _verifier_for(self, phi: Fraction):
        phi = Fraction(phi)
        if phi not in self._verifiers:
            from ..core.verifier import CcacVerifier
            from .environments import multiflow_environment

            env = multiflow_environment(min_share=self.min_share, phi=phi)
            self._verifiers[phi] = CcacVerifier(
                self.cfg, environments=[env], **self._verifier_kwargs
            )
        return self._verifiers[phi]

    def find_starvation(self, candidate, phi: Fraction) -> StarvationResult:
        result = self._verifier_for(phi).find_counterexample(candidate)
        trace = result.counterexample
        thr = trace.throughputs() if trace is not None else None
        return StarvationResult(
            result.verified, thr, result.wall_time, counterexample=trace
        )
