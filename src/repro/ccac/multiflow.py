"""Two-flow CCAC model for fairness / starvation queries (paper §4.1).

The paper's "next steps" call out co-existence objectives and the open
starvation question ("Recent work showed that network delays can cause
competing flows to starve for many known CCAs...  It is unknown if a CCA
outside this class can avoid starvation").  This module provides the
model those queries need: two flows of the *same* candidate CCA sharing
one jittery token-bucket link.

Aggregate service follows exactly the single-flow constraints; the split
between flows is adversarial, softened by one explicit assumption knob:

    ``min_share``: a backlogged flow receives at least this fraction of
    each step's aggregate service.

``min_share = 0`` is the fully adversarial split (any scheduler,
including one that never serves a flow); CCAC leaves multi-flow service
discipline out of scope, so the knob *is* the environment assumption —
the fairness analogue of the §4.1 assumption-synthesis story, and the
test suite sweeps it.

The starvation property checked is the induction-friendly per-flow form:

    for each flow i:  throughput_i >= phi * fair_share  OR  cwnd_i grows
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from ..smt import And, Not, Or, Real, RealVal, Solver, Term, encode_max, sat
from .config import ModelConfig
from .model import CcacModel
from .trace import CexTrace


class TwoFlowModel:
    """Two window-limited senders sharing one CCAC link."""

    def __init__(self, cfg: ModelConfig, min_share: Fraction = Fraction(0), prefix: str = "mf"):
        if not (0 <= min_share <= Fraction(1, 2)):
            raise ValueError("min_share must be in [0, 1/2]")
        self.cfg = cfg
        self.min_share = Fraction(min_share)
        self.prefix = prefix
        ts = range(cfg.T + 1)
        h = cfg.history
        self.W = [Real(f"{prefix}_W_{t}") for t in ts]
        self.flows = []
        for i in (1, 2):
            flow = {
                "A": [Real(f"{prefix}{i}_A_{t}") for t in ts],
                "S": [Real(f"{prefix}{i}_S_{t}") for t in ts],
                "cwnd": [Real(f"{prefix}{i}_cwnd_{t}") for t in ts],
                "S_pre": [Real(f"{prefix}{i}_S_m{j}") for j in range(1, h + 1)],
                "cwnd_pre": [Real(f"{prefix}{i}_cwnd_m{j}") for j in range(1, h + 1)],
                "ack_offset": Real(f"{prefix}{i}_ackoff"),
            }
            self.flows.append(flow)

    # -- single-flow views so CandidateCCA.constraints_for can be reused ----

    def flow_view(self, i: int) -> "FlowView":
        return FlowView(self, i)

    def total_S(self, t: int) -> Term:
        return self.flows[0]["S"][t] + self.flows[1]["S"][t]

    def total_A(self, t: int) -> Term:
        return self.flows[0]["A"][t] + self.flows[1]["A"][t]

    def tokens(self, t: int) -> Term:
        return RealVal(self.cfg.C * t) - self.W[t]

    # ------------------------------------------------------------------

    def environment_constraints(self) -> list[Term]:
        cfg = self.cfg
        cons: list[Term] = [self.W[0].eq(0)]
        for flow in self.flows:
            cons.append(flow["S"][0].eq(0))
            cons.append(flow["A"][0] >= 0)
            cons.append(flow["A"][0] <= RealVal(cfg.initial_queue_max))
            cons.append(flow["A"][0] <= flow["S_pre"][0] + flow["cwnd"][0])
            cons.append(flow["ack_offset"] >= 0)
            prev = flow["S"][0]
            for j in range(1, cfg.history + 1):
                s = flow["S_pre"][j - 1]
                cons.append(s <= prev)
                cons.append(s >= RealVal(-cfg.C * j))
                prev = s
            for cw in flow["cwnd_pre"]:
                cons.append(cw >= RealVal(cfg.cwnd_min))
                cons.append(cw <= RealVal(cfg.initial_cwnd_max))
        for t in range(1, cfg.T + 1):
            cons.append(self.W[t] >= self.W[t - 1])
            # aggregate token bucket + jittered lower bound
            cons.append(self.total_S(t) <= self.tokens(t))
            if t >= cfg.jitter:
                back = t - cfg.jitter
                cons.append(
                    self.total_S(t) >= RealVal(cfg.C * back) - self.W[back]
                )
            # waste only when both senders jointly token-limited
            cons.append(
                Or(self.W[t].eq(self.W[t - 1]), self.total_A(t) <= self.tokens(t))
            )
            for flow in self.flows:
                cons.append(flow["A"][t] >= flow["A"][t - 1])
                cons.append(flow["S"][t] >= flow["S"][t - 1])
                cons.append(flow["S"][t] <= flow["A"][t])
            # minimum-share scheduling assumption: a backlogged flow gets
            # at least min_share of the step's aggregate service
            if self.min_share > 0:
                for flow in self.flows:
                    step_i = flow["S"][t] - flow["S"][t - 1]
                    step_tot = self.total_S(t) - self.total_S(t - 1)
                    backlogged = flow["A"][t - 1] - flow["S"][t - 1] > 0
                    cons.append(
                        Or(
                            Not(backlogged),
                            step_i >= RealVal(self.min_share) * step_tot,
                        )
                    )
        return cons

    def sender_constraints(self) -> list[Term]:
        cons: list[Term] = []
        for flow in self.flows:
            for t in range(1, self.cfg.T + 1):
                cons.append(
                    encode_max(
                        flow["A"][t],
                        [flow["A"][t - 1], flow["S"][t - 1] + flow["cwnd"][t]],
                    )
                )
        return cons

    def constraints(self) -> list[Term]:
        return self.environment_constraints() + self.sender_constraints()

    # -- properties ------------------------------------------------------

    def no_starvation(self, phi: Fraction) -> Term:
        """Per-flow: throughput at least phi * fair share, or the flow's
        cwnd is still growing (ramping up)."""
        cfg = self.cfg
        fair = cfg.C * cfg.T / 2
        parts = []
        for flow in self.flows:
            thr = flow["S"][cfg.T] - flow["S"][0]
            growing = flow["cwnd"][cfg.T] > flow["cwnd"][0]
            parts.append(Or(thr >= RealVal(Fraction(phi) * fair), growing))
        return And(*parts)


class FlowView:
    """Adapter exposing one flow of a :class:`TwoFlowModel` through the
    single-flow :class:`~repro.ccac.model.CcacModel` attribute interface,
    so template ``constraints_for`` works unchanged."""

    def __init__(self, parent: TwoFlowModel, index: int):
        flow = parent.flows[index]
        self.cfg = parent.cfg
        self.prefix = f"{parent.prefix}{index + 1}"
        self.A = flow["A"]
        self.S = flow["S"]
        self.W = parent.W
        self.cwnd = flow["cwnd"]
        self.S_pre = flow["S_pre"]
        self.cwnd_pre = flow["cwnd_pre"]
        self.ack_offset = flow["ack_offset"]

    def S_at(self, t: int) -> Term:
        if t >= 0:
            return self.S[t]
        return self.S_pre[-t - 1]

    def cwnd_at(self, t: int) -> Term:
        if t >= 0:
            return self.cwnd[t]
        return self.cwnd_pre[-t - 1]

    def ack_at(self, t: int) -> Term:
        return self.S_at(t) + self.ack_offset


@dataclass
class StarvationResult:
    """Outcome of one starvation query."""

    verified: bool  # True: no admissible trace starves either flow
    throughputs: Optional[tuple[Fraction, Fraction]]
    wall_time: float


class StarvationVerifier:
    """Checks whether a candidate CCA can be starved when competing with
    itself under a given scheduling assumption."""

    def __init__(self, cfg: ModelConfig, min_share: Fraction = Fraction(0)):
        self.cfg = cfg
        self.min_share = Fraction(min_share)

    def find_starvation(self, candidate, phi: Fraction) -> StarvationResult:
        import time

        start = time.perf_counter()
        model = TwoFlowModel(self.cfg, min_share=self.min_share)
        solver = Solver()
        solver.add(*model.constraints())
        for i in (0, 1):
            solver.add(*candidate.constraints_for(model.flow_view(i)))
        solver.add(Not(model.no_starvation(Fraction(phi))))
        outcome = solver.check()
        if outcome is not sat:
            return StarvationResult(True, None, time.perf_counter() - start)
        m = solver.model()
        thr = tuple(
            m.value(model.flows[i]["S"][self.cfg.T]) - m.value(model.flows[i]["S"][0])
            for i in (0, 1)
        )
        return StarvationResult(False, thr, time.perf_counter() - start)
