"""Counterexample traces and the range-pruning bounds derived from them.

A :class:`CexTrace` is a concrete execution of the network model: rational
values for ``A_t, S_t, W_t, cwnd_t``.  Besides pretty-printing, it computes
the CCmatic *range pruning* intervals (paper §3.1.2):

    the cumulative bytes sent by any CCA consistent with this network
    behaviour lie in ``[S_t, +inf)`` when ``W_t == W_{t-1}`` and in
    ``[S_t, C*t - W_t]`` otherwise.

Any candidate whose sends stay inside these intervals at every step is
*feasible* for this network behaviour, so if the trace violated the desired
property, the whole range of candidates is eliminated at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional, Sequence

from ..smt import Model
from .config import ModelConfig
from .model import CcacModel


@dataclass(frozen=True)
class RangeBound:
    """Feasible interval for cumulative sends ``A_t`` at one timestep."""

    lower: Fraction
    upper: Optional[Fraction]  # None = unbounded (W stayed flat)

    @property
    def width(self) -> Optional[Fraction]:
        if self.upper is None:
            return None
        return self.upper - self.lower


@dataclass(frozen=True)
class CexTrace:
    """A concrete counterexample produced by the verifier."""

    cfg: ModelConfig
    A: tuple[Fraction, ...]
    S: tuple[Fraction, ...]
    W: tuple[Fraction, ...]
    cwnd: tuple[Fraction, ...]
    # pre-history: index i-1 holds the value at time -i
    S_pre: tuple[Fraction, ...] = ()
    cwnd_pre: tuple[Fraction, ...] = ()
    # bytes acked before the window started (shift-invariance witness)
    ack_offset: Fraction = Fraction(0)
    # origin environment (an EnvironmentSpec) when the trace came out of
    # a multi-environment verification; None for the paper's lossless
    # fragment.  Not part of trace identity: two equal behaviours are
    # equal regardless of which matrix cell surfaced them.
    environment: Optional[object] = field(default=None, compare=False, repr=False)

    @classmethod
    def from_model(cls, model: Model, net: CcacModel) -> "CexTrace":
        ts = range(net.cfg.T + 1)
        return cls(
            cfg=net.cfg,
            A=tuple(model.value(net.A[t]) for t in ts),
            S=tuple(model.value(net.S[t]) for t in ts),
            W=tuple(model.value(net.W[t]) for t in ts),
            cwnd=tuple(model.value(net.cwnd[t]) for t in ts),
            S_pre=tuple(model.value(v) for v in net.S_pre),
            cwnd_pre=tuple(model.value(v) for v in net.cwnd_pre),
            ack_offset=model.value(net.ack_offset),
        )

    def ack_at(self, t: int) -> Fraction:
        """Cumulative acks as the CCA observed them: ``S(t) + offset``."""
        return self.S_at(t) + self.ack_offset

    def S_at(self, t: int) -> Fraction:
        """Ack counter at time ``t`` (negative t reads pre-history)."""
        if t >= 0:
            return self.S[t]
        return self.S_pre[-t - 1]

    def cwnd_at(self, t: int) -> Fraction:
        """cwnd at time ``t`` (negative t reads pre-history)."""
        if t >= 0:
            return self.cwnd[t]
        return self.cwnd_pre[-t - 1]

    # ------------------------------------------------------------------

    def queue(self, t: int) -> Fraction:
        return self.A[t] - self.S[t]

    def utilization(self) -> Fraction:
        """Fraction of link capacity delivered over the whole trace."""
        return (self.S[self.cfg.T] - self.S[0]) / (self.cfg.C * self.cfg.T)

    def max_queue(self) -> Fraction:
        return max(self.queue(t) for t in range(self.cfg.T + 1))

    def range_bounds(self) -> tuple[RangeBound, ...]:
        """Per-step feasible intervals for ``A_t`` (range pruning)."""
        bounds = []
        for t in range(self.cfg.T + 1):
            lower = self.S[t]
            if t >= 1 and self.W[t] == self.W[t - 1]:
                upper: Optional[Fraction] = None
            else:
                upper = self.cfg.C * t - self.W[t]
            if t == 0:
                # A_0 is the adversarial initial queue, not CCA-controlled.
                bounds.append(RangeBound(lower=self.A[0], upper=self.A[0]))
            else:
                bounds.append(RangeBound(lower=lower, upper=upper))
        return tuple(bounds)

    def min_finite_range_width(self) -> Optional[Fraction]:
        """``min_t (u_t - l_t)`` over steps with finite upper bounds
        (the quantity the worst-case-counterexample search maximizes)."""
        widths = [b.width for b in self.range_bounds()[1:] if b.width is not None]
        if not widths:
            return None
        return min(widths)

    # ------------------------------------------------------------------

    def check_environment(self) -> list[str]:
        """Re-validate the network constraints numerically; returns a list
        of violation descriptions (empty when the trace is consistent).
        Used by tests to guard against encoding drift."""
        cfg = self.cfg
        errors: list[str] = []
        if self.S[0] != 0:
            errors.append(f"S_0 = {self.S[0]} != 0")
        if self.W[0] != 0:
            errors.append(f"W_0 = {self.W[0]} != 0")
        if not (0 <= self.A[0] <= cfg.initial_queue_max):
            errors.append(f"A_0 = {self.A[0]} outside initial queue box")
        if self.S_pre and self.A[0] > self.S_pre[0] + self.cwnd[0]:
            errors.append("initial queue exceeds initial window")
        prev = self.S[0]
        for i, s in enumerate(self.S_pre, start=1):
            if s > prev:
                errors.append(f"pre-history S not monotone at -{i}")
            if s < -cfg.C * i:
                errors.append(f"pre-history S below service-rate bound at -{i}")
            prev = s
        for t in range(1, cfg.T + 1):
            if self.A[t] < self.A[t - 1]:
                errors.append(f"A not monotone at {t}")
            if self.S[t] < self.S[t - 1]:
                errors.append(f"S not monotone at {t}")
            if self.W[t] < self.W[t - 1]:
                errors.append(f"W not monotone at {t}")
            if self.S[t] > cfg.C * t - self.W[t]:
                errors.append(f"token bucket violated at {t}")
            if t >= cfg.jitter:
                back = t - cfg.jitter
                if self.S[t] < cfg.C * back - self.W[back]:
                    errors.append(f"lower service violated at {t}")
            if self.S[t] > self.A[t]:
                errors.append(f"causality violated at {t}")
            if self.W[t] > self.W[t - 1] and self.A[t] > cfg.C * t - self.W[t]:
                errors.append(f"waste condition violated at {t}")
            expected = self._sender_expected(t)
            if self.A[t] != expected:
                errors.append(f"sender not eager at {t}: {self.A[t]} != {expected}")
        return errors

    def _sender_expected(self, t: int) -> Fraction:
        """What the eager window-limited sender must have sent at ``t``
        (environment subclasses override the recurrence)."""
        return max(self.A[t - 1], self.S[t - 1] + self.cwnd[t])

    def desired_holds(self) -> bool:
        """The environment's desired property, computed numerically."""
        cfg = self.cfg
        T = cfg.T
        util_ok = self.S[T] - self.S[0] >= cfg.util_thresh * cfg.C * cfg.T
        limit = cfg.delay_thresh * cfg.C * cfg.D
        queue_ok = all(self.queue(t) <= limit for t in range(T + 1))
        increased = self.cwnd[T] > self.cwnd[0]
        decreased = self.cwnd[T] < self.cwnd[0]
        return (util_ok or increased) and (queue_ok or decreased)

    def __str__(self) -> str:
        cfg = self.cfg
        header = f"t    A        S        W        cwnd     queue"
        rows = [header]
        for t in range(cfg.T + 1):
            rows.append(
                f"{t:<4} {float(self.A[t]):<8.3f} {float(self.S[t]):<8.3f} "
                f"{float(self.W[t]):<8.3f} {float(self.cwnd[t]):<8.3f} "
                f"{float(self.queue(t)):<8.3f}"
            )
        rows.append(
            f"utilization={float(self.utilization()):.3f} "
            f"max_queue={float(self.max_queue()):.3f}"
        )
        return "\n".join(rows)
