"""CCmatic reproduction: automated design and analysis of network heuristics.

Reproduces Agarwal et al., "Automating network heuristic design and
analysis" (HotNets 2022): CEGIS-based synthesis of congestion-control
algorithms that provably achieve high utilization and bounded delay under
a CCAC-style network model — built entirely from scratch, including the
underlying SMT solver.

**Stable top-level surface.**  The names in ``__all__`` are the public
API; everything else should be imported from its subpackage and may move
between releases.

* :func:`synthesize` / :class:`SynthesisQuery` — run one ∃∀ synthesis
  question end to end (:mod:`repro.core`).
* :func:`verify` — one-shot verification of a concrete candidate CCA
  against the CCAC model.
* :class:`Solver` / :class:`CheckOptions` / :class:`SolverSession` — the
  QF-LRA SMT solver (:mod:`repro.smt`); sessions are the incremental
  entry point.
* :class:`CegisLoop` / :class:`CegisOptions` / :class:`StopReason` — the
  generic CEGIS loop (:mod:`repro.cegis`).
* :class:`QueryCache` / :class:`PortfolioVerifier` — the performance
  engine (:mod:`repro.engine`).
* :class:`JobSpec` / :func:`execute_job` / :class:`WorkerPool` /
  :class:`JobServer` / :class:`ServiceClient` — the job-oriented API
  and the synthesis-as-a-service control plane (:mod:`repro.service`).

Subpackages:

* :mod:`repro.smt` — QF-LRA SMT solver (DPLL(T): CDCL + Simplex).
* :mod:`repro.ccac` — the CCAC network model used as the verifier.
* :mod:`repro.cegis` — the generic CEGIS loop with range pruning and
  worst-case counterexamples.
* :mod:`repro.core` — CCmatic itself: templates, generator, verifier,
  synthesis driver, assumption-synthesis queries.
* :mod:`repro.engine` — parallel portfolio verification, incremental
  sessions, and the content-addressed query cache.
* :mod:`repro.service` — the HTTP/JSON control plane: durable job
  queue, persistent worker pool, progress streams, shared cache store.
* :mod:`repro.ccas`, :mod:`repro.sim` — concrete CCAs and a discrete-time
  simulator for empirical validation.
* :mod:`repro.netcal` — network-calculus curve algebra.
* :mod:`repro.abr` — the adaptive-bitrate extension sketched in §5.
"""

from __future__ import annotations

__version__ = "2.0.0"

__all__ = [
    "CandidateCCA",
    "CegisLoop",
    "CegisOptions",
    "CheckOptions",
    "JobServer",
    "JobSpec",
    "ModelConfig",
    "PortfolioVerifier",
    "QueryCache",
    "Result",
    "ServiceClient",
    "Solver",
    "SolverSession",
    "StopReason",
    "SynthesisQuery",
    "SynthesisResult",
    "WorkerPool",
    "execute_job",
    "sat",
    "synthesize",
    "unknown",
    "unsat",
    "verify",
]

#: lazy attribute -> home module (PEP 562); keeps ``import repro`` cheap
#: and cycle-free while exposing one flat, documented surface
_LAZY = {
    "CandidateCCA": "repro.core.template",
    "CegisLoop": "repro.cegis",
    "CegisOptions": "repro.cegis",
    "CheckOptions": "repro.smt",
    "JobServer": "repro.service",
    "JobSpec": "repro.service",
    "ModelConfig": "repro.ccac",
    "PortfolioVerifier": "repro.engine",
    "QueryCache": "repro.engine",
    "Result": "repro.smt",
    "ServiceClient": "repro.service",
    "Solver": "repro.smt",
    "SolverSession": "repro.smt",
    "StopReason": "repro.cegis",
    "SynthesisQuery": "repro.core.synthesizer",
    "SynthesisResult": "repro.core.synthesizer",
    "WorkerPool": "repro.service",
    "execute_job": "repro.service",
    "sat": "repro.smt",
    "synthesize": "repro.core.synthesizer",
    "unknown": "repro.smt",
    "unsat": "repro.smt",
}


def __getattr__(name):
    home = _LAZY.get(name)
    if home is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(home), name)
    globals()[name] = value  # cache: __getattr__ runs once per name
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))


def verify(
    candidate,
    cfg=None,
    *,
    worst_case: bool = False,
    validate: bool = True,
    cache=None,
):
    """Verify one concrete candidate CCA against the CCAC model.

    Returns a :class:`repro.core.verifier.VerificationResult`:
    ``verified=True`` proves no admissible trace violates the desired
    property; otherwise ``counterexample`` carries a violating trace
    (the worst-case one under ``worst_case=True``).  ``cache`` accepts a
    :class:`repro.engine.QueryCache` to reuse conclusive verdicts across
    calls.
    """
    from .ccac import ModelConfig
    from .core.verifier import CcacVerifier

    verifier = CcacVerifier(
        cfg if cfg is not None else ModelConfig(),
        validate=validate,
        cache=cache,
    )
    return verifier.find_counterexample(candidate, worst_case=worst_case)
