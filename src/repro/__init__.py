"""CCmatic reproduction: automated design and analysis of network heuristics.

Reproduces Agarwal et al., "Automating network heuristic design and
analysis" (HotNets 2022): CEGIS-based synthesis of congestion-control
algorithms that provably achieve high utilization and bounded delay under
a CCAC-style network model — built entirely from scratch, including the
underlying SMT solver.

Public entry points:

* :mod:`repro.smt` — QF-LRA SMT solver (DPLL(T): CDCL + Simplex).
* :mod:`repro.ccac` — the CCAC network model used as the verifier.
* :mod:`repro.cegis` — the generic CEGIS loop with range pruning and
  worst-case counterexamples.
* :mod:`repro.core` — CCmatic itself: templates, generator, verifier,
  synthesis driver, assumption-synthesis queries.
* :mod:`repro.ccas`, :mod:`repro.sim` — concrete CCAs and a discrete-time
  simulator for empirical validation.
* :mod:`repro.netcal` — network-calculus curve algebra.
* :mod:`repro.abr` — the adaptive-bitrate extension sketched in §5.
"""

__version__ = "1.0.0"
