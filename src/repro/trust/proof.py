"""Proof objects: the data that flows from the solver to the checker.

This module is deliberately **pure data** — it imports nothing from the
solver (only the standard library), so both sides of the trust boundary
can depend on it without the checker inheriting solver code:

* the SMT stack (:mod:`repro.smt.sat` / :mod:`repro.smt.solver`) appends
  proof *steps* to a :class:`ProofLog` while it searches;
* :meth:`repro.smt.solver.Solver.certificate` snapshots the log together
  with the symbol tables into an :class:`UnsatCertificate`;
* the independent checker (:mod:`repro.trust.checker`) replays the
  certificate with its own propagation engine and exact arithmetic.

Proof steps are plain tuples (hot path: one append per learned clause):

``("input", lits)``
    A problem clause as handed to ``SatSolver.add_clause`` — before the
    solver's root-level shrinking.  The checker must *justify* it against
    the compiled query (a Tseitin definition, the true-constant unit, an
    asserted formula's clause with its guard tail, a clause satisfied by
    a disabled guard, or a guard-disable unit) rather than trust it.

``("derived", lits)``
    A clause the solver derived by reverse-unit-propagation-checkable
    reasoning (root-level clause shrinking, learned units, the empty
    clause).  Verified by RUP.

``("learn", lits)``
    A 1UIP learned clause (after minimization).  Verified by RUP.

``("theory", lits, farkas)``
    A theory lemma contributed by the Simplex solver.  ``farkas`` is a
    tuple of ``(literal, coefficient)`` pairs: nonnegative rational
    multipliers over the inequalities asserted by those literals whose
    combination is contradictory (variables cancel; constant < 0, or
    == 0 with a strict inequality at positive coefficient).  Verified by
    exact Farkas arithmetic, *not* RUP — these are the only axioms the
    theory may introduce.

``("delete", lits)``
    A clause removed from the solver's database (GC of root-satisfied
    clauses after a pop, or learned-clause reduction).  The checker
    drops one matching clause; deletions can only weaken later RUP
    checks, never unsound them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional


class ProofError(Exception):
    """Proof *production* failed (not a soundness violation).

    Raised when proof mode is requested in a state where a complete
    certificate can no longer be produced — e.g. arming an already-used
    solver, asking for a certificate after a non-unsat check, or a
    theory conflict arriving without a Farkas certificate.
    """


@dataclass(frozen=True)
class NeutralAtom:
    """A theory atom in solver-independent form: ``sum(c_i * x_i) <= bound``.

    Always the canonical *upper* form (the solver registers atoms that
    way); ``strict`` makes the comparison ``<``.  Variables are carried
    by **name** (real variables are interned by name, so names are
    unique identifiers) and coefficients/bounds are exact
    :class:`~fractions.Fraction` values.  ``coeffs`` is sorted by name
    with the leading coefficient ``+1``, mirroring the canonical scaling
    of :mod:`repro.smt.linarith` — the checker renormalizes atoms from
    the query text independently and must land on the same key.
    """

    coeffs: tuple[tuple[str, Fraction], ...]
    bound: Fraction
    strict: bool


class ProofLog:
    """Append-only step log; one per proof-producing solver."""

    __slots__ = ("steps", "inputs", "rup_additions", "theory_lemmas", "deletions")

    def __init__(self):
        self.steps: list[tuple] = []
        self.inputs = 0
        self.rup_additions = 0
        self.theory_lemmas = 0
        self.deletions = 0

    def input(self, lits: tuple[int, ...]) -> None:
        self.inputs += 1
        self.steps.append(("input", lits))

    def derived(self, lits: tuple[int, ...]) -> None:
        self.rup_additions += 1
        self.steps.append(("derived", lits))

    def learn(self, lits: tuple[int, ...]) -> None:
        self.rup_additions += 1
        self.steps.append(("learn", lits))

    def theory(self, lits: tuple[int, ...], farkas: tuple) -> None:
        self.theory_lemmas += 1
        self.steps.append(("theory", lits, farkas))

    def delete(self, lits: tuple[int, ...]) -> None:
        self.deletions += 1
        self.steps.append(("delete", lits))

    def __len__(self) -> int:
        return len(self.steps)


@dataclass(frozen=True)
class UnsatCertificate:
    """Everything the independent checker needs to confirm an UNSAT verdict.

    The *semantic* tables tie SAT variables back to the compiled query:
    ``atoms`` maps theory variables to solver-independent inequalities,
    ``bool_vars`` maps boolean variables to their names, ``defs`` maps
    each Tseitin auxiliary variable to its connective and child
    literals, and ``frames`` carries the compiled formulas of every
    assertion frame *active at the check* together with its guard
    variable (``None`` for the root frame).  ``disabled_guards`` are the
    guards of popped frames; ``assumptions`` are the guard literals the
    final check assumed.
    """

    #: the proof steps, in solver order (see module docstring)
    steps: tuple[tuple, ...]
    #: SAT variable count at certificate time (1-based variables)
    nvars: int
    #: theory SAT var -> its inequality
    atoms: dict[int, NeutralAtom]
    #: boolean SAT var -> variable name
    bool_vars: dict[int, str]
    #: Tseitin aux var -> (connective kind name, child literals)
    defs: dict[int, tuple[str, tuple[int, ...]]]
    #: the variable asserted true at the root for constant folding
    true_var: Optional[int]
    #: active frames: (guard var or None, compiled formulas) in stack order
    frames: tuple[tuple[Optional[int], tuple], ...]
    #: guards of frames popped before the check
    disabled_guards: frozenset[int]
    #: assumption literals of the final (unsat) check
    assumptions: tuple[int, ...]
    #: informational counters (not part of the checked content)
    info: dict = field(default_factory=dict, compare=False)
