"""repro.trust: certified UNSAT verdicts.

The solver's word alone does not back a "verified CCA" claim in this
package: proof-producing mode (``Solver(produce_proofs=True)`` /
``CheckOptions(produce_proofs=True)``) makes the CDCL core log a
DRAT-style clausal proof and the Simplex theory attach Farkas
certificates to every lemma; :func:`check_certificate` replays that
proof with an independent checker sharing no solver code beyond the
term data structure.

This ``__init__`` is lazy (PEP 562): :mod:`repro.smt.solver` imports
:mod:`repro.trust.proof` while :mod:`repro.trust.certify` imports the
solver, and eager re-exports would turn that diamond into an import
cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__all__ = [
    "CertificateSummary",
    "CheckReport",
    "NeutralAtom",
    "ProofError",
    "UnsatCertificate",
    "certify_certificate",
    "check_certificate",
]

_EXPORTS = {
    "NeutralAtom": ("repro.trust.proof", "NeutralAtom"),
    "ProofError": ("repro.trust.proof", "ProofError"),
    "UnsatCertificate": ("repro.trust.proof", "UnsatCertificate"),
    "CheckReport": ("repro.trust.checker", "CheckReport"),
    "check_certificate": ("repro.trust.checker", "check_certificate"),
    "CertificateSummary": ("repro.trust.certify", "CertificateSummary"),
    "certify_certificate": ("repro.trust.certify", "certify_certificate"),
}

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .certify import CertificateSummary, certify_certificate
    from .checker import CheckReport, check_certificate
    from .proof import NeutralAtom, ProofError, UnsatCertificate


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return sorted(set(globals()) | set(__all__))
