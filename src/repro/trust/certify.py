"""Certification entry points: run the checker with observability.

:func:`certify_certificate` is what production callers use (the
verifier, the CLI): it times the independent check, emits ``trust.*``
spans and metrics, and returns a small picklable
:class:`CertificateSummary` that can cross worker-process boundaries —
the full :class:`~repro.trust.proof.UnsatCertificate` (which holds term
DAGs) never leaves the process that produced it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..obs import DEBUG, metrics, tracer
from .checker import check_certificate
from .proof import UnsatCertificate


@dataclass(frozen=True)
class CertificateSummary:
    """Evidence that an UNSAT verdict was independently checked.

    All fields are plain numbers so the summary survives pickling across
    isolated-worker and portfolio process boundaries.
    """

    checked: bool
    steps: int
    inputs: int
    rup_additions: int
    theory_lemmas: int
    deletions: int
    propagations: int
    check_time: float


def certify_certificate(cert: UnsatCertificate) -> CertificateSummary:
    """Independently check ``cert``; raises ``SoundnessError`` on any gap."""
    tr = tracer()
    with tr.span(
        "trust.check",
        level=DEBUG,
        steps=len(cert.steps),
        frames=len(cert.frames),
        atoms=len(cert.atoms),
    ) as span:
        start = time.perf_counter()
        report = check_certificate(cert)
        elapsed = time.perf_counter() - start
        span.set(
            rup_additions=report.rup_additions,
            theory_lemmas=report.theory_lemmas,
            check_time=round(elapsed, 6),
        )
    reg = metrics()
    reg.counter("trust.proofs.checked").inc()
    reg.counter("trust.proofs.steps").inc(report.steps)
    reg.counter("trust.proofs.theory_lemmas").inc(report.theory_lemmas)
    reg.histogram("trust.check_time").observe(elapsed)
    return CertificateSummary(
        checked=True,
        steps=report.steps,
        inputs=report.inputs,
        rup_additions=report.rup_additions,
        theory_lemmas=report.theory_lemmas,
        deletions=report.deletions,
        propagations=report.propagations,
        check_time=elapsed,
    )
