"""Independent checker for :class:`~repro.trust.proof.UnsatCertificate`.

Trust boundary: this module imports **only** :mod:`repro.smt.terms` (the
term data structure the query is written in) and the shared error type —
no SAT core, no Simplex, no CNF encoder.  Everything it needs to agree
with the solver on (atom normalization, Tseitin clause schemas, unit
propagation, Farkas arithmetic) is reimplemented here from the written
definitions, in exact :class:`~fractions.Fraction` arithmetic.  A solver
bug therefore has to be matched by an *independent* checker bug to slip
an unsound UNSAT through.

The check has three obligations:

1. **Input justification** — every ``input`` clause in the proof must be
   derivable from the compiled query by construction: a Tseitin
   definitional clause, the true-constant unit, an asserted formula's
   clause carrying its frame's guard tail, any clause satisfied by a
   disabled (popped) guard, or a guard-disable unit.  The checker
   re-encodes the certificate's frame formulas itself to build the
   expected clause set.
2. **Addition verification** — every ``learn``/``derived`` clause must
   pass reverse unit propagation (RUP) against the clauses added so far;
   every ``theory`` lemma must carry a valid Farkas certificate: the
   nonnegative combination of the inequalities asserted by its literals
   cancels all variables and leaves an impossible constant.
3. **The final conflict** — propagating the certificate's assumption
   literals over the surviving clause database must yield a conflict
   (the empty clause under assumptions).

Any gap raises :class:`~repro.runtime.errors.SoundnessError` with a
description of the first failing step.  Soundness direction: the checker
only confirms *UNSAT*; clauses it fails to see would merely make the
conflict harder to derive, so there is no completeness obligation on the
ledger.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from ..runtime.errors import SoundnessError
from ..smt.terms import Kind, Sort, Term
from .proof import NeutralAtom, UnsatCertificate

__all__ = ["CheckReport", "check_certificate"]


@dataclass(frozen=True)
class CheckReport:
    """What a successful check verified (all counters are checked steps)."""

    steps: int
    inputs: int
    rup_additions: int
    theory_lemmas: int
    deletions: int
    propagations: int


# ---------------------------------------------------------------------------
# Linear-atom renormalization (independent of repro.smt.linarith)
# ---------------------------------------------------------------------------


def _linearize(term: Term, scale: Fraction, coeffs: dict, const: list) -> None:
    """Accumulate ``scale * term`` into name-keyed coefficients."""
    k = term.kind
    if k is Kind.CONST:
        const[0] += scale * term.value
    elif k is Kind.VAR:
        coeffs[term.name] = coeffs.get(term.name, Fraction(0)) + scale
    elif k is Kind.ADD:
        for a in term.args:
            _linearize(a, scale, coeffs, const)
    elif k is Kind.NEG:
        _linearize(term.args[0], -scale, coeffs, const)
    elif k is Kind.SCALE:
        if term.value is None:
            raise SoundnessError(f"non-linear product in certified query: {term!r}")
        _linearize(term.args[0], scale * term.value, coeffs, const)
    else:
        raise SoundnessError(f"not an arithmetic term in certified query: {term!r}")


def _normalize_atom(term: Term):
    """``<=``/``<`` atom -> (upper?, NeutralAtom) or a ground bool.

    Mirrors the *specification* of canonical atoms: ``lhs - rhs`` with
    zero coefficients dropped, variables sorted by name, scaled so the
    leading coefficient is ``+1``; ``upper`` records the original
    direction after scaling.
    """
    if term.kind not in (Kind.LE, Kind.LT):
        raise SoundnessError(f"not an atom: {term!r}")
    coeffs: dict[str, Fraction] = {}
    const = [Fraction(0)]
    _linearize(term.args[0], Fraction(1), coeffs, const)
    _linearize(term.args[1], Fraction(-1), coeffs, const)
    coeffs = {n: c for n, c in coeffs.items() if c != 0}
    bound = -const[0]
    strict = term.kind is Kind.LT
    if not coeffs:
        return (Fraction(0) < bound) if strict else (Fraction(0) <= bound)
    ordered = sorted(coeffs.items())
    lead = ordered[0][1]
    atom = NeutralAtom(
        coeffs=tuple((n, c / lead) for n, c in ordered),
        bound=bound / lead,
        strict=strict,
    )
    return (lead > 0), atom


# ---------------------------------------------------------------------------
# Semantic pass: re-encode the compiled query from the certificate tables
# ---------------------------------------------------------------------------


class _Recoder:
    """Rebuilds the expected clause set of the compiled query."""

    def __init__(self, cert: UnsatCertificate):
        self.cert = cert
        nvars = cert.nvars
        guards = {g for g, _ in cert.frames if g is not None}
        guards |= set(cert.disabled_guards)
        semantic: set[int] = set()

        def claim(var: int, role: str) -> None:
            if not isinstance(var, int) or not 1 <= var <= nvars:
                raise SoundnessError(f"certificate {role} variable {var!r} out of range")
            if var in semantic or var in guards:
                raise SoundnessError(
                    f"certificate variable {var} claimed twice (as {role})"
                )
            semantic.add(var)

        self.atom_inv: dict[tuple, int] = {}
        for var, atom in cert.atoms.items():
            claim(var, "atom")
            key = (atom.coeffs, atom.bound, atom.strict)
            if key in self.atom_inv:
                raise SoundnessError(f"duplicate atom table entry for {atom}")
            self.atom_inv[key] = var
        self.bool_inv: dict[str, int] = {}
        for var, name in cert.bool_vars.items():
            claim(var, "bool")
            if name in self.bool_inv:
                raise SoundnessError(f"duplicate boolean variable name {name!r}")
            self.bool_inv[name] = var
        self.def_inv: dict[tuple, int] = {}
        for var, (op, children) in cert.defs.items():
            claim(var, "definition")
            for child in children:
                v = abs(child)
                if not 1 <= v <= nvars:
                    raise SoundnessError(f"definition child literal {child} out of range")
                if v >= var:
                    raise SoundnessError(
                        f"definition of {var} references {child}: definitions "
                        f"must be acyclic (children allocated first)"
                    )
                if v in guards:
                    raise SoundnessError(
                        f"definition of {var} references guard variable {v}"
                    )
            self.def_inv[(op, children)] = var
        self.true_var = cert.true_var
        if self.true_var is not None:
            claim(self.true_var, "true-constant")
        for g in guards:
            if not isinstance(g, int) or not 1 <= g <= nvars:
                raise SoundnessError(f"guard variable {g!r} out of range")
        active_guards = [g for g, _ in cert.frames if g is not None]
        if set(active_guards) & set(cert.disabled_guards):
            raise SoundnessError("a frame is both active and disabled")
        if tuple(cert.assumptions) != tuple(active_guards):
            raise SoundnessError(
                "final-check assumptions do not match the active frame guards"
            )
        self.disabled = frozenset(cert.disabled_guards)
        self._memo: dict[int, int] = {}
        self.expected: set[frozenset[int]] = set()
        self._build_expected()

    # -- literal reconstruction (mirrors the Tseitin encoder's mapping) ------

    def lit_of(self, term: Term) -> int:
        cached = self._memo.get(id(term))
        if cached is not None:
            return cached
        lit = self._lit_of(term)
        self._memo[id(term)] = lit
        return lit

    def _true_lit(self) -> int:
        if self.true_var is None:
            raise SoundnessError(
                "query folds to a boolean constant but the certificate has "
                "no true-constant variable"
            )
        return self.true_var

    def _lit_of(self, term: Term) -> int:
        if term.sort is not Sort.BOOL:
            raise SoundnessError(f"expected boolean term in query: {term!r}")
        k = term.kind
        if k is Kind.CONST:
            return self._true_lit() if term.value else -self._true_lit()
        if k is Kind.VAR:
            var = self.bool_inv.get(term.name)
            if var is None:
                raise SoundnessError(
                    f"boolean variable {term.name!r} missing from certificate"
                )
            return var
        if k in (Kind.LE, Kind.LT):
            norm = _normalize_atom(term)
            if isinstance(norm, bool):
                return self._true_lit() if norm else -self._true_lit()
            upper, atom = norm
            if not upper:
                # lower-form atoms are registered as their negation
                atom = NeutralAtom(atom.coeffs, atom.bound, not atom.strict)
            var = self.atom_inv.get((atom.coeffs, atom.bound, atom.strict))
            if var is None:
                raise SoundnessError(f"atom {term!r} missing from certificate")
            return var if upper else -var
        if k is Kind.NOT:
            return -self.lit_of(term.args[0])
        if k in (Kind.AND, Kind.OR, Kind.IMPLIES, Kind.IFF, Kind.ITE):
            children = tuple(self.lit_of(a) for a in term.args)
            var = self.def_inv.get((k.name, children))
            if var is None:
                raise SoundnessError(
                    f"no Tseitin definition for {k.name} over {children} "
                    f"in certificate (subterm {term!r})"
                )
            return var
        raise SoundnessError(f"cannot re-encode term of kind {k}: {term!r}")

    # -- expected clause set --------------------------------------------------

    def _build_expected(self) -> None:
        add = self.expected.add
        if self.true_var is not None:
            add(frozenset((self.true_var,)))
        for var, (op, children) in self.cert.defs.items():
            self._def_clauses(var, op, children, add)
        for guard, formulas in self.cert.frames:
            tail = (-guard,) if guard is not None else ()
            for f in formulas:
                self._top_clauses(f, tail, add)

    def _def_clauses(self, f: int, op: str, lits: tuple[int, ...], add) -> None:
        """The definitional clauses of ``f <=> op(lits)``."""
        if op == "AND":
            for l in lits:
                add(frozenset((-f, l)))
            add(frozenset((f,) + tuple(-l for l in lits)))
        elif op == "OR":
            for l in lits:
                add(frozenset((-l, f)))
            add(frozenset((-f,) + lits))
        elif op == "IMPLIES":
            if len(lits) != 2:
                raise SoundnessError(f"IMPLIES definition with {len(lits)} children")
            a, b = lits
            add(frozenset((-f, -a, b)))
            add(frozenset((f, a)))
            add(frozenset((f, -b)))
        elif op == "IFF":
            if len(lits) != 2:
                raise SoundnessError(f"IFF definition with {len(lits)} children")
            a, b = lits
            add(frozenset((-f, -a, b)))
            add(frozenset((-f, a, -b)))
            add(frozenset((f, a, b)))
            add(frozenset((f, -a, -b)))
        elif op == "ITE":
            if len(lits) != 3:
                raise SoundnessError(f"ITE definition with {len(lits)} children")
            c, t, e = lits
            add(frozenset((-f, -c, t)))
            add(frozenset((-f, c, e)))
            add(frozenset((f, -c, -t)))
            add(frozenset((f, c, -e)))
        else:
            raise SoundnessError(f"unknown definition connective {op!r}")

    def _top_clauses(self, term: Term, tail: tuple[int, ...], add) -> None:
        """Clauses of one asserted formula (mirrors top-level flattening:
        AND splits, OR becomes one clause, IMPLIES becomes one clause)."""
        k = term.kind
        if k is Kind.AND:
            for a in term.args:
                self._top_clauses(a, tail, add)
            return
        if k is Kind.OR:
            add(frozenset(tuple(self.lit_of(a) for a in term.args) + tail))
            return
        if k is Kind.IMPLIES:
            a, b = term.args
            add(frozenset((-self.lit_of(a), self.lit_of(b)) + tail))
            return
        add(frozenset((self.lit_of(term),) + tail))

    def justify_input(self, lits: tuple[int, ...]) -> None:
        """Raise unless the input clause is grounded in the query."""
        fs = frozenset(lits)
        if fs in self.expected:
            return
        for l in lits:
            if l < 0 and -l in self.disabled:
                return  # satisfied once the popped guard is forced off
        raise SoundnessError(
            f"input clause {sorted(fs)} is not part of the compiled query "
            f"(not definitional, not an asserted formula's clause, and not "
            f"covered by a disabled guard)"
        )


# ---------------------------------------------------------------------------
# Clause database with unit propagation (the RUP engine)
# ---------------------------------------------------------------------------


class _Clause:
    __slots__ = ("lits", "deleted")

    def __init__(self, lits: list[int]):
        self.lits = lits
        self.deleted = False


class _ClauseDb:
    """Two-watched-literal propagation over the replayed clause set.

    The root trail is persistent (units are consequences and never
    retract); RUP checks and the final assumption check stack transient
    assignments on top and roll back to the root mark.
    """

    def __init__(self, nvars: int):
        self.nvars = nvars
        self.values = [0] * (nvars + 1)  # 0 unassigned, +1 true, -1 false
        self.trail: list[int] = []
        self.qhead = 0
        self.watches: dict[int, list[_Clause]] = {}
        self.by_key: dict[tuple[int, ...], list[_Clause]] = {}
        self.root_conflict = False
        self.propagations = 0

    def _value(self, lit: int) -> int:
        v = self.values[abs(lit)]
        return v if lit > 0 else -v

    def _check_lits(self, lits) -> list[int]:
        out = []
        seen = set()
        for lit in lits:
            if not isinstance(lit, int) or lit == 0 or abs(lit) > self.nvars:
                raise SoundnessError(f"proof literal {lit!r} out of range")
            if lit in seen:
                continue
            seen.add(lit)
            out.append(lit)
        return out

    def _enqueue(self, lit: int) -> bool:
        """Assign ``lit`` true; returns False on conflict."""
        val = self._value(lit)
        if val == 1:
            return True
        if val == -1:
            return False
        self.values[abs(lit)] = 1 if lit > 0 else -1
        self.trail.append(lit)
        return True

    def add_clause(self, lits) -> None:
        """Insert a (justified or verified) clause and propagate."""
        if self.root_conflict:
            return
        lits = self._check_lits(lits)
        present = set(lits)
        if any(-l in present for l in lits):
            return  # tautology: no propagation power, skip
        if not lits:
            self.root_conflict = True
            return
        # order two non-false literals first: the watch invariant
        nonfalse = [l for l in lits if self._value(l) != -1]
        false = [l for l in lits if self._value(l) == -1]
        clause = _Clause(nonfalse[:2] + false + nonfalse[2:])
        self.by_key.setdefault(tuple(sorted(lits)), []).append(clause)
        if not nonfalse:
            self.root_conflict = True
            return
        if len(clause.lits) >= 2:
            self._attach(clause)
        if len(nonfalse) == 1:
            # unit under the current trail (or a unit clause)
            if not self._enqueue(nonfalse[0]) or self._propagate():
                self.root_conflict = True

    def _attach(self, clause: _Clause) -> None:
        self.watches.setdefault(-clause.lits[0], []).append(clause)
        self.watches.setdefault(-clause.lits[1], []).append(clause)

    def _propagate(self) -> bool:
        """Unit propagation; returns True iff a conflict was found."""
        while self.qhead < len(self.trail):
            p = self.trail[self.qhead]
            self.qhead += 1
            watchlist = self.watches.get(p)
            if not watchlist:
                continue
            i = j = 0
            n = len(watchlist)
            while i < n:
                clause = watchlist[i]
                i += 1
                if clause.deleted:
                    continue  # lazy removal
                self.propagations += 1
                lits = clause.lits
                if lits[0] == -p:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self._value(first) == 1:
                    watchlist[j] = clause
                    j += 1
                    continue
                moved = False
                for k in range(2, len(lits)):
                    if self._value(lits[k]) != -1:
                        lits[1], lits[k] = lits[k], lits[1]
                        self.watches.setdefault(-lits[1], []).append(clause)
                        moved = True
                        break
                if moved:
                    continue
                watchlist[j] = clause
                j += 1
                if self._value(first) == -1:
                    while i < n:
                        watchlist[j] = watchlist[i]
                        j += 1
                        i += 1
                    del watchlist[j:]
                    self.qhead = len(self.trail)
                    return True
                self._enqueue(first)
            del watchlist[j:]
        return False

    def _undo_to(self, mark: int) -> None:
        for lit in self.trail[mark:]:
            self.values[abs(lit)] = 0
        del self.trail[mark:]
        self.qhead = mark

    def rup_check(self, lits) -> None:
        """Verify ``lits`` by reverse unit propagation; raise on failure."""
        if self.root_conflict:
            return  # everything follows from a root contradiction
        lits = self._check_lits(lits)
        mark = len(self.trail)
        confirmed = False
        for lit in lits:
            val = self._value(lit)
            if val == 1:
                confirmed = True  # satisfied by the trail: a consequence
                break
            if val == 0:
                self.values[abs(lit)] = -1 if lit > 0 else 1
                self.trail.append(-lit)
        if not confirmed:
            confirmed = self._propagate()
        self._undo_to(mark)
        if not confirmed:
            raise SoundnessError(
                f"clause {sorted(lits)} is not RUP-derivable at this proof step"
            )

    def delete(self, lits) -> None:
        key = tuple(sorted(self._check_lits(lits)))
        bucket = self.by_key.get(key)
        if not bucket:
            # deleting an unknown clause cannot hurt soundness; ignore
            return
        bucket.pop().deleted = True

    def final_conflict(self, assumptions) -> None:
        """Demand a conflict when the assumption literals are asserted."""
        if self.root_conflict:
            return
        mark = len(self.trail)
        conflicted = False
        for lit in self._check_lits(assumptions):
            if not self._enqueue(lit) or self._propagate():
                conflicted = True
                break
        self._undo_to(mark)
        if not conflicted:
            raise SoundnessError(
                "the proof does not derive a conflict under the final "
                "check's assumptions — the UNSAT verdict is not certified"
            )


# ---------------------------------------------------------------------------
# Farkas certificate verification
# ---------------------------------------------------------------------------


def _check_farkas(
    atoms: dict[int, NeutralAtom], lits: tuple[int, ...], farkas
) -> None:
    """Verify a theory lemma: its literals' negations must carry a valid
    Farkas contradiction.

    Each ``(literal, coefficient)`` pair asserts the literal's
    inequality; converted to ``<=`` form and combined with the
    nonnegative coefficients, all variables must cancel and the
    resulting constant must be negative — or zero with a strict
    inequality at positive coefficient (``0 < 0``)."""
    if not farkas:
        raise SoundnessError("theory lemma without a Farkas certificate")
    tags = [t for t, _ in farkas]
    if frozenset(-t for t in tags) != frozenset(lits):
        raise SoundnessError(
            f"theory lemma {sorted(lits)} does not negate its Farkas "
            f"premises {sorted(tags)}"
        )
    combo: dict[str, Fraction] = {}
    const = Fraction(0)
    strict_active = False
    for tag, coeff in farkas:
        coeff = Fraction(coeff)
        if coeff < 0:
            raise SoundnessError(f"negative Farkas coefficient {coeff} on {tag}")
        if coeff == 0:
            continue
        atom = atoms.get(abs(tag))
        if atom is None:
            raise SoundnessError(
                f"Farkas premise {tag} is not a theory literal in the certificate"
            )
        if tag > 0:
            sign, bound, strict = 1, atom.bound, atom.strict
        else:
            # not (e <= b) is e > b, i.e. -e < -b; strictness flips
            sign, bound, strict = -1, -atom.bound, not atom.strict
        for name, a in atom.coeffs:
            combo[name] = combo.get(name, Fraction(0)) + coeff * a * sign
        const += coeff * bound
        if strict:
            strict_active = True
    if any(c != 0 for c in combo.values()):
        residue = {n: c for n, c in combo.items() if c != 0}
        raise SoundnessError(
            f"Farkas combination does not cancel: residue {residue}"
        )
    if not (const < 0 or (const == 0 and strict_active)):
        raise SoundnessError(
            f"Farkas combination is not contradictory (constant {const}, "
            f"strict={strict_active})"
        )


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def check_certificate(cert: UnsatCertificate) -> CheckReport:
    """Replay ``cert``; returns a report or raises ``SoundnessError``."""
    recoder = _Recoder(cert)
    db = _ClauseDb(cert.nvars)
    inputs = rups = lemmas = deletions = 0
    for step in cert.steps:
        kind = step[0]
        if kind == "input":
            inputs += 1
            recoder.justify_input(step[1])
            db.add_clause(step[1])
        elif kind in ("derived", "learn"):
            rups += 1
            db.rup_check(step[1])
            db.add_clause(step[1])
        elif kind == "theory":
            lemmas += 1
            _check_farkas(cert.atoms, step[1], step[2])
            db.add_clause(step[1])
        elif kind == "delete":
            deletions += 1
            db.delete(step[1])
        else:
            raise SoundnessError(f"unknown proof step kind {step[0]!r}")
    db.final_conflict(cert.assumptions)
    return CheckReport(
        steps=len(cert.steps),
        inputs=inputs,
        rup_additions=rups,
        theory_lemmas=lemmas,
        deletions=deletions,
        propagations=db.propagations,
    )
