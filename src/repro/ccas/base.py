"""Interface for executable congestion-control algorithms.

The simulator drives CCAs at per-RTT granularity — the granularity the
paper's template uses ("prior work has shown CCAs operating on summary
metrics every RTT to be as good as fine-grained, per-ACK control").
Each RTT tick the CCA observes the cumulative bytes acknowledged and
returns the congestion window for the next RTT.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from fractions import Fraction


class CongestionControl(ABC):
    """A window-based CCA driven once per RTT."""

    #: human-readable algorithm name
    name: str = "cca"

    @abstractmethod
    def initial_cwnd(self) -> Fraction:
        """Window to use before any feedback arrives."""

    @abstractmethod
    def on_rtt(self, now: int, acked: Fraction, rtt_estimate: Fraction) -> Fraction:
        """Observe feedback and return the next congestion window.

        Args:
            now: current tick (units of propagation delay).
            acked: cumulative bytes acknowledged by ``now``.
            rtt_estimate: smoothed RTT in time units (>= 1, the
                propagation delay; larger values indicate queueing).

        Returns:
            The congestion window (bytes) for the next tick.
        """

    def reset(self) -> None:
        """Forget connection state (default: nothing to forget)."""
