"""Delay-based CCAs (Vegas/Copa style) for the simulator baselines.

The paper motivates CCmatic with the fragility of hand-designed
delay-based algorithms — CCAC "found traces where BBR, Copa achieve
arbitrarily low utilization".  These executable models let the examples
and tests show the same failure mode empirically: the waste adversary
injects queueing delay that the algorithms misread as congestion.
"""

from __future__ import annotations

from fractions import Fraction

from .base import CongestionControl


class VegasLike(CongestionControl):
    """TCP-Vegas-style window control.

    Maintains ``diff = cwnd/base_rtt - cwnd/rtt`` (expected minus actual
    rate) and nudges the window to keep ``alpha <= diff <= beta`` — here
    expressed directly on the queue estimate ``cwnd * (1 - 1/rtt)``.
    """

    name = "vegas-like"

    def __init__(
        self,
        alpha: Fraction = Fraction(1, 2),
        beta: Fraction = Fraction(3, 2),
        step: Fraction = Fraction(1, 2),
        min_cwnd: Fraction = Fraction(1, 10),
    ):
        self.alpha = Fraction(alpha)
        self.beta = Fraction(beta)
        self.step = Fraction(step)
        self.min_cwnd = Fraction(min_cwnd)
        self._cwnd = Fraction(1)

    def initial_cwnd(self) -> Fraction:
        return self._cwnd

    def on_rtt(self, now: int, acked: Fraction, rtt_estimate: Fraction) -> Fraction:
        rtt = max(Fraction(rtt_estimate), Fraction(1))
        queued = self._cwnd * (1 - Fraction(1) / rtt)
        if queued < self.alpha:
            self._cwnd += self.step
        elif queued > self.beta:
            self._cwnd = max(self._cwnd - self.step, self.min_cwnd)
        return self._cwnd

    def reset(self) -> None:
        self._cwnd = Fraction(1)


class CopaLike(CongestionControl):
    """Copa-style target-rate control.

    Target rate is ``1 / (delta * queueing_delay)``; the window moves
    toward ``target_rate * rtt``.  Under low measured queueing delay the
    target is large (probe); under adversarial delay it collapses — the
    fragility CCAC exposed.
    """

    name = "copa-like"

    def __init__(
        self,
        delta: Fraction = Fraction(1, 2),
        gain: Fraction = Fraction(1, 2),
        min_cwnd: Fraction = Fraction(1, 10),
        max_cwnd: Fraction = Fraction(64),
    ):
        self.delta = Fraction(delta)
        self.gain = Fraction(gain)
        self.min_cwnd = Fraction(min_cwnd)
        self.max_cwnd = Fraction(max_cwnd)
        self._cwnd = Fraction(1)

    def initial_cwnd(self) -> Fraction:
        return self._cwnd

    def on_rtt(self, now: int, acked: Fraction, rtt_estimate: Fraction) -> Fraction:
        rtt = max(Fraction(rtt_estimate), Fraction(1))
        queuing_delay = rtt - 1  # base RTT is 1 in model units
        if queuing_delay <= 0:
            target_cwnd = self.max_cwnd
        else:
            target_rate = Fraction(1) / (self.delta * queuing_delay)
            target_cwnd = min(target_rate * rtt, self.max_cwnd)
        self._cwnd += self.gain * (target_cwnd - self._cwnd)
        self._cwnd = max(min(self._cwnd, self.max_cwnd), self.min_cwnd)
        # The division by queueing delay feeds the window's denominator
        # back into next tick's delay estimate, so exact rationals grow
        # multiplicatively (bit sizes square per RTT).  Real Copa works
        # with finite-precision measurements; cap the denominator the
        # same way to keep long simulations tractable.
        self._cwnd = self._cwnd.limit_denominator(1 << 24)
        return self._cwnd

    def reset(self) -> None:
        self._cwnd = Fraction(1)
