"""Classic baseline CCAs for the simulator.

The simulated network is lossless with an unbounded buffer (the CCAC
configuration the paper evaluates), so loss-based algorithms are driven by
a delay signal instead: crossing a queueing-delay threshold plays the role
of the congestion event.  This matches how AIMD/Cubic behave behind an
AQM with a delay target and keeps the comparison on the same environment
the formal results use.
"""

from __future__ import annotations

from fractions import Fraction

from .base import CongestionControl


class ConstantCwnd(CongestionControl):
    """Fixed window — the simplest (and provably fragile) policy."""

    name = "constant"

    def __init__(self, cwnd: Fraction):
        self.cwnd = Fraction(cwnd)

    def initial_cwnd(self) -> Fraction:
        return self.cwnd

    def on_rtt(self, now: int, acked: Fraction, rtt_estimate: Fraction) -> Fraction:
        return self.cwnd


class AIMD(CongestionControl):
    """Additive-increase, multiplicative-decrease on a delay signal.

    Increase by ``alpha`` per RTT; on the delay signal (RTT estimate above
    ``delay_threshold``), cut the window by ``beta``.
    """

    name = "aimd"

    def __init__(
        self,
        alpha: Fraction = Fraction(1),
        beta: Fraction = Fraction(1, 2),
        delay_threshold: Fraction = Fraction(2),
        min_cwnd: Fraction = Fraction(1, 10),
    ):
        self.alpha = Fraction(alpha)
        self.beta = Fraction(beta)
        self.delay_threshold = Fraction(delay_threshold)
        self.min_cwnd = Fraction(min_cwnd)
        self._cwnd = Fraction(1)

    def initial_cwnd(self) -> Fraction:
        self._cwnd = Fraction(1)
        return self._cwnd

    def on_rtt(self, now: int, acked: Fraction, rtt_estimate: Fraction) -> Fraction:
        if rtt_estimate > self.delay_threshold:
            self._cwnd = max(self._cwnd * self.beta, self.min_cwnd)
        else:
            self._cwnd += self.alpha
        return self._cwnd

    def reset(self) -> None:
        self._cwnd = Fraction(1)


class CubicLike(CongestionControl):
    """Cubic-shaped window growth with delay-triggered backoff.

    Window grows as ``w_max - c*(k - t_since)**3`` style concave/convex
    probing around the last backoff point ``w_max`` (exact rational
    arithmetic; constants per RFC 8312 scaled to RTT ticks).
    """

    name = "cubic-like"

    def __init__(
        self,
        c: Fraction = Fraction(4, 10),
        beta: Fraction = Fraction(7, 10),
        delay_threshold: Fraction = Fraction(2),
        min_cwnd: Fraction = Fraction(1, 10),
    ):
        self.c = Fraction(c)
        self.beta = Fraction(beta)
        self.delay_threshold = Fraction(delay_threshold)
        self.min_cwnd = Fraction(min_cwnd)
        self._w_max = Fraction(1)
        self._epoch_start = 0
        self._cwnd = Fraction(1)

    def initial_cwnd(self) -> Fraction:
        return self._cwnd

    def _k(self) -> Fraction:
        # K = cbrt(w_max * (1-beta) / c); rational cube-root approximation
        target = self._w_max * (1 - self.beta) / self.c
        k = Fraction(1)
        for _ in range(24):
            k = (2 * k + target / (k * k)) / 3
            k = k.limit_denominator(1 << 16)
        return k

    def on_rtt(self, now: int, acked: Fraction, rtt_estimate: Fraction) -> Fraction:
        if rtt_estimate > self.delay_threshold:
            self._w_max = self._cwnd
            self._cwnd = max(self._cwnd * self.beta, self.min_cwnd)
            self._epoch_start = now
        else:
            t = Fraction(now - self._epoch_start)
            k = self._k()
            self._cwnd = max(self._w_max + self.c * (t - k) ** 3, self.min_cwnd)
        return self._cwnd

    def reset(self) -> None:
        self._w_max = Fraction(1)
        self._cwnd = Fraction(1)
        self._epoch_start = 0
