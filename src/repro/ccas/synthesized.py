"""Bridge from synthesized template rules to executable CCAs.

Any :class:`~repro.core.template.CandidateCCA` found by the synthesizer
can be dropped into the simulator through this adapter, closing the loop
between the formal result and empirical behaviour (the examples run the
rediscovered RoCC rule and its synthesized variants side by side).
"""

from __future__ import annotations

from collections import deque
from fractions import Fraction

from ..core.template import CandidateCCA
from .base import CongestionControl


class TemplateCCA(CongestionControl):
    """Executes a template rule: per RTT, apply

        cwnd(t) = sum_i alpha_i*cwnd(t-i) + beta_i*ack(t-i) + gamma

    with the same cwnd floor the verifier model uses.
    """

    def __init__(self, candidate: CandidateCCA, cwnd_min: Fraction = Fraction(1, 10)):
        self.candidate = candidate
        self.cwnd_min = Fraction(cwnd_min)
        self.name = f"synthesized[{candidate.pretty()}]"
        h = candidate.history
        self._cwnd_hist: deque[Fraction] = deque([self.cwnd_min] * h, maxlen=h)
        self._ack_hist: deque[Fraction] = deque([Fraction(0)] * h, maxlen=h)

    def initial_cwnd(self) -> Fraction:
        return max(self.candidate.gamma, self.cwnd_min)

    def on_rtt(self, now: int, acked: Fraction, rtt_estimate: Fraction) -> Fraction:
        # The window returned here applies to tick now+1, so the freshest
        # observation (acked by `now`) is that tick's ack(t-1): record it
        # before evaluating the rule.  The cwnd history is appended after
        # — the freshest window the rule may read is the current one.
        self._ack_hist.append(Fraction(acked))
        cwnd_hist = list(reversed(self._cwnd_hist))
        ack_hist = list(reversed(self._ack_hist))
        cwnd = self.candidate.next_cwnd(cwnd_hist, ack_hist, self.cwnd_min)
        self._cwnd_hist.append(cwnd)
        return cwnd

    def reset(self) -> None:
        h = self.candidate.history
        self._cwnd_hist = deque([self.cwnd_min] * h, maxlen=h)
        self._ack_hist = deque([Fraction(0)] * h, maxlen=h)
