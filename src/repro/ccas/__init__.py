"""Executable congestion-control algorithms for the simulator."""

from .base import CongestionControl
from .classic import AIMD, ConstantCwnd, CubicLike
from .delay_based import CopaLike, VegasLike
from .rocc import RoCC
from .synthesized import TemplateCCA

__all__ = [
    "AIMD",
    "CongestionControl",
    "ConstantCwnd",
    "CopaLike",
    "CubicLike",
    "RoCC",
    "TemplateCCA",
    "VegasLike",
]
