"""RoCC (robust congestion control) — the rule CCmatic rediscovers.

``cwnd(t) = ack(t-1) - ack(t-3) + increment``: the window is the number of
bytes acknowledged over the last two RTTs plus a small additive probe.
On an ideal constant-rate link it converges to a queue of one BDP plus the
increment (paper §4, citing the rocc_kernel and mvfst Copa2
implementations).
"""

from __future__ import annotations

from collections import deque
from fractions import Fraction

from .base import CongestionControl


class RoCC(CongestionControl):
    """The synthesized/rediscovered RoCC rule as an executable CCA."""

    name = "rocc"

    def __init__(self, increment: Fraction = Fraction(1), window_rtts: int = 2,
                 min_cwnd: Fraction = Fraction(1, 10)):
        self.increment = Fraction(increment)
        self.window_rtts = window_rtts
        self.min_cwnd = Fraction(min_cwnd)
        self._ack_history: deque[Fraction] = deque(maxlen=window_rtts + 1)

    def initial_cwnd(self) -> Fraction:
        return max(self.increment, self.min_cwnd)

    def on_rtt(self, now: int, acked: Fraction, rtt_estimate: Fraction) -> Fraction:
        self._ack_history.append(Fraction(acked))
        oldest = self._ack_history[0]
        cwnd = (acked - oldest) + self.increment
        return max(cwnd, self.min_cwnd)

    def reset(self) -> None:
        self._ack_history.clear()
