"""Perfetto / Chrome ``trace_event`` export of a JSONL trace.

``ccmatic report out.jsonl --perfetto trace.json`` converts the span
records of a ``--trace`` capture into the Trace Event Format that
https://ui.perfetto.dev and ``chrome://tracing`` open directly:

* every span becomes a complete (``"ph": "X"``) event with microsecond
  timestamps, its dotted-name prefix as the category, and its attributes
  under ``args``;
* every point event becomes a thread-scoped instant (``"ph": "i"``);
* records carry one *lane* (``tid``) per worker — the ``worker`` tag the
  telemetry relay stamps on records shipped back from forked workers —
  with the parent process's own records on lane 0, so a ``--jobs N``
  portfolio run renders as N+1 parallel tracks;
* lanes are named via ``thread_name`` metadata events and ordered
  main-first via ``thread_sort_index``.

Timestamps are rebased to the earliest record so the viewer opens at
t=0 instead of the Unix epoch.  Malformed lines are skipped (counted),
matching :func:`repro.obs.report.parse_trace`.
"""

from __future__ import annotations

import json
from typing import Iterable, TextIO, Union

from .report import iter_records

__all__ = ["export_perfetto", "to_perfetto"]

#: lane of records with no worker tag (the parent process itself)
MAIN_LANE = "main"


def _lane_of(rec: dict) -> str:
    attrs = rec.get("attrs")
    if isinstance(attrs, dict):
        worker = attrs.get("worker")
        if worker is not None:
            return str(worker)
    return MAIN_LANE


def to_perfetto(lines: Iterable[str]) -> dict:
    """Build a Trace Event Format dict from JSONL trace lines."""
    spans: list[dict] = []
    instants: list[dict] = []
    lanes: dict[str, int] = {MAIN_LANE: 0}
    base_ts: float | None = None

    def lane_id(rec: dict) -> int:
        lane = _lane_of(rec)
        if lane not in lanes:
            lanes[lane] = len(lanes)
        return lanes[lane]

    records, malformed = [], 0
    for rec in iter_records(lines):
        if rec is None:
            malformed += 1
            continue
        kind = rec.get("type")
        if kind not in ("span", "event"):
            continue
        try:
            ts = float(rec.get("ts", 0.0))
        except (TypeError, ValueError):
            malformed += 1
            continue
        if base_ts is None or ts < base_ts:
            base_ts = ts
        records.append(rec)
    base_ts = base_ts or 0.0

    for rec in records:
        ts_us = (float(rec["ts"]) - base_ts) * 1e6
        name = str(rec.get("name", "?"))
        category = name.split(".", 1)[0]
        attrs = rec.get("attrs")
        args = {
            str(k): v for k, v in attrs.items()
        } if isinstance(attrs, dict) else {}
        if rec.get("type") == "span":
            try:
                dur_us = max(0.0, float(rec.get("dur", 0.0)) * 1e6)
            except (TypeError, ValueError):
                dur_us = 0.0
            spans.append({
                "name": name,
                "cat": category,
                "ph": "X",
                "ts": round(ts_us, 3),
                "dur": round(dur_us, 3),
                "pid": 0,
                "tid": lane_id(rec),
                "args": args,
            })
        else:
            instants.append({
                "name": name,
                "cat": category,
                "ph": "i",
                "s": "t",  # thread-scoped instant
                "ts": round(ts_us, 3),
                "pid": 0,
                "tid": lane_id(rec),
                "args": args,
            })

    meta_events = []
    for lane, tid in sorted(lanes.items(), key=lambda kv: kv[1]):
        meta_events.append({
            "name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
            "args": {"name": lane if lane == MAIN_LANE else f"worker {lane}"},
        })
        meta_events.append({
            "name": "thread_sort_index", "ph": "M", "pid": 0, "tid": tid,
            "args": {"sort_index": tid},
        })
    meta_events.append({
        "name": "process_name", "ph": "M", "pid": 0,
        "args": {"name": "ccmatic"},
    })

    return {
        "traceEvents": meta_events + spans + instants,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.obs.export",
            "lanes": len(lanes),
            "spans": len(spans),
            "instants": len(instants),
            "malformed_lines_skipped": malformed,
        },
    }


def export_perfetto(
    trace: Union[str, TextIO], out_path: str
) -> dict:
    """Convert a JSONL trace file to a Perfetto JSON file.

    Returns the export's ``otherData`` summary (lane/span counts).
    """
    if hasattr(trace, "read"):
        doc = to_perfetto(trace)
    else:
        with open(trace, "r", encoding="utf-8") as f:
            doc = to_perfetto(f)
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(doc, f)
    return doc["otherData"]
