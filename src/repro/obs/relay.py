"""Cross-process telemetry relay: worker spans and metric deltas, merged.

The portfolio and isolation layers fork workers whose tracer records and
metric increments used to die with the child: the parent saw only the
``("ok", result)`` verdict, so ``ccmatic report`` on a ``--jobs N`` run
could not attribute most of the wall clock.  This module closes the gap:

* **Child side** — :func:`start_capture` (called from the worker
  bootstrap) detaches every sink inherited across ``fork`` (see
  :func:`detach_inherited_sinks` — a forked child shares the parent's
  open trace *file description*, so writing or even exit-flushing from
  both interleaves records mid-line), attaches an in-memory
  :class:`BufferSink`, and snapshots the metrics registry.  When the
  task finishes, :meth:`TelemetryCapture.finish` produces one structured
  *telemetry frame*: the buffered span/event records plus the counter
  and histogram *deltas* accrued while the task ran.  The worker ships
  the frame over the existing result pipe as a ``("telemetry", frame)``
  message just before its final status message.

* **Parent side** — :func:`merge_frame` folds a received frame back into
  the parent's tracer and registry: span ids are re-numbered through
  :meth:`~repro.obs.events.Tracer.allocate_ids` (child ids are from a
  forked copy of the parent's counter and would collide), parentage is
  re-anchored under the span that launched the worker, every record is
  tagged with the worker id, and metric deltas are added to the global
  instruments so ``--jobs N`` cost aggregates exactly like in-process
  cost.

Telemetry frames are **advisory**: a malformed frame is dropped with the
``obs.relay.dropped_frames`` counter, never an exception — the relay
must not be able to turn a good verdict into a crashed run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .events import DEBUG, Sink, Tracer, tracer
from .metrics import MetricsRegistry, metrics

__all__ = [
    "FRAME_VERSION",
    "BufferSink",
    "TelemetryCapture",
    "TraceContext",
    "detach_inherited_sinks",
    "merge_frame",
    "reset_child_tracing",
    "start_capture",
]

#: bump when the frame layout changes; a frame with an unknown version
#: is dropped (advisory data, never a hard error)
FRAME_VERSION = 1

#: child-side buffer bound: a runaway worker must not OOM itself (or the
#: pipe) with telemetry; overflow is counted and reported in the frame
MAX_BUFFERED_RECORDS = 20_000


@dataclass(frozen=True)
class TraceContext:
    """What a worker needs to stitch its telemetry into the parent trace."""

    #: the parent tracer's stream id (``Tracer.trace_id``)
    trace_id: str
    #: span id in the parent under which this worker's spans nest
    #: (None when the parent has no open span / tracing is off)
    parent_span: Optional[int] = None
    #: stable lane tag for this worker, e.g. ``"w0"``
    worker_id: str = "w0"

    @classmethod
    def current(cls, worker_id: str = "w0") -> "TraceContext":
        """Context anchored at the calling thread's innermost open span."""
        tr = tracer()
        return cls(
            trace_id=tr.trace_id,
            parent_span=tr.current_span_id(),
            worker_id=worker_id,
        )


class BufferSink(Sink):
    """Collects records in memory (bounded); the child side of the relay."""

    level = DEBUG

    def __init__(self, max_records: int = MAX_BUFFERED_RECORDS):
        self.max_records = max_records
        self.records: list[dict] = []
        self.dropped = 0

    def emit(self, record: dict) -> None:
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append(record)


def detach_inherited_sinks(tr: Optional[Tracer] = None) -> None:
    """Neutralize sinks inherited across ``fork`` in a worker child.

    Two hazards: (1) live writes from the child would interleave with the
    parent's on the same file description; (2) records buffered in the
    file object *before* the fork are duplicated into the child and would
    be flushed again at child interpreter exit.  Removing the sink fixes
    (1); for (2) the underlying fd is re-pointed at ``/dev/null`` with
    ``dup2`` (the parent's own fd-table entry is untouched), so any
    stray flush in the child lands nowhere.
    """
    import os

    tr = tr or tracer()
    for sink in list(tr.sinks):
        tr.remove_sink(sink)
        f = getattr(sink, "_file", None)
        if f is None:
            continue
        try:
            fd = f.fileno()
        except (AttributeError, OSError, ValueError):
            continue  # in-memory file-likes have no fd to leak through
        try:
            devnull = os.open(os.devnull, os.O_WRONLY)
            os.dup2(devnull, fd)
            os.close(devnull)
        except OSError:
            pass


class TelemetryCapture:
    """Child-side recording session producing one telemetry frame."""

    def __init__(
        self,
        ctx: Optional[TraceContext],
        tr: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
        task: Optional[str] = None,
    ):
        self.ctx = ctx or TraceContext(trace_id="", worker_id="w?")
        self.task = task
        self._tracer = tr or tracer()
        self._registry = registry or metrics()
        self._sink = BufferSink()
        self._base = self._registry.snapshot()
        self._tracer.add_sink(self._sink)
        self._finished = False

    def finish(self) -> dict:
        """Detach the buffer and build the frame (idempotent)."""
        if not self._finished:
            self._finished = True
            self._tracer.remove_sink(self._sink)
        import os

        frame = {
            "v": FRAME_VERSION,
            "trace_id": self.ctx.trace_id,
            "worker_id": self.ctx.worker_id,
            "pid": os.getpid(),
            "records": self._sink.records,
            "dropped": self._sink.dropped,
            "metrics": _metric_deltas(self._base, self._registry.snapshot()),
        }
        if self.task is not None:
            frame["task"] = self.task
        return frame


def start_capture(ctx: Optional[TraceContext]) -> TelemetryCapture:
    """Worker-child bootstrap: detach inherited sinks, start buffering."""
    tr = tracer()
    detach_inherited_sinks(tr)
    # the fork duplicated the parent's open-span stack into the child;
    # drop it so the worker's own spans start at depth 0 (the relay
    # re-anchors them under the launching span when it merges the frame)
    try:
        tr._local.stack = []
    except AttributeError:
        pass
    return TelemetryCapture(ctx, tr=tr)


def reset_child_tracing(ctx: Optional[TraceContext] = None) -> None:
    """Pool-worker boot: detach inherited sinks without starting a capture.

    A persistent pool child (see ``runtime.workers._pool_child``) serves
    many tasks and builds one :class:`TelemetryCapture` *per task*;
    arming a 20k-record buffer at boot would only ever collect records
    that belong to no task.  This does the fork-hygiene half of
    :func:`start_capture` — neutralize inherited sinks, drop the
    inherited open-span stack — and nothing else.
    """
    tr = tracer()
    detach_inherited_sinks(tr)
    try:
        tr._local.stack = []
    except AttributeError:
        pass


def _metric_deltas(base: dict, now: dict) -> dict:
    """What the worker added on top of the forked-in parent values."""
    counters = {}
    base_counters = base.get("counters", {})
    for name, value in now.get("counters", {}).items():
        delta = value - base_counters.get(name, 0)
        if delta:
            counters[name] = delta
    histograms = {}
    base_hists = base.get("histograms", {})
    for name, h in now.get("histograms", {}).items():
        b = base_hists.get(name, {})
        count = h.get("count", 0) - b.get("count", 0)
        if count <= 0:
            continue
        # min/max of the delta window are unknowable from two snapshots;
        # the child's end-state extremes are a safe over-approximation
        histograms[name] = {
            "count": count,
            "total": h.get("total", 0.0) - b.get("total", 0.0),
            "min": h.get("min"),
            "max": h.get("max"),
        }
    return {"counters": counters, "histograms": histograms}


# -- parent side --------------------------------------------------------------


def _valid_frame(frame) -> bool:
    return (
        isinstance(frame, dict)
        and frame.get("v") == FRAME_VERSION
        and isinstance(frame.get("records"), list)
        and isinstance(frame.get("metrics"), dict)
        and isinstance(frame.get("worker_id"), str)
    )


def merge_frame(
    frame,
    anchor_span: Optional[int] = None,
    anchor_depth: int = 0,
    tr: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
) -> bool:
    """Fold one worker telemetry frame into the parent's tracer/registry.

    ``anchor_span``/``anchor_depth`` locate the parent-side span that
    owns the worker (its re-emitted root spans become children of it).
    Returns True when the frame was merged; a malformed frame (or one
    that blows up mid-merge) is dropped with the
    ``obs.relay.dropped_frames`` counter and False — never an exception.
    """
    tr = tr or tracer()
    registry = registry or metrics()
    if not _valid_frame(frame):
        registry.counter("obs.relay.dropped_frames").inc()
        return False
    try:
        _merge_metrics(frame["metrics"], registry)
        if tr.enabled and frame["records"]:
            _reemit_records(
                frame["records"], frame["worker_id"], anchor_span,
                anchor_depth, tr, task=frame.get("task"),
            )
        registry.counter("obs.relay.frames").inc()
        if frame.get("dropped"):
            registry.counter("obs.relay.child_dropped_records").inc(
                int(frame["dropped"])
            )
        return True
    except Exception:
        registry.counter("obs.relay.dropped_frames").inc()
        return False


def _merge_metrics(deltas: dict, registry: MetricsRegistry) -> None:
    for name, delta in deltas.get("counters", {}).items():
        registry.counter(str(name)).inc(delta)
    for name, d in deltas.get("histograms", {}).items():
        h = registry.histogram(str(name))
        count = int(d.get("count", 0))
        if count <= 0:
            continue
        h.count += count
        h.total += float(d.get("total", 0.0))
        for bound, better in (("min", min), ("max", max)):
            v = d.get(bound)
            if v is None:
                continue
            cur = getattr(h, bound)
            setattr(h, bound, v if cur is None else better(cur, v))


def _reemit_records(
    records: list,
    worker_id: str,
    anchor_span: Optional[int],
    anchor_depth: int,
    tr: Tracer,
    task: Optional[str] = None,
) -> None:
    """Re-number and re-emit child records through the parent tracer."""
    span_ids = [
        r["id"] for r in records
        if isinstance(r, dict) and r.get("type") == "span" and "id" in r
    ]
    first = tr.allocate_ids(len(span_ids)) if span_ids else 0
    remap = {old: first + i for i, old in enumerate(span_ids)}
    base_depth = anchor_depth + 1 if anchor_span is not None else 0
    for rec in records:
        if not isinstance(rec, dict):
            continue
        rec = dict(rec)
        kind = rec.get("type")
        attrs = rec.get("attrs")
        rec["attrs"] = dict(attrs) if isinstance(attrs, dict) else {}
        rec["attrs"]["worker"] = worker_id
        if task is not None:
            rec["attrs"]["task"] = task
        if kind == "span":
            rec["id"] = remap.get(rec.get("id"), rec.get("id"))
            parent = rec.get("parent")
            rec["parent"] = remap.get(parent, anchor_span)
            rec["depth"] = int(rec.get("depth", 0)) + base_depth
        elif kind == "event":
            rec["span"] = remap.get(rec.get("span"), anchor_span)
        tr._emit(rec)


def drain_telemetry(conn, frames: list) -> None:
    """Best-effort: pull any already-sent telemetry frames off a pipe.

    Used for portfolio losers about to be cancelled — a worker that
    finished just after the winner may have its frame (and unused
    verdict) sitting in the pipe; the frame is kept, the verdict is
    discarded.  Never raises, never blocks.
    """
    try:
        while conn.poll(0):
            msg = conn.recv()
            if isinstance(msg, tuple) and len(msg) == 2 and msg[0] == "telemetry":
                frames.append(msg[1])
    except (EOFError, OSError):
        pass
