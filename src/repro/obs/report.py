"""Turn a JSONL trace back into a per-phase breakdown (``ccmatic report``).

The report aggregates span records by name (count, total, mean), counts
events, and — when the trace contains a ``cegis.done`` event — checks
that the span-derived generator/verifier totals agree with the loop's
own ``CegisStats`` bookkeeping (they measure the same code regions, so
disagreement beyond a few percent indicates instrumentation drift).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Optional, TextIO, Union


@dataclass
class SpanAgg:
    """Aggregate of all spans sharing one name."""

    name: str
    count: int = 0
    total: float = 0.0
    max: float = 0.0
    depth: int = 0  # minimum nesting depth seen (for display indentation)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass
class TraceSummary:
    """Everything the report renderer needs, parsed from one trace."""

    records: int = 0
    spans: dict[str, SpanAgg] = field(default_factory=dict)
    events: dict[str, int] = field(default_factory=dict)
    meta: Optional[dict] = None
    cegis_done: Optional[dict] = None
    metrics: Optional[dict] = None  # last metrics snapshot wins
    malformed: int = 0
    degradations: list[dict] = field(default_factory=list)

    def span_total(self, name: str) -> float:
        agg = self.spans.get(name)
        return agg.total if agg else 0.0


def parse_trace(lines: Iterable[str]) -> TraceSummary:
    """Parse JSONL lines into a :class:`TraceSummary` (tolerates junk lines)."""
    summary = TraceSummary()
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            summary.malformed += 1
            continue
        summary.records += 1
        kind = rec.get("type")
        if kind == "span":
            name = rec.get("name", "?")
            agg = summary.spans.get(name)
            if agg is None:
                agg = summary.spans[name] = SpanAgg(name, depth=rec.get("depth", 0))
            dur = float(rec.get("dur", 0.0))
            agg.count += 1
            agg.total += dur
            agg.max = max(agg.max, dur)
            agg.depth = min(agg.depth, rec.get("depth", 0))
        elif kind == "event":
            name = rec.get("name", "?")
            summary.events[name] = summary.events.get(name, 0) + 1
            if name == "cegis.done":
                summary.cegis_done = rec.get("attrs", {})
            elif name == "runtime.degrade":
                summary.degradations.append(rec.get("attrs", {}))
        elif kind == "metrics":
            summary.metrics = rec.get("snapshot")
        elif kind == "meta":
            summary.meta = rec
    return summary


def load_trace(path_or_file: Union[str, TextIO]) -> TraceSummary:
    """Read and parse a JSONL trace file."""
    if hasattr(path_or_file, "read"):
        return parse_trace(path_or_file)
    with open(path_or_file, "r", encoding="utf-8") as f:
        return parse_trace(f)


def render_report(summary: TraceSummary) -> str:
    """Format a :class:`TraceSummary` as the human-readable report."""
    out: list[str] = []
    if summary.meta is not None:
        argv = summary.meta.get("argv")
        if argv:
            out.append(f"run: {' '.join(str(a) for a in argv)}")
    out.append(
        f"records: {summary.records}"
        + (f" ({summary.malformed} malformed lines skipped)" if summary.malformed else "")
    )

    if summary.spans:
        out.append("")
        out.append(f"{'phase':32s} {'calls':>7s} {'total_s':>10s} {'mean_ms':>10s} {'max_ms':>10s}")
        wall = max((a.total for a in summary.spans.values()), default=0.0)
        for agg in sorted(summary.spans.values(), key=lambda a: (a.depth, -a.total)):
            indent = "  " * agg.depth
            out.append(
                f"{indent + agg.name:32s} {agg.count:7d} {agg.total:10.3f} "
                f"{agg.mean * 1000:10.2f} {agg.max * 1000:10.2f}"
            )
        del wall

    if summary.events:
        out.append("")
        out.append("events:")
        for name, n in sorted(summary.events.items(), key=lambda kv: -kv[1]):
            out.append(f"  {name:30s} {n:7d}")

    done = summary.cegis_done
    if done is not None:
        out.append("")
        out.append(
            "cegis: iterations={} counterexamples={} solutions={} "
            "generator_time={:.3f}s verifier_time={:.3f}s".format(
                done.get("iterations", "?"),
                done.get("counterexamples", "?"),
                done.get("solutions", "?"),
                float(done.get("generator_time", 0.0)),
                float(done.get("verifier_time", 0.0)),
            )
        )
        reason = done.get("stop_reason")
        if reason:
            out.append(
                f"  stop_reason: {reason}"
                + (" (resumed from checkpoint)" if done.get("resumed") else "")
            )
        for phase, key in (("cegis.generate", "generator_time"),
                           ("cegis.verify", "verifier_time")):
            recorded = float(done.get(key, 0.0))
            spanned = summary.span_total(phase)
            if recorded > 0:
                pct = 100.0 * spanned / recorded
                out.append(
                    f"  {phase}: span total {spanned:.3f}s vs recorded "
                    f"{key} {recorded:.3f}s ({pct:.1f}% agreement)"
                )

    if summary.degradations:
        out.append("")
        out.append(f"degradations: {len(summary.degradations)}")
        by_kind: dict[str, int] = {}
        for d in summary.degradations:
            kind = d.get("kind", "?")
            by_kind[kind] = by_kind.get(kind, 0) + 1
        for kind, n in sorted(by_kind.items(), key=lambda kv: -kv[1]):
            out.append(f"  {kind:30s} {n:7d}")

    if summary.metrics:
        out.append("")
        out.append("metrics:")
        for name, value in summary.metrics.get("counters", {}).items():
            out.append(f"  {name:30s} {value}")
        for name, h in summary.metrics.get("histograms", {}).items():
            if h.get("count"):
                out.append(
                    f"  {name:30s} count={h['count']} mean={h['mean']:.6f} "
                    f"max={h['max']:.6f}"
                )
    return "\n".join(out)


def report(path_or_file: Union[str, TextIO]) -> str:
    """Load a trace and render its report (the ``ccmatic report`` body)."""
    return render_report(load_trace(path_or_file))
