"""Turn a JSONL trace back into a per-phase breakdown (``ccmatic report``).

The report aggregates span records by name (count, total, mean), counts
events, and — when the trace contains a ``cegis.done`` event — checks
that the span-derived generator/verifier totals agree with the loop's
own ``CegisStats`` bookkeeping (they measure the same code regions, so
disagreement beyond a few percent indicates instrumentation drift).

Worker telemetry relayed across process boundaries (see
:mod:`repro.obs.relay`) renders as per-worker *lanes*: records tagged
with a ``worker`` attribute are additionally aggregated per lane, so a
``--jobs N`` portfolio run attributes the time spent inside each forked
worker, not just the parent's wait.

Parsing is deliberately forgiving: traces are written line-buffered by
long runs that may be SIGKILLed mid-write (the flight recorder dumps
under exactly such circumstances), so truncated, interleaved, or
otherwise torn lines are *skipped and counted* (``malformed``), never
raised.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, TextIO, Union

#: worker statuses that mean the lane's process was killed
_KILL_STATUSES = ("timeout", "oom", "crash")


@dataclass
class SpanAgg:
    """Aggregate of all spans sharing one name."""

    name: str
    count: int = 0
    total: float = 0.0
    max: float = 0.0
    depth: int = 0  # minimum nesting depth seen (for display indentation)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass
class WorkerLane:
    """Aggregate of all records tagged with one worker id."""

    worker: str
    records: int = 0        # spans+events carrying this worker tag
    runs: int = 0           # completed child executions (worker.run spans)
    busy: float = 0.0       # total seconds inside worker.run spans
    wall: float = 0.0       # parent-side runtime.worker span total
    kills: int = 0          # parent-side worker spans that ended killed


@dataclass
class TraceSummary:
    """Everything the report renderer needs, parsed from one trace."""

    records: int = 0
    spans: dict[str, SpanAgg] = field(default_factory=dict)
    events: dict[str, int] = field(default_factory=dict)
    meta: Optional[dict] = None
    cegis_done: Optional[dict] = None
    metrics: Optional[dict] = None  # last metrics snapshot wins
    malformed: int = 0
    degradations: list[dict] = field(default_factory=list)
    workers: dict[str, WorkerLane] = field(default_factory=dict)
    #: counterexamples per origin environment (``cegis.counterexample``
    #: events carrying an ``environment`` key); untagged events count
    #: under "lossless" once any tagged one is present
    cex_environments: dict[str, int] = field(default_factory=dict)

    def span_total(self, name: str) -> float:
        agg = self.spans.get(name)
        return agg.total if agg else 0.0

    def counter(self, name: str, default: int = 0):
        """Convenience accessor into the metrics snapshot's counters."""
        if not self.metrics:
            return default
        return self.metrics.get("counters", {}).get(name, default)


def iter_records(lines: Iterable[str]) -> Iterator[Optional[dict]]:
    """Yield one parsed record dict per trace line; ``None`` for a line
    that is empty of meaning but malformed (torn/interleaved/non-object
    JSON).  Blank lines are skipped silently.  Shared by the report
    parser and the Perfetto exporter so both tolerate the same damage."""
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            yield None  # truncated or interleaved write
            continue
        if not isinstance(rec, dict):
            yield None  # valid JSON, but not a record
            continue
        yield rec


def _lane(summary: TraceSummary, worker) -> WorkerLane:
    worker = str(worker)
    lane = summary.workers.get(worker)
    if lane is None:
        lane = summary.workers[worker] = WorkerLane(worker)
    return lane


def _aggregate(summary: TraceSummary, rec: dict) -> None:
    """Fold one record into the summary; raises on malformed fields
    (the caller converts that into a malformed-line count)."""
    kind = rec.get("type")
    attrs = rec.get("attrs")
    worker = attrs.get("worker") if isinstance(attrs, dict) else None
    if kind == "span":
        name = rec.get("name", "?")
        agg = summary.spans.get(name)
        if agg is None:
            agg = summary.spans[name] = SpanAgg(name, depth=rec.get("depth", 0))
        dur = float(rec.get("dur", 0.0))
        agg.count += 1
        agg.total += dur
        agg.max = max(agg.max, dur)
        agg.depth = min(agg.depth, int(rec.get("depth", 0)))
        if worker is not None:
            lane = _lane(summary, worker)
            lane.records += 1
            if name == "worker.run":
                lane.runs += 1
                lane.busy += dur
            elif name == "runtime.worker":
                # parent-side lifetime span (isolated verifier attempts)
                lane.wall += dur
                if attrs.get("status") in _KILL_STATUSES:
                    lane.kills += 1
    elif kind == "event":
        name = rec.get("name", "?")
        summary.events[name] = summary.events.get(name, 0) + 1
        if worker is not None:
            _lane(summary, worker).records += 1
        if name == "cegis.done":
            summary.cegis_done = rec.get("attrs", {})
        elif name == "runtime.degrade":
            summary.degradations.append(rec.get("attrs", {}))
        elif name == "cegis.counterexample":
            env = (attrs or {}).get("environment") or "lossless"
            summary.cex_environments[env] = (
                summary.cex_environments.get(env, 0) + 1
            )
    elif kind == "metrics":
        summary.metrics = rec.get("snapshot")
    elif kind == "meta":
        # a flight-recorder dump opens with its own meta header; the
        # run's meta (argv/version) should win for display if both exist
        if summary.meta is None or "argv" in rec:
            summary.meta = rec


def parse_trace(lines: Iterable[str]) -> TraceSummary:
    """Parse JSONL lines into a :class:`TraceSummary`.

    Torn lines — truncated mid-record, two records interleaved onto one
    line, or structurally wrong records (non-object JSON, non-numeric
    durations) — are skipped and counted in ``malformed``; this function
    never raises on damaged input.
    """
    summary = TraceSummary()
    for rec in iter_records(lines):
        if rec is None:
            summary.malformed += 1
            continue
        try:
            _aggregate(summary, rec)
        except (TypeError, ValueError, AttributeError, KeyError):
            summary.malformed += 1
            continue
        summary.records += 1
    return summary


def load_trace(path_or_file: Union[str, TextIO]) -> TraceSummary:
    """Read and parse a JSONL trace file."""
    if hasattr(path_or_file, "read"):
        return parse_trace(path_or_file)
    with open(path_or_file, "r", encoding="utf-8", errors="replace") as f:
        return parse_trace(f)


def render_report(summary: TraceSummary) -> str:
    """Format a :class:`TraceSummary` as the human-readable report."""
    out: list[str] = []
    if summary.meta is not None:
        argv = summary.meta.get("argv")
        if argv:
            out.append(f"run: {' '.join(str(a) for a in argv)}")
        if summary.meta.get("flight_recorder"):
            out.append(
                f"flight recorder dump (reason: "
                f"{summary.meta.get('reason', '?')}; last "
                f"{summary.meta.get('captured', '?')} of "
                f"{summary.meta.get('seen', '?')} records)"
            )
    out.append(
        f"records: {summary.records}"
        + (f" ({summary.malformed} malformed lines skipped)" if summary.malformed else "")
    )

    if summary.spans:
        out.append("")
        out.append(f"{'phase':32s} {'calls':>7s} {'total_s':>10s} {'mean_ms':>10s} {'max_ms':>10s}")
        for agg in sorted(summary.spans.values(), key=lambda a: (a.depth, -a.total)):
            indent = "  " * agg.depth
            out.append(
                f"{indent + agg.name:32s} {agg.count:7d} {agg.total:10.3f} "
                f"{agg.mean * 1000:10.2f} {agg.max * 1000:10.2f}"
            )

    if summary.workers:
        out.append("")
        out.append(
            f"workers ({len(summary.workers)} lanes, relayed telemetry):"
        )
        out.append(
            f"  {'lane':8s} {'runs':>5s} {'busy_s':>9s} {'records':>8s} "
            f"{'kills':>6s}"
        )
        for lane in sorted(summary.workers.values(), key=lambda l: l.worker):
            out.append(
                f"  {lane.worker:8s} {lane.runs:5d} {lane.busy:9.3f} "
                f"{lane.records:8d} {lane.kills:6d}"
            )
        busy = sum(l.busy for l in summary.workers.values())
        verify = summary.span_total("cegis.verify")
        if busy > 0 and verify > 0:
            out.append(
                f"  worker-side busy total {busy:.3f}s inside "
                f"cegis.verify {verify:.3f}s "
                f"({100.0 * min(busy / verify, 9.99):.1f}% parallel occupancy)"
            )

    if summary.events:
        out.append("")
        out.append("events:")
        for name, n in sorted(summary.events.items(), key=lambda kv: -kv[1]):
            out.append(f"  {name:30s} {n:7d}")

    if any(env != "lossless" for env in summary.cex_environments):
        out.append("")
        out.append("counterexamples by environment:")
        for env, n in sorted(
            summary.cex_environments.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            out.append(f"  {env:30s} {n:7d}")

    done = summary.cegis_done
    if done is not None:
        out.append("")
        out.append(
            "cegis: iterations={} counterexamples={} solutions={} "
            "generator_time={:.3f}s verifier_time={:.3f}s".format(
                done.get("iterations", "?"),
                done.get("counterexamples", "?"),
                done.get("solutions", "?"),
                float(done.get("generator_time", 0.0)),
                float(done.get("verifier_time", 0.0)),
            )
        )
        reason = done.get("stop_reason")
        if reason:
            out.append(
                f"  stop_reason: {reason}"
                + (" (resumed from checkpoint)" if done.get("resumed") else "")
            )
        for phase, key in (("cegis.generate", "generator_time"),
                           ("cegis.verify", "verifier_time")):
            recorded = float(done.get(key, 0.0))
            spanned = summary.span_total(phase)
            if recorded > 0:
                pct = 100.0 * spanned / recorded
                out.append(
                    f"  {phase}: span total {spanned:.3f}s vs recorded "
                    f"{key} {recorded:.3f}s ({pct:.1f}% agreement)"
                )
        run_total = summary.span_total("cegis.run")
        attributed = (
            summary.span_total("cegis.generate")
            + summary.span_total("cegis.verify")
        )
        if run_total > 0:
            out.append(
                f"  wall-clock attribution: {attributed:.3f}s of "
                f"{run_total:.3f}s inside generate/verify "
                f"({100.0 * attributed / run_total:.1f}%)"
            )

    cache_counters = {
        name: value
        for name, value in (summary.metrics or {}).get("counters", {}).items()
        if name.startswith("engine.cache.")
    }
    if cache_counters:
        hits = cache_counters.get("engine.cache.hits", 0)
        misses = cache_counters.get("engine.cache.misses", 0)
        lookups = hits + misses
        out.append("")
        out.append("cache:")
        out.append(
            f"  hits={hits} misses={misses} "
            f"disk_hits={cache_counters.get('engine.cache.disk_hits', 0)} "
            f"quarantined={cache_counters.get('engine.cache.quarantined', 0)}"
            + (f" (hit rate {100.0 * hits / lookups:.1f}%)" if lookups else "")
        )
        evictions = cache_counters.get("engine.cache.evictions", 0)
        if evictions:
            out.append(f"  evictions={evictions}")

    proofs = summary.counter("trust.proofs.checked")
    if proofs:
        check = (summary.metrics or {}).get("histograms", {}).get(
            "trust.check_time", {}
        )
        check_s = float(check.get("total", 0.0) or 0.0)
        verify_s = summary.span_total("cegis.verify") or summary.span_total(
            "verifier.find_cex"
        )
        line = (
            f"certify: {proofs} proof(s) independently checked, "
            f"{check_s:.3f}s checking"
        )
        if verify_s > 0:
            line += f" ({100.0 * check_s / verify_s:.1f}% of verify time)"
        out.append("")
        out.append(line)

    relayed = summary.counter("obs.relay.frames")
    dropped = summary.counter("obs.relay.dropped_frames")
    if relayed or dropped:
        out.append("")
        out.append(
            f"telemetry relay: {relayed} frame(s) merged, {dropped} dropped"
        )

    if summary.degradations:
        out.append("")
        out.append(f"degradations: {len(summary.degradations)}")
        by_kind: dict[str, int] = {}
        for d in summary.degradations:
            kind = d.get("kind", "?")
            by_kind[kind] = by_kind.get(kind, 0) + 1
        for kind, n in sorted(by_kind.items(), key=lambda kv: -kv[1]):
            out.append(f"  {kind:30s} {n:7d}")

    if summary.metrics:
        out.append("")
        out.append("metrics:")
        for name, value in summary.metrics.get("counters", {}).items():
            out.append(f"  {name:30s} {value}")
        for name, h in summary.metrics.get("histograms", {}).items():
            if h.get("count"):
                out.append(
                    f"  {name:30s} count={h['count']} mean={h['mean']:.6f} "
                    f"max={h['max']:.6f}"
                )
    return "\n".join(out)


def report(path_or_file: Union[str, TextIO]) -> str:
    """Load a trace and render its report (the ``ccmatic report`` body)."""
    return render_report(load_trace(path_or_file))


def render_cache_stats(cache_dir: str) -> str:
    """Render the persisted counters of a shared cache directory.

    Reads the cheap counter file (plus one directory walk for the true
    byte total) — the ``ccmatic report --cache-dir`` section for a
    service-wide store that many runs have written to.
    """
    # imported here: engine.cache pulls in repro.obs at module load
    from ..engine.cache import QueryCache, read_persisted_stats

    totals = read_persisted_stats(cache_dir)
    usage = QueryCache(cache_dir).disk_usage()
    hits = int(totals.get("hits", 0))
    misses = int(totals.get("misses", 0))
    lookups = hits + misses
    out = [f"cache store: {cache_dir}"]
    out.append(
        f"  hits={hits} misses={misses} "
        f"disk_hits={int(totals.get('disk_hits', 0))} "
        f"stores={int(totals.get('stores', 0))} "
        f"evictions={int(totals.get('evictions', 0))}"
        + (f" (hit rate {100.0 * hits / lookups:.1f}%)" if lookups else "")
    )
    out.append(
        f"  entries={usage['disk_entries']} "
        f"bytes={usage['disk_bytes']}"
    )
    return "\n".join(out)
