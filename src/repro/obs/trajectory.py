"""The committed benchmark trajectory: ``BENCH_*.json`` as history.

The ROADMAP's cross-cutting complaint was that benchmark numbers lived
only in CI artifacts and commit messages, so a perf regression between
PRs was invisible in-repo.  This module makes ``BENCH_engine.json`` an
append-only, git-sha-stamped *history* of ``engine_bench`` runs:

* :func:`append_entry` folds one engine-bench report into the trajectory
  (atomic write; the file is committed, so the trajectory reviews like
  code);
* :func:`regressions` compares a fresh report against a baseline entry
  and flags tracked timings that regressed beyond a threshold — the body
  of ``ccmatic bench-diff`` and the CI ``bench-regression`` gate;
* :func:`is_trajectory` lets writers (``engine_bench --out``) refuse to
  clobber a history file with a single-run report.

Tracked metrics are wall-clock timings (lower is better).  Absolute
seconds are noisy across machines; the trajectory is most meaningful
when consecutive entries come from comparable hardware (CI runners), and
the regression gate's threshold (default 25%) absorbs normal jitter.
"""

from __future__ import annotations

import json
import os
import subprocess
import tempfile
import time
from typing import Optional, Union

__all__ = [
    "TRACKED_TIMINGS",
    "append_entry",
    "current_git_sha",
    "is_trajectory",
    "latest_comparable",
    "load_history",
    "regressions",
    "summarize_report",
]

#: dotted paths into an engine_bench report -> tracked timing (seconds,
#: lower is better); missing paths are skipped so the schema can grow
TRACKED_TIMINGS = (
    "compile.pipeline_s",
    "compile.raw_s",
    "cache.cold_s",
    "cache.warm_s",
    "incremental.incremental_s",
    "proof.certify_s",
    "portfolio.jobs_1.wall_s",
    "portfolio.jobs_4.wall_s",
    "service.pooled_s",
    "service.forked_s",
    "matrix.forked_s",
    "matrix.pooled_s",
    "resilience.serial_s",
    "resilience.concurrent_s",
)

#: guard-rail ratios (higher is better) re-checked by the diff so a
#: speedup silently decaying below its bench gate also fails the diff.
#: resilience.speedup is deliberately absent: its bench gate is
#: hardware-aware (single-core runners legitimately sit below 1.0)
TRACKED_RATIOS = (
    "compile.speedup",
    "cache.speedup",
    "service.speedup",
    "matrix.speedup",
)


def _dig(data: dict, path: str):
    node = data
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node if isinstance(node, (int, float)) else None


def current_git_sha(cwd: Optional[str] = None) -> str:
    """Short sha of HEAD, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def summarize_report(report: dict) -> dict:
    """Extract the tracked scalars from one engine_bench report."""
    metrics = {}
    for path in TRACKED_TIMINGS + TRACKED_RATIOS:
        value = _dig(report, path)
        if value is not None:
            metrics[path] = value
    return {
        "ok": bool(report.get("ok", False)),
        "quick": bool(report.get("quick", False)),
        "metrics": metrics,
    }


def is_trajectory(data: Union[dict, str]) -> bool:
    """Is this parsed JSON (or the file at this path) a trajectory?"""
    if isinstance(data, str):
        try:
            with open(data, "r", encoding="utf-8") as f:
                data = json.load(f)
        except (OSError, ValueError):
            return False
    return isinstance(data, dict) and isinstance(data.get("history"), list)


def load_history(path: str, bench: str = "engine") -> dict:
    """Load a trajectory file; a missing file yields an empty history.

    A legacy single-report file (pre-trajectory ``BENCH_engine.json``)
    is converted in memory to a one-entry history so old baselines keep
    working as diff targets.
    """
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except FileNotFoundError:
        return {"bench": bench, "history": []}
    if is_trajectory(data):
        return data
    if isinstance(data, dict) and "bench" in data:
        entry = summarize_report(data)
        entry.update({"git_sha": "pre-trajectory", "ts": None})
        return {"bench": data.get("bench", bench), "history": [entry]}
    raise ValueError(f"{path!r} is neither a trajectory nor a bench report")


def append_entry(
    path: str,
    report: dict,
    git_sha: Optional[str] = None,
    ts: Optional[float] = None,
    bench: str = "engine",
) -> dict:
    """Append one engine_bench report to the trajectory at ``path``.

    The write is atomic (tmp + rename) so a crashed append can never
    tear the committed history.  Returns the appended entry.
    """
    trajectory = load_history(path, bench=bench)
    entry = summarize_report(report)
    entry["git_sha"] = git_sha or current_git_sha(
        os.path.dirname(os.path.abspath(path)) or None
    )
    entry["ts"] = time.strftime(
        "%Y-%m-%dT%H:%M:%SZ", time.gmtime(ts if ts is not None else time.time())
    )
    trajectory["history"].append(entry)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            json.dump(trajectory, f, indent=2)
            f.write("\n")
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return entry


def latest_comparable(trajectory: dict, quick: Optional[bool]) -> Optional[dict]:
    """The most recent entry matching the run scale (quick/full).

    Falls back to the most recent entry of any scale when no matching
    one exists — a cross-scale diff is noisy but better than no gate.
    """
    history = trajectory.get("history", [])
    if not history:
        return None
    if quick is not None:
        for entry in reversed(history):
            if entry.get("quick") == quick:
                return entry
    return history[-1]


def regressions(
    report: dict,
    baseline_entry: dict,
    max_regress_pct: float = 25.0,
) -> tuple[list[dict], list[dict]]:
    """Compare a fresh report against a baseline trajectory entry.

    Returns ``(failures, rows)``: ``rows`` is every tracked metric
    present on both sides with its delta; ``failures`` the subset that
    breaches the gate — a timing more than ``max_regress_pct`` percent
    slower, a guard-rail ratio that fell below 1.0, or the report's own
    ``ok`` gate false.
    """
    current = summarize_report(report)
    base_metrics = baseline_entry.get("metrics", {})
    rows: list[dict] = []
    failures: list[dict] = []
    for path in TRACKED_TIMINGS:
        base = base_metrics.get(path)
        cur = current["metrics"].get(path)
        if base is None or cur is None or base <= 0:
            continue
        pct = 100.0 * (cur - base) / base
        row = {"metric": path, "baseline": base, "current": cur,
               "delta_pct": pct, "kind": "timing"}
        rows.append(row)
        if pct > max_regress_pct:
            failures.append(row)
    for path in TRACKED_RATIOS:
        cur = current["metrics"].get(path)
        if cur is None:
            continue
        base = base_metrics.get(path)
        row = {"metric": path, "baseline": base, "current": cur,
               "delta_pct": None, "kind": "ratio"}
        rows.append(row)
        if cur < 1.0:
            failures.append(row)
    if not current["ok"]:
        failures.append({
            "metric": "ok", "baseline": True, "current": False,
            "delta_pct": None, "kind": "gate",
        })
    return failures, rows
