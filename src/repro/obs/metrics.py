"""Metrics registry: counters, gauges, histograms, and snapshots.

The registry is a process-global accumulator, deliberately independent
of any single ``Solver`` instance: the CEGIS loop creates a fresh solver
per verifier call, so per-instance statistics alone cannot answer "how
many conflicts did this synthesis run cost in total?".  Instrumented
code records per-call *deltas* here; :meth:`MetricsRegistry.snapshot`
exports everything as plain dicts for JSONL traces and the
``BENCH_*.json`` benchmark trajectories.
"""

from __future__ import annotations

import threading
from typing import Optional, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def inc(self, n: Number = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value


class Histogram:
    """Streaming summary of observed values (count/total/min/max).

    Stores no samples: enough for mean and extremes at zero allocation
    per observation, which is what the per-check timing paths need.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Named metric instruments, created on first use."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter(name))
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(name, Gauge(name))
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.setdefault(name, Histogram(name))
        return h

    def snapshot(self) -> dict:
        """Export all instruments as a JSON-serializable dict."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.as_dict() for n, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Zero every instrument in place (existing handles stay valid)."""
        for c in self._counters.values():
            c.value = 0
        for g in self._gauges.values():
            g.value = 0
        for h in self._histograms.values():
            h.count = 0
            h.total = 0.0
            h.min = None
            h.max = None


_GLOBAL_REGISTRY = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _GLOBAL_REGISTRY
