"""Structured event/tracing layer: nestable spans, events, pluggable sinks.

Usage::

    from repro.obs import tracer, JsonlSink

    tr = tracer()
    tr.add_sink(JsonlSink("out.jsonl"))
    with tr.span("cegis.iteration", iter=3):
        tr.event("cegis.counterexample", candidate="cwnd(t)=1")

Records are flat dicts with a ``type`` discriminator:

* ``{"type": "span", "name", "id", "parent", "depth", "ts", "dur",
  "lvl", "attrs"}`` — emitted when the span *closes* (so a JSONL trace
  is ordered by span end time; ``ts`` is the wall-clock start,
  ``dur`` the perf-counter duration in seconds);
* ``{"type": "event", "name", "span", "ts", "lvl", "msg"?, "attrs"}`` —
  emitted immediately, attributed to the innermost open span;
* ``{"type": "metrics", "ts", "snapshot"}`` — a metrics-registry
  snapshot (see :mod:`repro.obs.metrics`);
* ``{"type": "meta", ...}`` — free-form run metadata (argv, version).

Attribute values must be JSON-serializable; anything else is stringified
by the JSONL sink.  When no sinks are attached, :meth:`Tracer.span`
returns a shared no-op context manager and :meth:`Tracer.event` returns
before touching its arguments, keeping disabled-tracing overhead to one
attribute check per call site.
"""

from __future__ import annotations

import json
import sys
import threading
import time
import uuid
from typing import Optional, TextIO

#: severity levels (a strict subset of the stdlib logging scale)
DEBUG, INFO, WARN = 10, 20, 30

LEVELS = {"debug": DEBUG, "info": INFO, "warn": WARN}


class Sink:
    """Receives every record the tracer emits; filters by ``level``."""

    level: int = DEBUG

    def emit(self, record: dict) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default is a no-op
        pass


class JsonlSink(Sink):
    """Writes one JSON object per line to a file (or file-like object)."""

    def __init__(self, path_or_file, level: int = DEBUG):
        self.level = level
        if hasattr(path_or_file, "write"):
            self._file: TextIO = path_or_file
            self._owns = False
        else:
            self._file = open(path_or_file, "w", encoding="utf-8")
            self._owns = True

    def emit(self, record: dict) -> None:
        if record.get("lvl", INFO) < self.level:
            return
        self._file.write(json.dumps(record, default=str) + "\n")

    def close(self) -> None:
        self._file.flush()
        if self._owns:
            self._file.close()


class ConsoleSink(Sink):
    """Human-readable live renderer (replaces the old ``verbose`` prints).

    Events carrying a ``msg`` are printed verbatim; other events are
    rendered as ``[name] k=v ...``.  Span-close lines (indented by
    nesting depth, with durations) appear only at ``DEBUG``.
    """

    def __init__(self, stream: Optional[TextIO] = None, level: int = INFO):
        self.level = level
        self._stream = stream

    @property
    def stream(self) -> TextIO:
        # resolved lazily so pytest's capsys redirection is honoured
        return self._stream if self._stream is not None else sys.stdout

    def emit(self, record: dict) -> None:
        if record.get("lvl", INFO) < self.level:
            return
        kind = record.get("type")
        if kind == "event":
            msg = record.get("msg")
            if msg is None:
                attrs = record.get("attrs") or {}
                msg = f"[{record['name']}]" + "".join(
                    f" {k}={v}" for k, v in attrs.items()
                )
            print(msg, file=self.stream)
        elif kind == "span" and self.level <= DEBUG:
            indent = "  " * record.get("depth", 0)
            print(
                f"{indent}~ {record['name']} {record['dur'] * 1000:.2f}ms",
                file=self.stream,
            )


class Span:
    """An open span; use as a context manager.  Created by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "depth", "level",
                 "attrs", "ts", "_t0", "dur", "_dur_override")

    def __init__(self, tracer: "Tracer", name: str, level: int, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.level = level
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self.depth = 0
        self.ts = 0.0
        self._t0 = 0.0
        self.dur = 0.0
        self._dur_override: Optional[float] = None

    def set(self, **attrs) -> "Span":
        """Attach attributes discovered while the span is running."""
        self.attrs.update(attrs)
        return self

    def set_duration(self, seconds: float) -> "Span":
        """Record an externally measured duration instead of the span's
        own clock (used when the caller keeps its own accounting and the
        two must agree exactly, e.g. ``CegisStats`` phase times)."""
        self._dur_override = seconds
        return self

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        self.ts = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.dur = (
            self._dur_override
            if self._dur_override is not None
            else time.perf_counter() - self._t0
        )
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._close(self)
        return False


class _NoopSpan:
    """Shared do-nothing span returned when tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs) -> "_NoopSpan":
        return self

    def set_duration(self, seconds: float) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Routes spans and events to the attached sinks.

    ``enabled`` is the fast path every instrumented call site checks:
    with no sinks it is False and span/event calls cost one attribute
    read.  The span stack is thread-local, so concurrent solver threads
    nest their own spans correctly while sharing sinks.
    """

    def __init__(self):
        self._sinks: list[Sink] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        self._next_id = 0
        self.enabled = False
        #: stable identifier of this tracer's stream; carried across
        #: process boundaries by the worker telemetry relay so child
        #: frames can be matched to the run that spawned them
        self.trace_id = uuid.uuid4().hex[:16]

    # -- sink management ------------------------------------------------------

    @property
    def sinks(self) -> tuple[Sink, ...]:
        return tuple(self._sinks)

    def add_sink(self, sink: Sink) -> Sink:
        self._sinks.append(sink)
        self.enabled = True
        return sink

    def remove_sink(self, sink: Sink) -> None:
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass
        self.enabled = bool(self._sinks)

    # -- span / event API -----------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span_id(self) -> Optional[int]:
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def allocate_ids(self, n: int) -> int:
        """Reserve ``n`` consecutive span ids; returns the first.

        Used by the telemetry relay to re-number spans shipped back from
        worker processes without colliding with locally opened spans.
        """
        with self._lock:
            first = self._next_id + 1
            self._next_id += n
        return first

    def span(self, name: str, level: int = INFO, **attrs):
        """Open a nestable span; returns a context manager."""
        if not self.enabled:
            return _NOOP_SPAN
        return Span(self, name, level, attrs)

    def event(self, name: str, level: int = INFO, msg: Optional[str] = None, **attrs) -> None:
        """Emit a point-in-time event attributed to the innermost span."""
        if not self.enabled:
            return
        record = {
            "type": "event",
            "name": name,
            "span": self.current_span_id(),
            "ts": time.time(),
            "lvl": level,
            "attrs": attrs,
        }
        if msg is not None:
            record["msg"] = msg
        self._emit(record)

    def emit_metrics(self, snapshot: dict, level: int = INFO) -> None:
        """Emit a metrics-registry snapshot record."""
        if not self.enabled:
            return
        self._emit({"type": "metrics", "ts": time.time(), "lvl": level,
                    "snapshot": snapshot})

    def meta(self, **fields) -> None:
        """Emit free-form run metadata (argv, version, config...)."""
        if not self.enabled:
            return
        self._emit({"type": "meta", "ts": time.time(), "lvl": INFO, **fields})

    # -- internals ------------------------------------------------------------

    def _open(self, span: Span) -> None:
        with self._lock:
            self._next_id += 1
            span.span_id = self._next_id
        stack = self._stack()
        span.parent_id = stack[-1].span_id if stack else None
        span.depth = len(stack)
        stack.append(span)

    def _close(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # tolerate out-of-order exits
            stack.remove(span)
        self._emit({
            "type": "span",
            "name": span.name,
            "id": span.span_id,
            "parent": span.parent_id,
            "depth": span.depth,
            "ts": span.ts,
            "dur": span.dur,
            "lvl": span.level,
            "attrs": span.attrs,
        })

    def _emit(self, record: dict) -> None:
        for sink in self._sinks:
            sink.emit(record)


_GLOBAL_TRACER = Tracer()


def tracer() -> Tracer:
    """The process-global tracer shared by all instrumented layers."""
    return _GLOBAL_TRACER
