"""Observability: structured tracing, metrics, and trace reports.

The measurement substrate for every performance claim the reproduction
makes (Table 1 iteration counts, the pruning/worst-case-cex ablations,
solver cost attribution).  Three pieces:

* :mod:`repro.obs.events` — nestable spans and point events emitted
  through pluggable sinks (JSONL for machines, a console renderer for
  humans).  A process-global :func:`tracer` is shared by the SMT core,
  the CEGIS loop, and the CLI; with no sinks attached every call
  short-circuits to a no-op, so instrumented code pays (almost) nothing
  when tracing is off.
* :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  histograms with a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
  API.  The SMT solver records per-check *deltas* (conflicts, decisions,
  propagations, simplex pivots) so cost aggregates correctly across many
  short-lived ``Solver`` instances.
* :mod:`repro.obs.report` — parse a JSONL trace back into a per-phase
  time/iteration breakdown (``ccmatic report``).

Capture a trace from the CLI with ``ccmatic synthesize --trace out.jsonl``
and inspect it with ``ccmatic report out.jsonl``.
"""

from .events import (
    DEBUG,
    INFO,
    WARN,
    ConsoleSink,
    JsonlSink,
    Sink,
    Span,
    Tracer,
    tracer,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, metrics

__all__ = [
    "DEBUG",
    "INFO",
    "WARN",
    "ConsoleSink",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "Sink",
    "Span",
    "Tracer",
    "metrics",
    "tracer",
]
