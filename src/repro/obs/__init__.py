"""Observability: structured tracing, metrics, and trace reports.

The measurement substrate for every performance claim the reproduction
makes (Table 1 iteration counts, the pruning/worst-case-cex ablations,
solver cost attribution).  Three pieces:

* :mod:`repro.obs.events` — nestable spans and point events emitted
  through pluggable sinks (JSONL for machines, a console renderer for
  humans).  A process-global :func:`tracer` is shared by the SMT core,
  the CEGIS loop, and the CLI; with no sinks attached every call
  short-circuits to a no-op, so instrumented code pays (almost) nothing
  when tracing is off.
* :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  histograms with a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
  API.  The SMT solver records per-check *deltas* (conflicts, decisions,
  propagations, simplex pivots) so cost aggregates correctly across many
  short-lived ``Solver`` instances.
* :mod:`repro.obs.report` — parse a JSONL trace back into a per-phase
  time/iteration breakdown (``ccmatic report``).
* :mod:`repro.obs.relay` — cross-process telemetry: worker children
  buffer their spans/events/metric deltas and ship them back over the
  result pipe as one advisory frame; the parent merges them under the
  span that launched the worker, tagged with the worker id.
* :mod:`repro.obs.flight` — an always-attachable ring-buffer sink (the
  flight recorder) dumped to ``flightrec-*.jsonl`` on soundness errors,
  exhausted worker escalations, and unhandled CLI crashes.
* :mod:`repro.obs.export` — Perfetto/Chrome ``trace_event`` export of a
  JSONL trace (``ccmatic report --perfetto``), one lane per worker.
* :mod:`repro.obs.trajectory` — the committed ``BENCH_*.json`` history:
  append git-sha-stamped benchmark runs, diff against the last snapshot
  (``ccmatic bench-diff``), gate CI on regressions.

Capture a trace from the CLI with ``ccmatic synthesize --trace out.jsonl``
and inspect it with ``ccmatic report out.jsonl``.
"""

from .events import (
    DEBUG,
    INFO,
    WARN,
    ConsoleSink,
    JsonlSink,
    Sink,
    Span,
    Tracer,
    tracer,
)
from .flight import (
    FlightRecorder,
    dump_flight,
    ensure_flight_recorder,
    flight_recorder,
    set_dump_dir,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, metrics
from .relay import TraceContext, merge_frame

__all__ = [
    "DEBUG",
    "INFO",
    "WARN",
    "ConsoleSink",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "Sink",
    "Span",
    "TraceContext",
    "Tracer",
    "dump_flight",
    "ensure_flight_recorder",
    "flight_recorder",
    "merge_frame",
    "metrics",
    "set_dump_dir",
    "tracer",
]
