"""Always-on flight recorder: the last N trace records, dumped on disaster.

A :class:`FlightRecorder` is a sink holding a bounded ring buffer of
every record the tracer emits — spans, events, metrics snapshots, and
telemetry relayed from workers.  Appending to the ring is the only
steady-state cost; no I/O happens until :meth:`FlightRecorder.dump`.
Because it is a plain sink, attaching it enables the tracer, so
instrumented code keeps emitting even when no ``--trace`` file was
requested: when a run dies, the black box has the final approach.

Dump triggers (wired by the runtime and the CLI):

* a :class:`~repro.runtime.errors.SoundnessError` surfacing from a
  worker or the in-process verifier;
* a worker kill escalation exhausting its retries (OOM/timeout/crash);
* an unhandled CLI crash.

Dumps land in ``<dump_dir>/flightrec-<reason>-<pid>-<seq>.jsonl`` —
``dump_dir`` defaults to the checkpoint directory when the run has one
(set via :func:`set_dump_dir`) — and are ordinary JSONL traces:
``ccmatic report`` parses them like any ``--trace`` output.  Library
use without a configured directory keeps :func:`dump_flight` a no-op,
so embedding code never finds surprise files in its cwd.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Optional

from .events import DEBUG, Sink, tracer

__all__ = [
    "FlightRecorder",
    "dump_flight",
    "ensure_flight_recorder",
    "flight_recorder",
    "set_dump_dir",
]

#: default ring capacity; at the trace's record sizes this is a few MiB
#: resident and covers minutes of a busy synthesis run
DEFAULT_CAPACITY = 8192


class FlightRecorder(Sink):
    """Bounded ring-buffer sink; near-zero cost until :meth:`dump`."""

    level = DEBUG

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.seen = 0          # total records ever emitted through us
        self.dumps: list[str] = []  # paths written so far
        self._seq = 0

    def emit(self, record: dict) -> None:
        self.seen += 1
        self._ring.append(record)

    def snapshot(self) -> list:
        with self._lock:
            return list(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def dump(self, path: Optional[str] = None, reason: str = "manual",
             dump_dir: Optional[str] = None) -> Optional[str]:
        """Write the ring to a JSONL file; returns the path (or None).

        With neither ``path`` nor a dump directory configured this is a
        no-op: the recorder never invents a location.  Write failures
        are swallowed — the flight recorder must not add a second
        failure to whatever emergency triggered the dump.
        """
        if path is None:
            directory = dump_dir if dump_dir is not None else _DUMP_DIR
            if directory is None:
                return None
            with self._lock:
                self._seq += 1
                seq = self._seq
            path = os.path.join(
                directory,
                f"flightrec-{reason}-{os.getpid()}-{seq}.jsonl",
            )
        records = self.snapshot()
        header = {
            "type": "meta",
            "ts": time.time(),
            "lvl": DEBUG,
            "flight_recorder": True,
            "reason": reason,
            "captured": len(records),
            "seen": self.seen,
        }
        try:
            os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(json.dumps(header, default=str) + "\n")
                for rec in records:
                    f.write(json.dumps(rec, default=str) + "\n")
        except (OSError, TypeError, ValueError):
            return None
        self.dumps.append(path)
        return path


# -- process-global recorder ---------------------------------------------------

_RECORDER: Optional[FlightRecorder] = None
_DUMP_DIR: Optional[str] = None


def flight_recorder() -> Optional[FlightRecorder]:
    """The installed recorder, if :func:`ensure_flight_recorder` ran."""
    return _RECORDER


def ensure_flight_recorder(capacity: int = DEFAULT_CAPACITY) -> FlightRecorder:
    """Install (or return) the process-global recorder, attached to the
    global tracer.  Idempotent; re-attaches if something removed it."""
    global _RECORDER
    if _RECORDER is None:
        _RECORDER = FlightRecorder(capacity)
    tr = tracer()
    if _RECORDER not in tr.sinks:
        tr.add_sink(_RECORDER)
    return _RECORDER


def set_dump_dir(path: Optional[str]) -> None:
    """Where automatic dumps land; None disables them (library default)."""
    global _DUMP_DIR
    _DUMP_DIR = path


def dump_flight(reason: str) -> Optional[str]:
    """Dump the global recorder if installed and a dump dir is set."""
    if _RECORDER is None:
        return None
    return _RECORDER.dump(reason=reason)
