"""Link-rate workloads for the simulator.

The formal model handles variable link rates through the jitter term and
induction (paper §3.1.1, citing CCAC); the simulator complements that
with explicit rate patterns so examples and tests can exercise CCAs on
step changes, periodic variation, and random-walk capacity — the
workloads the paper's intro motivates (wired, cellular, satellite).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Iterator, Sequence

RateFn = Callable[[int], Fraction]


def constant_rate(rate: Fraction | int) -> RateFn:
    """Fixed-capacity link."""
    value = Fraction(rate)
    return lambda t: value


def step_rate(before: Fraction | int, after: Fraction | int, at: int) -> RateFn:
    """Capacity change at tick ``at`` (e.g., a route change)."""
    b, a = Fraction(before), Fraction(after)
    return lambda t: b if t < at else a


def periodic_rate(low: Fraction | int, high: Fraction | int, period: int) -> RateFn:
    """Square-wave capacity (e.g., periodic cross traffic)."""
    lo, hi = Fraction(low), Fraction(high)
    half = max(period // 2, 1)
    return lambda t: hi if (t // half) % 2 == 0 else lo


def random_walk_rate(
    base: Fraction | int,
    step: Fraction | int,
    rng: random.Random,
    floor: Fraction | int = Fraction(1, 4),
) -> RateFn:
    """Cellular-style random-walk capacity (precomputed, deterministic
    for a given ``rng``).

    ``rng`` must be an explicit ``random.Random(seed)`` instance: the
    falsifier replays found counterexamples from ``(seed, generation)``
    alone, so workload randomness must never touch the module-global RNG
    (or accept a bare seed that hides which stream is drawn from).
    """
    if not isinstance(rng, random.Random):
        raise TypeError(
            "random_walk_rate requires an explicit random.Random(seed) "
            f"instance, got {type(rng).__name__!r}; global-state "
            "randomness would break counterexample replay"
        )
    base, step, floor = Fraction(base), Fraction(step), Fraction(floor)
    cache: list[Fraction] = [base]

    def rate(t: int) -> Fraction:
        while len(cache) <= t:
            delta = step if rng.random() < 0.5 else -step
            cache.append(max(cache[-1] + delta, floor))
        return cache[t]

    return rate


@dataclass(frozen=True)
class Workload:
    """A named link-rate pattern for benchmarks and examples."""

    name: str
    rate: RateFn
    description: str


def standard_workloads(seed: int = 7) -> list[Workload]:
    """The workload suite used by examples/tests: the environments the
    paper's introduction lists."""
    return [
        Workload("wired", constant_rate(1), "fixed-capacity wired link"),
        Workload(
            "route-change", step_rate(1, Fraction(1, 2), at=60),
            "capacity halves mid-connection",
        ),
        Workload(
            "cross-traffic", periodic_rate(Fraction(1, 2), 1, period=20),
            "periodic competing load",
        ),
        Workload(
            "cellular", random_walk_rate(1, Fraction(1, 8), random.Random(seed)),
            "random-walk capacity",
        ),
    ]
