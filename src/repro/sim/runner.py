"""Drive a CCA against a :class:`~repro.sim.link.JitteryLink`.

Implements the same eager window-limited sender as the formal model:
``A_t = max(A_{t-1}, S_{t-1} + cwnd_t)``.  Produces per-tick series and
summary metrics (utilization, queue percentiles) used by the examples and
the empirical-vs-formal cross-checks in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional

from ..ccas.base import CongestionControl
from .link import AdversaryPolicy, JitteryLink, JitterLike, PolicyLike


@dataclass
class SimResult:
    """Outcome of one simulation run."""

    cca_name: str
    ticks: int
    capacity: Fraction
    A: list[Fraction] = field(default_factory=list)
    S: list[Fraction] = field(default_factory=list)
    W: list[Fraction] = field(default_factory=list)
    cwnd: list[Fraction] = field(default_factory=list)
    # cumulative link capacity per tick (equals capacity*t on fixed links)
    cap_cum: list[Fraction] = field(default_factory=list)

    def utilization(self, warmup: int = 0) -> Fraction:
        """Delivered fraction of available capacity after ``warmup``."""
        span = self.ticks - warmup
        if span <= 0:
            return Fraction(0)
        delivered = self.S[self.ticks] - self.S[warmup]
        if self.cap_cum:
            available = self.cap_cum[self.ticks] - self.cap_cum[warmup]
        else:
            available = self.capacity * span
        if available == 0:
            return Fraction(0)
        return delivered / available

    def queue_series(self) -> list[Fraction]:
        return [a - s for a, s in zip(self.A, self.S)]

    def max_queue(self, warmup: int = 0) -> Fraction:
        return max(self.queue_series()[warmup:])

    def mean_queue(self, warmup: int = 0) -> Fraction:
        qs = self.queue_series()[warmup:]
        return sum(qs, Fraction(0)) / len(qs)


def run_simulation(
    cca: CongestionControl,
    ticks: int = 100,
    capacity: Fraction = Fraction(1),
    jitter: JitterLike = 1,
    policy: PolicyLike = "ideal",
    seed: int = 0,
    initial_queue: Fraction = Fraction(0),
) -> SimResult:
    """Run ``cca`` for ``ticks`` RTTs over a jittery link.

    ``capacity``, ``jitter``, and ``policy`` each accept either a fixed
    value or a per-tick callable (see :mod:`repro.sim.workloads` and
    :mod:`repro.falsify.schedule`)."""
    cca.reset()
    link = JitteryLink(capacity=capacity, jitter=jitter, policy=policy, seed=seed)
    result = SimResult(cca_name=cca.name, ticks=ticks, capacity=link.C)
    A = Fraction(initial_queue)
    link.A_hist[0] = A
    cwnd = cca.initial_cwnd()
    result.A.append(A)
    result.S.append(Fraction(0))
    result.W.append(Fraction(0))
    result.cwnd.append(cwnd)
    S_prev = Fraction(0)
    result.cap_cum.append(Fraction(0))
    for t in range(1, ticks + 1):
        # eager window-limited sender
        A = max(A, S_prev + cwnd)
        state = link.step(A)
        # smoothed RTT proxy: 1 (propagation) + queue-drain time
        queue = state.A - state.S
        rate = link.rate_at(t)
        rtt_estimate = Fraction(1) + (queue / rate if rate > 0 else Fraction(0))
        cwnd = cca.on_rtt(t, state.S, rtt_estimate)
        result.A.append(state.A)
        result.S.append(state.S)
        result.W.append(state.W)
        result.cwnd.append(cwnd)
        result.cap_cum.append(link.capacity_cum(t))
        S_prev = state.S
    return result


def compare_ccas(
    ccas: list[CongestionControl],
    ticks: int = 200,
    policies: Optional[list[AdversaryPolicy]] = None,
    **kwargs,
) -> dict[tuple[str, str], SimResult]:
    """Run a matrix of CCAs x adversary policies; keys are
    ``(cca_name, policy)``."""
    policies = policies or ["ideal", "lazy", "max_waste"]
    out: dict[tuple[str, str], SimResult] = {}
    for cca in ccas:
        for policy in policies:
            out[(cca.name, policy)] = run_simulation(
                cca, ticks=ticks, policy=policy, **kwargs
            )
    return out
