"""Discrete-time network simulator matching the CCAC-lite semantics."""

from .link import AdversaryPolicy, JitteryLink, LinkState
from .runner import SimResult, compare_ccas, run_simulation
from .workloads import (
    Workload,
    constant_rate,
    periodic_rate,
    random_walk_rate,
    standard_workloads,
    step_rate,
)

__all__ = [
    "AdversaryPolicy",
    "JitteryLink",
    "LinkState",
    "SimResult",
    "compare_ccas",
    "run_simulation",
    "Workload",
    "constant_rate",
    "periodic_rate",
    "random_walk_rate",
    "standard_workloads",
    "step_rate",
]
