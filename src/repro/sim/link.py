"""Operational (non-symbolic) counterpart of the CCAC token-bucket link.

The verifier reasons about *all* behaviours the model allows; the
simulator executes *one* behaviour chosen by a concrete adversary policy.
A :class:`JitteryLink` maintains the same state as the model — cumulative
arrivals ``A``, service ``S``, waste ``W`` — and each tick picks values
satisfying exactly the model's constraints:

    S_t <= C*t - W_t                (token bucket)
    S_t >= C*(t-j) - W_{t-j}        (jitter bound)
    S_t <= A_t,  S monotone
    W grows only while the sender is token-limited

Adversary policies:

* ``ideal``    — never waste, deliver greedily (a perfect link);
* ``lazy``     — deliver as late as the jitter bound allows;
* ``max_waste``— waste tokens whenever permitted *and* deliver late
  (the starvation adversary from the formal analysis);
* ``aggregate``— ACK aggregation: hold deliveries at the jitter floor,
  then release everything available in periodic bursts (a common cellular
  and WiFi pathology CCAC models through the same slack);
* ``random``   — mix the above per tick (seeded).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Literal, Union

AdversaryPolicy = Literal["ideal", "lazy", "max_waste", "aggregate", "random"]

#: a link knob that may vary per tick: a fixed value or ``tick -> value``
#: (the falsifier's trace schedules drive policy and jitter this way)
PolicyLike = Union[AdversaryPolicy, Callable[[int], str]]
JitterLike = Union[int, Callable[[int], int]]


@dataclass
class LinkState:
    """Cumulative link counters after a tick."""

    t: int
    A: Fraction
    S: Fraction
    W: Fraction


class JitteryLink:
    """A single bottleneck link with CCAC's non-deterministic slack."""

    def __init__(
        self,
        capacity=Fraction(1),
        jitter: JitterLike = 1,
        policy: PolicyLike = "ideal",
        seed: int = 0,
    ):
        """``capacity`` is either a constant rate or a callable
        ``tick -> rate`` (see :mod:`repro.sim.workloads`); ``jitter``
        and ``policy`` likewise accept per-tick callables so a trace
        schedule (:mod:`repro.falsify.schedule`) can vary them
        mid-connection."""
        if callable(capacity):
            self._rate_fn = capacity
            self.C = Fraction(capacity(0))
        else:
            self.C = Fraction(capacity)
            self._rate_fn = None
        self.jitter = jitter
        self.policy = policy
        self._rng = random.Random(seed)
        self.t = 0
        self.A_hist: list[Fraction] = [Fraction(0)]
        self.S_hist: list[Fraction] = [Fraction(0)]
        self.W_hist: list[Fraction] = [Fraction(0)]
        self._cap_cum: list[Fraction] = [Fraction(0)]

    # ------------------------------------------------------------------

    @property
    def S(self) -> Fraction:
        return self.S_hist[-1]

    @property
    def W(self) -> Fraction:
        return self.W_hist[-1]

    def rate_at(self, t: int) -> Fraction:
        """Instantaneous link rate during tick ``t``."""
        if self._rate_fn is None:
            return self.C
        return Fraction(self._rate_fn(t))

    def jitter_at(self, t: int) -> int:
        """Jitter bound in effect during tick ``t``."""
        if callable(self.jitter):
            return max(0, int(self.jitter(t)))
        return self.jitter

    def policy_at(self, t: int) -> str:
        """Adversary policy in effect during tick ``t`` (pre-``random``
        resolution)."""
        if callable(self.policy):
            return str(self.policy(t))
        return self.policy

    def capacity_cum(self, t: int) -> Fraction:
        """Cumulative capacity through tick ``t`` (generalizes ``C*t``)."""
        while len(self._cap_cum) <= t:
            nxt = len(self._cap_cum)
            self._cap_cum.append(self._cap_cum[-1] + self.rate_at(nxt))
        return self._cap_cum[t]

    def tokens(self) -> Fraction:
        return self.capacity_cum(self.t) - self.W

    #: burst period of the ACK-aggregation adversary (ticks)
    AGGREGATE_PERIOD = 3

    def _pick_policy(self, t: int) -> str:
        policy = self.policy_at(t)
        if policy != "random":
            return policy
        return self._rng.choice(["ideal", "lazy", "max_waste", "aggregate"])

    def step(self, arrivals: Fraction) -> LinkState:
        """Advance one tick with cumulative sender arrivals ``arrivals``."""
        if arrivals < self.A_hist[-1]:
            raise ValueError("cumulative arrivals must be monotone")
        self.t += 1
        t = self.t
        A_t = Fraction(arrivals)
        self.A_hist.append(A_t)
        policy = self._pick_policy(t)

        W_prev = self.W_hist[-1]
        cap_t = self.capacity_cum(t)
        # waste first: allowed only if afterwards A_t <= cap(t) - W_t
        if policy in ("max_waste",):
            W_t = max(W_prev, cap_t - A_t)
        else:
            W_t = W_prev
        # upper bound from the token bucket
        s_max = min(A_t, cap_t - W_t)
        # lower bound from the jitter constraint
        back = t - self.jitter_at(t)
        if back >= t:
            # zero jitter: no slack at all — serve everything the bucket
            # offers this very tick (W_t is not yet in W_hist)
            s_min = cap_t - W_t
        elif back >= 0:
            s_min = self.capacity_cum(back) - self.W_hist[back]
        else:
            s_min = Fraction(0)
        s_min = max(s_min, self.S_hist[-1])
        s_min = min(s_min, s_max)  # cannot be forced above what's available

        if policy == "ideal":
            S_t = s_max
        elif policy in ("lazy", "max_waste"):
            S_t = s_min
        elif policy == "aggregate":
            S_t = s_max if t % self.AGGREGATE_PERIOD == 0 else s_min
        else:  # pragma: no cover - "random" resolved above
            S_t = s_max
        self.S_hist.append(S_t)
        self.W_hist.append(W_t)
        return LinkState(t=t, A=A_t, S=S_t, W=W_t)

    # ------------------------------------------------------------------

    def validate(self) -> list[str]:
        """Check the recorded run against the model constraints (tests)."""
        errors: list[str] = []
        for t in range(1, self.t + 1):
            cap_t = self.capacity_cum(t)
            if self.S_hist[t] < self.S_hist[t - 1]:
                errors.append(f"S not monotone at {t}")
            if self.W_hist[t] < self.W_hist[t - 1]:
                errors.append(f"W not monotone at {t}")
            if self.S_hist[t] > cap_t - self.W_hist[t]:
                errors.append(f"token bucket violated at {t}")
            if self.S_hist[t] > self.A_hist[t]:
                errors.append(f"causality violated at {t}")
            back = t - self.jitter_at(t)
            if back >= 0 and self.S_hist[t] < min(
                self.capacity_cum(back) - self.W_hist[back],
                min(self.A_hist[t], cap_t - self.W_hist[t]),
            ):
                errors.append(f"jitter lower bound violated at {t}")
            if self.W_hist[t] > self.W_hist[t - 1] and self.A_hist[t] > cap_t - self.W_hist[t]:
                errors.append(f"waste condition violated at {t}")
        return errors
