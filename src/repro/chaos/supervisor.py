"""Recovery policies the runtime uses when faults (injected or real) land.

Two primitives:

* :func:`full_jitter_backoff` — the AWS "full jitter" schedule:
  ``uniform(0, min(cap, base * 2**attempt))``.  Retrying workers sleep
  this long so a burst of kills (one bad query fanned out to a
  portfolio) does not stampede back in lockstep.
* :func:`quarantine_file` — move a corrupt artifact (cache entry,
  checkpoint) into a ``quarantine/`` sibling directory instead of
  deleting it, so the evidence survives for post-mortem while the hot
  path never trips over it again.
"""

from __future__ import annotations

import os
import time
from random import Random
from typing import Optional

from ..obs import WARN, metrics, tracer


def full_jitter_backoff(
    base: float, attempt: int, cap: float = 30.0, rng: Optional[Random] = None
) -> float:
    """Sleep duration before retry ``attempt`` (0-based), full jitter."""
    ceiling = min(cap, base * (2 ** attempt))
    if ceiling <= 0:
        return 0.0
    if rng is None:
        rng = Random()
    return rng.uniform(0.0, ceiling)


def quarantine_file(path: str, quarantine_dir: str, reason: str) -> Optional[str]:
    """Move ``path`` into ``quarantine_dir``; returns the new path.

    Best-effort: returns None (and the caller carries on) when the move
    itself fails — a quarantine must never crash the run it protects.
    """
    try:
        os.makedirs(quarantine_dir, exist_ok=True)
        dest = os.path.join(quarantine_dir, os.path.basename(path))
        if os.path.exists(dest):
            dest = f"{dest}.{int(time.time() * 1000)}"
        os.replace(path, dest)
    except OSError:
        return None
    metrics().counter("chaos.quarantined").inc()
    tr = tracer()
    if tr.enabled:
        tr.event(
            "chaos.quarantine",
            level=WARN,
            msg=f"[chaos] quarantined {os.path.basename(path)}: {reason}",
            path=path,
            dest=dest,
            reason=reason,
        )
    return dest
