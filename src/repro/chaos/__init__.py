"""repro.chaos: deterministic fault injection and recovery policies.

The chaos harness answers "does a kill/corruption/ENOSPC at *this*
moment lose work or produce a wrong answer?" with a replayable
experiment: arm a :class:`ChaosConfig` (a seed plus fault specs), run
the normal synthesis entry points, and assert the run still converges
to a correct — in proof mode, *certified* — result.

See ``scripts/chaos_smoke.py`` for the end-to-end smoke and
``tests/chaos/`` for the targeted crash-consistency tests.
"""

from .faults import (
    ENV_VAR,
    NETWORK_KINDS,
    ChaosConfig,
    FaultInjector,
    FaultSpec,
    NetworkFault,
    chaos_point,
    current_injector,
    install,
    maybe_install_from_env,
    uninstall,
)
from .supervisor import full_jitter_backoff, quarantine_file

__all__ = [
    "ENV_VAR",
    "NETWORK_KINDS",
    "ChaosConfig",
    "FaultInjector",
    "FaultSpec",
    "NetworkFault",
    "chaos_point",
    "current_injector",
    "full_jitter_backoff",
    "install",
    "maybe_install_from_env",
    "quarantine_file",
    "uninstall",
]
