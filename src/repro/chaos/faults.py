"""Deterministic seeded fault injection.

A :class:`FaultInjector` is installed process-wide (or propagated to
worker children via the ``REPRO_CHAOS`` environment variable) and fires
at named *injection points* sprinkled through the runtime —
``worker.child``, ``checkpoint.write``, ``cache.read``, ``cache.write``.
When no injector is installed, :func:`chaos_point` is a no-op costing
one global read, so production paths pay nothing.

Determinism: every probabilistic decision draws from one
``random.Random(seed)`` in injection-point call order, so a run with a
fixed seed and a fixed schedule of points replays the same faults.

Fault kinds:

``kill``
    ``SIGKILL`` the current process (simulates the OOM-killer / a power
    cut — no cleanup handlers run).
``oom``
    raise :class:`MemoryError` (simulates an rlimit trip).
``error``
    raise ``RuntimeError`` (an arbitrary in-process crash).
``stall``
    sleep (simulates a wedged solver; watchdogs should fire).
``disk_full``
    raise ``OSError(ENOSPC)``.
``truncate``
    chop the file at the point's ``path`` to half its size (torn write).
``bitflip``
    XOR one byte of the file at ``path`` (silent media corruption).

Network faults (PR 10) are *cooperative*: firing one raises
:class:`NetworkFault`, which the service path catches at its injection
points (``service.accept``, ``service.response``, ``service.stream``)
and turns into the wire-level misbehaviour — the injector cannot reach
into a socket, but the server can:

``conn_reset``
    abort the connection without a response (client sees ECONNRESET).
``slow_write``
    stretch the response out over ``delay`` seconds (client timeouts).
``torn_stream``
    close an NDJSON stream mid-record (a torn line at the client).
``reject_503``
    answer ``503 Service Unavailable`` with a ``Retry-After`` header.
"""

from __future__ import annotations

import errno
import json
import os
import signal
import time
from dataclasses import dataclass, field
from random import Random
from typing import Optional

from ..obs import WARN, metrics, tracer

ENV_VAR = "REPRO_CHAOS"

#: kinds the service path interprets by catching :class:`NetworkFault`
NETWORK_KINDS = ("conn_reset", "slow_write", "torn_stream", "reject_503")

_KINDS = (
    "kill", "oom", "error", "stall", "disk_full", "truncate", "bitflip",
) + NETWORK_KINDS


class NetworkFault(Exception):
    """An injected wire-level fault; the service path catches it at the
    injection point and performs the misbehaviour on the real socket."""

    def __init__(self, kind: str, point: str, delay: float = 0.0):
        self.kind = kind
        self.point = point
        self.delay = delay
        super().__init__(f"chaos: injected {kind} at {point}")


@dataclass(frozen=True)
class FaultSpec:
    """One fault armed at one injection point."""

    point: str                    # injection point name, e.g. "checkpoint.write"
    kind: str                     # one of _KINDS
    probability: float = 1.0      # chance of firing per visit
    count: Optional[int] = None   # max firings; None = every matching visit
    delay: float = 2.0            # stall duration, seconds (kind="stall")

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (not in {_KINDS})")


@dataclass(frozen=True)
class ChaosConfig:
    """A seed plus the armed faults — the whole experiment, serializable."""

    seed: int
    specs: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "specs": [
                    {
                        "point": s.point,
                        "kind": s.kind,
                        "probability": s.probability,
                        "count": s.count,
                        "delay": s.delay,
                    }
                    for s in self.specs
                ],
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "ChaosConfig":
        data = json.loads(text)
        return cls(
            seed=int(data["seed"]),
            specs=tuple(FaultSpec(**spec) for spec in data.get("specs", [])),
        )


class FaultInjector:
    """Fires configured faults at visited injection points."""

    def __init__(self, config: ChaosConfig):
        self.config = config
        self.rng = Random(config.seed)
        self.fired: dict[int, int] = {}  # spec index -> times fired
        self.visits: dict[str, int] = {}

    def fire(self, point: str, **ctx) -> None:
        self.visits[point] = self.visits.get(point, 0) + 1
        for i, spec in enumerate(self.config.specs):
            if spec.point != point:
                continue
            if spec.count is not None and self.fired.get(i, 0) >= spec.count:
                continue
            # always draw, so later decisions don't depend on spent specs
            roll = self.rng.random()
            if roll >= spec.probability:
                continue
            self.fired[i] = self.fired.get(i, 0) + 1
            self._perform(spec, point, ctx)

    def _perform(self, spec: FaultSpec, point: str, ctx: dict) -> None:
        metrics().counter(f"chaos.injected.{spec.kind}").inc()
        tr = tracer()
        if tr.enabled:
            tr.event(
                "chaos.inject",
                level=WARN,
                msg=f"[chaos] injecting {spec.kind} at {point}",
                point=point,
                kind=spec.kind,
            )
        kind = spec.kind
        if kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif kind == "oom":
            raise MemoryError(f"chaos: injected OOM at {point}")
        elif kind == "error":
            raise RuntimeError(f"chaos: injected crash at {point}")
        elif kind == "stall":
            time.sleep(spec.delay)
        elif kind == "disk_full":
            raise OSError(errno.ENOSPC, f"chaos: injected ENOSPC at {point}")
        elif kind in ("truncate", "bitflip"):
            path = ctx.get("path")
            if path:
                _corrupt_file(path, kind, self.rng)
        elif kind in NETWORK_KINDS:
            raise NetworkFault(kind, point, delay=spec.delay)


def _corrupt_file(path: str, kind: str, rng: Random) -> None:
    try:
        size = os.path.getsize(path)
        if size == 0:
            return
        with open(path, "r+b") as f:
            if kind == "truncate":
                f.truncate(size // 2)
            else:
                pos = rng.randrange(size)
                f.seek(pos)
                byte = f.read(1)
                f.seek(pos)
                f.write(bytes([byte[0] ^ 0xFF]))
    except OSError:
        pass  # the fault failed to land; the run proceeds unfaulted


# -- process-wide installation -----------------------------------------------

_injector: Optional[FaultInjector] = None


def install(config: ChaosConfig) -> FaultInjector:
    """Arm ``config`` process-wide; returns the live injector."""
    global _injector
    _injector = FaultInjector(config)
    return _injector


def uninstall() -> None:
    global _injector
    _injector = None


def current_injector() -> Optional[FaultInjector]:
    return _injector


def chaos_point(point: str, **ctx) -> None:
    """Visit a named injection point (no-op unless an injector is armed)."""
    if _injector is not None:
        _injector.fire(point, **ctx)


def maybe_install_from_env() -> Optional[FaultInjector]:
    """Arm the injector from ``REPRO_CHAOS`` (worker-child propagation).

    Forked children inherit the parent's injector; env installation only
    happens when nothing is armed yet, so an in-process ``install`` wins.
    """
    if _injector is not None:
        return _injector
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    try:
        config = ChaosConfig.from_json(raw)
    except (ValueError, KeyError, TypeError):
        return None  # a malformed experiment must never break production
    return install(config)
