"""Min-plus algebra over piecewise-linear curves (network calculus).

CCAC models the network with network calculus (Le Boudec & Thiran); this
module provides the underlying curve algebra: non-decreasing piecewise
linear functions f: R+ -> R+, min-plus convolution/deconvolution, and the
standard arrival/service curve constructors.  The CCAC-lite constraints
are a discretization of the service-curve pair

    beta_lower(t) = C*(t - j) - W,   beta_upper(t) = C*t - W

which the test suite cross-checks against these curves.

Curves are represented by their breakpoints: a sorted list of (x, y)
pairs with a final slope extending the last segment to infinity.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

Rat = Fraction


@dataclass(frozen=True)
class Curve:
    """Non-decreasing piecewise-linear curve.

    ``points`` are breakpoints (x, y) with strictly increasing x starting
    at x=0; the curve is linear between breakpoints and continues with
    ``final_slope`` after the last one.
    """

    points: tuple[tuple[Rat, Rat], ...]
    final_slope: Rat

    def __post_init__(self):
        if not self.points or self.points[0][0] != 0:
            raise ValueError("curve must start at x = 0")
        xs = [p[0] for p in self.points]
        if any(b <= a for a, b in zip(xs, xs[1:])):
            raise ValueError("breakpoint x-coordinates must be increasing")
        ys = [p[1] for p in self.points]
        if any(b < a for a, b in zip(ys, ys[1:])) or self.final_slope < 0:
            raise ValueError("curve must be non-decreasing")

    # ------------------------------------------------------------------

    def __call__(self, x) -> Rat:
        x = Fraction(x)
        if x < 0:
            return Fraction(0)
        pts = self.points
        if x >= pts[-1][0]:
            x0, y0 = pts[-1]
            return y0 + self.final_slope * (x - x0)
        # binary search for the segment
        lo, hi = 0, len(pts) - 1
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if pts[mid][0] <= x:
                lo = mid
            else:
                hi = mid
        (x0, y0), (x1, y1) = pts[lo], pts[hi]
        slope = (y1 - y0) / (x1 - x0)
        return y0 + slope * (x - x0)

    def breakpoints_x(self) -> list[Rat]:
        return [p[0] for p in self.points]

    def sample_xs(self, horizon: Rat) -> list[Rat]:
        xs = [x for x in self.breakpoints_x() if x <= horizon]
        if horizon not in xs:
            xs.append(Fraction(horizon))
        return sorted(set(xs))


def token_bucket(rate, burst) -> Curve:
    """Arrival curve ``gamma_{r,b}(t) = b + r*t`` (t > 0), 0 at t = 0."""
    rate, burst = Fraction(rate), Fraction(burst)
    return Curve(points=((Fraction(0), burst),), final_slope=rate)


def rate_latency(rate, latency) -> Curve:
    """Service curve ``beta_{R,T}(t) = R * max(0, t - T)``."""
    rate, latency = Fraction(rate), Fraction(latency)
    if latency == 0:
        return Curve(points=((Fraction(0), Fraction(0)),), final_slope=rate)
    return Curve(
        points=((Fraction(0), Fraction(0)), (latency, Fraction(0))),
        final_slope=rate,
    )


def constant_rate(rate) -> Curve:
    """Pure rate server ``beta(t) = C*t``."""
    return rate_latency(rate, 0)


def _candidate_xs(f: Curve, g: Curve, horizon: Rat) -> list[Rat]:
    xs = set()
    for x in f.breakpoints_x() + g.breakpoints_x():
        if 0 <= x <= horizon:
            xs.add(Fraction(x))
    xs.add(Fraction(0))
    xs.add(Fraction(horizon))
    return sorted(xs)


def min_plus_convolve(f: Curve, g: Curve, horizon, samples: int = 64) -> list[tuple[Rat, Rat]]:
    """Sampled min-plus convolution ``(f ⊗ g)(t) = inf_s f(t-s) + g(s)``.

    For piecewise-linear convex curves the infimum is attained at a
    breakpoint of either operand, so sampling the breakpoints (plus a
    uniform grid for robustness against non-convex inputs) is exact for
    the curve families used here.
    """
    horizon = Fraction(horizon)
    grid = sorted(
        set(
            _candidate_xs(f, g, horizon)
            + [horizon * i / samples for i in range(samples + 1)]
        )
    )
    out: list[tuple[Rat, Rat]] = []
    for t in grid:
        best = None
        for s in grid:
            if s > t:
                break
            val = f(t - s) + g(s)
            if best is None or val < best:
                best = val
        out.append((t, best if best is not None else Fraction(0)))
    return out


def horizontal_deviation(arrival: Curve, service: Curve, horizon, samples: int = 256) -> Rat:
    """Delay bound ``h(alpha, beta)``: the max horizontal distance —
    smallest d such that ``alpha(t) <= beta(t + d)`` for all t."""
    horizon = Fraction(horizon)
    grid = sorted(
        set(
            _candidate_xs(arrival, service, horizon)
            + [horizon * i / samples for i in range(samples + 1)]
        )
    )
    worst = Fraction(0)
    for t in grid:
        target = arrival(t)
        # find smallest d with service(t + d) >= target by bisection
        lo, hi = Fraction(0), horizon * 2 + 1
        if service(t + hi) < target:
            raise ValueError("service curve never catches up within horizon")
        for _ in range(64):
            mid = (lo + hi) / 2
            if service(t + mid) >= target:
                hi = mid
            else:
                lo = mid
            if hi - lo < Fraction(1, 1 << 24):
                break
        worst = max(worst, hi)
    return worst


def vertical_deviation(arrival: Curve, service: Curve, horizon, samples: int = 256) -> Rat:
    """Backlog bound ``v(alpha, beta) = sup_t alpha(t) - beta(t)``."""
    horizon = Fraction(horizon)
    grid = sorted(
        set(
            _candidate_xs(arrival, service, horizon)
            + [horizon * i / samples for i in range(samples + 1)]
        )
    )
    return max(arrival(t) - service(t) for t in grid)


def delay_bound_rate_latency(rate, burst, service_rate, latency) -> Rat:
    """Closed-form delay bound for token bucket through rate-latency:
    ``d = T + b / R`` (requires r <= R)."""
    rate, burst = Fraction(rate), Fraction(burst)
    service_rate, latency = Fraction(service_rate), Fraction(latency)
    if rate > service_rate:
        raise ValueError("unstable: arrival rate exceeds service rate")
    return latency + burst / service_rate


def backlog_bound_rate_latency(rate, burst, service_rate, latency) -> Rat:
    """Closed-form backlog bound: ``b + r * T`` (requires r <= R)."""
    rate, burst = Fraction(rate), Fraction(burst)
    service_rate, latency = Fraction(service_rate), Fraction(latency)
    if rate > service_rate:
        raise ValueError("unstable: arrival rate exceeds service rate")
    return burst + rate * latency
