"""Connecting the CCAC-lite model to network-calculus service curves.

The model's token-bucket constraints are the discretization of a service
curve pair: with waste ``W`` the link guarantees at least
``C*(t - j) - W`` and at most ``C*t - W`` of cumulative service — i.e. the
link behaves like a rate-latency server ``beta_{C, j}`` whose latency the
adversary controls within the jitter budget.  These helpers compute the
bounds the model's traces must respect; the test suite checks every
verifier-produced counterexample against them.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from .curves import Curve, rate_latency


def service_envelope(capacity, jitter) -> tuple[Curve, Curve]:
    """(lower, upper) service curves of the jittery link (zero waste)."""
    lower = rate_latency(capacity, jitter)
    upper = rate_latency(capacity, 0)
    return lower, upper


def check_service_within_envelope(
    S: Sequence[Fraction],
    W: Sequence[Fraction],
    capacity,
    jitter: int,
) -> list[str]:
    """Verify a cumulative service sequence lies within the waste-adjusted
    envelope; returns human-readable violations (empty = consistent)."""
    C = Fraction(capacity)
    errors: list[str] = []
    for t in range(len(S)):
        upper = C * t - W[t]
        if S[t] > upper:
            errors.append(f"S[{t}]={S[t]} exceeds upper envelope {upper}")
        back = t - jitter
        if back >= 0:
            lower = C * back - W[back]
            if S[t] < min(lower, upper):
                errors.append(f"S[{t}]={S[t]} below lower envelope {lower}")
    return errors


def max_queue_bound(cwnd_max, capacity, jitter) -> Fraction:
    """Worst-case bytes in flight for a window-limited sender:
    the window plus what the jitter can hold back (``C * j``)."""
    return Fraction(cwnd_max) + Fraction(capacity) * jitter


def utilization_lower_bound(cwnd, capacity, jitter) -> Fraction:
    """Long-run utilization guarantee for a *constant* window ``w``:
    the link serves at least ``w`` per ``(w/C + j)`` time, so

        util >= w / (w + C*j)

    (this is why one-BDP windows get 50% with one-RTT jitter — the
    paper's motivation for >= 50% as the starting threshold)."""
    w = Fraction(cwnd)
    C = Fraction(capacity)
    return w / (w + C * jitter)
