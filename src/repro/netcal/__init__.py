"""Network-calculus curve algebra (the theory behind the CCAC model)."""

from .bounds import (
    check_service_within_envelope,
    max_queue_bound,
    service_envelope,
    utilization_lower_bound,
)
from .curves import (
    Curve,
    backlog_bound_rate_latency,
    constant_rate,
    delay_bound_rate_latency,
    horizontal_deviation,
    min_plus_convolve,
    rate_latency,
    token_bucket,
    vertical_deviation,
)

__all__ = [
    "Curve",
    "backlog_bound_rate_latency",
    "check_service_within_envelope",
    "constant_rate",
    "delay_bound_rate_latency",
    "horizontal_deviation",
    "max_queue_bound",
    "min_plus_convolve",
    "rate_latency",
    "service_envelope",
    "token_bucket",
    "utilization_lower_bound",
    "vertical_deviation",
]
