"""Formal analysis of a scheduling heuristic (paper §5, "Scheduling").

The paper's generalization discussion singles out scheduling: heuristics
are specialized per workload, "it is unclear if existing schedulers meet
performance bounds", and work stealing is "a rare exception where we have
practically relevant theoretical guarantees".  This module shows the
CCmatic methodology applied there, using the most classical guarantee of
all — Graham's bound for greedy list scheduling:

    makespan(greedy)  <=  (2 - 1/m) * OPT

We encode the *exact* greedy semantics over symbolic job sizes (each job
goes to a currently-least-loaded machine, adversarial tie-breaking) and
ask the ∃-query "does there exist a workload where greedy exceeds
``rho * LB``", where ``LB = max(max_j p_j, sum_j p_j / m)`` is the
standard lower bound on OPT.  UNSAT proves the bound for all workloads
of that shape; SAT returns a concrete adversarial workload (for
``rho < 2 - 1/m`` the solver rediscovers the classic tight instances).

This is the same ∃/∀ split as CCA synthesis — the scheduling heuristic
is the fixed algorithm, the workload is the adversarial environment —
demonstrating that the framework ports beyond congestion control.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from ..smt import (
    And,
    Bool,
    Implies,
    Not,
    Or,
    Real,
    RealVal,
    Solver,
    Sum,
    Term,
    encode_max,
    exactly_one,
    sat,
)


@dataclass(frozen=True)
class SchedulingConfig:
    """Shape of the workload universe."""

    n_jobs: int = 3
    n_machines: int = 2
    max_job: Fraction = Fraction(4)

    def __post_init__(self):
        if self.n_jobs < 1 or self.n_machines < 1:
            raise ValueError("need at least one job and one machine")

    @property
    def graham_ratio(self) -> Fraction:
        """Graham's guarantee ``2 - 1/m``."""
        return 2 - Fraction(1, self.n_machines)


class GreedySchedulingModel:
    """Symbolic encoding of greedy list scheduling.

    Variables: job sizes ``p_j`` in ``[0, max_job]``, per-step machine
    loads, and one-hot choice booleans ``c[j][i]`` ("job j goes to
    machine i").  The greedy rule is the argmin constraint: a machine may
    be chosen only if its pre-assignment load is minimal (ties broken
    adversarially — the bound must hold for every tie-break).
    """

    def __init__(self, cfg: SchedulingConfig, prefix: str = "sched"):
        self.cfg = cfg
        n, m = cfg.n_jobs, cfg.n_machines
        self.p = [Real(f"{prefix}_p_{j}") for j in range(n)]
        # loads[j][i]: load of machine i before job j is placed
        self.loads = [
            [Real(f"{prefix}_load_{j}_{i}") for i in range(m)] for j in range(n + 1)
        ]
        self.choice = [
            [Bool(f"{prefix}_c_{j}_{i}") for i in range(m)] for j in range(n)
        ]
        self.makespan = Real(f"{prefix}_makespan")
        self.lower_bound = Real(f"{prefix}_lb")

    def constraints(self) -> list[Term]:
        cfg = self.cfg
        n, m = cfg.n_jobs, cfg.n_machines
        cons: list[Term] = []
        for j in range(n):
            cons.append(self.p[j] >= 0)
            cons.append(self.p[j] <= RealVal(cfg.max_job))
        for i in range(m):
            cons.append(self.loads[0][i].eq(0))
        for j in range(n):
            cons.append(exactly_one(self.choice[j]))
            for i in range(m):
                picked = self.choice[j][i]
                # greedy: the chosen machine is a least-loaded one
                for k in range(m):
                    if k != i:
                        cons.append(
                            Implies(picked, self.loads[j][i] <= self.loads[j][k])
                        )
                # load update
                cons.append(
                    Implies(
                        picked,
                        self.loads[j + 1][i].eq(self.loads[j][i] + self.p[j]),
                    )
                )
                cons.append(
                    Implies(
                        Not(picked),
                        self.loads[j + 1][i].eq(self.loads[j][i]),
                    )
                )
        cons.append(encode_max(self.makespan, list(self.loads[n])))
        # LB = max(largest job, average load) — the standard OPT bounds
        average = Sum(self.p) / m
        cons.append(encode_max(self.lower_bound, list(self.p) + [average]))
        return cons


@dataclass
class ScheduleWitness:
    """A concrete workload breaking a claimed ratio."""

    job_sizes: tuple[Fraction, ...]
    assignment: tuple[int, ...]
    makespan: Fraction
    lower_bound: Fraction

    @property
    def ratio(self) -> Fraction:
        return self.makespan / self.lower_bound if self.lower_bound else Fraction(0)


@dataclass
class RatioResult:
    """Outcome of a bound-verification query."""

    rho: Fraction
    verified: bool
    witness: Optional[ScheduleWitness]
    wall_time: float


class SchedulingVerifier:
    """Prove or refute ``makespan <= rho * LB`` over all workloads."""

    def __init__(self, cfg: SchedulingConfig):
        self.cfg = cfg

    def verify_ratio(self, rho: Fraction) -> RatioResult:
        start = time.perf_counter()
        model = GreedySchedulingModel(self.cfg)
        solver = Solver()
        solver.add(*model.constraints())
        # avoid the degenerate all-zero workload where LB = 0
        solver.add(model.lower_bound > 0)
        solver.add(model.makespan > RealVal(Fraction(rho)) * model.lower_bound)
        outcome = solver.check()
        if outcome is not sat:
            return RatioResult(Fraction(rho), True, None, time.perf_counter() - start)
        m = solver.model()
        sizes = tuple(m.value(p) for p in model.p)
        assignment = []
        for j in range(self.cfg.n_jobs):
            for i in range(self.cfg.n_machines):
                if m.value(model.choice[j][i]):
                    assignment.append(i)
                    break
        witness = ScheduleWitness(
            job_sizes=sizes,
            assignment=tuple(assignment),
            makespan=m.value(model.makespan),
            lower_bound=m.value(model.lower_bound),
        )
        return RatioResult(Fraction(rho), False, witness, time.perf_counter() - start)

    def tight_ratio(
        self,
        lo: Fraction = Fraction(1),
        hi: Optional[Fraction] = None,
        precision: Fraction = Fraction(1, 32),
    ) -> Fraction:
        """Smallest provable ratio (to ``precision``) by binary search —
        for small job counts this is *below* Graham's asymptotic bound,
        and the search recovers the exact finite-n constant."""
        hi = hi if hi is not None else self.cfg.graham_ratio
        if not self.verify_ratio(hi).verified:
            raise ValueError(f"upper bracket {hi} is not verified")
        if self.verify_ratio(lo).verified:
            return lo
        while hi - lo > precision:
            mid = (lo + hi) / 2
            if self.verify_ratio(mid).verified:
                hi = mid
            else:
                lo = mid
        return hi
