"""Scheduling-domain demonstration of the framework (paper §5)."""

from .model import (
    GreedySchedulingModel,
    RatioResult,
    ScheduleWitness,
    SchedulingConfig,
    SchedulingVerifier,
)

__all__ = [
    "GreedySchedulingModel",
    "RatioResult",
    "ScheduleWitness",
    "SchedulingConfig",
    "SchedulingVerifier",
]
