"""Interfaces and result types of the generic CEGIS loop (paper Fig. 1).

The loop is domain-agnostic: a *generator* proposes candidates from a
search space and accumulates counterexamples; a *verifier* either certifies
a candidate or produces a counterexample that breaks it.  CCmatic
instantiates these with the CCA template and the CCAC model, but the same
interfaces host the toy domains used in tests and the ABR extension.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Generic, Optional, Protocol, TypeVar

Candidate = TypeVar("Candidate")
Counterexample = TypeVar("Counterexample")


class StopReason(Enum):
    """Why a CEGIS run ended — every exit is one of these, explicitly.

    Before this enum existed, hitting ``max_iterations`` exited the loop
    indistinguishably from a clean finish; callers must never have to
    guess whether an empty solution list is a proof or a timeout.
    """

    #: stopped after finding the requested solution(s)
    SOLUTION = "solution"
    #: the generator proved the (remaining) space has no solutions
    EXHAUSTED = "exhausted"
    #: the time budget ran out (loop deadline or verifier give-up)
    BUDGET = "budget"
    #: the iteration cap was reached without a conclusive answer
    MAX_ITERATIONS = "max_iterations"
    #: the run only terminated because the runtime weakened the search
    #: (see :mod:`repro.runtime.degrade`); the verdict is honest but
    #: produced under recorded degradations
    DEGRADED = "degraded"


class PruningMode(Enum):
    """How much each counterexample eliminates (paper §3.1.2).

    EXACT:  the baseline — a counterexample eliminates only candidates
            that reproduce the trace's exact behaviour.
    RANGE:  range pruning — a counterexample eliminates every candidate
            whose behaviour falls in the interval of behaviours the trace
            is consistent with.
    """

    EXACT = "exact"
    RANGE = "range"


class Generator(Protocol[Candidate, Counterexample]):
    """The ∃-player: proposes candidates consistent with all
    counterexamples seen so far.

    These protocols (and :class:`Verifier`/:class:`BatchGenerator`/
    :class:`BatchVerifier` below) are the single source of truth for the
    generator/verifier contract; implementations and drivers
    (:mod:`repro.core.synthesizer`, :mod:`repro.engine`) type against
    them rather than re-declaring their own signatures.
    """

    def propose(self) -> Optional[Candidate]:
        """Next candidate, or None when the space is exhausted (the query
        has no solution beyond the ones already blocked)."""
        ...

    def add_counterexample(self, cex: Counterexample) -> None:
        """Record that ``cex`` breaks some candidates; future proposals
        must satisfy the specification on it."""
        ...

    def block(self, candidate: Candidate) -> None:
        """Exclude one specific candidate (used to enumerate all
        solutions)."""
        ...


class BatchGenerator(Generator[Candidate, Counterexample], Protocol):
    """A generator that can propose several *distinct* candidates at
    once (for portfolio verification)."""

    def propose_batch(self, k: int) -> list[Candidate]:
        """Up to ``k`` distinct candidates, all consistent with every
        counterexample seen so far.  An empty list means the space is
        exhausted.  Proposing a batch must not permanently block any of
        the returned candidates — only :meth:`Generator.block` does
        that."""
        ...


class Verifier(Protocol[Candidate, Counterexample]):
    """The ∀-player: certifies candidates or breaks them."""

    def find_counterexample(self, candidate: Candidate, worst_case: bool = False):
        """Returns an object with ``verified: bool`` and
        ``counterexample: Optional[Counterexample]``.

        Verifiers may additionally accept a ``deadline`` keyword (a
        ``time.perf_counter()`` timestamp); the CEGIS loop passes the
        remaining time budget through it so one long verifier call
        cannot overshoot :attr:`CegisOptions.time_budget`.  A verifier
        that gives up on the budget must return ``verified=False`` with
        ``counterexample=None`` (ideally also ``unknown=True``)."""
        ...


@dataclass
class BatchVerdict(Generic[Candidate]):
    """Outcome of one portfolio verification round.

    ``winner`` indexes into the submitted batch; ``result`` is the
    winner's verification result (or a degraded unknown when no worker
    was conclusive).  Candidates other than the winner were cancelled
    mid-check and remain un-judged.
    """

    #: batch index of the first conclusive worker (None: none were)
    winner: Optional[int]
    #: the winning result (``verified``/``counterexample`` shaped)
    result: object
    #: number of workers launched this round
    launched: int = 0
    #: number of workers cancelled after the winner finished
    cancelled: int = 0


class BatchVerifier(Verifier[Candidate, Counterexample], Protocol):
    """A verifier that can race a batch of candidates concurrently."""

    def verify_batch(
        self, candidates: list, worst_case: bool = False, deadline=None
    ) -> BatchVerdict:
        """Evaluate ``candidates`` concurrently; first conclusive
        verdict (counterexample found, or candidate verified) wins and
        the remaining checks are cancelled."""
        ...


class CegisCheckpoint(Protocol):
    """Duck-typed checkpoint store the loop saves to / resumes from.

    The loop stays domain-agnostic: candidates and counterexamples are
    handed to the store as-is, and the store owns serialization (see
    :class:`repro.runtime.checkpoint.CheckpointStore` for the atomic
    JSON implementation with fingerprint verification).
    """

    def load(self):
        """Previously saved state or None.  The returned object carries
        ``stats`` (dict of counter fields), ``solutions``,
        ``counterexamples``, ``blocked`` (decoded lists, in insertion
        order) and ``stop_reason`` (None while the run was still in
        flight)."""
        ...

    def save(self, *, stats, solutions, counterexamples, blocked,
             stop_reason: Optional[str] = None) -> None:
        """Persist the loop state atomically (called once per iteration
        and once more with the final ``stop_reason``)."""
        ...


@dataclass
class CegisOptions:
    """Knobs of one CEGIS run.

    ``verbose`` is a sink configuration: it attaches a
    :class:`repro.obs.ConsoleSink` to the global tracer for the duration
    of the run (unless one is already attached), rendering the loop's
    solution/counterexample events as the familiar ``[cegis] iter N:``
    lines.  ``time_budget`` is enforced as a deadline threaded into the
    verifier, not just a top-of-loop check.
    """

    worst_case_cex: bool = False
    find_all: bool = False
    max_iterations: int = 100_000
    max_solutions: Optional[int] = None
    time_budget: Optional[float] = None
    verbose: bool = False
    #: portfolio width: >1 enables batched propose + parallel verify
    #: rounds when the generator/verifier support it (see
    #: :class:`BatchGenerator` / :class:`BatchVerifier`)
    jobs: int = 1


@dataclass
class CegisStats:
    """Bookkeeping the paper's Table 1 reports (# Itr, time)."""

    iterations: int = 0
    counterexamples: int = 0
    generator_time: float = 0.0
    verifier_time: float = 0.0
    verifier_calls: int = 0
    #: portfolio checks cancelled after a round's winner finished
    cancelled_checks: int = 0
    #: verified verdicts whose UNSAT proof was independently checked
    #: (see :mod:`repro.trust`; nonzero only under ``certify`` runs)
    certified_verdicts: int = 0
    #: adversarial falsification evaluations spent hunting the solutions
    #: (see :mod:`repro.falsify`; nonzero only under ``--falsify`` runs)
    falsification_attempts: int = 0
    #: solutions that survived their falsification budget
    falsification_survivals: int = 0

    @property
    def total_time(self) -> float:
        return self.generator_time + self.verifier_time


@dataclass
class CegisOutcome(Generic[Candidate]):
    """Result of a CEGIS run."""

    solutions: list = field(default_factory=list)
    stats: CegisStats = field(default_factory=CegisStats)
    exhausted: bool = False  # generator proved no further solutions exist
    timed_out: bool = False
    #: why the run ended (always set by CegisLoop.run)
    stop_reason: Optional[StopReason] = None
    #: whether the run was restored from a checkpoint
    resumed: bool = False

    @property
    def found(self) -> bool:
        return bool(self.solutions)

    @property
    def first(self):
        return self.solutions[0] if self.solutions else None
