"""Counterexample-guided inductive synthesis, generic over the domain."""

from .interfaces import (
    CegisOptions,
    CegisOutcome,
    CegisStats,
    Generator,
    PruningMode,
    Verifier,
)
from .loop import CegisLoop

__all__ = [
    "CegisLoop",
    "CegisOptions",
    "CegisOutcome",
    "CegisStats",
    "Generator",
    "PruningMode",
    "Verifier",
]
