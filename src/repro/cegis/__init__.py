"""Counterexample-guided inductive synthesis, generic over the domain."""

from .interfaces import (
    BatchGenerator,
    BatchVerdict,
    BatchVerifier,
    CegisCheckpoint,
    CegisOptions,
    CegisOutcome,
    CegisStats,
    Generator,
    PruningMode,
    StopReason,
    Verifier,
)
from .loop import CegisLoop

__all__ = [
    "BatchGenerator",
    "BatchVerdict",
    "BatchVerifier",
    "CegisCheckpoint",
    "CegisLoop",
    "CegisOptions",
    "CegisOutcome",
    "CegisStats",
    "Generator",
    "PruningMode",
    "StopReason",
    "Verifier",
]
