"""Counterexample-guided inductive synthesis, generic over the domain."""

from .interfaces import (
    CegisCheckpoint,
    CegisOptions,
    CegisOutcome,
    CegisStats,
    Generator,
    PruningMode,
    StopReason,
    Verifier,
)
from .loop import CegisLoop

__all__ = [
    "CegisCheckpoint",
    "CegisLoop",
    "CegisOptions",
    "CegisOutcome",
    "CegisStats",
    "Generator",
    "PruningMode",
    "StopReason",
    "Verifier",
]
