"""The CEGIS loop itself (paper Fig. 1).

    generator proposes A*  ->  verifier searches for trace breaking A*
        counterexample found -> add to X, iterate
        none found           -> A* is a solution (provably correct)
        generator UNSAT      -> no solution exists in the search space

Terminating after the first solution reproduces Table 1; ``find_all``
keeps blocking found solutions until the generator is exhausted, which
reproduces the paper's solution-space exploration ("We ask CCmatic to
produce all possible solutions, implying that there are no other
solutions in our search space").

Every run is traced through :mod:`repro.obs`: per-iteration
``cegis.generate``/``cegis.verify`` spans, ``cegis.propose`` /
``cegis.counterexample`` / ``cegis.solution`` events, and a final
``cegis.done`` event carrying the :class:`CegisStats` totals and the
explicit :class:`StopReason`.  ``CegisOptions.verbose`` is sugar for
attaching a console sink for the duration of the run.

``CegisOptions.time_budget`` is enforced as a *deadline*: besides the
top-of-loop check, the remaining budget is threaded into verifiers that
accept a ``deadline`` keyword (``time.perf_counter()`` timestamp), so a
single long verifier call can no longer overshoot the budget unboundedly.
A run stopped this way records an explicit ``cegis.budget_exhausted``
event.

**Crash safety.** When constructed with a ``checkpoint`` (any object with
the :class:`~repro.cegis.interfaces.CegisCheckpoint` shape), the loop
persists its full state — counterexamples, blocked candidates, solutions,
stat counters — after every iteration and restores it on the next run:
replayed counterexamples rebuild the generator deterministically, so a
run SIGKILL'd mid-iteration continues exactly where the last atomic save
left it.  A resumed run gets a fresh wall-clock budget (the elapsed time
of the dead process is gone with it); iteration counts continue from the
restored value.
"""

from __future__ import annotations

import inspect
import time
from typing import Optional

from ..obs import DEBUG, ConsoleSink, tracer
from .interfaces import (
    CegisCheckpoint,
    CegisOptions,
    CegisOutcome,
    CegisStats,
    Generator,
    StopReason,
    Verifier,
)


def _accepts_deadline(verifier: Verifier) -> bool:
    """Whether ``verifier.find_counterexample`` takes a ``deadline`` kwarg."""
    try:
        sig = inspect.signature(verifier.find_counterexample)
    except (TypeError, ValueError):  # builtins / C callables
        return False
    params = sig.parameters
    return "deadline" in params or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    )


class CegisLoop:
    """Drives one synthesis query to completion."""

    def __init__(
        self,
        generator: Generator,
        verifier: Verifier,
        options: Optional[CegisOptions] = None,
        checkpoint: Optional[CegisCheckpoint] = None,
    ):
        self.generator = generator
        self.verifier = verifier
        self.options = options or CegisOptions()
        self.checkpoint = checkpoint
        self._verifier_takes_deadline = _accepts_deadline(verifier)
        # portfolio rounds need batch support on BOTH sides (see
        # BatchGenerator / BatchVerifier in .interfaces); otherwise a
        # jobs>1 request silently falls back to sequential rounds
        self._batched = (
            self.options.jobs > 1
            and hasattr(generator, "propose_batch")
            and hasattr(verifier, "verify_batch")
        )
        # full histories, tracked only when checkpointing
        self._cex_log: list = []
        self._blocked_log: list = []

    def run(self) -> CegisOutcome:
        tr = tracer()
        console = None
        if self.options.verbose and not any(
            isinstance(s, ConsoleSink) for s in tr.sinks
        ):
            console = tr.add_sink(ConsoleSink())
        try:
            with tr.span("cegis.run", worst_case=self.options.worst_case_cex,
                         find_all=self.options.find_all):
                return self._run(tr)
        finally:
            if console is not None:
                tr.remove_sink(console)

    def _run(self, tr) -> CegisOutcome:
        opts = self.options
        outcome: CegisOutcome = CegisOutcome()
        stats = outcome.stats
        restored = self._restore(tr, outcome)
        if restored is not None and restored.stop_reason is not None:
            # resuming an already-finished run is idempotent: report the
            # recorded verdict instead of searching past it
            outcome.stop_reason = StopReason(restored.stop_reason)
            outcome.exhausted = outcome.stop_reason is StopReason.EXHAUSTED
            outcome.timed_out = outcome.stop_reason in (
                StopReason.BUDGET, StopReason.DEGRADED
            )
            self._done(tr, outcome)
            return outcome
        start = time.perf_counter()
        deadline = None if opts.time_budget is None else start + opts.time_budget
        while stats.iterations < opts.max_iterations:
            if deadline is not None and time.perf_counter() > deadline:
                self._budget_exhausted(tr, outcome, where="loop")
                break
            stats.iterations += 1

            batch_size = self.options.jobs if self._batched else 1
            with tr.span("cegis.generate", level=DEBUG, iter=stats.iterations) as span:
                t0 = time.perf_counter()
                if batch_size > 1:
                    candidates = list(self.generator.propose_batch(batch_size))
                else:
                    candidate = self.generator.propose()
                    candidates = [] if candidate is None else [candidate]
                dt = time.perf_counter() - t0
                span.set_duration(dt)
            stats.generator_time += dt
            if not candidates:
                outcome.exhausted = True
                outcome.stop_reason = StopReason.EXHAUSTED
                tr.event("cegis.exhausted", iter=stats.iterations)
                break
            for c in candidates:
                tr.event("cegis.propose", level=DEBUG, iter=stats.iterations,
                         candidate=str(c))

            with tr.span("cegis.verify", level=DEBUG, iter=stats.iterations,
                         batch=len(candidates)) as span:
                t0 = time.perf_counter()
                candidate, result = self._verify(candidates, deadline, stats)
                dt = time.perf_counter() - t0
                span.set_duration(dt)
            stats.verifier_time += dt

            if result.verified:
                outcome.solutions.append(candidate)
                if getattr(result, "certified", False):
                    stats.certified_verdicts += 1
                tr.event(
                    "cegis.solution",
                    iter=stats.iterations,
                    candidate=str(candidate),
                    msg=f"[cegis] iter {stats.iterations}: solution {candidate}",
                )
                if not opts.find_all:
                    outcome.stop_reason = StopReason.SOLUTION
                    break
                if opts.max_solutions is not None and len(outcome.solutions) >= opts.max_solutions:
                    outcome.stop_reason = StopReason.SOLUTION
                    break
                self.generator.block(candidate)
                if self.checkpoint is not None:
                    self._blocked_log.append(candidate)
            else:
                cex = result.counterexample
                if cex is None:
                    # verifier gave up (conflict or wall-clock budget);
                    # a degraded result means the runtime weakened the
                    # search to get here — report that, not "budget"
                    degraded = bool(getattr(result, "degraded", False))
                    self._budget_exhausted(
                        tr, outcome, where="verifier",
                        reason=StopReason.DEGRADED if degraded else StopReason.BUDGET,
                    )
                    break
                stats.counterexamples += 1
                env = getattr(result, "environment", None) or getattr(
                    cex, "environment", None
                )
                env_key = env.key() if env is not None else None
                tr.event(
                    "cegis.counterexample",
                    iter=stats.iterations,
                    candidate=str(candidate),
                    environment=env_key,
                    msg=(
                        f"[cegis] iter {stats.iterations}: counterexample "
                        f"for {candidate}"
                        + (f" [{env_key}]" if env_key else "")
                    ),
                )
                self.generator.add_counterexample(cex)
                if self.checkpoint is not None:
                    self._cex_log.append(cex)
            self._save(outcome)
        if outcome.stop_reason is None:
            outcome.stop_reason = StopReason.MAX_ITERATIONS
        self._save(outcome, final=True)
        self._done(tr, outcome)
        return outcome

    def _verify(self, candidates, deadline, stats):
        """One verification round: portfolio race when batched, a single
        ``find_counterexample`` call otherwise.

        Returns ``(candidate, result)`` where ``candidate`` is the one
        the result judges.  In a batched round the losers were cancelled
        and stay un-judged — they remain proposable by the generator.
        """
        if self._batched:
            verdict = self.verifier.verify_batch(
                candidates,
                worst_case=self.options.worst_case_cex,
                deadline=deadline,
            )
            stats.verifier_calls += max(verdict.launched, 1)
            stats.cancelled_checks += verdict.cancelled
            idx = 0 if verdict.winner is None else verdict.winner
            return candidates[idx], verdict.result
        kwargs = {}
        if self._verifier_takes_deadline and deadline is not None:
            kwargs["deadline"] = deadline
        candidate = candidates[0]
        result = self.verifier.find_counterexample(
            candidate, worst_case=self.options.worst_case_cex, **kwargs
        )
        stats.verifier_calls += 1
        return candidate, result

    # -- checkpointing --------------------------------------------------------

    def _restore(self, tr, outcome: CegisOutcome):
        """Replay checkpointed state into the generator; returns the state
        (or None when starting fresh)."""
        if self.checkpoint is None:
            return None
        state = self.checkpoint.load()  # fingerprint-verified by the store
        if state is None:
            return None
        for cex in state.counterexamples:
            self.generator.add_counterexample(cex)
        for candidate in state.blocked:
            self.generator.block(candidate)
        self._cex_log = list(state.counterexamples)
        self._blocked_log = list(state.blocked)
        outcome.solutions = list(state.solutions)
        outcome.resumed = True
        stats = outcome.stats
        st = state.stats
        stats.iterations = int(st.get("iterations", 0))
        stats.counterexamples = int(st.get("counterexamples", 0))
        stats.generator_time = float(st.get("generator_time", 0.0))
        stats.verifier_time = float(st.get("verifier_time", 0.0))
        stats.verifier_calls = int(st.get("verifier_calls", 0))
        stats.cancelled_checks = int(st.get("cancelled_checks", 0))
        stats.certified_verdicts = int(st.get("certified_verdicts", 0))
        tr.event(
            "cegis.resume",
            iterations=stats.iterations,
            counterexamples=len(state.counterexamples),
            blocked=len(state.blocked),
            solutions=len(outcome.solutions),
            complete=state.stop_reason is not None,
            msg=(
                f"[cegis] resumed from checkpoint: iter {stats.iterations}, "
                f"{len(state.counterexamples)} counterexamples, "
                f"{len(outcome.solutions)} solutions"
            ),
        )
        return state

    def _save(self, outcome: CegisOutcome, final: bool = False) -> None:
        if self.checkpoint is None:
            return
        reason = outcome.stop_reason
        self.checkpoint.save(
            stats=outcome.stats,
            solutions=list(outcome.solutions),
            counterexamples=list(self._cex_log),
            blocked=list(self._blocked_log),
            stop_reason=reason.value if (final and reason is not None) else None,
        )

    # -- termination ----------------------------------------------------------

    @staticmethod
    def _done(tr, outcome: CegisOutcome) -> None:
        stats = outcome.stats
        tr.event(
            "cegis.done",
            iterations=stats.iterations,
            counterexamples=stats.counterexamples,
            solutions=len(outcome.solutions),
            generator_time=stats.generator_time,
            verifier_time=stats.verifier_time,
            exhausted=outcome.exhausted,
            timed_out=outcome.timed_out,
            stop_reason=outcome.stop_reason.value if outcome.stop_reason else None,
            resumed=outcome.resumed,
        )

    @staticmethod
    def _budget_exhausted(
        tr,
        outcome: CegisOutcome,
        where: str,
        reason: StopReason = StopReason.BUDGET,
    ) -> None:
        outcome.timed_out = True
        outcome.stop_reason = reason
        stats: CegisStats = outcome.stats
        tr.event(
            "cegis.budget_exhausted",
            iter=stats.iterations,
            where=where,
            stop_reason=reason.value,
            msg=f"[cegis] iter {stats.iterations}: time budget exhausted ({where})",
        )
