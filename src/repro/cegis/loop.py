"""The CEGIS loop itself (paper Fig. 1).

    generator proposes A*  ->  verifier searches for trace breaking A*
        counterexample found -> add to X, iterate
        none found           -> A* is a solution (provably correct)
        generator UNSAT      -> no solution exists in the search space

Terminating after the first solution reproduces Table 1; ``find_all``
keeps blocking found solutions until the generator is exhausted, which
reproduces the paper's solution-space exploration ("We ask CCmatic to
produce all possible solutions, implying that there are no other
solutions in our search space").
"""

from __future__ import annotations

import time
from typing import Optional

from .interfaces import CegisOptions, CegisOutcome, CegisStats, Generator, Verifier


class CegisLoop:
    """Drives one synthesis query to completion."""

    def __init__(self, generator: Generator, verifier: Verifier, options: Optional[CegisOptions] = None):
        self.generator = generator
        self.verifier = verifier
        self.options = options or CegisOptions()

    def run(self) -> CegisOutcome:
        opts = self.options
        outcome: CegisOutcome = CegisOutcome()
        stats = outcome.stats
        start = time.perf_counter()
        while stats.iterations < opts.max_iterations:
            if opts.time_budget is not None and time.perf_counter() - start > opts.time_budget:
                outcome.timed_out = True
                break
            stats.iterations += 1

            t0 = time.perf_counter()
            candidate = self.generator.propose()
            stats.generator_time += time.perf_counter() - t0
            if candidate is None:
                outcome.exhausted = True
                break

            t0 = time.perf_counter()
            result = self.verifier.find_counterexample(
                candidate, worst_case=opts.worst_case_cex
            )
            stats.verifier_time += time.perf_counter() - t0
            stats.verifier_calls += 1

            if result.verified:
                outcome.solutions.append(candidate)
                if opts.verbose:
                    print(f"[cegis] iter {stats.iterations}: solution {candidate}")
                if not opts.find_all:
                    break
                if opts.max_solutions is not None and len(outcome.solutions) >= opts.max_solutions:
                    break
                self.generator.block(candidate)
            else:
                cex = result.counterexample
                if cex is None:
                    # verifier gave up (budget); treat as inconclusive stop
                    outcome.timed_out = True
                    break
                stats.counterexamples += 1
                if opts.verbose:
                    print(f"[cegis] iter {stats.iterations}: counterexample for {candidate}")
                self.generator.add_counterexample(cex)
        return outcome
