"""The CEGIS loop itself (paper Fig. 1).

    generator proposes A*  ->  verifier searches for trace breaking A*
        counterexample found -> add to X, iterate
        none found           -> A* is a solution (provably correct)
        generator UNSAT      -> no solution exists in the search space

Terminating after the first solution reproduces Table 1; ``find_all``
keeps blocking found solutions until the generator is exhausted, which
reproduces the paper's solution-space exploration ("We ask CCmatic to
produce all possible solutions, implying that there are no other
solutions in our search space").

Every run is traced through :mod:`repro.obs`: per-iteration
``cegis.generate``/``cegis.verify`` spans, ``cegis.propose`` /
``cegis.counterexample`` / ``cegis.solution`` events, and a final
``cegis.done`` event carrying the :class:`CegisStats` totals.
``CegisOptions.verbose`` is sugar for attaching a console sink for the
duration of the run.

``CegisOptions.time_budget`` is enforced as a *deadline*: besides the
top-of-loop check, the remaining budget is threaded into verifiers that
accept a ``deadline`` keyword (``time.perf_counter()`` timestamp), so a
single long verifier call can no longer overshoot the budget unboundedly.
A run stopped this way records an explicit ``cegis.budget_exhausted``
event.
"""

from __future__ import annotations

import inspect
import time
from typing import Optional

from ..obs import DEBUG, ConsoleSink, tracer
from .interfaces import CegisOptions, CegisOutcome, CegisStats, Generator, Verifier


def _accepts_deadline(verifier: Verifier) -> bool:
    """Whether ``verifier.find_counterexample`` takes a ``deadline`` kwarg."""
    try:
        sig = inspect.signature(verifier.find_counterexample)
    except (TypeError, ValueError):  # builtins / C callables
        return False
    params = sig.parameters
    return "deadline" in params or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    )


class CegisLoop:
    """Drives one synthesis query to completion."""

    def __init__(self, generator: Generator, verifier: Verifier, options: Optional[CegisOptions] = None):
        self.generator = generator
        self.verifier = verifier
        self.options = options or CegisOptions()
        self._verifier_takes_deadline = _accepts_deadline(verifier)

    def run(self) -> CegisOutcome:
        tr = tracer()
        console = None
        if self.options.verbose and not any(
            isinstance(s, ConsoleSink) for s in tr.sinks
        ):
            console = tr.add_sink(ConsoleSink())
        try:
            with tr.span("cegis.run", worst_case=self.options.worst_case_cex,
                         find_all=self.options.find_all):
                return self._run(tr)
        finally:
            if console is not None:
                tr.remove_sink(console)

    def _run(self, tr) -> CegisOutcome:
        opts = self.options
        outcome: CegisOutcome = CegisOutcome()
        stats = outcome.stats
        start = time.perf_counter()
        deadline = None if opts.time_budget is None else start + opts.time_budget
        while stats.iterations < opts.max_iterations:
            if deadline is not None and time.perf_counter() > deadline:
                self._budget_exhausted(tr, outcome, where="loop")
                break
            stats.iterations += 1

            with tr.span("cegis.generate", level=DEBUG, iter=stats.iterations) as span:
                t0 = time.perf_counter()
                candidate = self.generator.propose()
                dt = time.perf_counter() - t0
                span.set_duration(dt)
            stats.generator_time += dt
            if candidate is None:
                outcome.exhausted = True
                tr.event("cegis.exhausted", iter=stats.iterations)
                break
            tr.event("cegis.propose", level=DEBUG, iter=stats.iterations,
                     candidate=str(candidate))

            kwargs = {}
            if self._verifier_takes_deadline and deadline is not None:
                kwargs["deadline"] = deadline
            with tr.span("cegis.verify", level=DEBUG, iter=stats.iterations) as span:
                t0 = time.perf_counter()
                result = self.verifier.find_counterexample(
                    candidate, worst_case=opts.worst_case_cex, **kwargs
                )
                dt = time.perf_counter() - t0
                span.set_duration(dt)
            stats.verifier_time += dt
            stats.verifier_calls += 1

            if result.verified:
                outcome.solutions.append(candidate)
                tr.event(
                    "cegis.solution",
                    iter=stats.iterations,
                    candidate=str(candidate),
                    msg=f"[cegis] iter {stats.iterations}: solution {candidate}",
                )
                if not opts.find_all:
                    break
                if opts.max_solutions is not None and len(outcome.solutions) >= opts.max_solutions:
                    break
                self.generator.block(candidate)
            else:
                cex = result.counterexample
                if cex is None:
                    # verifier gave up (conflict or wall-clock budget)
                    self._budget_exhausted(tr, outcome, where="verifier")
                    break
                stats.counterexamples += 1
                tr.event(
                    "cegis.counterexample",
                    iter=stats.iterations,
                    candidate=str(candidate),
                    msg=f"[cegis] iter {stats.iterations}: counterexample for {candidate}",
                )
                self.generator.add_counterexample(cex)
        tr.event(
            "cegis.done",
            iterations=stats.iterations,
            counterexamples=stats.counterexamples,
            solutions=len(outcome.solutions),
            generator_time=stats.generator_time,
            verifier_time=stats.verifier_time,
            exhausted=outcome.exhausted,
            timed_out=outcome.timed_out,
        )
        return outcome

    @staticmethod
    def _budget_exhausted(tr, outcome: CegisOutcome, where: str) -> None:
        outcome.timed_out = True
        stats: CegisStats = outcome.stats
        tr.event(
            "cegis.budget_exhausted",
            iter=stats.iterations,
            where=where,
            msg=f"[cegis] iter {stats.iterations}: time budget exhausted ({where})",
        )
